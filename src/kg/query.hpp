// Conjunctive (SPARQL-like basic graph pattern) queries over a TripleStore.
//
// A query is a list of triple patterns whose positions are either constants
// or named variables; solve() returns all variable bindings satisfying every
// pattern.  This is the "Knowledge Graph reasoner facilitates queries for
// valid IP, port, and protocol combinations" interface from Sec. IV-A.
#ifndef KINETGAN_KG_QUERY_H
#define KINETGAN_KG_QUERY_H

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/kg/store.hpp"

namespace kinet::kg {

/// A pattern position: constant symbol or named variable ("?x").
struct Term {
    enum class Kind { constant, variable };
    Kind kind = Kind::constant;
    std::string text;  // constant name or variable name (with leading '?')

    /// Parses "?var" as a variable, anything else as a constant.
    static Term parse(std::string_view token);
    [[nodiscard]] bool is_variable() const noexcept { return kind == Kind::variable; }
};

struct QueryPattern {
    Term s;
    Term p;
    Term o;
};

/// One solution: variable name -> bound symbol.
using Binding = std::unordered_map<std::string, SymbolId>;

class Query {
public:
    /// Adds a pattern from three tokens; "?name" marks variables.
    Query& where(std::string_view s, std::string_view p, std::string_view o);

    /// All bindings satisfying every pattern (backtracking join, most
    /// selective pattern first at each step).
    [[nodiscard]] std::vector<Binding> solve(const TripleStore& store) const;

    [[nodiscard]] std::size_t pattern_count() const noexcept { return patterns_.size(); }

private:
    std::vector<QueryPattern> patterns_;
};

}  // namespace kinet::kg

#endif  // KINETGAN_KG_QUERY_H
