#include "src/kg/reasoner.hpp"

#include <vector>

#include "src/kg/ontology.hpp"

namespace kinet::kg {

std::size_t Reasoner::materialize(TripleStore& store) {
    const SymbolId sub = store.symbols().intern(vocab::rdfs_subclass_of);
    const SymbolId type = store.symbols().intern(vocab::rdf_type);
    const SymbolId domain = store.symbols().intern(vocab::rdfs_domain);
    const SymbolId range = store.symbols().intern(vocab::rdfs_range);

    std::size_t added = 0;
    bool changed = true;
    while (changed) {
        changed = false;

        // Rule 1: subclass transitivity  (A ⊑ B ∧ B ⊑ C ⇒ A ⊑ C).
        for (const Triple& t1 : store.match(TriplePattern{std::nullopt, sub, std::nullopt})) {
            for (SymbolId c : store.objects(t1.o, sub)) {
                if (store.add(t1.s, sub, c)) {
                    ++added;
                    changed = true;
                }
            }
        }

        // Rule 2: type inheritance  (x type C ∧ C ⊑ D ⇒ x type D).
        for (const Triple& t1 : store.match(TriplePattern{std::nullopt, type, std::nullopt})) {
            for (SymbolId d : store.objects(t1.o, sub)) {
                if (store.add(t1.s, type, d)) {
                    ++added;
                    changed = true;
                }
            }
        }

        // Rule 3: domain typing  (p domain C ∧ (s p o) ⇒ s type C).
        for (const Triple& dom : store.match(TriplePattern{std::nullopt, domain, std::nullopt})) {
            for (const Triple& use : store.match(TriplePattern{std::nullopt, dom.s, std::nullopt})) {
                if (store.add(use.s, type, dom.o)) {
                    ++added;
                    changed = true;
                }
            }
        }

        // Rule 4: range typing  (p range C ∧ (s p o) ⇒ o type C), skipping
        // numeric literals, which are not individuals.
        for (const Triple& rng : store.match(TriplePattern{std::nullopt, range, std::nullopt})) {
            for (const Triple& use : store.match(TriplePattern{std::nullopt, rng.s, std::nullopt})) {
                if (store.symbols().numeric_value(use.o).has_value()) {
                    continue;
                }
                if (store.add(use.o, type, rng.o)) {
                    ++added;
                    changed = true;
                }
            }
        }
    }
    return added;
}

bool Reasoner::is_subclass_of(const TripleStore& store, std::string_view child,
                              std::string_view parent) {
    const SymbolId c = store.symbols().find(child);
    const SymbolId p = store.symbols().find(parent);
    if (c == kInvalidSymbol || p == kInvalidSymbol) {
        return false;
    }
    if (c == p) {
        return true;
    }
    const SymbolId sub = store.symbols().find(vocab::rdfs_subclass_of);
    if (sub == kInvalidSymbol) {
        return false;
    }
    // BFS up the hierarchy.
    std::vector<SymbolId> frontier{c};
    std::vector<bool> seen(store.symbols().size(), false);
    seen[c] = true;
    while (!frontier.empty()) {
        const SymbolId cur = frontier.back();
        frontier.pop_back();
        for (SymbolId up : store.objects(cur, sub)) {
            if (up == p) {
                return true;
            }
            if (up < seen.size() && !seen[up]) {
                seen[up] = true;
                frontier.push_back(up);
            }
        }
    }
    return false;
}

bool Reasoner::is_instance_of(const TripleStore& store, std::string_view individual,
                              std::string_view cls) {
    const SymbolId ind = store.symbols().find(individual);
    const SymbolId type = store.symbols().find(vocab::rdf_type);
    if (ind == kInvalidSymbol || type == kInvalidSymbol) {
        return false;
    }
    for (SymbolId direct : store.objects(ind, type)) {
        if (store.symbols().name(direct) == cls) {
            return true;
        }
        if (is_subclass_of(store, store.symbols().name(direct), cls)) {
            return true;
        }
    }
    return false;
}

}  // namespace kinet::kg
