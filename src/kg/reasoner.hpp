// Forward-chaining RDFS reasoner.
//
// Materialises the closure of: subclass transitivity, type inheritance
// (x type C ∧ C ⊑ D ⇒ x type D), and property domain/range typing.  This is
// the inference layer behind NetworkKg's validity queries.
#ifndef KINETGAN_KG_REASONER_H
#define KINETGAN_KG_REASONER_H

#include <string_view>

#include "src/kg/store.hpp"

namespace kinet::kg {

class Reasoner {
public:
    /// Runs all rules to fixpoint; returns the number of triples added.
    static std::size_t materialize(TripleStore& store);

    /// True if `child` ⊑ `parent` in the (materialised or raw) hierarchy —
    /// computed on the fly, so it also works before materialize().
    [[nodiscard]] static bool is_subclass_of(const TripleStore& store, std::string_view child,
                                             std::string_view parent);

    /// True if `individual` is an instance of `cls`, considering subclassing.
    [[nodiscard]] static bool is_instance_of(const TripleStore& store,
                                             std::string_view individual, std::string_view cls);
};

}  // namespace kinet::kg

#endif  // KINETGAN_KG_REASONER_H
