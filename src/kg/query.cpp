#include "src/kg/query.hpp"

#include <algorithm>
#include <limits>

#include "src/common/check.hpp"
#include "src/common/text.hpp"

namespace kinet::kg {

Term Term::parse(std::string_view token) {
    Term t;
    if (text::starts_with(token, "?")) {
        t.kind = Kind::variable;
    }
    t.text = std::string(token);
    return t;
}

Query& Query::where(std::string_view s, std::string_view p, std::string_view o) {
    patterns_.push_back(QueryPattern{Term::parse(s), Term::parse(p), Term::parse(o)});
    return *this;
}

namespace {

// Resolves a term under the current binding; returns nullopt when the term is
// an unbound variable, kInvalidSymbol wrapped when the constant is unknown.
std::optional<SymbolId> resolve(const Term& term, const Binding& binding,
                                const TripleStore& store) {
    if (term.is_variable()) {
        const auto it = binding.find(term.text);
        if (it == binding.end()) {
            return std::nullopt;
        }
        return it->second;
    }
    return store.symbols().find(term.text);
}

// Estimated result size of a pattern under the current binding (smaller is
// more selective); used to order the join.
std::size_t selectivity(const QueryPattern& pattern, const Binding& binding,
                        const TripleStore& store) {
    TriplePattern tp;
    const auto s = resolve(pattern.s, binding, store);
    const auto p = resolve(pattern.p, binding, store);
    const auto o = resolve(pattern.o, binding, store);
    if (s.has_value() && *s == kInvalidSymbol) {
        return 0;  // unknown constant: no matches
    }
    if (p.has_value() && *p == kInvalidSymbol) {
        return 0;
    }
    if (o.has_value() && *o == kInvalidSymbol) {
        return 0;
    }
    tp.s = s;
    tp.p = p;
    tp.o = o;
    return store.match(tp).size();
}

void solve_recursive(const TripleStore& store, std::vector<QueryPattern> remaining,
                     const Binding& binding, std::vector<Binding>& out) {
    if (remaining.empty()) {
        out.push_back(binding);
        return;
    }
    // Pick the most selective remaining pattern.
    std::size_t best = 0;
    std::size_t best_count = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
        const std::size_t c = selectivity(remaining[i], binding, store);
        if (c < best_count) {
            best_count = c;
            best = i;
        }
    }
    const QueryPattern pattern = remaining[best];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));

    TriplePattern tp;
    tp.s = resolve(pattern.s, binding, store);
    tp.p = resolve(pattern.p, binding, store);
    tp.o = resolve(pattern.o, binding, store);
    if ((tp.s && *tp.s == kInvalidSymbol) || (tp.p && *tp.p == kInvalidSymbol) ||
        (tp.o && *tp.o == kInvalidSymbol)) {
        return;  // constant not in the store: dead branch
    }

    for (const Triple& t : store.match(tp)) {
        Binding next = binding;
        bool consistent = true;
        auto bind = [&next, &consistent](const Term& term, SymbolId value) {
            if (!term.is_variable()) {
                return;
            }
            const auto it = next.find(term.text);
            if (it != next.end()) {
                if (it->second != value) {
                    consistent = false;
                }
            } else {
                next.emplace(term.text, value);
            }
        };
        bind(pattern.s, t.s);
        bind(pattern.p, t.p);
        bind(pattern.o, t.o);
        if (consistent) {
            solve_recursive(store, remaining, next, out);
        }
    }
}

}  // namespace

std::vector<Binding> Query::solve(const TripleStore& store) const {
    KINET_CHECK(!patterns_.empty(), "Query::solve: no patterns");
    std::vector<Binding> out;
    solve_recursive(store, patterns_, Binding{}, out);
    return out;
}

}  // namespace kinet::kg
