// Indexed triple store: the storage layer of the Network Traffic Knowledge
// Graph (Sec. IV-A).  Triples are (subject, predicate, object) over interned
// symbols, with S/P/O hash indexes for pattern matching.
#ifndef KINETGAN_KG_STORE_H
#define KINETGAN_KG_STORE_H

#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/kg/symbols.hpp"

namespace kinet::kg {

struct Triple {
    SymbolId s = kInvalidSymbol;
    SymbolId p = kInvalidSymbol;
    SymbolId o = kInvalidSymbol;

    friend bool operator==(const Triple&, const Triple&) = default;
};

struct TripleHash {
    std::size_t operator()(const Triple& t) const noexcept {
        std::size_t h = t.s;
        h = h * 1000003ULL + t.p;
        h = h * 1000003ULL + t.o;
        return h;
    }
};

/// A match pattern; nullopt positions are wildcards.
struct TriplePattern {
    std::optional<SymbolId> s;
    std::optional<SymbolId> p;
    std::optional<SymbolId> o;
};

class TripleStore {
public:
    TripleStore() = default;

    /// Adds a triple by symbol ids; returns false if it already existed.
    bool add(SymbolId s, SymbolId p, SymbolId o);
    /// Adds a triple by names (interning as needed).
    bool add(std::string_view s, std::string_view p, std::string_view o);
    /// Adds (s, p, <numeric literal>).
    bool add_number(std::string_view s, std::string_view p, double value);

    [[nodiscard]] bool contains(SymbolId s, SymbolId p, SymbolId o) const;
    [[nodiscard]] bool contains(std::string_view s, std::string_view p, std::string_view o) const;

    /// All triples matching the pattern.
    [[nodiscard]] std::vector<Triple> match(const TriplePattern& pattern) const;

    /// Objects o with (s, p, o) in the store.
    [[nodiscard]] std::vector<SymbolId> objects(SymbolId s, SymbolId p) const;
    [[nodiscard]] std::vector<SymbolId> objects(std::string_view s, std::string_view p) const;

    /// Subjects s with (s, p, o) in the store.
    [[nodiscard]] std::vector<SymbolId> subjects(SymbolId p, SymbolId o) const;
    [[nodiscard]] std::vector<SymbolId> subjects(std::string_view p, std::string_view o) const;

    /// First numeric object of (s, p, ·), if any.
    [[nodiscard]] std::optional<double> number(std::string_view s, std::string_view p) const;

    [[nodiscard]] std::size_t size() const noexcept { return triples_.size(); }
    [[nodiscard]] const std::vector<Triple>& triples() const noexcept { return triples_; }

    [[nodiscard]] SymbolTable& symbols() noexcept { return symbols_; }
    [[nodiscard]] const SymbolTable& symbols() const noexcept { return symbols_; }

private:
    SymbolTable symbols_;
    std::vector<Triple> triples_;
    std::unordered_set<Triple, TripleHash> dedupe_;
    std::unordered_map<SymbolId, std::vector<std::size_t>> by_s_;
    std::unordered_map<SymbolId, std::vector<std::size_t>> by_p_;
    std::unordered_map<SymbolId, std::vector<std::size_t>> by_o_;
};

}  // namespace kinet::kg

#endif  // KINETGAN_KG_STORE_H
