#include "src/kg/ontology.hpp"

namespace kinet::kg {

void Ontology::declare_class(std::string_view name) {
    store_->add(name, vocab::rdf_type, vocab::rdfs_class);
}

void Ontology::declare_subclass(std::string_view child, std::string_view parent) {
    declare_class(child);
    declare_class(parent);
    store_->add(child, vocab::rdfs_subclass_of, parent);
}

void Ontology::declare_property(std::string_view name, std::string_view domain,
                                std::string_view range) {
    store_->add(name, vocab::rdf_type, vocab::rdf_property);
    if (!domain.empty()) {
        store_->add(name, vocab::rdfs_domain, domain);
    }
    if (!range.empty()) {
        store_->add(name, vocab::rdfs_range, range);
    }
}

void Ontology::assert_instance(std::string_view individual, std::string_view cls) {
    store_->add(individual, vocab::rdf_type, cls);
}

std::vector<std::string> Ontology::classes() const {
    std::vector<std::string> out;
    for (SymbolId id : store_->subjects(vocab::rdf_type, vocab::rdfs_class)) {
        out.push_back(store_->symbols().name(id));
    }
    return out;
}

std::vector<std::string> Ontology::instances_of(std::string_view cls) const {
    std::vector<std::string> out;
    for (SymbolId id : store_->subjects(vocab::rdf_type, cls)) {
        out.push_back(store_->symbols().name(id));
    }
    return out;
}

}  // namespace kinet::kg
