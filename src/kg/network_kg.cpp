#include "src/kg/network_kg.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/kg/ontology.hpp"
#include "src/kg/reasoner.hpp"

namespace kinet::kg {
namespace {

// Prefixes used for KG individuals; stripped again at the oracle boundary so
// data-space labels ("camera", "TCP", "53") stay prefix-free.
constexpr std::string_view kDevPrefix = "dev:";
constexpr std::string_view kProtoPrefix = "proto:";
constexpr std::string_view kAppPrefix = "app:";
constexpr std::string_view kPortPrefix = "port:";
constexpr std::string_view kEventPrefix = "event:";
constexpr std::string_view kServicePrefix = "svc:";
constexpr std::string_view kStatePrefix = "state:";

std::string with_prefix(std::string_view prefix, std::string_view name) {
    return std::string(prefix) + std::string(name);
}

std::string strip_prefix(std::string_view name) {
    const auto pos = name.find(':');
    if (pos == std::string_view::npos) {
        return std::string(name);
    }
    return std::string(name.substr(pos + 1));
}

}  // namespace

const std::vector<LabEventSpec>& lab_event_specs() {
    static const std::vector<LabEventSpec> kSpecs = {
        // ---- benign traffic ------------------------------------------------
        {"dns_query", "UDP", "DNS", "53",
         {"camera", "smart_plug", "motion_sensor", "tag_manager", "hub", "phone"},
         "benign", "dns_server"},
        {"ntp_sync", "UDP", "NTP", "123",
         {"camera", "smart_plug", "motion_sensor", "tag_manager", "hub"},
         "benign", "ntp_server"},
        {"motion_detected", "TCP", "HTTPS", "443", {"camera", "motion_sensor"},
         "benign", "cloud_blink"},
        {"video_stream", "TCP", "HTTPS", "443", {"camera"}, "benign", "cloud_blink"},
        {"lamp_activation", "TCP", "MQTT", "1883", {"smart_plug", "hub"},
         "benign", "cloud_plug"},
        {"plug_telemetry", "TCP", "MQTT", "8883", {"smart_plug"}, "benign", "cloud_plug"},
        {"tag_interaction", "TCP", "HTTPS", "443", {"tag_manager", "phone"},
         "benign", "cloud_tag"},
        {"heartbeat", "TCP", "HTTPS", "443",
         {"camera", "smart_plug", "motion_sensor", "tag_manager", "hub"},
         "benign", "cloud_vendor"},
        {"mdns_discovery", "UDP", "MDNS", "5353",
         {"camera", "smart_plug", "motion_sensor", "tag_manager", "hub", "phone"},
         "benign", "lan_broadcast"},
        {"ssdp_discovery", "UDP", "SSDP", "1900", {"hub", "phone"}, "benign", "lan_broadcast"},
        {"firmware_check", "TCP", "HTTP", "80", {"camera", "smart_plug", "hub"},
         "benign", "cloud_vendor"},
        {"app_control", "TCP", "HTTPS", "443", {"phone"}, "benign", "cloud_vendor"},
        {"ping", "ICMP", "NONE", "none", {"hub", "phone"}, "benign", "lan_hub"},
        {"arp_heartbeat", "UDP", "NONE", "ephemeral", {"hub"}, "benign", "lan_broadcast"},
        // ---- attacks -------------------------------------------------------
        {"flood_attack", "UDP", "NONE", "ephemeral", {"attacker"}, "flooding", "lan_hub"},
        {"port_scan", "TCP", "NONE", "ephemeral", {"attacker"}, "scan", "lan_hub"},
        {"brute_force", "TCP", "TELNET", "23", {"attacker"}, "bruteforce", "lan_hub"},
        {"rpc_probe", "TCP", "RPC", "32771-34000", {"attacker"}, "rpc_exploit", "lan_hub"},
    };
    return kSpecs;
}

namespace {

template <typename Extract>
std::vector<std::string> collect_unique(Extract&& extract) {
    std::vector<std::string> out;
    for (const auto& spec : lab_event_specs()) {
        extract(spec, out);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

}  // namespace

const std::vector<std::string>& lab_devices() {
    static const std::vector<std::string> kDevices = collect_unique(
        [](const LabEventSpec& s, std::vector<std::string>& out) {
            out.insert(out.end(), s.src_devices.begin(), s.src_devices.end());
        });
    return kDevices;
}

const std::vector<std::string>& lab_protocols() {
    static const std::vector<std::string> kProtocols = collect_unique(
        [](const LabEventSpec& s, std::vector<std::string>& out) { out.push_back(s.protocol); });
    return kProtocols;
}

const std::vector<std::string>& lab_app_protocols() {
    static const std::vector<std::string> kApps = collect_unique(
        [](const LabEventSpec& s, std::vector<std::string>& out) { out.push_back(s.app_protocol); });
    return kApps;
}

const std::vector<std::string>& lab_ports() {
    static const std::vector<std::string> kPorts = collect_unique(
        [](const LabEventSpec& s, std::vector<std::string>& out) { out.push_back(s.dst_port); });
    return kPorts;
}

const std::vector<std::string>& lab_event_types() {
    static const std::vector<std::string> kEvents = collect_unique(
        [](const LabEventSpec& s, std::vector<std::string>& out) { out.push_back(s.event_type); });
    return kEvents;
}

const std::vector<std::string>& lab_labels() {
    static const std::vector<std::string> kLabels = collect_unique(
        [](const LabEventSpec& s, std::vector<std::string>& out) { out.push_back(s.label); });
    return kLabels;
}

const std::vector<std::string>& lab_endpoints() {
    static const std::vector<std::string> kEndpoints = collect_unique(
        [](const LabEventSpec& s, std::vector<std::string>& out) { out.push_back(s.dst_endpoint); });
    return kEndpoints;
}

const std::vector<std::string>& unsw_protocols() {
    static const std::vector<std::string> kProtocols = {"tcp", "udp", "arp", "icmp"};
    return kProtocols;
}

const std::vector<std::string>& unsw_services() {
    static const std::vector<std::string> kServices = {"-",    "http", "ftp",  "smtp", "ssh",
                                                       "dns",  "pop3", "irc",  "snmp", "radius",
                                                       "ftp-data"};
    return kServices;
}

const std::vector<std::string>& unsw_states() {
    static const std::vector<std::string> kStates = {"FIN", "CON", "INT", "REQ", "RST", "ECO"};
    return kStates;
}

const std::vector<std::string>& unsw_attack_categories() {
    static const std::vector<std::string> kCats = {
        "Normal",  "Fuzzers",        "Analysis",  "Backdoors", "DoS",
        "Exploits", "Generic",       "Reconnaissance", "Shellcode", "Worms"};
    return kCats;
}

ValidityOracle::ValidityOracle(std::vector<std::string> attribute_names,
                               std::vector<std::vector<std::string>> valid_tuples)
    : attribute_names_(std::move(attribute_names)), valid_tuples_(std::move(valid_tuples)) {
    KINET_CHECK(!attribute_names_.empty(), "ValidityOracle: no attributes");
    for (const auto& tuple : valid_tuples_) {
        KINET_CHECK(tuple.size() == attribute_names_.size(),
                    "ValidityOracle: tuple arity mismatch");
        keys_.insert(key_of(tuple));
    }
}

std::string ValidityOracle::key_of(std::span<const std::string> values) {
    std::string key;
    for (const auto& v : values) {
        key += v;
        key.push_back('\x1f');  // unit separator avoids ambiguous joins
    }
    return key;
}

bool ValidityOracle::is_valid(std::span<const std::string> values) const {
    KINET_CHECK(values.size() == attribute_names_.size(), "ValidityOracle: arity mismatch");
    return keys_.contains(key_of(values));
}

void ValidityOracle::save(bytes::Writer& out) const {
    out.u64(attribute_names_.size());
    for (const auto& name : attribute_names_) {
        out.str(name);
    }
    out.u64(valid_tuples_.size());
    for (const auto& tuple : valid_tuples_) {
        for (const auto& value : tuple) {
            out.str(value);
        }
    }
}

ValidityOracle ValidityOracle::load(bytes::Reader& in) {
    // Counts are buffer-bounded before they size any container (each name
    // costs at least its 8-byte length prefix; each tuple at least one
    // prefixed string per attribute).
    const std::size_t arity = in.element_count(8, "oracle attribute names");
    std::vector<std::string> names;
    names.reserve(arity);
    for (std::size_t a = 0; a < arity; ++a) {
        names.push_back(in.str());
    }
    const std::size_t count = in.element_count(std::max<std::size_t>(arity, 1) * 8, "oracle tuples");
    std::vector<std::vector<std::string>> tuples(count, std::vector<std::string>(arity));
    for (auto& tuple : tuples) {
        for (auto& value : tuple) {
            value = in.str();
        }
    }
    return {std::move(names), std::move(tuples)};
}

NetworkKg NetworkKg::build_lab() {
    NetworkKg kg(Domain::lab);
    kg.build_lab_triples();
    Reasoner::materialize(kg.store_);
    return kg;
}

NetworkKg NetworkKg::build_unsw() {
    NetworkKg kg(Domain::unsw);
    kg.build_unsw_triples();
    Reasoner::materialize(kg.store_);
    return kg;
}

void NetworkKg::build_lab_triples() {
    Ontology onto(store_);

    // --- UCO-extended class hierarchy (paper Fig. 2). ---
    onto.declare_class(vocab::uco_event);
    onto.declare_subclass(vocab::net_network_event, vocab::uco_event);
    onto.declare_subclass(vocab::net_event_type, vocab::net_network_event);
    onto.declare_class(vocab::net_device);
    onto.declare_class(vocab::net_protocol);
    onto.declare_subclass(vocab::net_app_protocol, vocab::net_protocol);
    onto.declare_class(vocab::net_port);
    onto.declare_class(vocab::net_ip_address);
    onto.declare_class(vocab::net_domain_url);
    onto.declare_subclass(vocab::net_attack_signature, vocab::uco_vulnerability);

    onto.declare_property(vocab::has_protocol, vocab::net_event_type, vocab::net_protocol);
    onto.declare_property(vocab::has_app_protocol, vocab::net_event_type,
                          vocab::net_app_protocol);
    onto.declare_property(vocab::has_dst_port, vocab::net_event_type, vocab::net_port);
    onto.declare_property(vocab::emitted_by, vocab::net_event_type, vocab::net_device);
    onto.declare_property(vocab::exploits, vocab::net_event_type,
                          vocab::net_attack_signature);
    onto.declare_property(vocab::min_port);
    onto.declare_property(vocab::max_port);

    // --- individuals ---
    for (const auto& d : lab_devices()) {
        onto.assert_instance(with_prefix(kDevPrefix, d), vocab::net_device);
    }
    for (const auto& p : lab_protocols()) {
        onto.assert_instance(with_prefix(kProtoPrefix, p), vocab::net_protocol);
    }
    for (const auto& a : lab_app_protocols()) {
        onto.assert_instance(with_prefix(kAppPrefix, a), vocab::net_app_protocol);
    }
    for (const auto& port : lab_ports()) {
        const std::string iri = with_prefix(kPortPrefix, port);
        onto.assert_instance(iri, vocab::net_port);
        // Numeric annotations enable range reasoning on ports.
        if (port == "32771-34000") {
            store_.add_number(iri, vocab::min_port, 32771);
            store_.add_number(iri, vocab::max_port, 34000);
        } else if (port == "ephemeral") {
            store_.add_number(iri, vocab::min_port, 49152);
            store_.add_number(iri, vocab::max_port, 65535);
        } else if (port != "none") {
            const double num = std::stod(port);
            store_.add_number(iri, vocab::min_port, num);
            store_.add_number(iri, vocab::max_port, num);
        }
    }

    // --- event templates ---
    for (const auto& spec : lab_event_specs()) {
        const std::string event = with_prefix(kEventPrefix, spec.event_type);
        onto.assert_instance(event, vocab::net_event_type);
        store_.add(event, vocab::has_protocol, with_prefix(kProtoPrefix, spec.protocol));
        store_.add(event, vocab::has_app_protocol, with_prefix(kAppPrefix, spec.app_protocol));
        store_.add(event, vocab::has_dst_port, with_prefix(kPortPrefix, spec.dst_port));
        for (const auto& dev : spec.src_devices) {
            store_.add(event, vocab::emitted_by, with_prefix(kDevPrefix, dev));
        }
        store_.add(event, "net:hasLabel", "label:" + spec.label);
        store_.add(event, "net:typicalEndpoint", "url:" + spec.dst_endpoint);
        onto.assert_instance("url:" + spec.dst_endpoint, vocab::net_domain_url);
    }

    // --- attack signatures (CVE knowledge, Sec. III-B example). ---
    onto.assert_instance("cve:CVE-1999-0003", vocab::net_attack_signature);
    store_.add_number("cve:CVE-1999-0003", vocab::min_port, 32771);
    store_.add_number("cve:CVE-1999-0003", vocab::max_port, 34000);
    store_.add(with_prefix(kEventPrefix, "rpc_probe"), vocab::exploits, "cve:CVE-1999-0003");

    onto.assert_instance("cve:TELNET-BRUTE", vocab::net_attack_signature);
    store_.add_number("cve:TELNET-BRUTE", vocab::min_port, 23);
    store_.add_number("cve:TELNET-BRUTE", vocab::max_port, 23);
    store_.add(with_prefix(kEventPrefix, "brute_force"), vocab::exploits, "cve:TELNET-BRUTE");
}

void NetworkKg::build_unsw_triples() {
    Ontology onto(store_);

    onto.declare_class(vocab::net_protocol);
    onto.declare_class(vocab::net_service);
    onto.declare_class(vocab::net_flow_state);
    onto.declare_property(vocab::uses_service, vocab::net_protocol, vocab::net_service);
    onto.declare_property(vocab::allowed_state, vocab::net_protocol, vocab::net_flow_state);

    for (const auto& p : unsw_protocols()) {
        onto.assert_instance(with_prefix(kProtoPrefix, p), vocab::net_protocol);
    }
    for (const auto& s : unsw_services()) {
        onto.assert_instance(with_prefix(kServicePrefix, s), vocab::net_service);
    }
    for (const auto& st : unsw_states()) {
        onto.assert_instance(with_prefix(kStatePrefix, st), vocab::net_flow_state);
    }

    // service -> allowed transport protocol(s).
    const std::vector<std::pair<std::string, std::vector<std::string>>> service_protocols = {
        {"-", {"tcp", "udp", "arp", "icmp"}},
        {"http", {"tcp"}},
        {"ftp", {"tcp"}},
        {"ftp-data", {"tcp"}},
        {"smtp", {"tcp"}},
        {"ssh", {"tcp"}},
        {"pop3", {"tcp"}},
        {"irc", {"tcp"}},
        {"dns", {"tcp", "udp"}},
        {"snmp", {"udp"}},
        {"radius", {"udp"}},
    };
    for (const auto& [svc, protos] : service_protocols) {
        for (const auto& p : protos) {
            store_.add(with_prefix(kProtoPrefix, p), vocab::uses_service,
                       with_prefix(kServicePrefix, svc));
        }
    }

    // protocol -> allowed flow states (TCP owns connection-oriented states,
    // UDP/ARP/ICMP are connectionless).
    const std::vector<std::pair<std::string, std::vector<std::string>>> proto_states = {
        {"tcp", {"FIN", "CON", "REQ", "RST"}},
        {"udp", {"CON", "INT", "REQ"}},
        {"arp", {"INT"}},
        {"icmp", {"ECO", "REQ"}},
    };
    for (const auto& [proto, states] : proto_states) {
        for (const auto& st : states) {
            store_.add(with_prefix(kProtoPrefix, proto), vocab::allowed_state,
                       with_prefix(kStatePrefix, st));
        }
    }
}

ValidityOracle NetworkKg::make_oracle() const {
    std::vector<std::vector<std::string>> tuples;
    if (domain_ == Domain::lab) {
        Query q;
        q.where("?e", std::string(vocab::rdf_type), std::string(vocab::net_event_type))
            .where("?e", std::string(vocab::has_protocol), "?p")
            .where("?e", std::string(vocab::has_app_protocol), "?a")
            .where("?e", std::string(vocab::has_dst_port), "?port")
            .where("?e", std::string(vocab::emitted_by), "?d");
        for (const auto& binding : q.solve(store_)) {
            const auto& sym = store_.symbols();
            tuples.push_back({strip_prefix(sym.name(binding.at("?d"))),
                              strip_prefix(sym.name(binding.at("?p"))),
                              strip_prefix(sym.name(binding.at("?a"))),
                              strip_prefix(sym.name(binding.at("?port"))),
                              strip_prefix(sym.name(binding.at("?e")))});
        }
        return ValidityOracle({"src_device", "protocol", "app_protocol", "dst_port", "event_type"},
                              std::move(tuples));
    }

    Query q;
    q.where("?proto", std::string(vocab::uses_service), "?svc")
        .where("?proto", std::string(vocab::allowed_state), "?state");
    for (const auto& binding : q.solve(store_)) {
        const auto& sym = store_.symbols();
        tuples.push_back({strip_prefix(sym.name(binding.at("?proto"))),
                          strip_prefix(sym.name(binding.at("?svc"))),
                          strip_prefix(sym.name(binding.at("?state")))});
    }
    return ValidityOracle({"proto", "service", "state"}, std::move(tuples));
}

std::vector<std::string> NetworkKg::ports_for_event(std::string_view event_type) const {
    std::vector<std::string> out;
    for (SymbolId o : store_.objects(with_prefix(kEventPrefix, event_type), vocab::has_dst_port)) {
        out.push_back(strip_prefix(store_.symbols().name(o)));
    }
    return out;
}

std::vector<std::string> NetworkKg::events_for_device(std::string_view device) const {
    std::vector<std::string> out;
    const SymbolId emitted = store_.symbols().find(vocab::emitted_by);
    const SymbolId dev = store_.symbols().find(with_prefix(kDevPrefix, device));
    if (emitted == kInvalidSymbol || dev == kInvalidSymbol) {
        return out;
    }
    for (SymbolId e : store_.subjects(emitted, dev)) {
        out.push_back(strip_prefix(store_.symbols().name(e)));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::pair<double, double> NetworkKg::attack_port_range(std::string_view cve) const {
    const std::string iri = "cve:" + std::string(cve);
    const auto lo = store_.number(iri, vocab::min_port);
    const auto hi = store_.number(iri, vocab::max_port);
    KINET_CHECK(lo.has_value() && hi.has_value(),
                "attack_port_range: no port interval for " + std::string(cve));
    return {*lo, *hi};
}

bool NetworkKg::port_in_attack_range(double port, std::string_view cve) const {
    const auto [lo, hi] = attack_port_range(cve);
    return port >= lo && port <= hi;
}

}  // namespace kinet::kg
