// The Network Traffic Knowledge Graph (Sec. IV-A).
//
// Extends the Unified Cybersecurity Ontology with network-activity concepts
// (net:NetworkEvent, net:EventType, net:Device, net:Protocol, net:Port,
// net:domainURL, net:AttackSignature) and populates it with the domain facts
// the Knowledge-Guided Discriminator needs: which (device, protocol,
// application protocol, destination port) combinations are legitimate for
// each event type, and which port ranges attack signatures such as
// CVE-1999-0003 (32771–34000) are bound to.
//
// Two domains are provided: the lab IoT testbed (paper Sec. IV-B1) and a
// UNSW-NB15-style flow domain (proto/service/state consistency rules).
#ifndef KINETGAN_KG_NETWORK_KG_H
#define KINETGAN_KG_NETWORK_KG_H

#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/kg/query.hpp"
#include "src/kg/store.hpp"

namespace kinet::kg {

/// Ground-truth template of one lab event type.  This single list drives both
/// the KG construction and the traffic simulator, so the knowledge the
/// discriminator uses and the behaviour of the (simulated) network agree.
struct LabEventSpec {
    std::string event_type;
    std::string protocol;                  // TCP / UDP / ICMP
    std::string app_protocol;              // DNS / HTTPS / MQTT / ... / NONE
    std::string dst_port;                  // categorical port label
    std::vector<std::string> src_devices;  // devices that may emit this event
    std::string label;                     // benign or attack class
    std::string dst_endpoint;              // typical destination
};

/// The canonical lab event templates (14 benign + 4 attack).
[[nodiscard]] const std::vector<LabEventSpec>& lab_event_specs();

/// Category vocabularies shared by the KG, the simulator and the GANs.
[[nodiscard]] const std::vector<std::string>& lab_devices();
[[nodiscard]] const std::vector<std::string>& lab_protocols();
[[nodiscard]] const std::vector<std::string>& lab_app_protocols();
[[nodiscard]] const std::vector<std::string>& lab_ports();
[[nodiscard]] const std::vector<std::string>& lab_event_types();
[[nodiscard]] const std::vector<std::string>& lab_labels();
[[nodiscard]] const std::vector<std::string>& lab_endpoints();

/// UNSW-style vocabularies.
[[nodiscard]] const std::vector<std::string>& unsw_protocols();
[[nodiscard]] const std::vector<std::string>& unsw_services();
[[nodiscard]] const std::vector<std::string>& unsw_states();
[[nodiscard]] const std::vector<std::string>& unsw_attack_categories();

/// Compiled validity oracle: O(1) membership checks over attribute tuples,
/// plus the enumeration of all valid tuples (the Knowledge-Guided
/// Discriminator's positive examples).
class ValidityOracle {
public:
    ValidityOracle(std::vector<std::string> attribute_names,
                   std::vector<std::vector<std::string>> valid_tuples);

    [[nodiscard]] bool is_valid(std::span<const std::string> values) const;
    [[nodiscard]] const std::vector<std::string>& attribute_names() const noexcept {
        return attribute_names_;
    }
    [[nodiscard]] const std::vector<std::vector<std::string>>& valid_tuples() const noexcept {
        return valid_tuples_;
    }

    /// Snapshot serialization: a loaded oracle answers identically to the one
    /// compiled from the live KG (the membership keys are rebuilt on load).
    void save(bytes::Writer& out) const;
    [[nodiscard]] static ValidityOracle load(bytes::Reader& in);

private:
    [[nodiscard]] static std::string key_of(std::span<const std::string> values);

    std::vector<std::string> attribute_names_;
    std::vector<std::vector<std::string>> valid_tuples_;
    std::unordered_set<std::string> keys_;
};

class NetworkKg {
public:
    /// Builds the lab-domain KG (ontology + facts + RDFS materialisation).
    [[nodiscard]] static NetworkKg build_lab();
    /// Builds the UNSW-domain KG.
    [[nodiscard]] static NetworkKg build_unsw();

    [[nodiscard]] const TripleStore& store() const noexcept { return store_; }
    [[nodiscard]] TripleStore& store() noexcept { return store_; }

    /// Compiles the validity oracle by querying the KG (not by re-reading the
    /// spec tables): attribute order is
    ///   lab : {src_device, protocol, app_protocol, dst_port, event_type}
    ///   unsw: {proto, service, state}
    [[nodiscard]] ValidityOracle make_oracle() const;

    /// Valid destination-port labels for an event type (lab domain).
    [[nodiscard]] std::vector<std::string> ports_for_event(std::string_view event_type) const;
    /// Event types a device may legitimately emit (lab domain).
    [[nodiscard]] std::vector<std::string> events_for_device(std::string_view device) const;
    /// Numeric port interval of an attack signature, e.g. "CVE-1999-0003".
    [[nodiscard]] std::pair<double, double> attack_port_range(std::string_view cve) const;
    /// True if a numeric port falls inside the signature's interval.
    [[nodiscard]] bool port_in_attack_range(double port, std::string_view cve) const;

private:
    enum class Domain { lab, unsw };
    explicit NetworkKg(Domain domain) : domain_(domain) {}

    void build_lab_triples();
    void build_unsw_triples();

    TripleStore store_;
    Domain domain_;
};

}  // namespace kinet::kg

#endif  // KINETGAN_KG_NETWORK_KG_H
