// RDFS-flavoured ontology vocabulary and authoring helpers.
//
// The Unified Cybersecurity Ontology (UCO) extension from Sec. IV-A is
// expressed with this vocabulary: classes such as uco:NetworkEvent,
// net:Protocol, net:Device, net:DomainURL, net:AttackSignature, and the
// properties linking them (hasProtocol, hasDstPort, minPort/maxPort, ...).
#ifndef KINETGAN_KG_ONTOLOGY_H
#define KINETGAN_KG_ONTOLOGY_H

#include <string>
#include <string_view>
#include <vector>

#include "src/kg/store.hpp"

namespace kinet::kg {

/// Well-known predicate and class names.
namespace vocab {
inline constexpr std::string_view rdf_type = "rdf:type";
inline constexpr std::string_view rdfs_subclass_of = "rdfs:subClassOf";
inline constexpr std::string_view rdfs_domain = "rdfs:domain";
inline constexpr std::string_view rdfs_range = "rdfs:range";
inline constexpr std::string_view rdfs_class = "rdfs:Class";
inline constexpr std::string_view rdf_property = "rdf:Property";

// UCO core (subset used by the network extension).
inline constexpr std::string_view uco_event = "uco:Event";
inline constexpr std::string_view uco_means = "uco:Means";
inline constexpr std::string_view uco_vulnerability = "uco:Vulnerability";

// Network-activity extension (paper Fig. 2).
inline constexpr std::string_view net_network_event = "net:NetworkEvent";
inline constexpr std::string_view net_device = "net:Device";
inline constexpr std::string_view net_protocol = "net:Protocol";
inline constexpr std::string_view net_app_protocol = "net:ApplicationProtocol";
inline constexpr std::string_view net_port = "net:Port";
inline constexpr std::string_view net_ip_address = "net:IPAddress";
inline constexpr std::string_view net_domain_url = "net:domainURL";
inline constexpr std::string_view net_event_type = "net:EventType";
inline constexpr std::string_view net_attack_signature = "net:AttackSignature";
inline constexpr std::string_view net_service = "net:Service";
inline constexpr std::string_view net_flow_state = "net:FlowState";

inline constexpr std::string_view has_protocol = "net:hasProtocol";
inline constexpr std::string_view has_app_protocol = "net:hasAppProtocol";
inline constexpr std::string_view has_dst_port = "net:hasDstPort";
inline constexpr std::string_view has_src_ip = "net:hasSrcIP";
inline constexpr std::string_view has_dst_ip = "net:hasDstIP";
inline constexpr std::string_view min_port = "net:minPort";
inline constexpr std::string_view max_port = "net:maxPort";
inline constexpr std::string_view emitted_by = "net:emittedBy";
inline constexpr std::string_view targets_service = "net:targetsService";
inline constexpr std::string_view allowed_state = "net:allowedState";
inline constexpr std::string_view uses_service = "net:usesService";
inline constexpr std::string_view exploits = "net:exploits";
}  // namespace vocab

/// Thin authoring layer over a TripleStore.
class Ontology {
public:
    explicit Ontology(TripleStore& store) : store_(&store) {}

    /// Declares a class (idempotent).
    void declare_class(std::string_view name);
    /// Declares `child` ⊑ `parent` (both auto-declared as classes).
    void declare_subclass(std::string_view child, std::string_view parent);
    /// Declares a property with optional domain/range classes.
    void declare_property(std::string_view name, std::string_view domain = {},
                          std::string_view range = {});
    /// Asserts an instance: (individual, rdf:type, cls).
    void assert_instance(std::string_view individual, std::string_view cls);

    /// All declared classes.
    [[nodiscard]] std::vector<std::string> classes() const;
    /// Direct instances of a class (no inference; see Reasoner).
    [[nodiscard]] std::vector<std::string> instances_of(std::string_view cls) const;

    [[nodiscard]] TripleStore& store() noexcept { return *store_; }

private:
    TripleStore* store_;
};

}  // namespace kinet::kg

#endif  // KINETGAN_KG_ONTOLOGY_H
