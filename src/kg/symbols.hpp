// String interning for the knowledge graph.
//
// Every IRI/literal in the store is a SymbolId; numeric literals additionally
// carry a double value so the reasoner can evaluate range constraints
// (e.g. port intervals for attack signatures).
#ifndef KINETGAN_KG_SYMBOLS_H
#define KINETGAN_KG_SYMBOLS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace kinet::kg {

using SymbolId = std::uint32_t;

inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

class SymbolTable {
public:
    /// Interns a name; returns the existing id when already present.
    SymbolId intern(std::string_view name);

    /// Interns a numeric literal; equal values share one symbol.
    SymbolId intern_number(double value);

    /// Id of an existing name (kInvalidSymbol if absent).
    [[nodiscard]] SymbolId find(std::string_view name) const;

    [[nodiscard]] const std::string& name(SymbolId id) const;

    /// Numeric value when the symbol was created via intern_number.
    [[nodiscard]] std::optional<double> numeric_value(SymbolId id) const;

    [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, SymbolId> ids_;
    std::unordered_map<SymbolId, double> numbers_;
};

}  // namespace kinet::kg

#endif  // KINETGAN_KG_SYMBOLS_H
