#include "src/kg/store.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace kinet::kg {

bool TripleStore::add(SymbolId s, SymbolId p, SymbolId o) {
    const Triple t{s, p, o};
    if (!dedupe_.insert(t).second) {
        return false;
    }
    const std::size_t idx = triples_.size();
    triples_.push_back(t);
    by_s_[s].push_back(idx);
    by_p_[p].push_back(idx);
    by_o_[o].push_back(idx);
    return true;
}

bool TripleStore::add(std::string_view s, std::string_view p, std::string_view o) {
    return add(symbols_.intern(s), symbols_.intern(p), symbols_.intern(o));
}

bool TripleStore::add_number(std::string_view s, std::string_view p, double value) {
    return add(symbols_.intern(s), symbols_.intern(p), symbols_.intern_number(value));
}

bool TripleStore::contains(SymbolId s, SymbolId p, SymbolId o) const {
    return dedupe_.contains(Triple{s, p, o});
}

bool TripleStore::contains(std::string_view s, std::string_view p, std::string_view o) const {
    const SymbolId si = symbols_.find(s);
    const SymbolId pi = symbols_.find(p);
    const SymbolId oi = symbols_.find(o);
    if (si == kInvalidSymbol || pi == kInvalidSymbol || oi == kInvalidSymbol) {
        return false;
    }
    return contains(si, pi, oi);
}

std::vector<Triple> TripleStore::match(const TriplePattern& pattern) const {
    // Pick the most selective bound index available.
    const std::vector<std::size_t>* candidates = nullptr;
    auto consider = [&candidates](const std::unordered_map<SymbolId, std::vector<std::size_t>>& index,
                                  std::optional<SymbolId> key) {
        if (!key.has_value()) {
            return;
        }
        const auto it = index.find(*key);
        static const std::vector<std::size_t> kEmpty;
        const std::vector<std::size_t>* found = (it == index.end()) ? &kEmpty : &it->second;
        if (candidates == nullptr || found->size() < candidates->size()) {
            candidates = found;
        }
    };
    consider(by_s_, pattern.s);
    consider(by_p_, pattern.p);
    consider(by_o_, pattern.o);

    std::vector<Triple> out;
    auto matches = [&pattern](const Triple& t) {
        return (!pattern.s || *pattern.s == t.s) && (!pattern.p || *pattern.p == t.p) &&
               (!pattern.o || *pattern.o == t.o);
    };
    if (candidates == nullptr) {
        for (const Triple& t : triples_) {
            if (matches(t)) {
                out.push_back(t);
            }
        }
    } else {
        for (std::size_t idx : *candidates) {
            if (matches(triples_[idx])) {
                out.push_back(triples_[idx]);
            }
        }
    }
    return out;
}

std::vector<SymbolId> TripleStore::objects(SymbolId s, SymbolId p) const {
    std::vector<SymbolId> out;
    for (const Triple& t : match(TriplePattern{s, p, std::nullopt})) {
        out.push_back(t.o);
    }
    return out;
}

std::vector<SymbolId> TripleStore::objects(std::string_view s, std::string_view p) const {
    const SymbolId si = symbols_.find(s);
    const SymbolId pi = symbols_.find(p);
    if (si == kInvalidSymbol || pi == kInvalidSymbol) {
        return {};
    }
    return objects(si, pi);
}

std::vector<SymbolId> TripleStore::subjects(SymbolId p, SymbolId o) const {
    std::vector<SymbolId> out;
    for (const Triple& t : match(TriplePattern{std::nullopt, p, o})) {
        out.push_back(t.s);
    }
    return out;
}

std::vector<SymbolId> TripleStore::subjects(std::string_view p, std::string_view o) const {
    const SymbolId pi = symbols_.find(p);
    const SymbolId oi = symbols_.find(o);
    if (pi == kInvalidSymbol || oi == kInvalidSymbol) {
        return {};
    }
    return subjects(pi, oi);
}

std::optional<double> TripleStore::number(std::string_view s, std::string_view p) const {
    for (SymbolId o : objects(s, p)) {
        const auto v = symbols_.numeric_value(o);
        if (v.has_value()) {
            return v;
        }
    }
    return std::nullopt;
}

}  // namespace kinet::kg
