#include "src/kg/symbols.hpp"

#include <sstream>

#include "src/common/check.hpp"

namespace kinet::kg {

SymbolId SymbolTable::intern(std::string_view name) {
    const std::string key(name);
    const auto it = ids_.find(key);
    if (it != ids_.end()) {
        return it->second;
    }
    const auto id = static_cast<SymbolId>(names_.size());
    names_.push_back(key);
    ids_.emplace(key, id);
    return id;
}

SymbolId SymbolTable::intern_number(double value) {
    std::ostringstream os;
    os << "num:" << value;
    const SymbolId id = intern(os.str());
    numbers_.emplace(id, value);
    return id;
}

SymbolId SymbolTable::find(std::string_view name) const {
    const auto it = ids_.find(std::string(name));
    return (it == ids_.end()) ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::name(SymbolId id) const {
    KINET_CHECK(id < names_.size(), "SymbolTable::name: unknown id");
    return names_[id];
}

std::optional<double> SymbolTable::numeric_value(SymbolId id) const {
    const auto it = numbers_.find(id);
    if (it == numbers_.end()) {
        return std::nullopt;
    }
    return it->second;
}

}  // namespace kinet::kg
