// KiNETGAN — the paper's primary contribution (Sec. III).
//
// A conditional tabular GAN whose discriminator is split in two (Eq. 3):
//   D_M : a standard real/fake discriminator over (x ⊕ C);
//   D_KG: the Knowledge-Guided Discriminator, trained to separate
//         KG-valid attribute combinations (positives enumerated by querying
//         the Network Knowledge Graph) from the generator's attribute
//         outputs (negatives) — so "fake but also *invalid*" samples are
//         penalised separately from merely fake ones.
// The generator loss (Eq. 4) combines both discriminators plus the
// conditional copy penalty BCE(C, Ĉ) (Sec. III-A-2).  Minority attribute
// values are boosted during training by the conditional sampler
// (Sec. III-A-3) and the original distribution is restored at sampling time
// by drawing conditions from the empirical frequencies.
#ifndef KINETGAN_CORE_KINETGAN_H
#define KINETGAN_CORE_KINETGAN_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/data/sampler.hpp"
#include "src/data/split.hpp"
#include "src/data/transformer.hpp"
#include "src/gan/cond_vector.hpp"
#include "src/gan/gan_common.hpp"
#include "src/gan/synthesizer.hpp"
#include "src/kg/network_kg.hpp"
#include "src/nn/nn.hpp"

namespace kinet::core {

struct KiNetGanOptions {
    gan::GanOptions gan;
    data::TransformerOptions transformer;
    data::SamplerOptions sampler;
    /// Weight of BCE(C, Ĉ) in the generator loss.
    float cond_penalty_weight = 2.0F;
    /// Weight of the D_KG adversarial term in the generator loss.
    float kg_weight = 1.0F;
    // Ablation switches (bench_ablation exercises these).
    bool use_kg_discriminator = true;
    bool use_cond_penalty = true;
    bool use_minority_resampling = true;
};

class KiNetGan : public gan::Synthesizer {
    /// The serial random-stream work one generation batch consumes: the
    /// [z ⊕ C] input block and the activation's Gumbel matrix, drawn in
    /// exactly the historical order (conditions, then noise, then Gumbel).
    /// Shared by the push-based streaming sampler and the pull-based
    /// StreamCursor so both consume the RNG identically.
    struct SampleBatchInputs {
        nn::Matrix input;   // [z ⊕ C]
        nn::Matrix gumbel;  // pre-drawn activation noise
        std::size_t rows = 0;
    };

public:
    /// `oracle` is the compiled KG validity oracle for the table's domain;
    /// `cond_columns` are the conditional attributes (categorical columns).
    KiNetGan(kg::ValidityOracle oracle, std::vector<std::size_t> cond_columns,
             KiNetGanOptions options = {});

    /// Per-epoch training callback: invoked after every completed epoch with
    /// (epochs_done, epochs_total).  Returning false aborts the fit — the
    /// model stays unfitted and fit() throws kinet::Error.  The service
    /// layer's async job subsystem uses this for progress reporting and
    /// cooperative cancellation; epoch granularity keeps the check off the
    /// per-batch hot path.
    using FitObserver = std::function<bool(std::size_t, std::size_t)>;

    void fit(const data::Table& table) override;
    void fit(const data::Table& table, const FitObserver& observer);
    [[nodiscard]] data::Table sample(std::size_t n) override;
    [[nodiscard]] std::string name() const override { return "KiNETGAN"; }

    /// Samples from an isolated per-request random stream derived from
    /// `stream_seed` — the model's internal RNG and two calls with different
    /// seeds are all mutually independent, so concurrent service clients get
    /// deterministic, non-overlapping streams.  Runs on the inference fast
    /// path (const networks, per-call workspaces), so any number of seeded
    /// samples may run concurrently on one fitted model.
    [[nodiscard]] data::Table sample_seeded(std::size_t n, std::uint64_t stream_seed) const;

    /// sample_seeded with one conditional column pinned to a category label;
    /// the remaining conditional blocks follow the empirical distribution.
    /// Throws if the column is not one of the conditional columns or the
    /// label is unknown.
    [[nodiscard]] data::Table sample_conditional_seeded(std::size_t n, const std::string& column,
                                                        const std::string& value,
                                                        std::uint64_t stream_seed) const;

    /// Receives consecutive chunks of a streaming sample.  The Table is a
    /// reused buffer owned by the sampler — copy out what must outlive the
    /// callback.
    using SampleSink = std::function<void(const data::Table& chunk)>;

    /// Streaming sample_seeded: rows are generated in the model's training
    /// batch size, decoded through reused buffers and delivered to `sink`
    /// in chunks of exactly `chunk_rows` rows (the final chunk may be
    /// short; chunk_rows == 0 delivers each generation batch as it comes).
    /// Memory stays O(batch + chunk) regardless of n, and the concatenated
    /// chunks are bit-identical to sample_seeded(n, seed) for every
    /// chunk_rows and thread count — chunking only re-frames the stream.
    void sample_seeded_stream(std::size_t n, std::uint64_t stream_seed, std::size_t chunk_rows,
                              const SampleSink& sink) const;

    /// Streaming variant of sample_conditional_seeded (same chunking and
    /// identity guarantees).
    void sample_conditional_seeded_stream(std::size_t n, const std::string& column,
                                          const std::string& value, std::uint64_t stream_seed,
                                          std::size_t chunk_rows, const SampleSink& sink) const;

    /// A pull-based resumable streaming sample.  Each next() call generates
    /// just enough batches to fill one chunk, then suspends — no thread is
    /// held between calls, which is what lets an event-driven server park a
    /// stream whose client stopped reading.  The concatenated chunks are
    /// bit-identical to sample_seeded_stream with the same (n, seed,
    /// chunk_rows): the cursor replays the exact RNG draw order, serially.
    /// The cursor borrows the model — keep the KiNetGan alive — and a single
    /// cursor must not be advanced concurrently, but independent cursors
    /// share no mutable state and may run in parallel on one fitted model.
    class StreamCursor {
    public:
        /// Returns the next chunk (exactly chunk_rows rows until the final,
        /// possibly short, chunk) or nullptr once exhausted.  The Table is a
        /// reused internal buffer, valid until the next call.
        [[nodiscard]] const data::Table* next();

        /// Rows not yet returned by next().
        [[nodiscard]] std::size_t rows_left() const noexcept {
            return remaining_ + (decoded_.rows() - decoded_pos_) + pending_.rows();
        }

    private:
        friend class KiNetGan;
        StreamCursor(const KiNetGan& model, std::size_t n, std::uint64_t stream_seed,
                     std::size_t chunk_rows,
                     std::optional<std::pair<std::size_t, std::size_t>> pin);

        const KiNetGan* model_;
        std::optional<std::pair<std::size_t, std::size_t>> pin_;
        std::size_t chunk_rows_;
        std::size_t remaining_;  // rows not yet generated
        Rng rng_;
        // Reused per-cursor workspaces (the const model never mutates).
        nn::InferenceContext ctx_;
        nn::Matrix output_;
        nn::Matrix raw_;
        data::Table decoded_;        // last generation batch, decoded
        std::size_t decoded_pos_ = 0;  // rows of decoded_ already chunked
        data::Table pending_;        // chunk under assembly / last returned
        std::vector<data::CondDraw> draws_;
        SampleBatchInputs batch_;
    };

    /// Opens a StreamCursor over this model; empty `cond_column` means an
    /// unconditional stream, otherwise the column is pinned to `cond_value`
    /// (same resolution and errors as sample_conditional_seeded).
    /// chunk_rows must be >= 1.
    [[nodiscard]] std::unique_ptr<StreamCursor> open_sample_cursor(
        std::size_t n, std::uint64_t stream_seed, std::size_t chunk_rows,
        const std::string& cond_column = {}, const std::string& cond_value = {}) const;

    /// Serializes the full fitted state (transformer statistics, GMM
    /// parameters, network weights, KG oracle, sampler frequencies and the
    /// live RNG stream).  A load()ed model is bit-identical in behaviour:
    /// the next sample() matches what this instance would have produced.
    void save(bytes::Writer& out);
    [[nodiscard]] static std::unique_ptr<KiNetGan> load(bytes::Reader& in);

    [[nodiscard]] const KiNetGanOptions& options() const noexcept { return options_; }
    [[nodiscard]] const std::vector<data::ColumnMeta>& schema() const noexcept { return schema_; }
    [[nodiscard]] bool is_fitted() const noexcept { return fitted_; }

    /// Fraction of rows whose oracle attributes form a KG-valid combination.
    [[nodiscard]] double kg_validity_rate(const data::Table& table) const;

    /// Number of rows whose oracle attributes form a KG-valid combination —
    /// the accumulable form the streaming VALIDATE path sums per chunk.
    [[nodiscard]] std::size_t kg_valid_count(const data::Table& table) const;

    /// Sigmoid(D_M) per row — the white-box membership-inference surface.
    [[nodiscard]] std::vector<double> discriminator_scores(const data::Table& table);

    /// Mean conditional adherence over the last training epoch.
    [[nodiscard]] double last_cond_adherence() const noexcept { return last_adherence_; }

    [[nodiscard]] const data::TableTransformer& transformer() const noexcept {
        return transformer_;
    }

private:
    /// Compiles the oracle-attribute spans, positive one-hots and completion
    /// indexes from schema_/oracle_/transformer_ (shared by fit and load).
    void init_kg_state();
    /// Builds generator/discriminator networks for the current widths,
    /// drawing initial weights from rng_ (overwritten on load).
    void build_networks();
    /// Column index by name in schema_; throws if absent.
    [[nodiscard]] std::size_t column_index_in_schema(const std::string& name) const;
    /// Resolves a (column name, category label) conditional pin to
    /// (position in cond_columns_, value id); throws on unknown column/label.
    [[nodiscard]] std::pair<std::size_t, std::size_t> resolve_conditional_pin(
        const std::string& column, const std::string& value) const;
    /// Draws one generation batch's random inputs (conditions → noise →
    /// Gumbel, the pinned RNG order every sampling path must follow);
    /// `draws` is a reusable scratch vector.
    void produce_sample_batch(std::size_t b, Rng& rng,
                              const std::optional<std::pair<std::size_t, std::size_t>>& pin,
                              std::vector<data::CondDraw>& draws, SampleBatchInputs& out) const;
    /// Shared sampling loop on the inference fast path; `pin` optionally
    /// fixes one conditional block to (position in cond_columns_, value id).
    /// Const and thread-safe: all mutable state lives in per-call
    /// workspaces or the caller's Rng, so concurrent streams never touch.
    void sample_stream_impl(std::size_t n, Rng& rng,
                            const std::optional<std::pair<std::size_t, std::size_t>>& pin,
                            std::size_t chunk_rows, const SampleSink& sink) const;
    /// sample_stream_impl collected into one Table.
    [[nodiscard]] data::Table sample_collect(
        std::size_t n, Rng& rng,
        const std::optional<std::pair<std::size_t, std::size_t>>& pin) const;

    [[nodiscard]] nn::Matrix extract_kg_attrs(const nn::Matrix& encoded) const;
    void scatter_kg_grad(const nn::Matrix& grad_attrs, nn::Matrix& grad_full) const;
    /// KG-valid completions of each draw's condition, one-hot encoded —
    /// D_KG's positives (Sec. III-B: "all valid sets of attributes for the
    /// conditional vector C queried from the knowledge graph").
    [[nodiscard]] nn::Matrix kg_positive_batch(const std::vector<data::CondDraw>& draws);
    /// Hard negatives for the same conditions: oracle-rejected tuples and
    /// valid tuples belonging to a *different* condition.
    [[nodiscard]] nn::Matrix kg_negative_batch(const std::vector<data::CondDraw>& draws);
    /// Label-smooths every one-hot span in a D_KG batch.
    void smooth_spans(nn::Matrix& batch);
    /// Condition key of a draw over the conditioned oracle attributes.
    [[nodiscard]] std::uint64_t cond_key_of_draw(const data::CondDraw& draw) const;
    /// True if row's decoded oracle attrs are valid AND agree with the draw's
    /// conditioned values.
    [[nodiscard]] bool row_valid_and_consistent(const nn::Matrix& encoded, std::size_t row,
                                                const data::CondDraw& draw) const;
    [[nodiscard]] std::vector<std::size_t> decode_kg_ids(const nn::Matrix& encoded,
                                                         std::size_t row) const;
    /// Decodes the oracle-attribute value ids of one encoded row (argmax per
    /// span) and checks the compiled validity set.
    [[nodiscard]] bool encoded_row_is_valid(const nn::Matrix& encoded, std::size_t row) const;
    [[nodiscard]] std::uint64_t id_key(const std::vector<std::size_t>& ids) const;

    kg::ValidityOracle oracle_;
    std::vector<std::size_t> cond_columns_;
    KiNetGanOptions options_;
    Rng rng_;

    std::vector<data::ColumnMeta> schema_;
    data::TableTransformer transformer_;
    std::unique_ptr<data::ConditionalSampler> sampler_;
    std::unique_ptr<gan::CondVectorBuilder> cond_builder_;
    std::vector<data::OutputSpan> cond_spans_;

    // Oracle attribute -> table column and output span.
    std::vector<std::size_t> kg_columns_;
    std::vector<data::OutputSpan> kg_spans_;
    std::size_t kg_input_width_ = 0;
    nn::Matrix kg_positives_;  // one-hot encodings of all valid tuples
    std::unordered_set<std::uint64_t> kg_valid_keys_;  // mixed-radix id keys
    /// Position of each oracle attribute within cond_columns_ (npos if the
    /// attribute is not conditioned).
    std::vector<std::size_t> kg_attr_cond_pos_;
    /// cond-key -> indices into kg_positives_ (valid completions of that
    /// condition).
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> kg_completions_;
    std::vector<std::vector<std::size_t>> kg_tuple_ids_;  // ids per valid tuple

    // Generator = trunk (ends in Linear logits) + span-wise output activation,
    // kept separate so the conditional penalty can act on the logits.
    std::unique_ptr<nn::Sequential> g_trunk_;
    std::unique_ptr<gan::OutputActivation> g_act_;
    std::unique_ptr<nn::Sequential> d_main_;
    std::unique_ptr<nn::Sequential> d_kg_;

    double last_adherence_ = 0.0;
    bool fitted_ = false;
};

}  // namespace kinet::core

#endif  // KINETGAN_CORE_KINETGAN_H
