#include "src/core/kinetgan.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stopwatch.hpp"
#include "src/tensor/ops.hpp"

namespace kinet::core {

using nn::Matrix;

namespace {

// Row grain for the per-row batch-step loops (oracle labelling, gradient
// masking, attribute gather/scatter): each row is a few hundred ops, so
// chunks of 32 keep the fork worthwhile.  Every loop writes only its own
// rows and draws no randomness, so the partition cannot change results.
constexpr std::size_t kFitRowGrain = 32;

}  // namespace

KiNetGan::KiNetGan(kg::ValidityOracle oracle, std::vector<std::size_t> cond_columns,
                   KiNetGanOptions options)
    : oracle_(std::move(oracle)),
      cond_columns_(std::move(cond_columns)),
      options_(options),
      rng_(options.gan.seed) {
    KINET_CHECK(!cond_columns_.empty(), "KiNetGan: need conditional columns");
}

void KiNetGan::fit(const data::Table& table) { fit(table, FitObserver{}); }

void KiNetGan::fit(const data::Table& table, const FitObserver& observer) {
    Stopwatch watch;
    // A re-fit overwrites all trained state below; drop the fitted flag
    // first so an aborted (cancelled/thrown) fit leaves the model unfitted
    // rather than half-overwritten-but-sampleable.
    fitted_ = false;
    schema_ = table.schema();

    // --- encodings -----------------------------------------------------
    transformer_.fit(table, options_.transformer, rng_);
    const Matrix encoded = transformer_.transform(table, rng_);

    sampler_ = std::make_unique<data::ConditionalSampler>(table, cond_columns_, options_.sampler);
    cond_builder_ = std::make_unique<gan::CondVectorBuilder>(schema_, cond_columns_);
    cond_spans_ = gan::category_spans_for_blocks(transformer_, *cond_builder_);

    // --- knowledge-guided discriminator inputs --------------------------
    init_kg_state();

    // --- networks --------------------------------------------------------
    build_networks();

    const auto& g = options_.gan;
    nn::Adam g_opt(g_trunk_->parameters(), g.lr_generator, g.adam_beta1, g.adam_beta2);
    nn::Adam d_opt(d_main_->parameters(), g.lr_discriminator, g.adam_beta1, g.adam_beta2);
    std::unique_ptr<nn::Adam> dkg_opt;
    if (d_kg_ != nullptr) {
        dkg_opt = std::make_unique<nn::Adam>(d_kg_->parameters(), g.lr_discriminator, g.adam_beta1,
                                             g.adam_beta2);
    }

    const std::size_t batch = std::min<std::size_t>(g.batch_size, table.rows());
    const std::size_t steps = std::max<std::size_t>(1, table.rows() / batch);

    report_ = gan::FitReport{};

    for (std::size_t epoch = 0; epoch < g.epochs; ++epoch) {
        double g_loss_acc = 0.0;
        double d_loss_acc = 0.0;
        double adherence_acc = 0.0;

        for (std::size_t step = 0; step < steps; ++step) {
            // ---- draw conditions + matching real rows ----
            std::vector<data::CondDraw> draws;
            draws.reserve(batch);
            std::vector<std::size_t> real_rows;
            real_rows.reserve(batch);
            for (std::size_t b = 0; b < batch; ++b) {
                draws.push_back(options_.use_minority_resampling ? sampler_->draw(rng_)
                                                                 : sampler_->draw_empirical(rng_));
                real_rows.push_back(draws.back().row);
            }
            const Matrix cond = cond_builder_->encode(draws);
            const Matrix real = encoded.gather_rows(real_rows);

            // ---- D_M step ----
            d_main_->zero_grad();
            Matrix z = gan::sample_noise(batch, g.noise_dim, rng_);
            Matrix fake = g_act_->forward(g_trunk_->forward(Matrix::hcat(z, cond), true), true);

            Matrix d_real_logits = d_main_->forward(Matrix::hcat(real, cond), true);
            auto real_loss = nn::bce_with_logits(d_real_logits, gan::constant_targets(batch, 1.0F));
            (void)d_main_->backward(real_loss.grad);

            Matrix d_fake_logits = d_main_->forward(Matrix::hcat(fake, cond), true);
            auto fake_loss = nn::bce_with_logits(d_fake_logits, gan::constant_targets(batch, 0.0F));
            (void)d_main_->backward(fake_loss.grad);

            nn::clip_grad_norm(d_main_->parameters(), g.grad_clip);
            d_opt.step();
            d_loss_acc += real_loss.value + fake_loss.value;

            // ---- D_KG step ----
            // A *conditional* validity discriminator over [attrs ⊕ C]
            // (Sec. III-B: its positives are "all valid sets of attributes
            // for the conditional vector C queried from the knowledge
            // graph").  Negatives pair the same C with oracle-rejected
            // tuples and with valid-but-mismatched completions; generator
            // outputs are labelled by the oracle, not blanket-"fake".
            if (d_kg_ != nullptr) {
                d_kg_->zero_grad();
                Matrix kg_pos = Matrix::hcat(kg_positive_batch(draws), cond);
                Matrix pos_logits = d_kg_->forward(kg_pos, true);
                auto pos_loss =
                    nn::bce_with_logits(pos_logits, gan::constant_targets(batch, 1.0F));
                (void)d_kg_->backward(pos_loss.grad);

                Matrix kg_neg = Matrix::hcat(kg_negative_batch(draws), cond);
                Matrix neg_logits = d_kg_->forward(kg_neg, true);
                auto neg_loss =
                    nn::bce_with_logits(neg_logits, gan::constant_targets(batch, 0.0F));
                (void)d_kg_->backward(neg_loss.grad);

                Matrix fake_attrs = extract_kg_attrs(fake);
                Matrix fake_targets(batch, 1);
                // Oracle labelling is per-row independent (argmax decode +
                // hash lookups, no RNG) — row-partitioned like the kernels.
                parallel_for(batch, kFitRowGrain, [&](std::size_t b0, std::size_t b1) {
                    for (std::size_t b = b0; b < b1; ++b) {
                        fake_targets(b, 0) =
                            row_valid_and_consistent(fake, b, draws[b]) ? 1.0F : 0.0F;
                    }
                });
                Matrix fk_logits = d_kg_->forward(Matrix::hcat(fake_attrs, cond), true);
                auto fk_loss = nn::bce_with_logits(fk_logits, fake_targets);
                (void)d_kg_->backward(fk_loss.grad);

                nn::clip_grad_norm(d_kg_->parameters(), g.grad_clip);
                dkg_opt->step();
                d_loss_acc += pos_loss.value + neg_loss.value + fk_loss.value;
            }

            // ---- G step (Eq. 4 with non-saturating adversarial terms) ----
            g_trunk_->zero_grad();
            z = gan::sample_noise(batch, g.noise_dim, rng_);
            Matrix fake_logits = g_trunk_->forward(Matrix::hcat(z, cond), true);
            fake = g_act_->forward(fake_logits, true);

            Matrix grad_output(batch, fake.cols());  // w.r.t. activated output
            double g_loss = 0.0;

            // Combined discriminator D_C = D_KG + D_M (Eq. 3), realised as a
            // sum of per-discriminator losses: summing raw logits saturates
            // the joint sigmoid early in training (D_KG is strongly negative
            // on invalid fakes), which blows up the shared gradient and —
            // after clipping — drowns the conditional term.
            d_main_->zero_grad();
            Matrix dm_logits = d_main_->forward(Matrix::hcat(fake, cond), true);
            auto adv = nn::bce_with_logits(dm_logits, gan::constant_targets(batch, 1.0F));
            Matrix grad_dm_in = d_main_->backward(adv.grad);
            d_main_->zero_grad();  // discard generator-pass gradients
            grad_output += grad_dm_in.slice_cols(0, fake.cols());
            g_loss += adv.value;

            // D_KG contribution: (a) through the activation like any other
            // adversarial gradient, and (b) a straight-through corrective
            // term on the logits — the Gumbel-softmax Jacobian vanishes on
            // near-one-hot spans, so without (b) the validity signal never
            // reaches the trunk.  The correction is masked twice: only rows
            // whose decoded attributes are invalid, and only spans that are
            // NOT conditioned (the conditional copy already owns those), so
            // the validity pull can never fight the condition.
            Matrix kg_grad_logits(batch, fake.cols());
            if (d_kg_ != nullptr) {
                d_kg_->zero_grad();
                Matrix fake_attrs = extract_kg_attrs(fake);
                Matrix dkg_logits = d_kg_->forward(Matrix::hcat(fake_attrs, cond), true);
                auto kg_adv = nn::bce_with_logits(dkg_logits, gan::constant_targets(batch, 1.0F));
                g_loss += options_.kg_weight * kg_adv.value;
                Matrix kg_grad = kg_adv.grad;
                kg_grad *= options_.kg_weight;
                Matrix grad_in = d_kg_->backward(kg_grad);
                d_kg_->zero_grad();
                Matrix grad_attrs = grad_in.slice_cols(0, kg_input_width_);

                // Conditioned attribute spans belong to the conditional copy
                // penalty — zero them so the validity pull can never fight
                // the condition; D_KG adjusts only the free attributes.
                parallel_for(batch, kFitRowGrain, [&](std::size_t b0, std::size_t b1) {
                    std::size_t off = 0;
                    for (std::size_t a = 0; a < kg_columns_.size(); ++a) {
                        if (kg_attr_cond_pos_[a] != static_cast<std::size_t>(-1)) {
                            for (std::size_t b = b0; b < b1; ++b) {
                                for (std::size_t j = 0; j < kg_spans_[a].width; ++j) {
                                    grad_attrs(b, off + j) = 0.0F;
                                }
                            }
                        }
                        off += kg_spans_[a].width;
                    }
                });
                scatter_kg_grad(grad_attrs, grad_output);

                // Straight-through correction for rows that decode to an
                // invalid or condition-inconsistent tuple — the
                // Gumbel-softmax Jacobian vanishes on crisp spans and would
                // otherwise swallow the signal.
                Matrix st_grad = grad_attrs;
                parallel_for(batch, kFitRowGrain, [&](std::size_t b0, std::size_t b1) {
                    for (std::size_t b = b0; b < b1; ++b) {
                        if (row_valid_and_consistent(fake, b, draws[b])) {
                            for (std::size_t j = 0; j < st_grad.cols(); ++j) {
                                st_grad(b, j) = 0.0F;
                            }
                        }
                    }
                });
                scatter_kg_grad(st_grad, kg_grad_logits);
            }

            // Pull the adversarial gradients back through the activation,
            // then add the straight-through KG term and the conditional copy
            // penalty on the raw logits (BCE(C, Ĉ) in its training-stable
            // softmax-CE form).
            Matrix grad_logits = g_act_->backward(grad_output);
            grad_logits += kg_grad_logits;
            if (options_.use_cond_penalty) {
                auto pen = gan::cond_ce_on_logits(fake_logits, cond, *cond_builder_, cond_spans_);
                pen.grad *= options_.cond_penalty_weight;
                grad_logits += pen.grad;
                g_loss += options_.cond_penalty_weight * pen.value;
            }

            (void)g_trunk_->backward(grad_logits);
            nn::clip_grad_norm(g_trunk_->parameters(), g.grad_clip);
            g_opt.step();
            g_loss_acc += g_loss;

            adherence_acc += gan::cond_adherence_rate(fake, cond, *cond_builder_, cond_spans_);
        }

        report_.generator_loss.push_back(g_loss_acc / static_cast<double>(steps));
        report_.discriminator_loss.push_back(d_loss_acc / static_cast<double>(steps));
        last_adherence_ = adherence_acc / static_cast<double>(steps);

        if (observer && !observer(epoch + 1, g.epochs)) {
            throw Error("KiNetGan::fit: cancelled after epoch " + std::to_string(epoch + 1) +
                        "/" + std::to_string(g.epochs));
        }
    }

    report_.seconds = watch.seconds();
    fitted_ = true;
}

void KiNetGan::init_kg_state() {
    kg_columns_.clear();
    kg_spans_.clear();
    kg_input_width_ = 0;
    if (!options_.use_kg_discriminator) {
        return;
    }
    for (const auto& attr : oracle_.attribute_names()) {
        const std::size_t col = column_index_in_schema(attr);
        KINET_CHECK(schema_[col].is_categorical(),
                    "KiNetGan: oracle attribute " + attr + " must be categorical");
        kg_columns_.push_back(col);
        kg_spans_.push_back(transformer_.category_span(col));
        kg_input_width_ += kg_spans_.back().width;
    }
    const auto& tuples = oracle_.valid_tuples();
    KINET_CHECK(!tuples.empty(), "KiNetGan: oracle enumerates no valid tuples");

    kg_attr_cond_pos_.assign(kg_columns_.size(), static_cast<std::size_t>(-1));
    for (std::size_t a = 0; a < kg_columns_.size(); ++a) {
        for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
            if (cond_columns_[p] == kg_columns_[a]) {
                kg_attr_cond_pos_[a] = p;
                break;
            }
        }
    }

    kg_positives_.resize(tuples.size(), kg_input_width_);
    kg_valid_keys_.clear();
    kg_completions_.clear();
    kg_tuple_ids_.assign(tuples.size(), {});
    for (std::size_t t = 0; t < tuples.size(); ++t) {
        std::size_t off = 0;
        std::vector<std::size_t> ids(kg_columns_.size());
        for (std::size_t a = 0; a < kg_columns_.size(); ++a) {
            const auto id = schema_[kg_columns_[a]].category_id(tuples[t][a]);
            ids[a] = id;
            kg_positives_(t, off + id) = 1.0F;
            off += kg_spans_[a].width;
        }
        kg_valid_keys_.insert(id_key(ids));
        // Index this tuple as a completion of its condition key.
        std::uint64_t ckey = 0;
        for (std::size_t a = 0; a < kg_columns_.size(); ++a) {
            if (kg_attr_cond_pos_[a] != static_cast<std::size_t>(-1)) {
                ckey = ckey * (kg_spans_[a].width + 1) + ids[a] + 1;
            }
        }
        kg_completions_[ckey].push_back(t);
        kg_tuple_ids_[t] = std::move(ids);
    }
}

void KiNetGan::build_networks() {
    const auto& g = options_.gan;
    const std::size_t data_width = transformer_.output_width();
    const std::size_t cond_width = cond_builder_->width();

    g_trunk_ = gan::make_generator_trunk(g.noise_dim + cond_width, g.hidden_dim,
                                         g.hidden_layers, data_width, rng_);
    g_act_ = std::make_unique<gan::OutputActivation>(transformer_.spans(), g.gumbel_tau, rng_);
    d_main_ = gan::make_discriminator(data_width + cond_width, g.hidden_dim, g.hidden_layers,
                                      g.dropout, rng_);
    if (options_.use_kg_discriminator) {
        // Conditional validity discriminator over [attrs ⊕ C].
        d_kg_ = gan::make_discriminator(kg_input_width_ + cond_width, g.hidden_dim / 2, 1, 0.0F,
                                        rng_);
    }
}

std::size_t KiNetGan::column_index_in_schema(const std::string& name) const {
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (schema_[c].name == name) {
            return c;
        }
    }
    throw Error("KiNetGan: column " + name + " not in schema");
}

Matrix KiNetGan::extract_kg_attrs(const Matrix& encoded) const {
    Matrix out(encoded.rows(), kg_input_width_);
    parallel_for(encoded.rows(), kFitRowGrain, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            std::size_t off = 0;
            for (const auto& span : kg_spans_) {
                for (std::size_t j = 0; j < span.width; ++j) {
                    out(r, off + j) = encoded(r, span.offset + j);
                }
                off += span.width;
            }
        }
    });
    return out;
}

void KiNetGan::scatter_kg_grad(const Matrix& grad_attrs, Matrix& grad_full) const {
    parallel_for(grad_full.rows(), kFitRowGrain, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            std::size_t off = 0;
            for (const auto& span : kg_spans_) {
                for (std::size_t j = 0; j < span.width; ++j) {
                    grad_full(r, span.offset + j) += grad_attrs(r, off + j);
                }
                off += span.width;
            }
        }
    });
}

std::uint64_t KiNetGan::cond_key_of_draw(const data::CondDraw& draw) const {
    std::uint64_t ckey = 0;
    for (std::size_t a = 0; a < kg_columns_.size(); ++a) {
        if (kg_attr_cond_pos_[a] != static_cast<std::size_t>(-1)) {
            ckey = ckey * (kg_spans_[a].width + 1) + draw.values[kg_attr_cond_pos_[a]] + 1;
        }
    }
    return ckey;
}

Matrix KiNetGan::kg_positive_batch(const std::vector<data::CondDraw>& draws) {
    std::vector<std::size_t> pick(draws.size());
    for (std::size_t b = 0; b < draws.size(); ++b) {
        const auto it = kg_completions_.find(cond_key_of_draw(draws[b]));
        // Every draw comes from a real row; if that row is KG-valid its
        // condition has at least one completion.  Fall back to a random
        // tuple for KG-invalid conditions (noisy real data).
        if (it != kg_completions_.end()) {
            const auto& options = it->second;
            pick[b] = options[static_cast<std::size_t>(
                rng_.randint(0, static_cast<std::int64_t>(options.size()) - 1))];
        } else {
            pick[b] = static_cast<std::size_t>(
                rng_.randint(0, static_cast<std::int64_t>(kg_positives_.rows()) - 1));
        }
    }
    Matrix batch = kg_positives_.gather_rows(pick);
    smooth_spans(batch);
    return batch;
}

void KiNetGan::smooth_spans(Matrix& batch) {
    // Label-smooth the crisp one-hots so D_KG cannot take the degenerate
    // "crisp vs. soft" shortcut against the generator's Gumbel outputs —
    // it has to learn which *combinations* are valid.
    std::size_t off = 0;
    for (const auto& span : kg_spans_) {
        for (std::size_t r = 0; r < batch.rows(); ++r) {
            const auto s = static_cast<float>(rng_.uniform(0.0, 0.15));
            const float uniform = s / static_cast<float>(span.width);
            for (std::size_t j = 0; j < span.width; ++j) {
                batch(r, off + j) = batch(r, off + j) * (1.0F - s) + uniform;
            }
        }
        off += span.width;
    }
}

std::uint64_t KiNetGan::id_key(const std::vector<std::size_t>& ids) const {
    // Mixed-radix packing over the attribute cardinalities.
    std::uint64_t key = 0;
    for (std::size_t a = 0; a < ids.size(); ++a) {
        key = key * (kg_spans_[a].width + 1) + ids[a] + 1;
    }
    return key;
}

Matrix KiNetGan::kg_negative_batch(const std::vector<data::CondDraw>& draws) {
    Matrix batch(draws.size(), kg_input_width_);
    std::vector<std::size_t> ids(kg_spans_.size());
    for (std::size_t r = 0; r < draws.size(); ++r) {
        const std::uint64_t ckey = cond_key_of_draw(draws[r]);
        if (rng_.bernoulli(0.5)) {
            // Oracle-rejected random tuple (rejection sampling: the valid set
            // is tiny relative to the cross product).
            for (int attempt = 0; attempt < 64; ++attempt) {
                for (std::size_t a = 0; a < kg_spans_.size(); ++a) {
                    ids[a] = static_cast<std::size_t>(
                        rng_.randint(0, static_cast<std::int64_t>(kg_spans_[a].width) - 1));
                }
                if (!kg_valid_keys_.contains(id_key(ids))) {
                    break;
                }
            }
        } else {
            // Valid tuple of a *different* condition — the hard negative
            // that forces D_KG to read C.
            for (int attempt = 0; attempt < 64; ++attempt) {
                const auto t = static_cast<std::size_t>(
                    rng_.randint(0, static_cast<std::int64_t>(kg_tuple_ids_.size()) - 1));
                ids = kg_tuple_ids_[t];
                std::uint64_t tkey = 0;
                for (std::size_t a = 0; a < kg_columns_.size(); ++a) {
                    if (kg_attr_cond_pos_[a] != static_cast<std::size_t>(-1)) {
                        tkey = tkey * (kg_spans_[a].width + 1) + ids[a] + 1;
                    }
                }
                if (tkey != ckey) {
                    break;
                }
            }
        }
        std::size_t off = 0;
        for (std::size_t a = 0; a < kg_spans_.size(); ++a) {
            batch(r, off + ids[a]) = 1.0F;
            off += kg_spans_[a].width;
        }
    }
    smooth_spans(batch);
    return batch;
}

std::vector<std::size_t> KiNetGan::decode_kg_ids(const Matrix& encoded, std::size_t row) const {
    std::vector<std::size_t> ids(kg_spans_.size());
    for (std::size_t a = 0; a < kg_spans_.size(); ++a) {
        const auto& span = kg_spans_[a];
        std::size_t best = 0;
        for (std::size_t j = 1; j < span.width; ++j) {
            if (encoded(row, span.offset + j) > encoded(row, span.offset + best)) {
                best = j;
            }
        }
        ids[a] = best;
    }
    return ids;
}

bool KiNetGan::encoded_row_is_valid(const Matrix& encoded, std::size_t row) const {
    return kg_valid_keys_.contains(id_key(decode_kg_ids(encoded, row)));
}

bool KiNetGan::row_valid_and_consistent(const Matrix& encoded, std::size_t row,
                                        const data::CondDraw& draw) const {
    const auto ids = decode_kg_ids(encoded, row);
    if (!kg_valid_keys_.contains(id_key(ids))) {
        return false;
    }
    for (std::size_t a = 0; a < kg_columns_.size(); ++a) {
        if (kg_attr_cond_pos_[a] != static_cast<std::size_t>(-1) &&
            ids[a] != draw.values[kg_attr_cond_pos_[a]]) {
            return false;
        }
    }
    return true;
}

namespace {

/// Decorrelates request-stream seeds from the training seed space.
constexpr std::uint64_t kStreamSeedSalt = 0x9e3779b97f4a7c15ULL;

}  // namespace

void KiNetGan::produce_sample_batch(
    std::size_t b, Rng& rng, const std::optional<std::pair<std::size_t, std::size_t>>& pin,
    std::vector<data::CondDraw>& draws, SampleBatchInputs& out) const {
    const std::size_t noise_dim = options_.gan.noise_dim;
    const std::size_t cond_width = cond_builder_->width();
    draws.clear();
    draws.reserve(b);
    for (std::size_t i = 0; i < b; ++i) {
        // Empirical conditions restore the original data distribution.
        draws.push_back(sampler_->draw_empirical(rng));
        if (pin.has_value()) {
            draws.back().values[pin->first] = pin->second;
        }
    }
    out.input.resize_for_overwrite(b, noise_dim + cond_width);
    for (std::size_t r = 0; r < b; ++r) {
        auto row = out.input.row(r);
        for (std::size_t c = 0; c < noise_dim; ++c) {
            row[c] = static_cast<float>(rng.normal());
        }
    }
    // One-hot condition blocks written straight into the input — what
    // CondVectorBuilder::encode + hcat produced, minus the temporaries.
    for (std::size_t r = 0; r < b; ++r) {
        auto row = out.input.row(r);
        std::fill(row.begin() + static_cast<std::ptrdiff_t>(noise_dim), row.end(), 0.0F);
        const auto& values = draws[r].values;
        for (std::size_t p = 0; p < values.size(); ++p) {
            KINET_CHECK(values[p] < cond_builder_->block_width(p),
                        "sample: condition value out of range");
            row[noise_dim + cond_builder_->block_offset(p) + values[p]] = 1.0F;
        }
    }
    g_act_->draw_noise(b, transformer_.output_width(), rng, out.gumbel);
    out.rows = b;
}

void KiNetGan::sample_stream_impl(std::size_t n, Rng& rng,
                                  const std::optional<std::pair<std::size_t, std::size_t>>& pin,
                                  std::size_t chunk_rows, const SampleSink& sink) const {
    KINET_CHECK(fitted_, "KiNetGan::sample before fit");
    KINET_CHECK(sink != nullptr, "KiNetGan::sample_stream: null sink");

    const std::size_t batch = options_.gan.batch_size;

    // Everything mutable lives in this call frame — per-request context,
    // activation/noise/decode buffers, chunk assembly — so the const model
    // serves any number of concurrent streams, and every buffer is reused
    // across generation batches (allocation-free once warm).  Memory is
    // O(batch + chunk) however large n is.
    nn::InferenceContext ctx;
    Matrix output;  // trunk logits, activated in place
    Matrix raw;     // decoded numeric rows
    data::Table decoded(schema_);
    data::Table pending(schema_);
    std::vector<data::CondDraw> draws;

    // Batch inputs are produced one batch ahead of the compute that
    // consumes them, so the (inherently serial) RNG hides behind the
    // parallel GEMMs on multi-core hosts.
    SampleBatchInputs cur;
    SampleBatchInputs next;

    const auto produce = [&](std::size_t b, SampleBatchInputs& out) {
        produce_sample_batch(b, rng, pin, draws, out);
    };

    // Pipelining draws batch k+1 on a pool worker while batch k computes —
    // but waiting on a submitted task from a pool worker is the deadlock
    // the submit() contract forbids (framed SAMPLE handlers *are*
    // submitted tasks), and a single-lane pool runs the task inline
    // anyway, so those callers produce inline instead.  Either way the
    // draw order is identical: the producer is the sole rng user and
    // batches are produced strictly in order.
    const bool pipeline =
        ThreadPool::global().size() > 1 && !ThreadPool::global().on_worker_thread();

    // Generation batches are always the training batch size and the random
    // stream is consumed in the exact order of the historical sampling
    // loop, so the output is bit-identical for every chunk_rows (chunking
    // only re-frames rows), every thread count (the kernels' determinism
    // contract), and with or without the producer running ahead.
    std::size_t remaining = n;
    if (remaining > 0) {
        produce(std::min(batch, remaining), cur);
    }
    while (remaining > 0) {
        const std::size_t b = cur.rows;
        const std::size_t next_b = std::min(batch, remaining - b);
        std::future<void> ahead;
        if (next_b > 0 && pipeline) {
            // Draw batch k+1's inputs while batch k computes.  The task is
            // shared with the closure for the same reason as the server's
            // request tasks: get() can unblock while the worker is still
            // returning from operator().
            auto task = std::make_shared<std::packaged_task<void()>>(
                [&produce, next_b, &next] { produce(next_b, next); });
            ahead = task->get_future();
            ThreadPool::global().submit([task] { (*task)(); });
        }

        try {
            g_trunk_->forward_inference(cur.input, output, ctx);
            g_act_->apply_spans(output, cur.gumbel);
            transformer_.inverse_into(output, raw, decoded);

            if (chunk_rows == 0) {
                sink(decoded);
            } else {
                std::size_t pos = 0;
                while (pos < decoded.rows()) {
                    const std::size_t take =
                        std::min(chunk_rows - pending.rows(), decoded.rows() - pos);
                    pending.append_row_range(decoded, pos, pos + take);
                    pos += take;
                    if (pending.rows() == chunk_rows) {
                        sink(pending);
                        pending.clear_rows();
                    }
                }
            }
        } catch (...) {
            // The producer references this frame; it must finish before the
            // exception unwinds it.
            if (ahead.valid()) {
                ahead.wait();
            }
            throw;
        }
        remaining -= b;
        if (ahead.valid()) {
            ahead.get();
            std::swap(cur, next);
        } else if (remaining > 0) {
            produce(std::min(batch, remaining), cur);
        }
    }
    if (pending.rows() > 0) {
        sink(pending);
        pending.clear_rows();
    }
}

data::Table KiNetGan::sample_collect(
    std::size_t n, Rng& rng, const std::optional<std::pair<std::size_t, std::size_t>>& pin) const {
    data::Table out(schema_);
    sample_stream_impl(n, rng, pin, 0, [&out](const data::Table& chunk) {
        out.append_rows(chunk);
    });
    return out;
}

data::Table KiNetGan::sample(std::size_t n) { return sample_collect(n, rng_, std::nullopt); }

data::Table KiNetGan::sample_seeded(std::size_t n, std::uint64_t stream_seed) const {
    Rng rng(stream_seed ^ kStreamSeedSalt);
    return sample_collect(n, rng, std::nullopt);
}

void KiNetGan::sample_seeded_stream(std::size_t n, std::uint64_t stream_seed,
                                    std::size_t chunk_rows, const SampleSink& sink) const {
    Rng rng(stream_seed ^ kStreamSeedSalt);
    sample_stream_impl(n, rng, std::nullopt, chunk_rows, sink);
}

std::pair<std::size_t, std::size_t> KiNetGan::resolve_conditional_pin(
    const std::string& column, const std::string& value) const {
    const std::size_t col = column_index_in_schema(column);
    KINET_CHECK(schema_[col].is_categorical(),
                "sample_conditional: column " + column + " is not categorical");
    std::size_t pos = cond_columns_.size();
    for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
        if (cond_columns_[p] == col) {
            pos = p;
            break;
        }
    }
    KINET_CHECK(pos < cond_columns_.size(),
                "sample_conditional: column " + column + " is not a conditional column");
    return {pos, schema_[col].category_id(value)};
}

data::Table KiNetGan::sample_conditional_seeded(std::size_t n, const std::string& column,
                                                const std::string& value,
                                                std::uint64_t stream_seed) const {
    const auto pin = resolve_conditional_pin(column, value);
    Rng rng(stream_seed ^ kStreamSeedSalt);
    return sample_collect(n, rng, pin);
}

void KiNetGan::sample_conditional_seeded_stream(std::size_t n, const std::string& column,
                                                const std::string& value,
                                                std::uint64_t stream_seed,
                                                std::size_t chunk_rows,
                                                const SampleSink& sink) const {
    const auto pin = resolve_conditional_pin(column, value);
    Rng rng(stream_seed ^ kStreamSeedSalt);
    sample_stream_impl(n, rng, pin, chunk_rows, sink);
}

KiNetGan::StreamCursor::StreamCursor(const KiNetGan& model, std::size_t n,
                                     std::uint64_t stream_seed, std::size_t chunk_rows,
                                     std::optional<std::pair<std::size_t, std::size_t>> pin)
    : model_(&model),
      pin_(pin),
      chunk_rows_(chunk_rows),
      remaining_(n),
      rng_(stream_seed ^ kStreamSeedSalt),
      decoded_(model.schema_),
      pending_(model.schema_) {}

const data::Table* KiNetGan::StreamCursor::next() {
    const KiNetGan& m = *model_;
    pending_.clear_rows();  // the buffer handed out by the previous call
    const std::size_t batch = m.options_.gan.batch_size;
    for (;;) {
        // Drain what the last generation batch left over.
        while (decoded_pos_ < decoded_.rows() && pending_.rows() < chunk_rows_) {
            const std::size_t take =
                std::min(chunk_rows_ - pending_.rows(), decoded_.rows() - decoded_pos_);
            pending_.append_row_range(decoded_, decoded_pos_, decoded_pos_ + take);
            decoded_pos_ += take;
        }
        if (pending_.rows() == chunk_rows_) {
            return &pending_;
        }
        if (remaining_ == 0) {
            // Final (short) chunk, or a fully drained stream.
            return pending_.rows() > 0 ? &pending_ : nullptr;
        }
        // Generate the next batch — same batch sizing and RNG order as the
        // push-based sampler, just without the look-ahead producer (the
        // cursor is the suspendable path; serial keeps it re-entrant).
        const std::size_t b = std::min(batch, remaining_);
        m.produce_sample_batch(b, rng_, pin_, draws_, batch_);
        m.g_trunk_->forward_inference(batch_.input, output_, ctx_);
        m.g_act_->apply_spans(output_, batch_.gumbel);
        m.transformer_.inverse_into(output_, raw_, decoded_);
        decoded_pos_ = 0;
        remaining_ -= b;
    }
}

std::unique_ptr<KiNetGan::StreamCursor> KiNetGan::open_sample_cursor(
    std::size_t n, std::uint64_t stream_seed, std::size_t chunk_rows,
    const std::string& cond_column, const std::string& cond_value) const {
    KINET_CHECK(fitted_, "KiNetGan::sample before fit");
    KINET_CHECK(chunk_rows >= 1, "KiNetGan::open_sample_cursor: chunk_rows must be >= 1");
    std::optional<std::pair<std::size_t, std::size_t>> pin;
    if (!cond_column.empty()) {
        pin = resolve_conditional_pin(cond_column, cond_value);
    }
    return std::unique_ptr<StreamCursor>(
        new StreamCursor(*this, n, stream_seed, chunk_rows, pin));
}

void KiNetGan::save(bytes::Writer& out) {
    KINET_CHECK(fitted_, "KiNetGan::save before fit");
    const auto& g = options_.gan;
    out.u64(g.epochs);
    out.u64(g.batch_size);
    out.u64(g.noise_dim);
    out.u64(g.hidden_dim);
    out.u64(g.hidden_layers);
    out.f32(g.lr_generator);
    out.f32(g.lr_discriminator);
    out.f32(g.adam_beta1);
    out.f32(g.adam_beta2);
    out.f32(g.gumbel_tau);
    out.f32(g.dropout);
    out.f32(g.grad_clip);
    out.u64(g.seed);
    out.u64(options_.transformer.max_modes);
    out.u64(options_.transformer.gmm_iterations);
    out.boolean(options_.transformer.sample_mode_assignment);
    out.f64(options_.sampler.uniform_minority_prob);
    out.f32(options_.cond_penalty_weight);
    out.f32(options_.kg_weight);
    out.boolean(options_.use_kg_discriminator);
    out.boolean(options_.use_cond_penalty);
    out.boolean(options_.use_minority_resampling);

    out.index_array(cond_columns_);
    oracle_.save(out);
    data::save_schema(out, schema_);
    transformer_.save(out);
    sampler_->save(out);
    g_trunk_->save_state(out);
    d_main_->save_state(out);
    out.boolean(d_kg_ != nullptr);
    if (d_kg_ != nullptr) {
        d_kg_->save_state(out);
    }
    out.str(rng_.serialize_state());
    out.f64(last_adherence_);
    out.f64_array(report_.generator_loss);
    out.f64_array(report_.discriminator_loss);
    out.f64(report_.seconds);
}

std::unique_ptr<KiNetGan> KiNetGan::load(bytes::Reader& in) {
    KiNetGanOptions opts;
    opts.gan.epochs = static_cast<std::size_t>(in.u64());
    opts.gan.batch_size = static_cast<std::size_t>(in.u64());
    opts.gan.noise_dim = static_cast<std::size_t>(in.u64());
    opts.gan.hidden_dim = static_cast<std::size_t>(in.u64());
    opts.gan.hidden_layers = static_cast<std::size_t>(in.u64());
    opts.gan.lr_generator = in.f32();
    opts.gan.lr_discriminator = in.f32();
    opts.gan.adam_beta1 = in.f32();
    opts.gan.adam_beta2 = in.f32();
    opts.gan.gumbel_tau = in.f32();
    opts.gan.dropout = in.f32();
    opts.gan.grad_clip = in.f32();
    opts.gan.seed = in.u64();
    opts.transformer.max_modes = static_cast<std::size_t>(in.u64());
    opts.transformer.gmm_iterations = static_cast<std::size_t>(in.u64());
    opts.transformer.sample_mode_assignment = in.boolean();
    opts.sampler.uniform_minority_prob = in.f64();
    opts.cond_penalty_weight = in.f32();
    opts.kg_weight = in.f32();
    opts.use_kg_discriminator = in.boolean();
    opts.use_cond_penalty = in.boolean();
    opts.use_minority_resampling = in.boolean();

    // A snapshot payload can pass its checksum and still be hostile (the
    // checksum is recomputable); every field that sizes an allocation is
    // range-checked before build_networks touches it.
    const auto plausible = [](std::size_t v, std::size_t cap, const char* what) {
        KINET_CHECK(v <= cap,
                    "KiNetGan::load: implausible " + std::string(what) + " (" +
                        std::to_string(v) + ")");
    };
    plausible(opts.gan.epochs, 1U << 24, "epochs");
    plausible(opts.gan.batch_size, 1U << 24, "batch size");
    KINET_CHECK(opts.gan.batch_size > 0, "KiNetGan::load: batch size must be positive");
    plausible(opts.gan.noise_dim, 1U << 20, "noise dim");
    plausible(opts.gan.hidden_dim, 1U << 20, "hidden dim");
    plausible(opts.gan.hidden_layers, 1024, "hidden layers");
    plausible(opts.transformer.max_modes, 4096, "transformer modes");
    plausible(opts.transformer.gmm_iterations, 1U << 24, "gmm iterations");

    std::vector<std::size_t> cond_columns = in.index_array();
    auto oracle = kg::ValidityOracle::load(in);
    auto model =
        std::make_unique<KiNetGan>(std::move(oracle), std::move(cond_columns), opts);

    model->schema_ = data::load_schema(in);
    for (const std::size_t col : model->cond_columns_) {
        KINET_CHECK(col < model->schema_.size() && model->schema_[col].is_categorical(),
                    "KiNetGan::load: conditional column out of range or not categorical");
    }
    model->transformer_ = data::TableTransformer::load(in);
    KINET_CHECK(model->transformer_.schema().size() == model->schema_.size(),
                "KiNetGan::load: transformer schema width mismatch");
    model->sampler_ =
        std::make_unique<data::ConditionalSampler>(data::ConditionalSampler::load(in));
    KINET_CHECK(model->sampler_->cond_columns() == model->cond_columns_,
                "KiNetGan::load: sampler conditional columns mismatch");
    model->cond_builder_ =
        std::make_unique<gan::CondVectorBuilder>(model->schema_, model->cond_columns_);
    model->cond_spans_ = gan::category_spans_for_blocks(model->transformer_, *model->cond_builder_);
    model->init_kg_state();
    // Architectures are rebuilt from the options (the construction draws from
    // rng_ for initial weights, all overwritten below; the live RNG stream is
    // restored afterwards, so post-load samples continue exactly where the
    // saved model would have).
    model->build_networks();
    model->g_trunk_->load_state(in);
    model->d_main_->load_state(in);
    const bool has_dkg = in.boolean();
    KINET_CHECK(has_dkg == (model->d_kg_ != nullptr),
                "KiNetGan::load: KG-discriminator presence mismatch");
    if (has_dkg) {
        model->d_kg_->load_state(in);
    }
    model->rng_.deserialize_state(in.str());
    model->last_adherence_ = in.f64();
    model->report_.generator_loss = in.f64_array();
    model->report_.discriminator_loss = in.f64_array();
    model->report_.seconds = in.f64();
    model->fitted_ = true;
    return model;
}

std::size_t KiNetGan::kg_valid_count(const data::Table& table) const {
    KINET_CHECK(!oracle_.attribute_names().empty(), "kg_valid_count: empty oracle");
    std::vector<std::size_t> cols;
    for (const auto& attr : oracle_.attribute_names()) {
        cols.push_back(table.column_index(attr));
    }
    std::size_t valid = 0;
    std::vector<std::string> values(cols.size());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        for (std::size_t a = 0; a < cols.size(); ++a) {
            values[a] = table.label_at(r, cols[a]);
        }
        valid += oracle_.is_valid(values) ? 1 : 0;
    }
    return valid;
}

double KiNetGan::kg_validity_rate(const data::Table& table) const {
    return (table.rows() == 0) ? 0.0
                               : static_cast<double>(kg_valid_count(table)) /
                                     static_cast<double>(table.rows());
}

std::vector<double> KiNetGan::discriminator_scores(const data::Table& table) {
    KINET_CHECK(fitted_, "discriminator_scores before fit");
    const Matrix encoded = transformer_.transform(table, rng_);

    // Build the condition each row actually carries.
    std::vector<data::CondDraw> draws(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        draws[r].row = r;
        draws[r].values.resize(cond_columns_.size());
        for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
            draws[r].values[p] = table.category_at(r, cond_columns_[p]);
        }
    }
    const Matrix cond = cond_builder_->encode(draws);
    const Matrix logits = d_main_->forward(Matrix::hcat(encoded, cond), false);
    std::vector<double> scores(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        scores[r] = 1.0 / (1.0 + std::exp(-static_cast<double>(logits(r, 0))));
    }
    return scores;
}

}  // namespace kinet::core
