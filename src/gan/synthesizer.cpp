#include "src/gan/synthesizer.hpp"

// Interface-only translation unit: keeps the vtable anchored here.
