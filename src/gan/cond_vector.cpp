#include "src/gan/cond_vector.hpp"

#include "src/common/check.hpp"

namespace kinet::gan {

CondVectorBuilder::CondVectorBuilder(const std::vector<data::ColumnMeta>& schema,
                                     std::vector<std::size_t> cond_columns)
    : cond_columns_(std::move(cond_columns)) {
    KINET_CHECK(!cond_columns_.empty(), "CondVectorBuilder: no conditional columns");
    for (std::size_t col : cond_columns_) {
        KINET_CHECK(col < schema.size(), "CondVectorBuilder: column out of range");
        KINET_CHECK(schema[col].is_categorical(),
                    "CondVectorBuilder: column " + schema[col].name + " is not categorical");
        offsets_.push_back(width_);
        widths_.push_back(schema[col].categories.size());
        width_ += schema[col].categories.size();
    }
}

std::size_t CondVectorBuilder::block_offset(std::size_t pos) const {
    KINET_CHECK(pos < offsets_.size(), "CondVectorBuilder: block out of range");
    return offsets_[pos];
}

std::size_t CondVectorBuilder::block_width(std::size_t pos) const {
    KINET_CHECK(pos < widths_.size(), "CondVectorBuilder: block out of range");
    return widths_[pos];
}

tensor::Matrix CondVectorBuilder::encode(std::span<const data::CondDraw> draws) const {
    tensor::Matrix c(draws.size(), width_);
    for (std::size_t r = 0; r < draws.size(); ++r) {
        KINET_CHECK(draws[r].values.size() == cond_columns_.size(),
                    "CondVectorBuilder: draw arity mismatch");
        for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
            const std::size_t v = draws[r].values[p];
            KINET_CHECK(v < widths_[p], "CondVectorBuilder: value id out of range");
            c(r, offsets_[p] + v) = 1.0F;
        }
    }
    return c;
}

tensor::Matrix CondVectorBuilder::encode_anchor_only(
    std::span<const data::CondDraw> draws) const {
    tensor::Matrix c(draws.size(), width_);
    for (std::size_t r = 0; r < draws.size(); ++r) {
        const std::size_t p = draws[r].anchor_column;
        KINET_CHECK(p < cond_columns_.size(), "CondVectorBuilder: anchor out of range");
        const std::size_t v = draws[r].anchor_value;
        KINET_CHECK(v < widths_[p], "CondVectorBuilder: anchor value out of range");
        c(r, offsets_[p] + v) = 1.0F;
    }
    return c;
}

std::vector<std::size_t> CondVectorBuilder::decode_row(const tensor::Matrix& c,
                                                       std::size_t row) const {
    KINET_CHECK(c.cols() == width_ && row < c.rows(), "CondVectorBuilder: decode shape mismatch");
    std::vector<std::size_t> out(cond_columns_.size());
    const auto r = c.row(row);
    for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < widths_[p]; ++j) {
            if (r[offsets_[p] + j] > r[offsets_[p] + best]) {
                best = j;
            }
        }
        out[p] = best;
    }
    return out;
}

}  // namespace kinet::gan
