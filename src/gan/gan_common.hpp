// Shared GAN building blocks: network factories, the span-aware output
// activation (tanh for alpha spans, Gumbel-softmax for one-hot spans), the
// conditional BCE penalty BCE(C, Ĉ) from Sec. III-A-2, and adversarial loss
// helpers.
#ifndef KINETGAN_GAN_GAN_COMMON_H
#define KINETGAN_GAN_GAN_COMMON_H

#include <memory>
#include <vector>

#include "src/data/transformer.hpp"
#include "src/gan/cond_vector.hpp"
#include "src/nn/nn.hpp"

namespace kinet::gan {

/// Hyperparameters shared by the GAN-family models.
struct GanOptions {
    std::size_t epochs = 60;
    std::size_t batch_size = 128;
    std::size_t noise_dim = 64;
    std::size_t hidden_dim = 128;
    std::size_t hidden_layers = 2;
    // Higher than the CTGAN-paper 2e-4: this codebase trains for tens of
    // epochs on ~10^4-row tables, and at 2e-4 Adam cannot grow the logit
    // gaps the Gumbel-softmax spans need (verified by the conditional-copy
    // adherence metric).
    float lr_generator = 1e-3F;
    float lr_discriminator = 1e-3F;
    float adam_beta1 = 0.5F;
    float adam_beta2 = 0.9F;
    float gumbel_tau = 0.2F;
    float dropout = 0.25F;
    float grad_clip = 5.0F;
    std::uint64_t seed = 42;
};

/// Final generator layer: applies tanh to continuous-alpha dimensions and
/// Gumbel-softmax to every one-hot span.  Differentiable; fresh Gumbel noise
/// is drawn per forward pass.
class OutputActivation : public nn::Module {
public:
    OutputActivation(std::vector<data::OutputSpan> spans, float tau, Rng& rng);

    nn::Matrix forward(const nn::Matrix& input, bool training) override;
    nn::Matrix backward(const nn::Matrix& grad_out) override;

    /// In-place inference twin of forward(): applies the span activations
    /// to `x`, drawing Gumbel noise from the *caller's* stream into the
    /// caller's scratch (same draw order as forward: full matrix first,
    /// then spans).  Const and cache-free, so one activation serves any
    /// number of concurrent seeded samplers; output is bitwise equal to
    /// forward(x, false) fed from the same stream.
    void forward_inference(nn::Matrix& x, Rng& rng, nn::Matrix& noise_scratch) const;

    /// Fills `noise` with the Gumbel matrix forward would draw for an
    /// x.rows() x x.cols() batch — split out so a sampling pipeline can
    /// produce the draws ahead of the compute that consumes them.
    void draw_noise(std::size_t rows, std::size_t cols, Rng& rng, nn::Matrix& noise) const;

    /// The activation itself over pre-drawn noise (the second half of
    /// forward_inference).
    void apply_spans(nn::Matrix& x, const nn::Matrix& noise) const;

private:
    std::vector<data::OutputSpan> spans_;
    float tau_;
    Rng* rng_;
    nn::Matrix cached_output_;
};

/// Generator trunk: [Linear -> BatchNorm -> ReLU] x layers -> Linear(out).
[[nodiscard]] std::unique_ptr<nn::Sequential> make_generator_trunk(std::size_t in_dim,
                                                                   std::size_t hidden_dim,
                                                                   std::size_t layers,
                                                                   std::size_t out_dim, Rng& rng);

/// Discriminator: [Linear -> LeakyReLU -> Dropout] x layers -> Linear(1).
[[nodiscard]] std::unique_ptr<nn::Sequential> make_discriminator(std::size_t in_dim,
                                                                 std::size_t hidden_dim,
                                                                 std::size_t layers, float dropout,
                                                                 Rng& rng);

/// BCE(C, Ĉ) (Sec. III-A-2): Ĉ is read from the generator output's category
/// spans for the conditional columns.  Returns the loss and a full-width
/// gradient (zero outside the conditional spans).  `span_for_block[p]` maps
/// the p-th conditional block to the matching category span of the output.
struct CondPenaltyResult {
    double value = 0.0;
    nn::Matrix grad;  // w.r.t. generator output
};
[[nodiscard]] CondPenaltyResult cond_bce_penalty(
    const nn::Matrix& gen_output, const nn::Matrix& cond, const CondVectorBuilder& builder,
    const std::vector<data::OutputSpan>& span_for_block);

/// The training-stable realisation of the conditional copy penalty: softmax
/// cross-entropy between each conditional block of C and the matching span of
/// the generator's *pre-activation logits* (this is how CTGAN implements the
/// term; the post-Gumbel output saturates and starves the gradient).
/// Returns the loss and gradient w.r.t. the logits (zero outside the spans).
[[nodiscard]] CondPenaltyResult cond_ce_on_logits(
    const nn::Matrix& gen_logits, const nn::Matrix& cond, const CondVectorBuilder& builder,
    const std::vector<data::OutputSpan>& span_for_block);

/// Fraction of rows whose generated conditional attributes (argmax per span)
/// equal the requested condition — a training-health metric.
[[nodiscard]] double cond_adherence_rate(const nn::Matrix& gen_output, const nn::Matrix& cond,
                                         const CondVectorBuilder& builder,
                                         const std::vector<data::OutputSpan>& span_for_block);

/// Fills a matrix with N(0,1) noise.
[[nodiscard]] nn::Matrix sample_noise(std::size_t rows, std::size_t cols, Rng& rng);

/// Binary targets helper (constant matrix).
[[nodiscard]] nn::Matrix constant_targets(std::size_t rows, float value);

/// Resolves, for each conditional block, the generator-output category span
/// of the same table column.  Throws if a conditional column is continuous.
[[nodiscard]] std::vector<data::OutputSpan> category_spans_for_blocks(
    const data::TableTransformer& transformer, const CondVectorBuilder& builder);

}  // namespace kinet::gan

#endif  // KINETGAN_GAN_GAN_COMMON_H
