// The conditional vector C = C1 ⊕ C2 ⊕ … ⊕ Cn (paper Eq. 1–2): a
// concatenation of one-hot blocks, one per conditional (discrete) attribute.
#ifndef KINETGAN_GAN_COND_VECTOR_H
#define KINETGAN_GAN_COND_VECTOR_H

#include <span>
#include <vector>

#include "src/data/sampler.hpp"
#include "src/data/table.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::gan {

class CondVectorBuilder {
public:
    /// cond_columns index into `schema` and must be categorical.
    CondVectorBuilder(const std::vector<data::ColumnMeta>& schema,
                      std::vector<std::size_t> cond_columns);

    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    [[nodiscard]] std::size_t block_count() const noexcept { return cond_columns_.size(); }
    /// Offset of block `pos` (position within cond_columns) in C.
    [[nodiscard]] std::size_t block_offset(std::size_t pos) const;
    /// Cardinality of block `pos`.
    [[nodiscard]] std::size_t block_width(std::size_t pos) const;
    [[nodiscard]] const std::vector<std::size_t>& cond_columns() const noexcept {
        return cond_columns_;
    }

    /// Full condition: every block one-hot (KiNETGAN, Eq. 2).
    [[nodiscard]] tensor::Matrix encode(std::span<const data::CondDraw> draws) const;

    /// CTGAN-style condition: only the anchor block is one-hot, the other
    /// blocks stay zero (single-attribute conditioning with a mask).
    [[nodiscard]] tensor::Matrix encode_anchor_only(std::span<const data::CondDraw> draws) const;

    /// Decodes value ids per block by argmax over each block of a C-shaped
    /// matrix row.
    [[nodiscard]] std::vector<std::size_t> decode_row(const tensor::Matrix& c,
                                                      std::size_t row) const;

private:
    std::vector<std::size_t> cond_columns_;
    std::vector<std::size_t> offsets_;
    std::vector<std::size_t> widths_;
    std::size_t width_ = 0;
};

}  // namespace kinet::gan

#endif  // KINETGAN_GAN_COND_VECTOR_H
