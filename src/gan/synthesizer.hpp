// The model-agnostic interface every generative model implements, so the
// evaluation harness and the benchmarks can treat KiNETGAN and all five
// baselines uniformly.
#ifndef KINETGAN_GAN_SYNTHESIZER_H
#define KINETGAN_GAN_SYNTHESIZER_H

#include <string>
#include <vector>

#include "src/data/table.hpp"

namespace kinet::gan {

/// Per-epoch training diagnostics.
struct FitReport {
    std::vector<double> generator_loss;
    std::vector<double> discriminator_loss;
    double seconds = 0.0;
};

class Synthesizer {
public:
    Synthesizer() = default;
    Synthesizer(const Synthesizer&) = delete;
    Synthesizer& operator=(const Synthesizer&) = delete;
    virtual ~Synthesizer() = default;

    /// Trains the model on real data.
    virtual void fit(const data::Table& table) = 0;

    /// Draws `n` synthetic rows (requires fit()).
    [[nodiscard]] virtual data::Table sample(std::size_t n) = 0;

    /// Display name used in reports ("KiNETGAN", "CTGAN", ...).
    [[nodiscard]] virtual std::string name() const = 0;

    [[nodiscard]] const FitReport& report() const noexcept { return report_; }

protected:
    FitReport report_;
};

}  // namespace kinet::gan

#endif  // KINETGAN_GAN_SYNTHESIZER_H
