#include "src/gan/gan_common.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace kinet::gan {

OutputActivation::OutputActivation(std::vector<data::OutputSpan> spans, float tau, Rng& rng)
    : spans_(std::move(spans)), tau_(tau), rng_(&rng) {
    KINET_CHECK(!spans_.empty(), "OutputActivation: no spans");
}

nn::Matrix OutputActivation::forward(const nn::Matrix& input, bool /*training*/) {
    nn::Matrix out = input;
    // Categorical spans: Gumbel-softmax with fresh noise (sampling is part of
    // generation, so noise is drawn in both training and inference).
    nn::Matrix noise = nn::gumbel_noise(input.rows(), input.cols(), *rng_);
    for (const auto& span : spans_) {
        switch (span.kind) {
        case data::SpanKind::continuous_alpha:
            for (std::size_t r = 0; r < out.rows(); ++r) {
                out(r, span.offset) = std::tanh(out(r, span.offset));
            }
            break;
        case data::SpanKind::mode_onehot:
        case data::SpanKind::category_onehot:
            nn::gumbel_softmax_forward_span(out, noise, span.offset, span.offset + span.width,
                                            tau_);
            break;
        }
    }
    cached_output_ = out;
    return out;
}

void OutputActivation::draw_noise(std::size_t rows, std::size_t cols, Rng& rng,
                                  nn::Matrix& noise) const {
    // Same stream consumption as forward(): the full matrix, row-major.
    noise.resize_for_overwrite(rows, cols);
    for (auto& v : noise.data()) {
        v = static_cast<float>(rng.gumbel());
    }
}

void OutputActivation::apply_spans(nn::Matrix& x, const nn::Matrix& noise) const {
    KINET_CHECK(noise.rows() == x.rows() && noise.cols() == x.cols(),
                "OutputActivation: noise shape mismatch");
    for (const auto& span : spans_) {
        switch (span.kind) {
        case data::SpanKind::continuous_alpha:
            for (std::size_t r = 0; r < x.rows(); ++r) {
                x(r, span.offset) = std::tanh(x(r, span.offset));
            }
            break;
        case data::SpanKind::mode_onehot:
        case data::SpanKind::category_onehot:
            nn::gumbel_softmax_forward_span(x, noise, span.offset, span.offset + span.width,
                                            tau_);
            break;
        }
    }
}

void OutputActivation::forward_inference(nn::Matrix& x, Rng& rng,
                                         nn::Matrix& noise_scratch) const {
    // Identical stream consumption to forward(): the full noise matrix is
    // drawn first (row-major), then each span is activated in declaration
    // order — so a seeded stream produces the same bytes on either path.
    draw_noise(x.rows(), x.cols(), rng, noise_scratch);
    apply_spans(x, noise_scratch);
}

nn::Matrix OutputActivation::backward(const nn::Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_output_.rows() &&
                    grad_out.cols() == cached_output_.cols(),
                "OutputActivation: grad shape mismatch");
    nn::Matrix grad_in(grad_out.rows(), grad_out.cols());
    for (const auto& span : spans_) {
        switch (span.kind) {
        case data::SpanKind::continuous_alpha:
            for (std::size_t r = 0; r < grad_in.rows(); ++r) {
                const float y = cached_output_(r, span.offset);
                grad_in(r, span.offset) = grad_out(r, span.offset) * (1.0F - y * y);
            }
            break;
        case data::SpanKind::mode_onehot:
        case data::SpanKind::category_onehot:
            nn::gumbel_softmax_backward_span(cached_output_, grad_out, grad_in, span.offset,
                                             span.offset + span.width, tau_);
            break;
        }
    }
    return grad_in;
}

std::unique_ptr<nn::Sequential> make_generator_trunk(std::size_t in_dim, std::size_t hidden_dim,
                                                     std::size_t layers, std::size_t out_dim,
                                                     Rng& rng) {
    auto net = std::make_unique<nn::Sequential>();
    std::size_t cur = in_dim;
    for (std::size_t i = 0; i < layers; ++i) {
        net->emplace<nn::Linear>(cur, hidden_dim, rng, "g.fc" + std::to_string(i));
        net->emplace<nn::BatchNorm1d>(hidden_dim);
        net->emplace<nn::ReLU>();
        cur = hidden_dim;
    }
    net->emplace<nn::Linear>(cur, out_dim, rng, "g.out");
    return net;
}

std::unique_ptr<nn::Sequential> make_discriminator(std::size_t in_dim, std::size_t hidden_dim,
                                                   std::size_t layers, float dropout, Rng& rng) {
    auto net = std::make_unique<nn::Sequential>();
    std::size_t cur = in_dim;
    for (std::size_t i = 0; i < layers; ++i) {
        net->emplace<nn::Linear>(cur, hidden_dim, rng, "d.fc" + std::to_string(i));
        net->emplace<nn::LeakyReLU>(0.2F);
        if (dropout > 0.0F) {
            net->emplace<nn::Dropout>(dropout, rng);
        }
        cur = hidden_dim;
    }
    net->emplace<nn::Linear>(cur, 1, rng, "d.out");
    return net;
}

CondPenaltyResult cond_bce_penalty(const nn::Matrix& gen_output, const nn::Matrix& cond,
                                   const CondVectorBuilder& builder,
                                   const std::vector<data::OutputSpan>& span_for_block) {
    KINET_CHECK(span_for_block.size() == builder.block_count(),
                "cond_bce_penalty: block/span count mismatch");
    KINET_CHECK(cond.rows() == gen_output.rows(), "cond_bce_penalty: batch mismatch");

    CondPenaltyResult res;
    res.grad.resize(gen_output.rows(), gen_output.cols());
    double total = 0.0;
    std::size_t count = 0;
    constexpr double kEps = 1e-7;

    for (std::size_t p = 0; p < builder.block_count(); ++p) {
        const auto& span = span_for_block[p];
        const std::size_t c_off = builder.block_offset(p);
        KINET_CHECK(span.width == builder.block_width(p),
                    "cond_bce_penalty: block width mismatch");
        for (std::size_t r = 0; r < gen_output.rows(); ++r) {
            for (std::size_t j = 0; j < span.width; ++j) {
                const double c = cond(r, c_off + j);
                const double y =
                    std::min(std::max(static_cast<double>(gen_output(r, span.offset + j)), kEps),
                             1.0 - kEps);
                total += -(c * std::log(y) + (1.0 - c) * std::log(1.0 - y));
                res.grad(r, span.offset + j) = static_cast<float>((-c / y + (1.0 - c) / (1.0 - y)));
                ++count;
            }
        }
    }
    KINET_CHECK(count > 0, "cond_bce_penalty: no conditional dimensions");
    const double inv = 1.0 / static_cast<double>(count);
    res.value = total * inv;
    res.grad *= static_cast<float>(inv);
    return res;
}

CondPenaltyResult cond_ce_on_logits(const nn::Matrix& gen_logits, const nn::Matrix& cond,
                                    const CondVectorBuilder& builder,
                                    const std::vector<data::OutputSpan>& span_for_block) {
    KINET_CHECK(span_for_block.size() == builder.block_count(),
                "cond_ce_on_logits: block/span count mismatch");
    KINET_CHECK(cond.rows() == gen_logits.rows(), "cond_ce_on_logits: batch mismatch");

    CondPenaltyResult res;
    res.grad.resize(gen_logits.rows(), gen_logits.cols());
    double total = 0.0;
    std::size_t terms = 0;

    for (std::size_t p = 0; p < builder.block_count(); ++p) {
        const auto& span = span_for_block[p];
        const std::size_t c_off = builder.block_offset(p);
        KINET_CHECK(span.width == builder.block_width(p), "cond_ce_on_logits: width mismatch");
        for (std::size_t r = 0; r < gen_logits.rows(); ++r) {
            // Target = the hot entry of this block (skip unconditioned blocks).
            std::size_t target = span.width;
            for (std::size_t j = 0; j < span.width; ++j) {
                if (cond(r, c_off + j) > 0.5F) {
                    target = j;
                    break;
                }
            }
            if (target == span.width) {
                continue;
            }
            // Stable softmax CE over the logits span.
            double mx = gen_logits(r, span.offset);
            for (std::size_t j = 1; j < span.width; ++j) {
                mx = std::max(mx, static_cast<double>(gen_logits(r, span.offset + j)));
            }
            double denom = 0.0;
            for (std::size_t j = 0; j < span.width; ++j) {
                denom += std::exp(static_cast<double>(gen_logits(r, span.offset + j)) - mx);
            }
            const double log_denom = std::log(denom) + mx;
            total += log_denom - static_cast<double>(gen_logits(r, span.offset + target));
            for (std::size_t j = 0; j < span.width; ++j) {
                const double prob =
                    std::exp(static_cast<double>(gen_logits(r, span.offset + j)) - log_denom);
                res.grad(r, span.offset + j) =
                    static_cast<float>(prob - ((j == target) ? 1.0 : 0.0));
            }
            ++terms;
        }
    }
    KINET_CHECK(terms > 0, "cond_ce_on_logits: no conditioned blocks");
    const double inv = 1.0 / static_cast<double>(terms);
    res.value = total * inv;
    res.grad *= static_cast<float>(inv);
    return res;
}

double cond_adherence_rate(const nn::Matrix& gen_output, const nn::Matrix& cond,
                           const CondVectorBuilder& builder,
                           const std::vector<data::OutputSpan>& span_for_block) {
    KINET_CHECK(span_for_block.size() == builder.block_count(),
                "cond_adherence_rate: block/span count mismatch");
    // Row-partitioned (argmax per block per row, no RNG); the per-row
    // integer counts are summed serially afterwards, so the tally is exact
    // and partition-independent.
    std::vector<std::uint32_t> row_hits(gen_output.rows(), 0);
    std::vector<std::uint32_t> row_total(gen_output.rows(), 0);
    parallel_for(gen_output.rows(), 64, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            for (std::size_t p = 0; p < builder.block_count(); ++p) {
                const auto& span = span_for_block[p];
                const std::size_t c_off = builder.block_offset(p);
                // Requested value (if this block is conditioned at all).
                std::size_t requested = span.width;
                for (std::size_t j = 0; j < span.width; ++j) {
                    if (cond(r, c_off + j) > 0.5F) {
                        requested = j;
                        break;
                    }
                }
                if (requested == span.width) {
                    continue;  // unconditioned block (anchor-only encoding)
                }
                std::size_t got = 0;
                for (std::size_t j = 1; j < span.width; ++j) {
                    if (gen_output(r, span.offset + j) > gen_output(r, span.offset + got)) {
                        got = j;
                    }
                }
                row_hits[r] += (got == requested) ? 1 : 0;
                ++row_total[r];
            }
        }
    });
    std::size_t hits = 0;
    std::size_t total = 0;
    for (std::size_t r = 0; r < gen_output.rows(); ++r) {
        hits += row_hits[r];
        total += row_total[r];
    }
    return (total == 0) ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

nn::Matrix sample_noise(std::size_t rows, std::size_t cols, Rng& rng) {
    nn::Matrix z(rows, cols);
    for (auto& v : z.data()) {
        v = static_cast<float>(rng.normal());
    }
    return z;
}

nn::Matrix constant_targets(std::size_t rows, float value) {
    return nn::Matrix(rows, 1, value);
}

std::vector<data::OutputSpan> category_spans_for_blocks(const data::TableTransformer& transformer,
                                                        const CondVectorBuilder& builder) {
    std::vector<data::OutputSpan> out;
    out.reserve(builder.block_count());
    for (std::size_t p = 0; p < builder.block_count(); ++p) {
        out.push_back(transformer.category_span(builder.cond_columns()[p]));
    }
    return out;
}

}  // namespace kinet::gan
