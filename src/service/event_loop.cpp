#include "src/service/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/common/check.hpp"

namespace kinet::service {
namespace {

/// epoll user-data tags for the two non-connection fds.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = ~0ULL;

/// Compaction threshold for consumed buffer prefixes.
constexpr std::size_t kCompactBytes = 64 * 1024;

std::string err_frame(std::string message) {
    Response r;
    r.ok = false;
    r.error = std::move(message);
    return format_response(r);
}

}  // namespace

EventLoop::EventLoop(EventLoopOptions options, EventLoopHandlers handlers, Metrics& metrics)
    : options_(options), handlers_(std::move(handlers)), metrics_(metrics) {
    KINET_CHECK(handlers_.execute != nullptr, "EventLoop: execute handler is required");
    KINET_CHECK(handlers_.is_fast != nullptr, "EventLoop: is_fast handler is required");
    KINET_CHECK(handlers_.open_stream != nullptr, "EventLoop: open_stream handler is required");
    KINET_CHECK(options_.max_connections >= 1, "EventLoop: max_connections must be >= 1");
    KINET_CHECK(options_.queue_depth >= 1, "EventLoop: queue_depth must be >= 1");
    KINET_CHECK(options_.write_low_water <= options_.write_high_water,
                "EventLoop: write_low_water must not exceed write_high_water");
}

EventLoop::~EventLoop() { stop(); }

void EventLoop::start() {
    KINET_CHECK(!running_.load(), "EventLoop::start: already running");
    listener_ = TcpListener::bind_loopback(options_.port);
    listener_.set_nonblocking(true);
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
        throw Error(std::string("event_loop: epoll_create1: ") + std::strerror(errno));
    }
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) {
        const int saved = errno;
        ::close(epoll_fd_);
        epoll_fd_ = -1;
        throw Error(std::string("event_loop: eventfd: ") + std::strerror(saved));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    KINET_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) == 0,
                "event_loop: epoll_ctl(listener)");
    ev.data.u64 = kWakeTag;
    KINET_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
                "event_loop: epoll_ctl(eventfd)");

    {
        // No workers are alive here (stop() joined them), but the flag is
        // guarded by tasks_mu_ and the discipline is checked — lock it.
        const MutexLock lock(tasks_mu_);
        workers_stop_ = false;
    }
    const std::size_t n_workers = options_.workers == 0 ? 1 : options_.workers;
    workers_.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) {
        workers_.emplace_back([this] { worker_main(); });
    }
    stopping_.store(false);
    draining_.store(false);
    inflight_.store(0);
    running_.store(true);
    loop_thread_ = std::thread([this] { loop_main(); });
}

void EventLoop::drain() { draining_.store(true); }

void EventLoop::stop() {
    if (!running_.exchange(false)) {
        return;
    }
    stopping_.store(true);
    wake_loop();
    if (loop_thread_.joinable()) {
        loop_thread_.join();
    }
    {
        const MutexLock lock(tasks_mu_);
        workers_stop_ = true;
        tasks_.clear();  // queued work is for connections that are going away
        metrics_.queue_depth.store(0, std::memory_order_relaxed);
    }
    tasks_cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
    workers_.clear();
    // Gauges are decremented at reap time, which closing-but-unreaped
    // connections never reached — every entry still in the map counts.
    for (auto& [id, conn] : conns_) {
        metrics_.connections_open.fetch_sub(1, std::memory_order_relaxed);
        if (conn->producer != nullptr) {
            metrics_.streams_active.fetch_sub(1, std::memory_order_relaxed);
        }
    }
    conns_.clear();
    dead_.clear();
    {
        const MutexLock lock(done_mu_);
        done_.clear();
    }
    inflight_.store(0);
    if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
        epoll_fd_ = -1;
    }
    if (wake_fd_ >= 0) {
        ::close(wake_fd_);
        wake_fd_ = -1;
    }
    listener_ = TcpListener();
}

void EventLoop::loop_main() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    auto last_tick = std::chrono::steady_clock::now();
    while (!stopping_.load()) {
        const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 500);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;  // epoll fd gone — only happens during teardown
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t tag = events[i].data.u64;
            if (tag == kListenerTag) {
                handle_accepts();
                continue;
            }
            if (tag == kWakeTag) {
                std::uint64_t token = 0;
                // The wake fd is a non-blocking eventfd, not a socket: a short
                // read just means the counter is already drained.
                // kinet-lint: allow(raw-io): eventfd counter drain, not socket IO
                while (::read(wake_fd_, &token, sizeof(token)) > 0) {
                }
                continue;
            }
            // The same wait batch may carry events for a connection an
            // earlier event destroyed — re-resolve by id for each flag.
            const std::uint32_t flags = events[i].events;
            if ((flags & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
                if (const auto it = conns_.find(tag); it != conns_.end()) {
                    handle_readable(*it->second);
                }
            }
            if ((flags & EPOLLOUT) != 0) {
                if (const auto it = conns_.find(tag); it != conns_.end()) {
                    handle_writable(*it->second);
                }
            }
        }
        drain_completions();
        reap_dead_connections();
        const auto now = std::chrono::steady_clock::now();
        if (handlers_.on_tick != nullptr && now - last_tick >= std::chrono::seconds(1)) {
            last_tick = now;
            handlers_.on_tick();
        }
    }
}

void EventLoop::worker_main() {
    for (;;) {
        std::function<void()> task;
        {
            UniqueLock lock(tasks_mu_);
            while (!workers_stop_ && tasks_.empty()) {
                tasks_cv_.wait(lock);
            }
            if (workers_stop_) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
            metrics_.queue_depth.store(static_cast<std::int64_t>(tasks_.size()),
                                       std::memory_order_relaxed);
        }
        task();
    }
}

void EventLoop::handle_accepts() {
    for (;;) {
        auto stream = listener_.try_accept();
        if (!stream.has_value()) {
            return;
        }
        if (draining_.load(std::memory_order_relaxed)) {
            try {
                // Best-effort courtesy: a retryable code, so a failover-aware
                // client immediately tries another fleet member.
                (void)stream->write_some(err_frame(
                    coded_error(kDrainingCode, "server is draining").error));
            } catch (const Error&) {
            }
            continue;  // stream destructor closes the fd
        }
        if (conns_.size() >= options_.max_connections) {
            metrics_.connections_refused.fetch_add(1, std::memory_order_relaxed);
            try {
                // Best-effort courtesy: tell the client *why* before closing.
                // The socket is fresh, so the few bytes almost always fit.
                (void)stream->write_some(
                    err_frame(queue_full_response("connection limit reached").error));
            } catch (const Error&) {
            }
            continue;  // stream destructor closes the fd
        }
        const std::uint64_t id = next_conn_id_++;
        auto conn = std::make_unique<Connection>(id, std::move(*stream));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->stream.fd(), &ev) != 0) {
            continue;  // out of fds or similar; drop the connection
        }
        conns_.emplace(id, std::move(conn));
        metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        const auto open = metrics_.connections_open.fetch_add(1, std::memory_order_relaxed) + 1;
        metrics_.note_peak(open);
    }
}

void EventLoop::handle_readable(Connection& conn) {
    if (conn.closing) {
        return;
    }
    // Note: called even with EPOLLIN interest off — EPOLLERR/EPOLLHUP are
    // delivered unconditionally, and the read is how we learn of them.
    bool open = true;
    try {
        open = conn.stream.read_available(conn.rdbuf);
    } catch (const Error&) {
        destroy_connection(conn);  // reset / hard error
        return;
    }
    if (!open) {
        conn.peer_eof = true;
    }
    process_input(conn);
}

void EventLoop::handle_writable(Connection& conn) {
    if (conn.closing) {
        return;
    }
    flush_writes(conn);
}

void EventLoop::process_input(Connection& conn) {
    while (!conn.closing && !conn.inflight && conn.producer == nullptr &&
           !conn.close_after_flush) {
        if (conn.pending.has_value()) {
            // A request line already parsed, waiting for its binary body.
            if (conn.read_backlog() < conn.pending_body) {
                break;  // more bytes must arrive first
            }
            Request request = std::move(*conn.pending);
            conn.pending.reset();
            request.body = conn.rdbuf.substr(conn.rdpos, conn.pending_body);
            conn.rdpos += conn.pending_body;
            conn.pending_body = 0;
            if (conn.rdpos == conn.rdbuf.size()) {
                conn.rdbuf.clear();
                conn.rdpos = 0;
            } else if (conn.rdpos > kCompactBytes) {
                conn.rdbuf.erase(0, conn.rdpos);
                conn.rdpos = 0;
            }
            dispatch_request(conn, std::move(request));
            continue;
        }
        const std::size_t nl = conn.rdbuf.find('\n', conn.rdpos);
        if (nl == std::string::npos) {
            if (conn.read_backlog() > options_.max_line_bytes) {
                queue_output(conn, err_frame("protocol: request line exceeds " +
                                             std::to_string(options_.max_line_bytes) +
                                             " bytes"));
                conn.close_after_flush = true;
            }
            break;
        }
        std::string line = conn.rdbuf.substr(conn.rdpos, nl - conn.rdpos);
        conn.rdpos = nl + 1;
        if (conn.rdpos == conn.rdbuf.size()) {
            conn.rdbuf.clear();
            conn.rdpos = 0;
        } else if (conn.rdpos > kCompactBytes) {
            conn.rdbuf.erase(0, conn.rdpos);
            conn.rdpos = 0;
        }

        Request request;
        std::size_t body_bytes = 0;
        try {
            request = parse_request(line);
            body_bytes = request_body_size(request);
        } catch (const Error& e) {
            queue_output(conn, err_frame(e.what()));
            if (body_bytes == 0 && request.op == Op::replicate) {
                // A malformed/oversized body declaration leaves an unknown
                // number of raw bytes in flight — the framing is lost, so
                // the connection cannot be salvaged.
                conn.close_after_flush = true;
            }
            continue;
        }
        if (body_bytes > 0) {
            conn.pending = std::move(request);
            conn.pending_body = body_bytes;
            continue;
        }
        if (request.op == Op::quit) {
            queue_output(conn, format_response(Response{}));
            conn.close_after_flush = true;
            break;
        }
        dispatch_request(conn, std::move(request));
    }
    if (conn.closing) {
        return;
    }
    // Read backpressure: a pipelining client cannot grow the input buffer
    // without bound while a stream or slow request blocks processing.  A
    // pending REPLICATE body raises the bound — those bytes are the
    // request, not backlog.
    const bool want_read =
        conn.read_backlog() <= options_.max_line_bytes + conn.pending_body && !conn.peer_eof;
    if (want_read != conn.want_read) {
        conn.want_read = want_read;
        update_interest(conn);
    }
    if (conn.peer_eof && !conn.inflight && conn.producer == nullptr) {
        if (conn.pending.has_value() && conn.read_backlog() < conn.pending_body) {
            // EOF mid-REPLICATE-body: the declared byte count can never
            // arrive.  A distinct permanent code — the sender must not
            // retry a truncated transfer byte-for-byte.
            queue_output(conn,
                         err_frame(coded_error(
                             kShortBodyCode,
                             "REPLICATE body truncated: got " +
                                 std::to_string(conn.read_backlog()) + " of " +
                                 std::to_string(conn.pending_body) + " bytes")
                             .error));
            conn.pending.reset();
            conn.pending_body = 0;
        }
        // Nothing left that could produce output; drain and go.
        conn.close_after_flush = true;
        flush_writes(conn);
    }
}

void EventLoop::dispatch_request(Connection& conn, Request request) {
    if (draining_.load(std::memory_order_relaxed) && !handlers_.is_fast(request)) {
        // Graceful shutdown: fast ops (health checks, STATS) keep working,
        // real work gets the retryable draining rejection so the client
        // fails over to another fleet member.
        queue_output(conn, err_frame(coded_error(
                               kDrainingCode,
                               "server is draining; retry against another member")
                               .error));
        return;
    }
    // Streaming requests are recognised (and their cursors opened) inline:
    // everything that can fail from a bad request fails before the first
    // frame, as an ordinary ERR response.
    std::unique_ptr<StreamProducer> producer;
    try {
        producer = handlers_.open_stream(request);
    } catch (const std::exception& e) {
        queue_output(conn, err_frame(e.what()));
        return;
    }
    if (producer != nullptr) {
        conn.producer = std::move(producer);
        metrics_.streams_opened.fetch_add(1, std::memory_order_relaxed);
        metrics_.streams_active.fetch_add(1, std::memory_order_relaxed);
        queue_output(conn, "OK STREAM\n");
        if (!conn.closing) {
            schedule_stream_step(conn);
        }
        return;
    }
    if (handlers_.is_fast(request)) {
        // Cheap enough to answer from the loop thread; bypasses the queue
        // so PING/STATS stay responsive under saturation.
        queue_output(conn, handlers_.execute(request));
        return;
    }
    conn.inflight = true;
    // Moving the request matters here: a REPLICATE body can be hundreds of
    // megabytes and must not be copied into the closure.
    const bool queued = try_enqueue_task([this, id = conn.id, req = std::move(request)] {
        std::string bytes;
        try {
            bytes = handlers_.execute(req);
        } catch (...) {
            bytes = err_frame("internal error: request handler aborted");
        }
        push_completion(Completion{id, std::move(bytes), false, false});
    });
    if (queued) {
        inflight_.fetch_add(1, std::memory_order_relaxed);
    } else {
        conn.inflight = false;
        metrics_.queue_full_rejections.fetch_add(1, std::memory_order_relaxed);
        queue_output(conn, format_response(queue_full_response(
                               "request queue at capacity (" +
                               std::to_string(options_.queue_depth) + "); retry")));
    }
}

void EventLoop::queue_output(Connection& conn, std::string_view bytes) {
    if (conn.closing) {
        return;
    }
    conn.wrbuf.append(bytes);
    flush_writes(conn);
}

void EventLoop::flush_writes(Connection& conn) {
    if (conn.closing) {
        return;
    }
    while (conn.write_backlog() > 0) {
        std::size_t n = 0;
        try {
            n = conn.stream.write_some(
                std::string_view(conn.wrbuf).substr(conn.wrpos));
        } catch (const Error&) {
            destroy_connection(conn);  // EPIPE / reset: the client is gone
            return;
        }
        if (n == 0) {
            break;  // kernel buffer full; EPOLLOUT will call us back
        }
        conn.wrpos += n;
        metrics_.bytes_out.fetch_add(n, std::memory_order_relaxed);
    }
    if (conn.write_backlog() == 0) {
        conn.wrbuf.clear();
        conn.wrpos = 0;
    } else if (conn.wrpos > kCompactBytes) {
        conn.wrbuf.erase(0, conn.wrpos);
        conn.wrpos = 0;
    }
    const bool want_write = conn.write_backlog() > 0;
    if (want_write != conn.want_write) {
        conn.want_write = want_write;
        update_interest(conn);
    }
    if (conn.suspended && conn.producer != nullptr && !conn.inflight &&
        conn.write_backlog() <= options_.write_low_water) {
        conn.suspended = false;
        schedule_stream_step(conn);
    }
    if (conn.close_after_flush && conn.write_backlog() == 0 && !conn.inflight) {
        destroy_connection(conn);
    }
}

void EventLoop::schedule_stream_step(Connection& conn) {
    conn.inflight = true;
    // The raw producer pointer is safe: producers are destroyed only on the
    // loop thread, only after this step's completion has been consumed
    // (closing connections are not reaped while a task is inflight).
    enqueue_task_unbounded([this, id = conn.id, producer = conn.producer.get()] {
        std::string frame;
        bool more = false;
        try {
            more = producer->next_frame(frame);
        } catch (...) {
            frame = "ERR internal error: stream aborted\n";
            more = false;
        }
        push_completion(Completion{id, std::move(frame), true, !more});
    });
    inflight_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::drain_completions() {
    std::vector<Completion> batch;
    {
        const MutexLock lock(done_mu_);
        batch.swap(done_);
    }
    for (const auto& done : batch) {
        apply_completion(done);
    }
}

void EventLoop::apply_completion(const Completion& done) {
    // One decrement per enqueued task, whether or not the connection still
    // exists to receive the bytes.
    if (inflight_.load(std::memory_order_relaxed) > 0) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    const auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) {
        return;  // connection fully torn down already (stop() path)
    }
    Connection& conn = *it->second;
    conn.inflight = false;
    if (conn.closing) {
        destroy_connection(conn);
        return;
    }
    if (done.stream_step) {
        if (done.stream_final) {
            conn.producer.reset();
            conn.suspended = false;
            metrics_.streams_active.fetch_sub(1, std::memory_order_relaxed);
        }
        queue_output(conn, done.bytes);
        if (conn.closing) {
            return;
        }
        if (conn.producer != nullptr) {
            if (conn.write_backlog() > options_.write_high_water) {
                // The client is not draining: park the generator.  No
                // thread is held; flush_writes resumes us below low water.
                conn.suspended = true;
                metrics_.stream_suspensions.fetch_add(1, std::memory_order_relaxed);
            } else {
                schedule_stream_step(conn);
            }
            return;
        }
    } else {
        queue_output(conn, done.bytes);
        if (conn.closing) {
            return;
        }
    }
    // The turn is over — pipelined requests may already be buffered.
    process_input(conn);
}

void EventLoop::destroy_connection(Connection& conn) {
    if (!conn.closing) {
        conn.closing = true;
        (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.stream.fd(), nullptr);
        conn.stream.shutdown();
    }
    // The object is erased at the loop's reap point, never here: stack
    // frames above us may still hold the reference, and an inflight worker
    // may still post a completion for this id.
    if (!conn.inflight) {
        dead_.push_back(conn.id);
    }
}

void EventLoop::reap_dead_connections() {
    for (const std::uint64_t id : dead_) {
        const auto it = conns_.find(id);
        if (it == conns_.end() || it->second->inflight) {
            continue;  // already reaped, or resurrected flag mismatch
        }
        metrics_.connections_open.fetch_sub(1, std::memory_order_relaxed);
        if (it->second->producer != nullptr) {
            metrics_.streams_active.fetch_sub(1, std::memory_order_relaxed);
        }
        conns_.erase(it);
    }
    dead_.clear();
}

void EventLoop::update_interest(Connection& conn) {
    epoll_event ev{};
    ev.events = (conn.want_read ? EPOLLIN : 0U) | (conn.want_write ? EPOLLOUT : 0U);
    ev.data.u64 = conn.id;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.stream.fd(), &ev);
}

bool EventLoop::try_enqueue_task(std::function<void()> task) {
    {
        const MutexLock lock(tasks_mu_);
        if (tasks_.size() >= options_.queue_depth) {
            return false;
        }
        tasks_.push_back(std::move(task));
        metrics_.queue_depth.store(static_cast<std::int64_t>(tasks_.size()),
                                   std::memory_order_relaxed);
    }
    tasks_cv_.notify_one();
    return true;
}

void EventLoop::enqueue_task_unbounded(std::function<void()> task) {
    {
        const MutexLock lock(tasks_mu_);
        tasks_.push_back(std::move(task));
        metrics_.queue_depth.store(static_cast<std::int64_t>(tasks_.size()),
                                   std::memory_order_relaxed);
    }
    tasks_cv_.notify_one();
}

void EventLoop::push_completion(Completion done) {
    {
        const MutexLock lock(done_mu_);
        done_.push_back(std::move(done));
    }
    wake_loop();
}

void EventLoop::wake_loop() {
    if (wake_fd_ >= 0) {
        const std::uint64_t one = 1;
        // An 8-byte eventfd counter write cannot short-write, and a dropped
        // EINTR wake is redundant with the next one.
        // kinet-lint: allow(raw-io): eventfd wakeup, not socket IO
        (void)!::write(wake_fd_, &one, sizeof(one));
    }
}

}  // namespace kinet::service
