// SynthServer — synthetic-data-as-a-service over the kinetd wire protocol.
//
// The paper's deployment story (Sec. I) has every site run a local KiNETGAN
// and share only synthetic traffic; this server is that site-side component
// as a long-lived concurrent process.  One lightweight thread per connection
// does the blocking socket I/O; the actual request handling (training,
// sampling, validation — the CPU work) executes on the process-wide
// common::parallel pool, which the tensor kernels underneath also use.
// Per-request RNG seeding (SAMPLE ... seed=K) makes responses deterministic
// functions of the request, independent of how concurrent clients interleave.
#ifndef KINETGAN_SERVICE_SERVER_H
#define KINETGAN_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/kg/network_kg.hpp"
#include "src/service/protocol.hpp"
#include "src/service/registry.hpp"
#include "src/service/socket.hpp"

namespace kinet::service {

struct ServerOptions {
    /// Listen port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Default TRAIN epochs when the request does not pass epochs=.
    std::size_t default_epochs = 30;
    /// Default VALIDATE sample size when the request does not pass n=.
    std::size_t default_validate_rows = 1000;
};

class SynthServer {
public:
    explicit SynthServer(ServerOptions options = {});
    ~SynthServer();
    SynthServer(const SynthServer&) = delete;
    SynthServer& operator=(const SynthServer&) = delete;

    /// Binds the listener and starts accepting connections.
    void start();
    /// Unblocks the acceptor, closes live connections, joins all threads.
    /// Idempotent; also invoked by the destructor.
    void stop();

    /// The bound port (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept;
    [[nodiscard]] bool running() const noexcept { return running_.load(); }

    /// Executes one request against the registry — the transport-independent
    /// core, used directly by tests and by every connection thread.  Errors
    /// come back as ERR responses, never as exceptions.
    [[nodiscard]] Response handle(const Request& request);

    [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }

private:
    void accept_loop();
    /// Runs one connection's request loop; the stream is owned by the
    /// connection thread and registered in live_conns_ by accept_loop.
    void serve_connection(std::uint64_t id, TcpStream& stream);
    void reap_finished_connections();
    [[nodiscard]] Response dispatch(const Request& request);
    [[nodiscard]] Response handle_train(const Request& request);
    [[nodiscard]] Response handle_sample(const Request& request);
    [[nodiscard]] Response handle_validate(const Request& request);
    [[nodiscard]] Response handle_stats(const Request& request);
    [[nodiscard]] std::shared_ptr<ModelEntry> require_model(const std::string& name) const;

    ServerOptions options_;
    ModelRegistry registry_;
    kg::NetworkKg kg_;
    TcpListener listener_;
    std::thread acceptor_;
    std::atomic<bool> running_{false};

    std::mutex conns_mu_;
    std::unordered_map<std::uint64_t, TcpStream*> live_conns_;
    std::unordered_map<std::uint64_t, std::thread> conn_threads_;
    /// Connections whose serve loop has ended; their threads are joined by
    /// the acceptor on the next accept (and by stop()) so a long-lived
    /// daemon does not accumulate finished thread handles.
    std::vector<std::uint64_t> finished_conns_;
    std::uint64_t next_conn_id_ = 0;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_SERVER_H
