// SynthServer — synthetic-data-as-a-service over the kinetd wire protocol.
//
// The paper's deployment story (Sec. I) has every site run a local KiNETGAN
// and share only synthetic traffic; this server is that site-side component
// as a long-lived concurrent process.  An epoll event loop (EventLoop) owns
// every connection — non-blocking sockets, buffered framing, write
// backpressure — so thread count is bounded by the worker pool, not the
// connection count.  Cheap ops (PING, POLL, global STATS, ...) answer
// inline on the loop; real work (TRAIN, SAMPLE, VALIDATE, LOAD/SAVE) runs
// on the bounded request workers behind an admission-controlled queue that
// answers `ERR queue_full` rather than queueing without bound.  Streaming
// SAMPLEs run as resumable generator cursors: a client that stops reading
// suspends its own stream without holding a thread.  TRAIN jobs submitted
// with async=1 run on a small dedicated training executor (JobManager) —
// so SAMPLE latency is independent of how many fits are in flight.
// Per-request RNG seeding (SAMPLE ... seed=K) makes responses
// deterministic functions of the request, independent of how concurrent
// clients interleave.
#ifndef KINETGAN_SERVICE_SERVER_H
#define KINETGAN_SERVICE_SERVER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include <atomic>

#include "src/common/thread_annotations.hpp"

#include "src/core/kinetgan.hpp"
#include "src/kg/network_kg.hpp"
#include "src/service/cluster/cluster.hpp"
#include "src/service/event_loop.hpp"
#include "src/service/jobs.hpp"
#include "src/service/journal.hpp"
#include "src/service/metrics.hpp"
#include "src/service/persistence.hpp"
#include "src/service/protocol.hpp"
#include "src/service/registry.hpp"
#include "src/service/socket.hpp"

namespace kinet::service {

struct ServerOptions {
    /// Listen port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Default TRAIN epochs when the request does not pass epochs=.
    std::size_t default_epochs = 30;
    /// Default VALIDATE sample size when the request does not pass n=.
    std::size_t default_validate_rows = 1000;
    /// Dedicated training-executor threads for TRAIN ... async=1 jobs.
    std::size_t train_workers = 2;
    /// Directory confining client-supplied LOAD/SAVE snapshot paths: the
    /// wire path must be relative and stay inside this directory (`..` and
    /// absolute paths are rejected).  Empty disables LOAD/SAVE entirely.
    std::string snapshot_dir = ".";
    /// Same confinement for TRAIN source=csv:<path> dataset reads.  Empty
    /// disables CSV ingestion.
    std::string data_dir = ".";
    /// Open-connection cap; accepts beyond it get `ERR queue_full`.
    std::size_t max_connections = 4096;
    /// Bound on requests queued for the workers; past it, requests answer
    /// `ERR queue_full` instead of waiting.
    std::size_t queue_depth = 256;
    /// Worker threads executing non-fast requests and stream steps.
    std::size_t request_workers = 4;
    /// Registry memory budget over serialized model bytes (0 = unlimited);
    /// put() evicts least-recently-used models past it.
    std::uint64_t model_cache_bytes = 0;
    /// Registry idle TTL in milliseconds (0 = never expire).
    std::uint64_t model_ttl_ms = 0;
    /// Durable persistence: every registered model is write-through
    /// persisted (atomic snapshot + manifest) into snapshot_dir, and async
    /// jobs are journaled.  Requires a non-empty snapshot_dir.
    bool persist = false;
    /// On the first start(), reload the persisted registry from the
    /// manifest and resolve journaled jobs: terminal records become
    /// POLLable again, interrupted ones are marked failed ("interrupted by
    /// daemon restart") and, when resumable, resubmitted.  Implies persist.
    bool recover = false;
    /// Admin gate for the FAULT op.  Off (the default) rejects all wire
    /// failpoint control; the KINET_FAILPOINTS env var works regardless.
    bool enable_failpoints = false;
};

class SynthServer {
public:
    explicit SynthServer(ServerOptions options = {});
    ~SynthServer();
    SynthServer(const SynthServer&) = delete;
    SynthServer& operator=(const SynthServer&) = delete;

    /// Binds the listener and starts the event loop and request workers.
    void start();
    /// Stops the loop, closes live connections, joins the workers, and
    /// cancels in-flight training jobs (the training executor itself stays
    /// up, so start() after stop() restores full service).  Idempotent;
    /// also invoked by the destructor, which then joins the executor.
    void stop();
    /// Graceful shutdown (SIGTERM): stop admitting new work — non-fast
    /// requests answer the retryable `draining:` rejection so clients fail
    /// over — wait up to `timeout_ms` for in-flight requests, then stop().
    void drain(std::size_t timeout_ms);
    /// Chaos-test crash hatch: detaches the job journal and freezes the
    /// persistent store exactly as kill -9 would (no terminal records, no
    /// final snapshots), then tears down the process-local threads so the
    /// test can restart against the same snapshot_dir with recover=true.
    void crash_stop();

    /// The bound port (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept;
    [[nodiscard]] bool running() const noexcept;

    /// Executes one request against the registry — the transport-independent
    /// core, used directly by tests and by the event loop's handlers.
    /// Errors come back as ERR responses, never as exceptions.
    [[nodiscard]] Response handle(const Request& request);

    [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }
    [[nodiscard]] JobManager& jobs() noexcept { return jobs_; }
    [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }

    /// Joins this daemon into a fleet: builds the ring, starts peer health
    /// probing, and switches SAMPLE/VALIDATE/TRAIN routing on.  Callable
    /// before or after start() — tests bind ephemeral ports first and only
    /// then know every member's address.  Calling again replaces the
    /// membership (the old ClusterService is stopped).
    void enable_cluster(ClusterConfig config);
    /// Dynamic join (the --join flag): announces this node to `seed` via
    /// the JOIN op, adopts the fleet view + ring parameters the seed
    /// returns, pulls the snapshots the new ring places here, and only then
    /// marks itself active — the first request routed to this node finds
    /// its model present.  `tuning` carries self plus local overrides;
    /// its peer list is replaced by the fleet view.
    void join_fleet(ClusterConfig tuning, const PeerAddress& seed);
    /// The live cluster service; nullptr while standalone.
    [[nodiscard]] std::shared_ptr<ClusterService> cluster() const;

    /// One synchronous anti-entropy round (what the cluster prober runs
    /// every anti_entropy_interval_ms): pull each up peer's DIGEST, and for
    /// models this node should hold (self in the ring preference list) that
    /// are missing or strictly older than the peer's copy, FETCH and admit
    /// the peer's snapshot.  Returns how many models were repaired.
    std::size_t anti_entropy_now();

    /// One synchronous rebalance round (what the cluster prober runs after
    /// any epoch change): pull snapshots the current ring places here that
    /// this node is missing (or holds stale), then retire local snapshots
    /// the ring moved elsewhere — each pushed to its new owner before the
    /// local copy is dropped, so the fleet never loses its only copy.
    /// Returns how many snapshots moved.
    std::size_t rebalance_now();

private:
    /// Everything a training run needs, resolved and validated *before* the
    /// job is queued — a malformed async TRAIN fails synchronously.
    struct TrainPlan {
        std::string model;
        bool unsw = false;       // domain=unsw (else the lab domain)
        std::string csv_path;    // confined path; empty -> simulate traffic
        std::size_t records = 0;
        std::uint64_t sim_seed = 0;
        double attack = 1.0;
        double split_frac = 0.0;
        std::uint64_t split_seed = 0;
        core::KiNetGanOptions opts;
    };

    struct TrainResult {
        std::unique_ptr<core::KiNetGan> model;
        std::size_t rows = 0;  // training rows after the held-out split
    };

    /// One SAMPLE request's arguments, validated up front (shared by the
    /// framed and streaming paths).
    struct SampleSpec {
        std::size_t n = 0;
        std::uint64_t seed = 0;
        std::string cond_column;  // empty -> unconditional
        std::string cond_value;
        std::size_t chunk_rows = 0;  // streaming chunk bound
    };

    class SampleStreamProducer;
    class ClusterStreamProducer;

    /// handle() plus per-op latency metrics — the loop's execute handler.
    [[nodiscard]] std::string execute_framed(const Request& request);
    /// True for ops the loop answers inline (PING, POLL, CANCEL, JOBS,
    /// DROP, global STATS) — they bypass the request queue.
    [[nodiscard]] static bool is_fast_op(const Request& request);
    /// Returns a stream producer iff the request is SAMPLE ... stream=1
    /// (validating spec and model up front); nullptr otherwise.
    [[nodiscard]] std::unique_ptr<StreamProducer> open_stream_producer(const Request& request);

    [[nodiscard]] Response dispatch(const Request& request);
    /// Cluster routing for SAMPLE/VALIDATE/TRAIN: nullopt means "handle
    /// locally"; otherwise the response relayed from the model's owner
    /// (walking the ring preference list past down peers).  Runs on request
    /// workers — a forward is a blocking peer RPC whose response completes
    /// through the ordinary worker-completion path.
    [[nodiscard]] std::optional<Response> maybe_forward(const Request& request);
    /// Async TRAIN for a model another node owns: a local proxy job that
    /// submits the training to `peer` and mirrors its progress, so the job
    /// id in the response is POLLable *here*.
    [[nodiscard]] Response forward_train_async(const std::shared_ptr<ClusterService>& c,
                                               const std::string& peer, Request request);
    [[nodiscard]] Response handle_train(const Request& request);
    [[nodiscard]] Response handle_fedtrain(const Request& request);
    [[nodiscard]] Response handle_cluster(const Request& request);
    [[nodiscard]] Response handle_replicate(const Request& request);
    [[nodiscard]] Response handle_fetch(const Request& request);
    [[nodiscard]] Response handle_fault(const Request& request);
    [[nodiscard]] Response handle_digest(const Request& request);
    [[nodiscard]] Response handle_join(const Request& request);
    [[nodiscard]] Response handle_leave(const Request& request);
    [[nodiscard]] Response handle_epoch(const Request& request);
    [[nodiscard]] Response handle_sample(const Request& request);
    [[nodiscard]] SampleSpec parse_sample_spec(const Request& request, bool streaming) const;
    /// Drives the model's streaming sampler for `spec` (conditional or not).
    static void run_sample_stream(const core::KiNetGan& model, const SampleSpec& spec,
                                  std::size_t chunk_rows,
                                  const core::KiNetGan::SampleSink& sink);
    [[nodiscard]] Response handle_validate(const Request& request);
    [[nodiscard]] Response handle_stats(const Request& request);
    [[nodiscard]] Response handle_poll(const Request& request);
    [[nodiscard]] Response handle_cancel(const Request& request);
    [[nodiscard]] Response handle_jobs() const;
    [[nodiscard]] TrainPlan parse_train_plan(const Request& request) const;
    [[nodiscard]] data::Table build_training_table(const TrainPlan& plan) const;
    /// Fits a fresh model per the plan; `context` (may be null) receives
    /// epoch progress and carries the cooperative cancellation flag.
    [[nodiscard]] TrainResult run_training(const TrainPlan& plan,
                                           JobManager::Context* context) const;
    [[nodiscard]] std::shared_ptr<ModelEntry> require_model(const std::string& name) const;
    /// require_model with pull-through replication: on a local miss in a
    /// fleet, fetch the snapshot from an up member of the model's
    /// preference list, admit it to the registry (whose LRU byte budget is
    /// the cache policy), and serve it locally from then on.
    [[nodiscard]] std::shared_ptr<ModelEntry> acquire_model(const std::string& name,
                                                            bool allow_pull_through);
    /// registry_.put plus write-through persistence: when the store is
    /// attached (and the server has not "crashed"), the snapshot container
    /// and manifest land durably before the call returns — a persistence
    /// failure fails the registration.  `container_out` (optional) receives
    /// the container so publish paths do not re-serialize.  Returns the
    /// stamped revision.
    std::uint64_t admit_model(const std::string& name, std::unique_ptr<core::KiNetGan> model,
                              std::uint64_t revision = 0, std::string* container_out = nullptr);
    /// The recover=true path of the first start(): manifest models back into
    /// the registry, journal replayed into restored/resubmitted jobs.
    void recover_state();

    ServerOptions options_;
    ModelRegistry registry_;
    kg::NetworkKg kg_lab_;
    kg::NetworkKg kg_unsw_;
    JobManager jobs_;
    Metrics metrics_;
    std::unique_ptr<EventLoop> loop_;
    /// Durable store + journal; nullptr when persistence is off.  Set once
    /// in the constructor, so worker threads read them without a lock.
    std::unique_ptr<PersistentStore> store_;
    std::shared_ptr<JobJournal> journal_;
    /// Recovery runs once, on the first start() after construction.
    bool recovered_ = false;
    /// crash_stop() raised this: persistence writes stop mid-flight, as a
    /// real kill -9 would stop them.
    std::atomic<bool> crashed_{false};
    // Robustness counters surfaced by the global STATS payload.
    std::atomic<std::uint64_t> recovered_models_{0};
    std::atomic<std::uint64_t> recovered_jobs_{0};
    std::atomic<std::uint64_t> resubmitted_jobs_{0};
    std::atomic<std::uint64_t> anti_entropy_rounds_{0};
    std::atomic<std::uint64_t> repairs_{0};
    mutable Mutex cluster_mu_;
    std::shared_ptr<ClusterService> cluster_ KINET_GUARDED_BY(cluster_mu_);
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_SERVER_H
