// SynthServer — synthetic-data-as-a-service over the kinetd wire protocol.
//
// The paper's deployment story (Sec. I) has every site run a local KiNETGAN
// and share only synthetic traffic; this server is that site-side component
// as a long-lived concurrent process.  One lightweight thread per connection
// does the blocking socket I/O; short request handling (sampling, validation)
// executes on the process-wide common::parallel pool, while TRAIN jobs
// submitted with async=1 run on a small dedicated training executor
// (JobManager) — so SAMPLE latency is independent of how many fits are in
// flight.  Per-request RNG seeding (SAMPLE ... seed=K) makes responses
// deterministic functions of the request, independent of how concurrent
// clients interleave.
#ifndef KINETGAN_SERVICE_SERVER_H
#define KINETGAN_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/kinetgan.hpp"
#include "src/kg/network_kg.hpp"
#include "src/service/jobs.hpp"
#include "src/service/protocol.hpp"
#include "src/service/registry.hpp"
#include "src/service/socket.hpp"

namespace kinet::service {

struct ServerOptions {
    /// Listen port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Default TRAIN epochs when the request does not pass epochs=.
    std::size_t default_epochs = 30;
    /// Default VALIDATE sample size when the request does not pass n=.
    std::size_t default_validate_rows = 1000;
    /// Dedicated training-executor threads for TRAIN ... async=1 jobs.
    std::size_t train_workers = 2;
    /// Directory confining client-supplied LOAD/SAVE snapshot paths: the
    /// wire path must be relative and stay inside this directory (`..` and
    /// absolute paths are rejected).  Empty disables LOAD/SAVE entirely.
    std::string snapshot_dir = ".";
    /// Same confinement for TRAIN source=csv:<path> dataset reads.  Empty
    /// disables CSV ingestion.
    std::string data_dir = ".";
};

class SynthServer {
public:
    explicit SynthServer(ServerOptions options = {});
    ~SynthServer();
    SynthServer(const SynthServer&) = delete;
    SynthServer& operator=(const SynthServer&) = delete;

    /// Binds the listener and starts accepting connections.
    void start();
    /// Unblocks the acceptor, closes live connections and joins their
    /// threads, and cancels in-flight training jobs (the training executor
    /// itself stays up, so start() after stop() restores full service).
    /// Idempotent; also invoked by the destructor, which then joins the
    /// executor.
    void stop();

    /// The bound port (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept;
    [[nodiscard]] bool running() const noexcept { return running_.load(); }

    /// Executes one request against the registry — the transport-independent
    /// core, used directly by tests and by every connection thread.  Errors
    /// come back as ERR responses, never as exceptions.
    [[nodiscard]] Response handle(const Request& request);

    [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }
    [[nodiscard]] JobManager& jobs() noexcept { return jobs_; }

private:
    /// Everything a training run needs, resolved and validated *before* the
    /// job is queued — a malformed async TRAIN fails synchronously.
    struct TrainPlan {
        std::string model;
        bool unsw = false;       // domain=unsw (else the lab domain)
        std::string csv_path;    // confined path; empty -> simulate traffic
        std::size_t records = 0;
        std::uint64_t sim_seed = 0;
        double attack = 1.0;
        double split_frac = 0.0;
        std::uint64_t split_seed = 0;
        core::KiNetGanOptions opts;
    };

    struct TrainResult {
        std::unique_ptr<core::KiNetGan> model;
        std::size_t rows = 0;  // training rows after the held-out split
    };

    /// One SAMPLE request's arguments, validated up front (shared by the
    /// framed and streaming paths).
    struct SampleSpec {
        std::size_t n = 0;
        std::uint64_t seed = 0;
        std::string cond_column;  // empty -> unconditional
        std::string cond_value;
        std::size_t chunk_rows = 0;  // streaming chunk bound
    };

    void accept_loop();
    /// Runs one connection's request loop; the stream is owned by the
    /// connection thread and registered in live_conns_ by accept_loop.
    void serve_connection(std::uint64_t id, TcpStream& stream);
    void reap_finished_connections();
    [[nodiscard]] Response dispatch(const Request& request);
    [[nodiscard]] Response handle_train(const Request& request);
    [[nodiscard]] Response handle_sample(const Request& request);
    /// SAMPLE ... stream=1: writes the chunked frame sequence directly to
    /// the connection (rows go out as they are generated — the daemon never
    /// holds more than one chunk), so `n` is not capped by kMaxSampleRows;
    /// the per-chunk row bound is.  Runs on the connection thread.
    void handle_sample_stream(const Request& request, TcpStream& stream);
    [[nodiscard]] SampleSpec parse_sample_spec(const Request& request, bool streaming) const;
    /// Drives the model's streaming sampler for `spec` (conditional or not).
    static void run_sample_stream(const core::KiNetGan& model, const SampleSpec& spec,
                                  std::size_t chunk_rows,
                                  const core::KiNetGan::SampleSink& sink);
    [[nodiscard]] Response handle_validate(const Request& request);
    [[nodiscard]] Response handle_stats(const Request& request);
    [[nodiscard]] Response handle_poll(const Request& request) const;
    [[nodiscard]] Response handle_cancel(const Request& request);
    [[nodiscard]] Response handle_jobs() const;
    [[nodiscard]] TrainPlan parse_train_plan(const Request& request) const;
    [[nodiscard]] data::Table build_training_table(const TrainPlan& plan) const;
    /// Fits a fresh model per the plan; `context` (may be null) receives
    /// epoch progress and carries the cooperative cancellation flag.
    [[nodiscard]] TrainResult run_training(const TrainPlan& plan,
                                           JobManager::Context* context) const;
    [[nodiscard]] std::shared_ptr<ModelEntry> require_model(const std::string& name) const;

    ServerOptions options_;
    ModelRegistry registry_;
    kg::NetworkKg kg_lab_;
    kg::NetworkKg kg_unsw_;
    JobManager jobs_;
    TcpListener listener_;
    std::thread acceptor_;
    std::atomic<bool> running_{false};

    std::mutex conns_mu_;
    std::unordered_map<std::uint64_t, TcpStream*> live_conns_;
    std::unordered_map<std::uint64_t, std::thread> conn_threads_;
    /// Connections whose serve loop has ended; their threads are joined by
    /// the acceptor on the next accept (and by stop()) so a long-lived
    /// daemon does not accumulate finished thread handles.
    std::vector<std::uint64_t> finished_conns_;
    std::uint64_t next_conn_id_ = 0;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_SERVER_H
