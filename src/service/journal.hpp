// Append-only job journal behind crash-safe TRAIN/FEDTRAIN recovery.
//
// Every async job writes two durable records over its lifetime:
//
//   v1 submit <id> <epochs_total> <hex(model)> <hex(request-line)>
//   v1 term <id> <state> <hex(error)>
//
// (hex keeps untrusted strings — model names, wire lines, error text — as
// single whitespace-free tokens; the request line is the original KNP/1
// request, so an interrupted job can be resubmitted verbatim on restart.)
// Each append is fsynced before it returns, so a record exists on disk iff
// the caller observed the append succeed.  A `submit` with no matching
// `term` after a crash is *the* definition of an interrupted job: recovery
// marks it failed ("interrupted by daemon restart") and, when the record
// carries its request line, resubmits it as a fresh job.
//
// Replay is deliberately tolerant of a torn tail: a crash mid-append leaves
// at most one malformed final line, which replay stops at (all records
// before it were individually fsynced and are intact).
#ifndef KINETGAN_SERVICE_JOURNAL_H
#define KINETGAN_SERVICE_JOURNAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/service/jobs.hpp"

namespace kinet::service {

class JobJournal {
public:
    struct Record {
        enum class Kind { submit, terminal };
        Kind kind = Kind::submit;
        std::uint64_t id = 0;
        // submit records:
        std::size_t epochs_total = 0;
        std::string model;
        std::string request_line;  // empty = not resumable
        // terminal records:
        JobState state = JobState::done;
        std::string error;
    };

    explicit JobJournal(std::string path) : path_(std::move(path)) {}

    /// Durably appends one submit record; throws on IO failure (the caller
    /// — JobManager::submit — then fails the submission cleanly).
    void append_submit(std::uint64_t id, std::size_t epochs_total,
                       const std::string& model, const std::string& request_line);

    /// Durably appends one terminal record.
    void append_terminal(std::uint64_t id, JobState state, const std::string& error);

    /// Parses every intact record of the journal at `path`; a missing file
    /// yields an empty vector, and replay stops silently at the first
    /// malformed line (the torn tail of a crashed append).
    [[nodiscard]] static std::vector<Record> replay(const std::string& path);

    /// Truncates the journal at `path` to empty, durably — recovery rotates
    /// the journal before re-journaling the restored state.
    static void truncate(const std::string& path);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_JOURNAL_H
