#include "src/service/persistence.hpp"

#include <filesystem>
#include <optional>
#include <sstream>

#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"
#include "src/common/fsio.hpp"
#include "src/common/text.hpp"

namespace kinet::service {
namespace {

constexpr std::string_view kManifestMagic = "KNETMANIFEST 1";

std::optional<std::uint64_t> parse_field(const std::string& token,
                                         std::string_view key) {
    if (!text::starts_with(token, key)) {
        return std::nullopt;
    }
    const std::string value = token.substr(key.size());
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(value, &used);
        if (used != value.size()) {
            return std::nullopt;
        }
        return v;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

}  // namespace

PersistentStore::PersistentStore(std::string dir) : dir_(std::move(dir)) {
    namespace fs = std::filesystem;
    KINET_CHECK(!dir_.empty(), "persistence: empty store directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    KINET_CHECK(!ec, "persistence: cannot create " + dir_ + ": " + ec.message());

    // Load the manifest; it is atomically replaced on every update, so it
    // parses whole or does not exist.  Individual malformed lines (a future
    // format extension, say) are skipped rather than fatal.
    std::string content;
    try {
        content = fsio::read_file(manifest_path());
    } catch (const std::exception&) {
        return;  // fresh store
    }
    std::stringstream ss(content);
    std::string line;
    if (!std::getline(ss, line) || line != kManifestMagic) {
        return;
    }
    const MutexLock lock(mu_);
    while (std::getline(ss, line)) {
        const auto tokens = text::split(line, ' ');
        if (tokens.size() != 4) {
            continue;
        }
        DigestEntry entry;
        try {
            entry.name = text::hex_decode(tokens[0]);
        } catch (const std::exception&) {
            continue;
        }
        const auto rev = parse_field(tokens[1], "rev=");
        const auto bytes = parse_field(tokens[2], "bytes=");
        const auto checksum = parse_field(tokens[3], "checksum=");
        if (entry.name.empty() || !rev.has_value() || !bytes.has_value() ||
            !checksum.has_value()) {
            continue;
        }
        entry.revision = *rev;
        entry.bytes = *bytes;
        entry.checksum = *checksum;
        entries_[entry.name] = std::move(entry);
    }
}

std::string PersistentStore::model_path(const std::string& name) const {
    return dir_ + "/m_" + text::hex_encode(name) + ".snap";
}

std::string PersistentStore::manifest_path() const { return dir_ + "/MANIFEST"; }

std::string PersistentStore::journal_path() const { return dir_ + "/jobs.journal"; }

void PersistentStore::write_manifest_locked() {
    std::string out(kManifestMagic);
    out += "\n";
    for (const auto& [name, entry] : entries_) {
        out += text::hex_encode(name) + " rev=" + std::to_string(entry.revision) +
               " bytes=" + std::to_string(entry.bytes) +
               " checksum=" + std::to_string(entry.checksum) + "\n";
    }
    fsio::replace_file_durable(manifest_path(), out);
}

void PersistentStore::store(const DigestEntry& entry, const std::string& container) {
    KINET_CHECK(!entry.name.empty(), "persistence: empty model name");
    const std::string path = model_path(entry.name);
    // Snapshot first, manifest second: a crash between the two leaves an
    // orphan snapshot the (old) manifest never names — still consistent.
    fsio::write_file_durable(path + ".tmp", container);
    KINET_FAILPOINT("snapshot.commit");
    fsio::rename_durable(path + ".tmp", path);
    const MutexLock lock(mu_);
    entries_[entry.name] = entry;
    write_manifest_locked();
}

void PersistentStore::remove(const std::string& name) {
    const MutexLock lock(mu_);
    if (entries_.erase(name) == 0) {
        return;
    }
    write_manifest_locked();
    std::error_code ec;
    std::filesystem::remove(model_path(name), ec);  // best effort
}

std::vector<DigestEntry> PersistentStore::manifest() const {
    const MutexLock lock(mu_);
    std::vector<DigestEntry> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
        out.push_back(entry);
    }
    return out;
}

std::string PersistentStore::load(const std::string& name) const {
    {
        const MutexLock lock(mu_);
        if (entries_.find(name) == entries_.end()) {
            throw Error("persistence: no stored model named " + name);
        }
    }
    return fsio::read_file(model_path(name));
}

}  // namespace kinet::service
