// Blocking client for the kinetd wire protocol.
//
// Wraps one TCP connection and exposes the protocol ops as typed calls; the
// raw rpc() escape hatch sends any request line.  Protocol-level failures
// (ERR responses) surface as kinet::Error carrying the server's message.
#ifndef KINETGAN_SERVICE_CLIENT_H
#define KINETGAN_SERVICE_CLIENT_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/data/table.hpp"
#include "src/service/cluster/membership.hpp"
#include "src/service/cluster/ring.hpp"
#include "src/service/protocol.hpp"
#include "src/service/socket.hpp"

namespace kinet::service {

/// Arguments for SynthClient::train (mirrors the TRAIN op's key=values).
struct TrainSpec {
    std::size_t records = 2000;
    std::uint64_t sim_seed = 7;
    double attack_intensity = 1.0;
    /// Held-out fraction stripped before training (0 trains on everything).
    double split_frac = 0.0;
    std::uint64_t split_seed = 0;
    std::size_t epochs = 30;
    std::uint64_t gan_seed = 42;
    /// Training domain: "lab" (default) or "unsw".
    std::string domain = "lab";
    /// Server-side CSV dataset, relative to the daemon's data directory;
    /// empty simulates traffic from (records, sim_seed, attack_intensity).
    std::string csv_source;
};

/// Client-side robustness knobs.  All default to off, preserving the
/// original block-forever behaviour for callers that want it.
struct ClientOptions {
    /// Per-attempt TCP connect timeout (0 = the OS default, which can be
    /// minutes).  The ~2 s bind-race retry loop applies on top.
    std::size_t connect_timeout_ms = 0;
    /// Connect attempts before giving up (100 ms apart).  The default 20
    /// absorbs the race against a server still binding its port; a cluster
    /// health probe wants 1 so a dead peer costs one refused connect, not
    /// two seconds of retrying.
    std::size_t connect_attempts = 20;
    /// SO_RCVTIMEO on the connected socket: any read (status line, payload,
    /// stream frame) that stalls longer throws kinet::Error("socket:
    /// receive timed out") instead of blocking forever on a hung or killed
    /// server.  0 = never time out.
    std::size_t recv_timeout_ms = 0;
    /// Automatic retries when the server answers a *retryable* coded ERR
    /// (queue_full, draining, breaker_open, unavailable — the connection
    /// stays usable).  0 = the rejection surfaces as an error on the first
    /// hit.  Permanent errors are never retried.
    std::size_t queue_full_retries = 0;
    /// Base backoff between retryable-ERR retries; attempt k sleeps k times
    /// this long (linear backoff).
    std::size_t retry_backoff_ms = 50;
    /// Transparent reconnect-and-resend when the connection turns out dead
    /// at use time (peer restarted: ECONNRESET/EPIPE/closed/timeout).  Up
    /// to `reconnect_attempts` fresh sockets are tried, each after a
    /// jittered exponential backoff, before the failure surfaces.
    bool reconnect_on_reset = false;
    /// Reconnect budget for reconnect_on_reset (per rpc).
    std::size_t reconnect_attempts = 1;
    /// Base of the jittered exponential backoff between reconnects.
    std::size_t reconnect_backoff_ms = 50;
};

class SynthClient {
public:
    /// Connects to a kinetd instance; retries for up to ~2 s to absorb the
    /// race against a server that is still binding its port.
    [[nodiscard]] static SynthClient connect(const std::string& host, std::uint16_t port,
                                             const ClientOptions& options = {});

    /// Sends one request and reads the framed response; throws kinet::Error
    /// on ERR responses and transport failures.  `ERR queue_full` responses
    /// are retried per ClientOptions before surfacing.
    Response rpc(const Request& request);

    /// rpc() that hands back ERR responses as Response{ok=false} instead of
    /// throwing — the forwarding path needs to relay a peer's ERR verbatim,
    /// not re-frame it as an exception message.  Transport failures still
    /// throw (the connection is unusable either way).
    Response call(const Request& request);

    /// Liveness probe.
    void ping();
    /// Trains `model` server-side on simulated site traffic; returns the
    /// server's key=value report (rows, seconds, adherence, ...).
    std::map<std::string, std::string> train(const std::string& model, const TrainSpec& spec);
    /// Queues the same training as an async job (TRAIN ... async=1) and
    /// returns its job id immediately; the daemon keeps serving SAMPLEs
    /// while the fit runs on its training executor.
    std::uint64_t train_async(const std::string& model, const TrainSpec& spec);
    /// POLL <id>: job state/progress as key=value pairs (job, model, state,
    /// epochs_done, epochs_total, error when failed).
    std::map<std::string, std::string> poll_job(std::uint64_t id);
    /// CANCEL <id>: requests cancellation; returns the post-cancel info.
    std::map<std::string, std::string> cancel_job(std::uint64_t id);
    /// JOBS: the raw one-line-per-job listing payload.
    [[nodiscard]] std::string jobs();
    /// POLL <id> wait=1: long-poll that parks server-side until the job is
    /// terminal or `timeout_ms` elapses, returning the job info either way.
    std::map<std::string, std::string> poll_job_wait(std::uint64_t id, std::size_t timeout_ms);
    /// Blocks until the job reaches a terminal state (done/failed/cancelled)
    /// and returns its final info map.  Implemented as repeated bounded
    /// long-polls (`POLL wait=1`), so the client sends one request per
    /// `wait_slice_ms` instead of busy-polling.
    std::map<std::string, std::string> wait_for_job(std::uint64_t id,
                                                    std::size_t wait_slice_ms = 1000);
    /// Draws n rows from the model's seed-derived stream.  `cond` optionally
    /// pins one conditional column as "column:value".
    [[nodiscard]] data::Table sample(const std::string& model, std::size_t n,
                                     std::uint64_t seed,
                                     const std::vector<data::ColumnMeta>& schema,
                                     const std::string& cond = {});
    /// Raw CSV text of a SAMPLE response (schema-free access).
    [[nodiscard]] std::string sample_csv(const std::string& model, std::size_t n,
                                         std::uint64_t seed, const std::string& cond = {});
    /// Streaming SAMPLE (stream=1): the server frames the CSV as row
    /// chunks (header only in the first) followed by an END trailer, so n
    /// is not subject to the framed per-request row cap and neither side
    /// ever holds the whole table.  `on_chunk` receives each chunk's CSV
    /// fragment in order; `chunk_rows` bounds rows per chunk (0 uses the
    /// server default).  Returns the trailer's total row count.  Throws on
    /// ERR frames, including mid-stream aborts.
    std::uint64_t sample_stream(const std::string& model, std::size_t n, std::uint64_t seed,
                                const std::function<void(const std::string& csv_chunk)>& on_chunk,
                                std::size_t chunk_rows = 0, const std::string& cond = {});
    /// sample_stream reassembled into a Table (convenience for callers that
    /// do want the whole thing client-side).
    [[nodiscard]] data::Table sample_streamed(const std::string& model, std::size_t n,
                                              std::uint64_t seed,
                                              const std::vector<data::ColumnMeta>& schema,
                                              std::size_t chunk_rows = 0,
                                              const std::string& cond = {});
    /// KG validity rate of a fresh server-side draw.
    [[nodiscard]] double validate(const std::string& model, std::size_t n, std::uint64_t seed);
    /// STATS payload, parsed into key=value pairs (model-level form).
    std::map<std::string, std::string> stats(const std::string& model);
    void save(const std::string& model, const std::string& path);
    void load(const std::string& model, const std::string& path);
    /// CLUSTER [model]: ring/peer view (or a model's placement), parsed
    /// into key=value pairs.
    std::map<std::string, std::string> cluster(const std::string& model = {});
    /// REPLICATE: pushes a serialized snapshot container to the server,
    /// which verifies the checksum and registers the model.
    void replicate(const std::string& model, const std::string& snapshot_bytes);
    /// FETCH: pulls the model's snapshot container bytes.
    [[nodiscard]] std::string fetch(const std::string& model);
    /// FEDTRAIN ... async job: trains locally on the server's site data and
    /// publishes the snapshot to every peer; returns the job id.
    std::uint64_t fedtrain_async(const std::string& model, const TrainSpec& spec);
    /// Polite shutdown of this connection.
    void quit();

private:
    SynthClient(TcpStream stream, ClientOptions options, std::string host, std::uint16_t port)
        : stream_(std::move(stream)), options_(options), host_(std::move(host)), port_(port) {}

    /// rpc() minus the retryable-ERR retry loop.
    Response rpc_once(const Request& request);
    /// rpc_once wrapped in the budgeted reconnect-on-reset retry loop.
    Response rpc_transport(const Request& request);

    TcpStream stream_;
    ClientOptions options_;
    std::string host_;       // reconnect target (reconnect_on_reset)
    std::uint16_t port_ = 0;
};

/// Parses a key=value-lines payload (TRAIN/VALIDATE/STATS responses).
[[nodiscard]] std::map<std::string, std::string> parse_kv_payload(const std::string& payload);

/// Ring-aware client: routes each request straight to the member that owns
/// its model instead of paying a forwarding hop on a random member.
///
/// On first use (and on refresh()) it pulls the fleet's membership view and
/// ring parameters via the EPOCH op from the first reachable seed, builds
/// the same consistent-hash ring the servers use, and keeps one pooled
/// SynthClient per member.  Every routed request is stamped with the view's
/// epoch; when membership changed since, the server answers the retryable
/// `wrong_owner` rejection (carrying its current epoch) and the client
/// refreshes its view and re-routes — so a stale client converges in one
/// round-trip instead of silently mis-routing forever.  Transport failures
/// fail over along the model's preference list, then across one view
/// refresh.  Not thread-safe (like SynthClient): one instance per thread.
class RingClient {
public:
    /// `seeds` are bootstrap endpoints (any fleet member works — the view
    /// pull returns everyone).  `options` applies to every per-member
    /// connection; keep connect_attempts small so a dead member costs one
    /// refused connect during failover.
    explicit RingClient(std::vector<PeerAddress> seeds, ClientOptions options = {});

    /// Re-pulls the fleet view from the first reachable known member or
    /// seed.  Called automatically on first use and after `wrong_owner`.
    void refresh();

    /// The cached view's epoch (0 until the first refresh).
    [[nodiscard]] std::uint64_t epoch() const noexcept { return view_.epoch; }
    /// The member this client would route `model` to under the cached view.
    [[nodiscard]] std::string owner_of(const std::string& model);
    /// `wrong_owner` rejections absorbed so far (each one refreshed the
    /// view and re-routed) — observability for tests and callers.
    [[nodiscard]] std::uint64_t reroutes() const noexcept { return reroutes_; }

    /// Routes one request by the cached ring (epoch-stamped) and returns
    /// the response; ERR responses come back as Response{ok=false} except
    /// `wrong_owner`, which is absorbed by a refresh + re-route.  Throws
    /// when no candidate member is reachable across two view generations.
    Response rpc(Request request);

    /// Typed conveniences over rpc() — these throw on ERR responses.
    [[nodiscard]] std::string sample_csv(const std::string& model, std::size_t n,
                                         std::uint64_t seed, const std::string& cond = {});
    [[nodiscard]] double validate(const std::string& model, std::size_t n,
                                  std::uint64_t seed);
    std::map<std::string, std::string> train(const std::string& model, const TrainSpec& spec);

private:
    void ensure_view();
    /// Adopts an EPOCH payload: view, ring parameters, rebuilt ring.
    void adopt_payload(const std::string& payload);
    /// The pooled connection to `name`, connecting on first use; throws
    /// when the member is unknown or unreachable.
    SynthClient& member_client(const std::string& name);
    /// Failover order for `model`: its preference list under the cached
    /// ring, then the remaining on-ring members.
    [[nodiscard]] std::vector<std::string> candidates(const std::string& model) const;

    std::vector<PeerAddress> seeds_;
    ClientOptions options_;
    MemberView view_;
    std::unique_ptr<HashRing> ring_;
    std::size_t virtual_nodes_ = 64;
    std::size_t replicas_ = 2;
    std::map<std::string, SynthClient> clients_;
    std::uint64_t reroutes_ = 0;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_CLIENT_H
