#include "src/service/server.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/common/failpoint.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/data/split.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/netsim/unsw_synthesizer.hpp"
#include "src/service/client.hpp"
#include "src/service/snapshot.hpp"

namespace kinet::service {
namespace {

/// Upper bound on rows per framed SAMPLE/VALIDATE response — protects the
/// daemon from a single response monopolising memory.  Streaming SAMPLEs
/// (stream=1) are bounded per *chunk* instead, so n itself is uncapped:
/// rows leave the process as they are generated.
constexpr std::uint64_t kMaxSampleRows = 1'000'000;

/// Default rows per streamed chunk when the request does not pass chunk=.
constexpr std::uint64_t kDefaultStreamChunkRows = 65'536;

/// Ceiling on a `POLL wait=` long-poll — it parks a request worker, so the
/// server, not the client, bounds how long that can last.
constexpr std::uint64_t kMaxPollWaitMs = 30'000;

/// True once a peer has forwarded this request (fwd=1): it must be answered
/// locally, never forwarded again.
bool is_forwarded(const Request& request) {
    return request.kv.find(std::string(kForwardedKey)) != request.kv.end();
}

std::string kv_line(const std::string& key, const std::string& value) {
    return key + "=" + value + "\n";
}

Response error_response(std::string message) {
    Response r;
    r.ok = false;
    r.error = std::move(message);
    return r;
}

/// Resolves a client-supplied relative path inside `dir`.  The wire path is
/// untrusted: absolute paths and any `..` component are rejected, so the
/// protocol can never become an arbitrary filesystem read/write primitive.
/// An empty `dir` means the operator disabled the capability.
std::string resolve_confined(const std::string& dir, const std::string& wire_path,
                             const std::string& what) {
    namespace fs = std::filesystem;
    if (dir.empty()) {
        throw Error(what + ": disabled by server configuration");
    }
    if (wire_path.empty()) {
        throw Error(what + ": empty path");
    }
    const fs::path path(wire_path);
    if (path.is_absolute()) {
        throw Error(what + ": absolute paths are not allowed");
    }
    for (const auto& part : path) {
        if (part == "..") {
            throw Error(what + ": path escapes the configured directory");
        }
    }
    return (fs::path(dir) / path).lexically_normal().string();
}

Response job_info_response(const JobInfo& info) {
    Response r;
    r.payload += kv_line("job", std::to_string(info.id));
    r.payload += kv_line("model", info.model);
    r.payload += kv_line("state", std::string(job_state_name(info.state)));
    r.payload += kv_line("epochs_done", std::to_string(info.epochs_done));
    r.payload += kv_line("epochs_total", std::to_string(info.epochs_total));
    if (info.state == JobState::failed) {
        r.payload += kv_line("error", info.error);
    }
    return r;
}

/// True iff the request is SAMPLE ... stream=1 (any non-"0" value).
bool wants_stream(const Request& request) {
    if (request.op != Op::sample) {
        return false;
    }
    const auto it = request.kv.find("stream");
    return it != request.kv.end() && it->second != "0";
}

}  // namespace

/// Resumable streaming SAMPLE: wraps the model's pull cursor in the event
/// loop's StreamProducer shape.  Each next_frame() emits one CHUNK frame
/// (CSV; header row only in the first chunk), then the END trailer — or a
/// newline-sanitised mid-stream ERR where the next frame would have been.
/// Holding the ModelEntry shared_ptr keeps the model alive across
/// suspensions even if it is concurrently dropped, replaced or evicted.
class SynthServer::SampleStreamProducer : public StreamProducer {
public:
    SampleStreamProducer(std::shared_ptr<ModelEntry> entry,
                         std::unique_ptr<core::KiNetGan::StreamCursor> cursor,
                         Metrics& metrics)
        : entry_(std::move(entry)), cursor_(std::move(cursor)), metrics_(metrics) {}

    bool next_frame(std::string& out) override {
        out.clear();
        try {
            const data::Table* chunk = cursor_->next();
            if (chunk != nullptr) {
                payload_.clear();
                csv::serialize_append(chunk->to_csv(), /*include_header=*/chunks_ == 0,
                                      payload_);
                out = "CHUNK " + std::to_string(payload_.size()) + "\n";
                out += payload_;
                rows_ += chunk->rows();
                ++chunks_;
                return true;
            }
            out = "END rows=" + std::to_string(rows_) +
                  " chunks=" + std::to_string(chunks_) + "\n";
            entry_->requests.fetch_add(1, std::memory_order_relaxed);
            entry_->rows_served.fetch_add(rows_, std::memory_order_relaxed);
            metrics_.record_rows(rows_);
            metrics_.record_op(Op::sample,
                               static_cast<std::uint64_t>(watch_.millis() * 1000.0));
            return false;
        } catch (const std::exception& e) {
            std::string message = e.what();
            std::replace(message.begin(), message.end(), '\n', ' ');
            out = "ERR " + message + "\n";
            return false;
        }
    }

private:
    std::shared_ptr<ModelEntry> entry_;
    std::unique_ptr<core::KiNetGan::StreamCursor> cursor_;
    Metrics& metrics_;
    std::uint64_t rows_ = 0;
    std::uint64_t chunks_ = 0;
    std::string payload_;  // reused CSV scratch across frames
    Stopwatch watch_;
};

/// Cluster-side streaming SAMPLE: with a target peer, relays the owner's
/// CHUNK/END frames one at a time — a forwarded stream therefore has the
/// same chunk boundaries (and the same bytes) as sampling the owner
/// directly, and never buffers more than one frame.  With no peer it
/// pull-through-fetches the model on first use and then streams the local
/// copy via an inner SampleStreamProducer.  Construction (loop thread)
/// stores the plan only; all blocking work happens inside next_frame() on
/// request workers, and errors surface as a mid-stream ERR frame.
class SynthServer::ClusterStreamProducer : public StreamProducer {
public:
    ClusterStreamProducer(SynthServer& server, std::shared_ptr<ClusterService> cluster,
                          std::string peer, Request request)
        : server_(server),
          cluster_(std::move(cluster)),
          peer_(std::move(peer)),
          request_(std::move(request)) {}

    bool next_frame(std::string& out) override {
        out.clear();
        try {
            if (!started_) {
                started_ = true;
                start();
            }
            if (inner_ != nullptr) {
                return inner_->next_frame(out);
            }
            return relay_frame(out);
        } catch (const std::exception& e) {
            if (relaying_) {
                cluster_->forward_errors.fetch_add(1, std::memory_order_relaxed);
            }
            std::string message = e.what();
            std::replace(message.begin(), message.end(), '\n', ' ');
            out = "ERR " + message + "\n";
            return false;
        }
    }

private:
    void start() {
        if (peer_.empty()) {
            // Our slot but no local copy: pull the snapshot, then stream it
            // exactly like a native streaming SAMPLE.
            const auto entry = server_.acquire_model(request_.model, true);
            const SampleSpec spec = server_.parse_sample_spec(request_, /*streaming=*/true);
            auto cursor = entry->model->open_sample_cursor(
                spec.n, spec.seed, spec.chunk_rows, spec.cond_column, spec.cond_value);
            inner_ = std::make_unique<SampleStreamProducer>(entry, std::move(cursor),
                                                            server_.metrics_);
            return;
        }
        const auto address = cluster_->peer_address(peer_);
        if (!address.has_value()) {
            throw Error("cluster: unknown peer " + peer_);
        }
        cluster_->forwards.fetch_add(1, std::memory_order_relaxed);
        relaying_ = true;
        // A dedicated connection: a stream occupies its transport for its
        // whole lifetime, which would starve every other forward through
        // the pooled per-peer client.
        stream_ = TcpStream::connect(address->host, address->port,
                                     cluster_->config().connect_timeout_ms);
        stream_->set_recv_timeout(cluster_->config().peer_timeout_ms);
        stream_->write_all(format_request(request_) + "\n");
        const auto status = stream_->read_line();
        if (!status.has_value()) {
            throw Error("cluster: " + peer_ + " closed the forwarded stream");
        }
        if (text::starts_with(*status, "ERR ")) {
            throw Error(status->substr(4));
        }
        if (*status != "OK STREAM") {
            throw Error("cluster: unexpected status '" + *status + "' from " + peer_);
        }
    }

    bool relay_frame(std::string& out) {
        const auto frame = stream_->read_line();
        if (!frame.has_value()) {
            throw Error("cluster: " + peer_ + " truncated the forwarded stream");
        }
        if (text::starts_with(*frame, "CHUNK ")) {
            std::size_t bytes = 0;
            try {
                bytes = std::stoull(frame->substr(6));
            } catch (const std::exception&) {
                throw Error("cluster: malformed relay frame '" + *frame + "'");
            }
            out = *frame + "\n" + stream_->read_exact(bytes);
            return true;
        }
        out = *frame + "\n";  // END trailer or mid-stream ERR, verbatim
        return false;
    }

    SynthServer& server_;
    std::shared_ptr<ClusterService> cluster_;
    std::string peer_;      // empty selects pull-through-and-serve-local mode
    Request request_;
    bool started_ = false;
    bool relaying_ = false;
    std::optional<TcpStream> stream_;
    std::unique_ptr<SampleStreamProducer> inner_;
};

SynthServer::SynthServer(ServerOptions options)
    : options_(std::move(options)),
      kg_lab_(kg::NetworkKg::build_lab()),
      kg_unsw_(kg::NetworkKg::build_unsw()),
      jobs_(options_.train_workers) {
    registry_.set_limits(options_.model_cache_bytes, options_.model_ttl_ms);
    if (options_.recover) {
        options_.persist = true;
    }
    if (options_.persist) {
        KINET_CHECK(!options_.snapshot_dir.empty(),
                    "persistence requires a non-empty snapshot_dir");
        store_ = std::make_unique<PersistentStore>(options_.snapshot_dir);
        journal_ = std::make_shared<JobJournal>(store_->journal_path());
    }
    EventLoopOptions lo;
    lo.port = options_.port;
    lo.max_connections = options_.max_connections;
    lo.queue_depth = options_.queue_depth;
    lo.workers = options_.request_workers;
    EventLoopHandlers handlers;
    handlers.execute = [this](const Request& request) { return execute_framed(request); };
    handlers.is_fast = [](const Request& request) { return is_fast_op(request); };
    handlers.open_stream = [this](const Request& request) {
        return open_stream_producer(request);
    };
    handlers.on_tick = [this] { registry_.evict_expired(); };
    loop_ = std::make_unique<EventLoop>(lo, std::move(handlers), metrics_);
}

SynthServer::~SynthServer() { stop(); }

void SynthServer::start() {
    loop_->start();
    if (store_ != nullptr && !recovered_) {
        recovered_ = true;
        if (options_.recover) {
            recover_state();
        } else {
            // A fresh (non-recovering) persistent daemon starts a new epoch:
            // whatever journal a previous run left behind is superseded.
            JobJournal::truncate(journal_->path());
            jobs_.set_journal(journal_);
        }
    }
}

void SynthServer::stop() {
    loop_->stop();
    if (const auto c = cluster()) {
        c->stop();  // prober thread + pooled peer connections
    }
    // Cancel queued + running training jobs; running fits stop at their
    // next epoch boundary.  The executor threads themselves stay up (the
    // JobManager destructor joins them), so a stop()/start() restart keeps
    // async TRAIN working.
    jobs_.cancel_all();
}

void SynthServer::drain(std::size_t timeout_ms) {
    loop_->drain();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (loop_->inflight_requests() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop();
}

void SynthServer::crash_stop() {
    crashed_.store(true, std::memory_order_relaxed);
    jobs_.set_journal(nullptr);
    stop();
}

void SynthServer::enable_cluster(ClusterConfig config) {
    auto service = std::make_shared<ClusterService>(std::move(config));
    // The prober thread drives periodic anti-entropy and post-epoch-change
    // rebalances; both hooks are set before the thread exists, so no
    // synchronisation is needed.
    service->set_anti_entropy_hook([this] { (void)anti_entropy_now(); });
    service->set_rebalance_hook([this] { (void)rebalance_now(); });
    service->start_probing();
    std::shared_ptr<ClusterService> old;
    {
        const MutexLock lock(cluster_mu_);
        old = std::exchange(cluster_, std::move(service));
    }
    if (old != nullptr) {
        old->stop();
    }
}

std::shared_ptr<ClusterService> SynthServer::cluster() const {
    const MutexLock lock(cluster_mu_);
    return cluster_;
}

void SynthServer::join_fleet(ClusterConfig tuning, const PeerAddress& seed) {
    // Announce to the seed first: its JOIN response is the fleet's current
    // view (with this node in it, joining) plus the ring parameters every
    // member must agree on.
    ClientOptions copts;
    copts.connect_timeout_ms = tuning.connect_timeout_ms;
    copts.connect_attempts = 3;
    copts.recv_timeout_ms = tuning.peer_timeout_ms;
    auto client = SynthClient::connect(seed.host, seed.port, copts);
    Request join;
    join.op = Op::join;
    join.model = tuning.self.name();
    join.positional.push_back(tuning.self.name());
    const Response joined = client.call(join);
    if (!joined.ok) {
        throw Error("JOIN via " + seed.name() + " rejected: " + joined.error);
    }
    const MemberView view = MemberView::parse(joined.payload);
    const auto kv = parse_kv_payload(joined.payload);
    if (const auto it = kv.find("virtual_nodes"); it != kv.end()) {
        tuning.virtual_nodes = static_cast<std::size_t>(
            parse_u64(it->second, "JOIN virtual_nodes"));
    }
    if (const auto it = kv.find("replicas"); it != kv.end()) {
        tuning.replicas = static_cast<std::size_t>(parse_u64(it->second, "JOIN replicas"));
    }
    tuning.peers.clear();
    for (const auto& member : view.members) {
        if (member.name != tuning.self.name()) {
            tuning.peers.push_back(member.addr);
        }
    }
    enable_cluster(std::move(tuning));
    const auto c = cluster();
    (void)c->adopt_view(view);
    // Warm up before going active: pull every snapshot the joined ring
    // places on this (still joining) node, so the first request routed here
    // is served locally instead of missing.
    (void)rebalance_now();
    // Going active bumps the epoch; dissemination (our probes carry it,
    // peers pull the view) spreads both the join and the activation.
    (void)c->set_member_state(c->self_name(), MemberState::active);
}

std::uint16_t SynthServer::port() const noexcept { return loop_->port(); }

bool SynthServer::running() const noexcept { return loop_->running(); }

std::string SynthServer::execute_framed(const Request& request) {
    const Stopwatch watch;
    const Response response = handle(request);
    metrics_.record_op(request.op, static_cast<std::uint64_t>(watch.millis() * 1000.0));
    return format_response(response);
}

bool SynthServer::is_fast_op(const Request& request) {
    switch (request.op) {
    case Op::ping:
    case Op::cancel:
    case Op::jobs:
    case Op::drop:
    case Op::quit:
    case Op::cluster:
    case Op::fault:
    case Op::epoch:
        // EPOCH answers inline so view pulls keep working while the node
        // drains (a leaving member must stay able to disseminate its final
        // epochs) — it only snapshots the membership table, never blocks.
        return true;
    case Op::poll:
        // The wait= long-poll parks the request until the job is terminal;
        // that belongs on a worker, never on the loop thread.
        return request.kv.find("wait") == request.kv.end();
    case Op::stats:
        // The global form reads atomics; the per-model form takes the
        // entry mutex (contended by SAVE/TRAIN) and belongs on a worker.
        return request.model.empty();
    default:
        return false;
    }
}

std::unique_ptr<StreamProducer> SynthServer::open_stream_producer(const Request& request) {
    if (!wants_stream(request)) {
        return nullptr;
    }
    // Everything that can fail from a bad request fails here, *before* the
    // first frame — the event loop turns the throw into an ordinary ERR.
    const SampleSpec spec = parse_sample_spec(request, /*streaming=*/true);
    if (const auto c = cluster();
        c != nullptr && !is_forwarded(request) && registry_.get(request.model) == nullptr) {
        // Ring/health reads only on the loop thread; connects and fetches
        // happen inside the producer on a worker.
        Request relay = request;
        relay.kv[std::string(kForwardedKey)] = "1";
        const auto target = c->route(request.model);
        return std::make_unique<ClusterStreamProducer>(
            *this, c, target.value_or(std::string{}), std::move(relay));
    }
    const auto entry = require_model(request.model);
    auto cursor = entry->model->open_sample_cursor(spec.n, spec.seed, spec.chunk_rows,
                                                   spec.cond_column, spec.cond_value);
    return std::make_unique<SampleStreamProducer>(entry, std::move(cursor), metrics_);
}

Response SynthServer::handle(const Request& request) {
    try {
        return dispatch(request);
    } catch (const std::exception& e) {
        return error_response(e.what());
    }
}

Response SynthServer::dispatch(const Request& request) {
    if (auto relayed = maybe_forward(request); relayed.has_value()) {
        return std::move(*relayed);
    }
    switch (request.op) {
    case Op::ping: {
        Response r;
        r.payload = "pong\n";
        if (const auto c = cluster()) {
            // The pong carries our epoch — the probing peer pulls our view
            // when it is newer than its own.  A probe's PING carries the
            // sender's epoch + name the other way; when *it* is newer we
            // schedule a pull (this runs on the loop thread — never block).
            r.payload += kv_line("epoch", std::to_string(c->epoch()));
            const auto epoch_it = request.kv.find("epoch");
            const auto from_it = request.kv.find("from");
            if (epoch_it != request.kv.end() && from_it != request.kv.end()) {
                try {
                    c->note_remote_epoch(from_it->second,
                                         parse_u64(epoch_it->second, "PING epoch"));
                } catch (const Error&) {
                    // Malformed epoch from an odd client: health still pings.
                }
            }
        }
        return r;
    }
    case Op::train:
        return handle_train(request);
    case Op::load: {
        const std::string path =
            resolve_confined(options_.snapshot_dir, request.positional.at(0), "LOAD");
        auto model = load_snapshot_file(path);
        admit_model(request.model, std::move(model));
        return Response{};
    }
    case Op::save: {
        const std::string path =
            resolve_confined(options_.snapshot_dir, request.positional.at(0), "SAVE");
        const auto entry = require_model(request.model);
        const MutexLock lock(entry->mu);
        save_snapshot_file(*entry->model, path);
        return Response{};
    }
    case Op::drop:
        if (!registry_.erase(request.model)) {
            return error_response("no model named " + request.model);
        }
        if (store_ != nullptr && !crashed_.load(std::memory_order_relaxed)) {
            store_->remove(request.model);
        }
        return Response{};
    case Op::sample:
        return handle_sample(request);
    case Op::validate:
        return handle_validate(request);
    case Op::stats:
        return handle_stats(request);
    case Op::poll:
        return handle_poll(request);
    case Op::cancel:
        return handle_cancel(request);
    case Op::jobs:
        return handle_jobs();
    case Op::cluster:
        return handle_cluster(request);
    case Op::replicate:
        return handle_replicate(request);
    case Op::fetch:
        return handle_fetch(request);
    case Op::fedtrain:
        return handle_fedtrain(request);
    case Op::fault:
        return handle_fault(request);
    case Op::digest:
        return handle_digest(request);
    case Op::join:
        return handle_join(request);
    case Op::leave:
        return handle_leave(request);
    case Op::epoch:
        return handle_epoch(request);
    case Op::quit:
        return Response{};  // transport-level; acknowledged by the event loop
    }
    return error_response("unhandled op");
}

std::optional<Response> SynthServer::maybe_forward(const Request& request) {
    const auto c = cluster();
    if (c == nullptr || is_forwarded(request)) {
        return std::nullopt;
    }
    switch (request.op) {
    case Op::sample:
    case Op::validate:
    case Op::train:
        break;
    default:
        // FEDTRAIN deliberately included: it means "train on THIS site's
        // data", so it always runs where it lands.  Everything else
        // (monitoring, jobs, snapshot files) is per-node by design.
        return std::nullopt;
    }
    // A ring-aware client stamps the epoch it routed by.  A stamp *older*
    // than ours means the client's cached ring predates a membership change
    // and may have routed to the wrong owner: answer the retryable
    // `wrong_owner` rejection (carrying the current epoch and owner) so the
    // client refreshes its view and re-routes, instead of silently paying a
    // forwarding hop on every request.  A stamp newer than ours is served
    // best-effort — we are the stale side, and dissemination is already
    // converging us; rejecting would bounce the client between nodes.
    if (const auto it = request.kv.find("epoch"); it != request.kv.end()) {
        try {
            if (parse_u64(it->second, "request epoch") < c->epoch()) {
                return coded_error(kWrongOwnerCode,
                                   "epoch=" + std::to_string(c->epoch()) +
                                       " owner=" + c->owner_of(request.model));
            }
        } catch (const Error&) {
            // Malformed stamp: treat as unstamped and route normally.
        }
    }
    if (request.op == Op::train) {
        const auto target = c->route(request.model);
        if (!target.has_value()) {
            return std::nullopt;  // we own it, or every candidate is down
        }
        if (kv_u64(request, "async", 0) != 0) {
            return forward_train_async(c, *target, request);
        }
        try {
            return c->forward(*target, request);
        } catch (const Error&) {
            return std::nullopt;  // owner died mid-request: train locally
        }
    }
    // SAMPLE/VALIDATE: any local copy — placement, replication or
    // pull-through cache — answers here; snapshots are bit-identical for
    // seeded sampling, so the bytes match the owner's.
    if (registry_.get(request.model) != nullptr) {
        return std::nullopt;
    }
    for (const auto& node : c->preference(request.model)) {
        if (node == c->self_name()) {
            return std::nullopt;  // our slot: answer (pull-through may fill)
        }
        if (!c->peer_up(node)) {
            continue;  // ring-aware fallback walks past down members
        }
        try {
            return c->forward(node, request);
        } catch (const Error&) {
            // The failed RPC marked the peer down; try the next candidate.
        }
    }
    return std::nullopt;  // no healthy peer: local best effort
}

Response SynthServer::forward_train_async(const std::shared_ptr<ClusterService>& c,
                                          const std::string& peer, Request request) {
    // A remote job id would be meaningless to this client's POLL, so the
    // proxy pattern: submit remotely, mirror its progress into a *local*
    // job the client polls like any other.  The proxy occupies a training
    // executor slot, not a request worker.
    const auto epochs =
        static_cast<std::size_t>(kv_u64(request, "epochs", options_.default_epochs));
    const std::string model = request.model;
    const std::uint64_t id = jobs_.submit(
        model, epochs, [c, peer, request](JobManager::Context& context) {
            const auto address = c->peer_address(peer);
            if (!address.has_value()) {
                throw Error("cluster: unknown peer " + peer);
            }
            // A dedicated connection: the proxy holds a conversation (submit
            // + repeated long-polls) that would otherwise monopolise the
            // pooled per-peer client for the whole remote fit.
            ClientOptions options;
            options.connect_timeout_ms = c->config().connect_timeout_ms;
            options.connect_attempts = 3;
            options.recv_timeout_ms = c->config().peer_timeout_ms;
            options.reconnect_on_reset = true;
            auto client = SynthClient::connect(address->host, address->port, options);
            c->forwards.fetch_add(1, std::memory_order_relaxed);
            Request submit = request;
            submit.kv[std::string(kForwardedKey)] = "1";
            const auto submitted = client.call(submit);
            if (!submitted.ok) {
                throw Error("forwarded TRAIN rejected by " + peer + ": " + submitted.error);
            }
            const auto kv = parse_kv_payload(submitted.payload);
            const auto job_it = kv.find("job");
            if (job_it == kv.end()) {
                throw Error("forwarded TRAIN: no job id from " + peer);
            }
            const std::string remote_id = job_it->second;
            Request poll;
            poll.op = Op::poll;
            poll.positional.push_back(remote_id);
            poll.kv["wait"] = "1";
            poll.kv["timeout"] = "1000";
            poll.kv[std::string(kForwardedKey)] = "1";
            for (;;) {
                if (context.cancel_requested()) {
                    Request cancel;
                    cancel.op = Op::cancel;
                    cancel.positional.push_back(remote_id);
                    cancel.kv[std::string(kForwardedKey)] = "1";
                    try {
                        (void)client.call(cancel);
                    } catch (const Error&) {
                    }
                    throw Error("cancelled while proxying to " + peer);
                }
                const auto polled = client.call(poll);
                if (!polled.ok) {
                    throw Error("forwarded TRAIN: poll on " + peer + " failed: " +
                                polled.error);
                }
                const auto status = parse_kv_payload(polled.payload);
                if (const auto done_it = status.find("epochs_done");
                    done_it != status.end()) {
                    context.report_progress(std::stoull(done_it->second));
                }
                const auto state_it = status.find("state");
                const std::string state =
                    state_it == status.end() ? std::string{} : state_it->second;
                if (state == "done") {
                    return;
                }
                if (state == "failed" || state == "cancelled") {
                    const auto err_it = status.find("error");
                    throw Error("remote training " + state +
                                (err_it == status.end() ? "" : ": " + err_it->second));
                }
            }
        },
        format_request(request));
    Response r;
    r.payload += kv_line("job", std::to_string(id));
    r.payload += kv_line("model", model);
    r.payload += kv_line("epochs", std::to_string(epochs));
    r.payload += kv_line("owner", peer);
    return r;
}

SynthServer::TrainPlan SynthServer::parse_train_plan(const Request& request) const {
    TrainPlan plan;
    plan.model = request.model;

    const std::string domain = kv_string(request, "domain", "lab");
    if (domain == "unsw") {
        plan.unsw = true;
    } else if (domain != "lab") {
        throw Error("TRAIN: unknown domain '" + domain + "' (expected lab or unsw)");
    }

    const std::string source = kv_string(request, "source", "sim");
    if (text::starts_with(source, "csv:")) {
        plan.csv_path = resolve_confined(options_.data_dir, source.substr(4), "TRAIN source");
    } else if (source != "sim") {
        throw Error("TRAIN: unknown source '" + source + "' (expected sim or csv:<path>)");
    }

    plan.records = static_cast<std::size_t>(kv_u64(request, "records", 2000));
    plan.sim_seed = kv_u64(request, "sim-seed", plan.unsw ? 11 : 7);
    plan.attack = kv_double(request, "attack", 1.0);
    if (plan.attack < 0.0) {
        throw Error("TRAIN: attack must be >= 0");
    }
    plan.split_frac = kv_double(request, "split-frac", 0.0);
    if (plan.split_frac < 0.0 || plan.split_frac >= 1.0) {
        throw Error("TRAIN: split-frac must be in [0, 1)");
    }
    plan.split_seed = kv_u64(request, "split-seed", 0);

    plan.opts.gan.epochs = static_cast<std::size_t>(
        kv_u64(request, "epochs", options_.default_epochs));
    if (plan.opts.gan.epochs == 0) {
        throw Error("TRAIN: epochs must be >= 1");
    }
    plan.opts.gan.seed = kv_u64(request, "gan-seed", 42);
    return plan;
}

data::Table SynthServer::build_training_table(const TrainPlan& plan) const {
    data::Table table;
    if (!plan.csv_path.empty()) {
        const auto schema = plan.unsw ? netsim::unsw_schema() : netsim::lab_schema();
        table = data::Table::from_csv(csv::read_file(plan.csv_path), schema);
        KINET_CHECK(table.rows() > 0, "TRAIN: CSV source has no data rows");
    } else if (plan.unsw) {
        netsim::UnswOptions sim;
        sim.records = plan.records;
        sim.seed = plan.sim_seed;
        sim.attack_intensity = plan.attack;
        table = netsim::UnswNb15Synthesizer(sim).generate();
    } else {
        netsim::LabSimOptions sim;
        sim.records = plan.records;
        sim.seed = plan.sim_seed;
        sim.attack_intensity = plan.attack;
        table = netsim::LabTrafficSimulator(sim).generate();
    }
    if (plan.split_frac > 0.0) {
        Rng split_rng(plan.split_seed);
        const std::size_t label =
            plan.unsw ? netsim::unsw_label_column() : netsim::lab_label_column();
        auto split = data::train_test_split(table, plan.split_frac, split_rng, label);
        table = std::move(split.train);
    }
    return table;
}

SynthServer::TrainResult SynthServer::run_training(const TrainPlan& plan,
                                                   JobManager::Context* context) const {
    const data::Table train = build_training_table(plan);
    auto model = std::make_unique<core::KiNetGan>(
        plan.unsw ? kg_unsw_.make_oracle() : kg_lab_.make_oracle(),
        plan.unsw ? netsim::unsw_conditional_columns() : netsim::lab_conditional_columns(),
        plan.opts);
    core::KiNetGan::FitObserver observer;
    if (context != nullptr) {
        observer = [context](std::size_t done, std::size_t /*total*/) {
            context->report_progress(done);
            return !context->cancel_requested();
        };
    }
    model->fit(train, observer);
    return TrainResult{std::move(model), train.rows()};
}

Response SynthServer::handle_train(const Request& request) {
    const TrainPlan plan = parse_train_plan(request);

    if (kv_u64(request, "async", 0) != 0) {
        // Queue the fit on the training executor and answer immediately;
        // the connection (and its request worker) is free for other work.
        // On completion the job put()s the model into the registry — an
        // atomic swap, so in-flight SAMPLEs never see a half-trained model.
        const std::uint64_t id = jobs_.submit(
            plan.model, plan.opts.gan.epochs,
            [this, plan](JobManager::Context& context) {
                admit_model(plan.model, run_training(plan, &context).model);
            },
            format_request(request));
        Response r;
        r.payload += kv_line("job", std::to_string(id));
        r.payload += kv_line("model", plan.model);
        r.payload += kv_line("epochs", std::to_string(plan.opts.gan.epochs));
        return r;
    }

    auto result = run_training(plan, nullptr);
    Response r;
    r.payload += kv_line("rows", std::to_string(result.rows));
    r.payload += kv_line("epochs", std::to_string(plan.opts.gan.epochs));
    r.payload += kv_line("seconds", text::format_double(result.model->report().seconds, 3));
    r.payload += kv_line("adherence",
                         text::format_double(result.model->last_cond_adherence(), 4));
    r.payload += kv_line("domain", plan.unsw ? "unsw" : "lab");
    admit_model(plan.model, std::move(result.model));
    return r;
}

SynthServer::SampleSpec SynthServer::parse_sample_spec(const Request& request,
                                                       bool streaming) const {
    SampleSpec spec;
    spec.n = static_cast<std::size_t>(parse_u64(request.positional.at(0), "SAMPLE row count"));
    if (!streaming) {
        // Framed responses materialise the whole payload; streamed ones
        // never hold more than a chunk, so only the chunk is bounded.
        KINET_CHECK(spec.n <= kMaxSampleRows, "SAMPLE: row count " + std::to_string(spec.n) +
                                                  " exceeds the per-request cap of " +
                                                  std::to_string(kMaxSampleRows) +
                                                  " (use stream=1 for larger pulls)");
    }
    spec.seed = kv_u64(request, "seed", 0);
    if (streaming) {
        // chunk= only means something on the streaming path; the framed
        // path ignores it like any other unknown key (no new failure mode
        // for old clients).
        spec.chunk_rows = static_cast<std::size_t>(
            kv_u64(request, "chunk", kDefaultStreamChunkRows));
        KINET_CHECK(spec.chunk_rows >= 1 && spec.chunk_rows <= kMaxSampleRows,
                    "SAMPLE: chunk must be in [1, " + std::to_string(kMaxSampleRows) + "]");
    }
    if (const auto it = request.kv.find("cond"); it != request.kv.end()) {
        const std::size_t colon = it->second.find(':');
        KINET_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < it->second.size(),
                    "SAMPLE: cond must be <column>:<value>");
        spec.cond_column = it->second.substr(0, colon);
        spec.cond_value = it->second.substr(colon + 1);
    }
    return spec;
}

void SynthServer::run_sample_stream(const core::KiNetGan& model, const SampleSpec& spec,
                                    std::size_t chunk_rows,
                                    const core::KiNetGan::SampleSink& sink) {
    if (spec.cond_column.empty()) {
        model.sample_seeded_stream(spec.n, spec.seed, chunk_rows, sink);
    } else {
        model.sample_conditional_seeded_stream(spec.n, spec.cond_column, spec.cond_value,
                                               spec.seed, chunk_rows, sink);
    }
}

Response SynthServer::handle_sample(const Request& request) {
    const SampleSpec spec = parse_sample_spec(request, /*streaming=*/false);
    // In a fleet, a local miss may be healed by pulling the snapshot from a
    // replica (safe even for forwarded requests — the FETCH it issues is
    // itself marked forwarded and can never cascade).
    const auto entry = acquire_model(request.model, /*allow_pull_through=*/true);

    // The inference path is const and thread-safe: no per-entry lock, so
    // any number of SAMPLEs run concurrently against one model snapshot.
    // The CSV payload is built chunk-by-chunk from the streaming sampler —
    // the full decoded Table never exists in memory.
    Response r;
    std::uint64_t rows = 0;
    run_sample_stream(*entry->model, spec, 0, [&](const data::Table& chunk) {
        csv::serialize_append(chunk.to_csv(), /*include_header=*/rows == 0, r.payload);
        rows += chunk.rows();
    });
    if (rows == 0) {
        // Zero-row responses still carry the header line.
        r.payload = csv::serialize(data::Table(entry->model->schema()).to_csv());
    }
    entry->requests.fetch_add(1, std::memory_order_relaxed);
    entry->rows_served.fetch_add(rows, std::memory_order_relaxed);
    metrics_.record_rows(rows);
    return r;
}

Response SynthServer::handle_validate(const Request& request) {
    const auto entry = acquire_model(request.model, /*allow_pull_through=*/true);
    const auto n = static_cast<std::size_t>(
        kv_u64(request, "n", options_.default_validate_rows));
    KINET_CHECK(n <= kMaxSampleRows, "VALIDATE: row count " + std::to_string(n) +
                                         " exceeds the per-request cap of " +
                                         std::to_string(kMaxSampleRows));
    const std::uint64_t seed = kv_u64(request, "seed", 0);
    // Validity is accumulated chunk-by-chunk off the streaming sampler —
    // the draw is never materialised as a whole table (it used to be built
    // in memory just to be counted and thrown away).
    std::size_t valid = 0;
    entry->model->sample_seeded_stream(n, seed, 0, [&](const data::Table& chunk) {
        valid += entry->model->kg_valid_count(chunk);
    });
    const double validity =
        (n == 0) ? 0.0 : static_cast<double>(valid) / static_cast<double>(n);
    entry->requests.fetch_add(1, std::memory_order_relaxed);

    Response r;
    r.payload += kv_line("rows", std::to_string(n));
    r.payload += kv_line("validity", text::format_double(validity, 4));
    return r;
}

Response SynthServer::handle_stats(const Request& request) {
    Response r;
    if (!request.model.empty()) {
        const auto entry = require_model(request.model);
        const MutexLock lock(entry->mu);
        const auto& report = entry->model->report();
        r.payload += kv_line("model", request.model);
        r.payload += kv_line("requests", std::to_string(entry->requests.load()));
        r.payload += kv_line("rows_served", std::to_string(entry->rows_served.load()));
        r.payload += kv_line("epochs_trained", std::to_string(report.generator_loss.size()));
        r.payload += kv_line("train_seconds", text::format_double(report.seconds, 3));
        r.payload += kv_line("adherence",
                             text::format_double(entry->model->last_cond_adherence(), 4));
        if (!report.generator_loss.empty()) {
            r.payload += kv_line("final_g_loss",
                                 text::format_double(report.generator_loss.back(), 4));
            r.payload += kv_line("final_d_loss",
                                 text::format_double(report.discriminator_loss.back(), 4));
        }
        return r;
    }
    r.payload += kv_line("models", std::to_string(registry_.size()));
    r.payload += kv_line("jobs", std::to_string(jobs_.size()));
    r.payload += kv_line("model_cache_bytes", std::to_string(registry_.memory_bytes()));
    r.payload += kv_line("model_cache_evictions", std::to_string(registry_.evictions()));
    r.payload += kv_line("requests_inflight", std::to_string(loop_->inflight_requests()));
    r.payload += kv_line("persisted_models",
                         std::to_string(store_ == nullptr ? 0 : store_->manifest().size()));
    r.payload += kv_line("recovered_models", std::to_string(recovered_models_.load()));
    r.payload += kv_line("recovered_jobs", std::to_string(recovered_jobs_.load()));
    r.payload += kv_line("resubmitted_jobs", std::to_string(resubmitted_jobs_.load()));
    r.payload += kv_line("anti_entropy_rounds", std::to_string(anti_entropy_rounds_.load()));
    r.payload += kv_line("repairs", std::to_string(repairs_.load()));
    r.payload += metrics_.render();
    if (const auto c = cluster()) {
        r.payload += c->render_stats();
    }
    for (const auto& name : registry_.names()) {
        const auto entry = registry_.get(name);
        if (entry == nullptr) {
            continue;  // concurrently dropped
        }
        r.payload += name + " requests=" + std::to_string(entry->requests.load()) +
                     " rows_served=" + std::to_string(entry->rows_served.load()) + "\n";
    }
    return r;
}

Response SynthServer::handle_poll(const Request& request) {
    const std::uint64_t id = parse_u64(request.positional.at(0), "POLL job id");
    std::optional<JobInfo> info;
    if (kv_u64(request, "wait", 0) != 0) {
        // Long-poll: park until the job is terminal or the (server-capped)
        // timeout passes, then answer with the snapshot either way — the
        // client inspects `state` to tell completion from timeout.
        const auto timeout =
            std::min<std::uint64_t>(kv_u64(request, "timeout", 1000), kMaxPollWaitMs);
        info = jobs_.wait(id, static_cast<std::size_t>(timeout));
    } else {
        info = jobs_.info(id);
    }
    if (!info.has_value()) {
        return error_response("no job " + std::to_string(id));
    }
    return job_info_response(*info);
}

Response SynthServer::handle_cancel(const Request& request) {
    const std::uint64_t id = parse_u64(request.positional.at(0), "CANCEL job id");
    // Cancel + snapshot happen in one JobManager critical section: a
    // separate info() lookup could race with terminal-job pruning.
    const auto info = jobs_.request_cancel(id);
    if (!info.has_value()) {
        return error_response("no job " + std::to_string(id));
    }
    return job_info_response(*info);
}

Response SynthServer::handle_jobs() const {
    const auto jobs = jobs_.list();
    Response r;
    r.payload += kv_line("jobs", std::to_string(jobs.size()));
    for (const auto& job : jobs) {
        r.payload += std::to_string(job.id) + " model=" + job.model +
                     " state=" + std::string(job_state_name(job.state)) +
                     " epochs_done=" + std::to_string(job.epochs_done) +
                     " epochs_total=" + std::to_string(job.epochs_total) + "\n";
    }
    return r;
}

Response SynthServer::handle_cluster(const Request& request) {
    Response r;
    const auto c = cluster();
    if (c == nullptr) {
        r.payload += kv_line("enabled", "0");
        return r;
    }
    r.payload += kv_line("enabled", "1");
    r.payload += c->render_status(request.model);
    return r;
}

Response SynthServer::handle_replicate(const Request& request) {
    // The transport already read exactly the declared byte count;
    // read_snapshot validates magic, version, length and checksum before
    // any registry state changes — a corrupt push is rejected whole, with
    // a machine-readable (permanent) code: resending the same bytes can
    // never succeed, so no peer should burn its retry budget here.
    std::unique_ptr<core::KiNetGan> model;
    try {
        model = read_snapshot(request.body);
    } catch (const std::exception& e) {
        const std::string what = e.what();
        return coded_error(what.find("checksum mismatch") != std::string::npos
                               ? kChecksumMismatchCode
                               : kBadSnapshotCode,
                           what);
    }
    admit_model(request.model, std::move(model), kv_u64(request, "rev", 0));
    if (const auto c = cluster()) {
        c->replications_in.fetch_add(1, std::memory_order_relaxed);
    }
    Response r;
    r.payload += kv_line("model", request.model);
    r.payload += kv_line("bytes", std::to_string(request.body.size()));
    return r;
}

Response SynthServer::handle_fetch(const Request& request) {
    // A forwarded FETCH never cascades into another fetch — that is the
    // loop breaker that makes pull-through safe to attempt anywhere.
    const auto entry = acquire_model(request.model, !is_forwarded(request));
    Response r;
    {
        const MutexLock lock(entry->mu);
        r.payload = write_snapshot(*entry->model);
    }
    if (const auto c = cluster()) {
        c->fetches_in.fetch_add(1, std::memory_order_relaxed);
    }
    return r;
}

Response SynthServer::handle_fedtrain(const Request& request) {
    const TrainPlan plan = parse_train_plan(request);
    const auto c = cluster();
    const std::size_t peer_count = c == nullptr ? 0 : c->config().peers.size();
    // The job's progress denominator covers both phases: epochs of local
    // training, then one unit per peer for the publish fan-out.
    const std::uint64_t id = jobs_.submit(
        plan.model, plan.opts.gan.epochs + peer_count,
        [this, plan](JobManager::Context& context) {
            auto result = run_training(plan, &context);
            const std::size_t epochs = plan.opts.gan.epochs;
            // admit_model hands back the serialized container, so the
            // publish fan-out reuses the registration's bytes (and carries
            // its revision, keeping the fleet's Lamport order consistent).
            std::string snapshot;
            const std::uint64_t revision =
                admit_model(plan.model, std::move(result.model), 0, &snapshot);
            const auto cl = cluster();
            if (cl == nullptr) {
                return;  // standalone: FEDTRAIN degrades to an async TRAIN
            }
            std::string first_error;
            const std::size_t ok = cl->publish(
                plan.model, snapshot, revision,
                [&context, epochs](std::size_t done, std::size_t /*total*/) {
                    context.report_progress(epochs + done);
                },
                &first_error);
            // A peer that is down just misses this round (pull-through or a
            // later publish heals it); only a total publish failure fails
            // the job — the local model is still registered either way.
            if (ok == 0 && !first_error.empty()) {
                throw Error("publish reached no peer; first error: " + first_error);
            }
        },
        format_request(request));
    Response r;
    r.payload += kv_line("job", std::to_string(id));
    r.payload += kv_line("model", plan.model);
    r.payload += kv_line("epochs", std::to_string(plan.opts.gan.epochs));
    r.payload += kv_line("peers", std::to_string(peer_count));
    return r;
}

Response SynthServer::handle_fault(const Request& request) {
    if (!options_.enable_failpoints) {
        return error_response(
            "FAULT: failpoint control is disabled (start with --enable-failpoints)");
    }
    if (request.positional.empty()) {
        Response r;
        r.payload = failpoint::render_status();
        return r;
    }
    const std::string& name = request.positional.at(0);
    const auto it = request.kv.find("spec");
    if (it == request.kv.end()) {
        return error_response("FAULT: missing spec= (use spec=off to disarm)");
    }
    failpoint::configure(name, it->second);
    Response r;
    r.payload += kv_line("failpoint", name);
    r.payload += kv_line("spec", it->second);
    return r;
}

Response SynthServer::handle_digest(const Request& /*request*/) {
    const auto digest = registry_.digest();
    Response r;
    r.payload += kv_line("models", std::to_string(digest.size()));
    if (const auto c = cluster()) {
        // Anti-entropy doubles as view dissemination: the puller compares
        // this epoch against its own and adopts the newer view, so a
        // membership change a partition missed heals on the next digest
        // exchange.  parse_digest_payload skips the line (not 4 tokens).
        r.payload += kv_line("epoch", std::to_string(c->epoch()));
    }
    for (const auto& entry : digest) {
        r.payload += entry.name + " rev=" + std::to_string(entry.revision) +
                     " bytes=" + std::to_string(entry.bytes) +
                     " checksum=" + std::to_string(entry.checksum) + "\n";
    }
    return r;
}

namespace {

/// The EPOCH payload: the full membership view plus the ring parameters a
/// joiner (or ring-aware client) must agree on to compute placement.
Response view_response(const ClusterService& c, const MemberView& view) {
    Response r;
    r.payload = view.serialize();
    r.payload += kv_line("virtual_nodes", std::to_string(c.config().virtual_nodes));
    r.payload += kv_line("replicas", std::to_string(c.config().replicas));
    return r;
}

}  // namespace

Response SynthServer::handle_epoch(const Request& /*request*/) {
    const auto c = cluster();
    if (c == nullptr) {
        return error_response("EPOCH: clustering is not enabled");
    }
    return view_response(*c, c->view());
}

Response SynthServer::handle_join(const Request& request) {
    const auto c = cluster();
    if (c == nullptr) {
        return error_response("JOIN: clustering is not enabled");
    }
    KINET_FAILPOINT("cluster.join");
    const PeerAddress addr = parse_peer_address(request.positional.at(0));
    // Admission is local + monotonic: the epoch bump re-rings placement
    // with the joiner on it, the prober disseminates the view, and every
    // member's rebalance hook moves the affected snapshots.
    return view_response(*c, c->join_member(request.model, addr));
}

Response SynthServer::handle_leave(const Request& request) {
    const auto c = cluster();
    if (c == nullptr) {
        return error_response("LEAVE: clustering is not enabled");
    }
    const std::string& target = request.model;
    if (c->view().find(target) == nullptr) {
        return error_response("LEAVE: no member named " + target);
    }
    // Two epochs, same shape for self-leave and administrative removal of
    // another member: leaving (off the ring — ownership moves, the member
    // stays reachable), then an explicit synchronous handoff of everything
    // this node holds for the new placement, then removal from the view.
    (void)c->set_member_state(target, MemberState::leaving);
    (void)rebalance_now();
    const MemberView view = c->remove_member(target);
    Response r;
    r.payload += kv_line("member", target);
    r.payload += kv_line("epoch", std::to_string(view.epoch));
    if (target == c->self_name()) {
        // Drain like SIGTERM: in-flight requests complete, fast ops (EPOCH,
        // PING — peers still pull our final view) keep answering, and new
        // non-fast work gets the retryable `draining:` rejection so clients
        // fail over to the surviving members.
        loop_->drain();
        r.payload += kv_line("draining", "1");
    }
    return r;
}


std::uint64_t SynthServer::admit_model(const std::string& name,
                                       std::unique_ptr<core::KiNetGan> model,
                                       std::uint64_t revision,
                                       std::string* container_out) {
    const bool persisting = store_ != nullptr && !crashed_.load(std::memory_order_relaxed);
    std::string container;
    std::string* const capture =
        (persisting || container_out != nullptr) ? &container : nullptr;
    const std::uint64_t rev = registry_.put(name, std::move(model), revision, capture);
    if (persisting) {
        // Write-through iff our registration is still current: a concurrent
        // replacement may already have persisted a newer revision, and the
        // store must never go backwards.
        if (const auto stored = registry_.get(name);
            stored != nullptr && stored->revision == rev) {
            store_->store(DigestEntry{name, rev, stored->memory_bytes, stored->checksum},
                          container);
        }
    }
    if (container_out != nullptr) {
        *container_out = std::move(container);
    }
    return rev;
}

void SynthServer::recover_state() {
    // Models first: every manifest entry is re-read, re-verified by its
    // container checksum, and admitted at its recorded revision.  A corrupt
    // or unreadable snapshot is dropped from the store rather than fatal —
    // anti-entropy (or a re-train) heals it later.
    for (const auto& entry : store_->manifest()) {
        try {
            auto model = read_snapshot(store_->load(entry.name));
            registry_.put(entry.name, std::move(model), entry.revision);
            recovered_models_.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
            store_->remove(entry.name);
        }
    }

    // Jobs: fold the journal into one record per id.  A submit with no
    // terminal record is the crash signature of an interrupted job.
    struct Recovered {
        JobInfo info;
        std::string request_line;
        bool terminal = false;
    };
    std::map<std::uint64_t, Recovered> records;
    for (const auto& record : JobJournal::replay(journal_->path())) {
        if (record.kind == JobJournal::Record::Kind::submit) {
            Recovered r;
            r.info.id = record.id;
            r.info.model = record.model;
            r.info.epochs_total = record.epochs_total;
            r.request_line = record.request_line;
            records[record.id] = std::move(r);
            continue;
        }
        const auto it = records.find(record.id);
        if (it == records.end()) {
            continue;  // terminal for a submit before the last rotation
        }
        it->second.terminal = true;
        it->second.info.state = record.state;
        it->second.info.error = record.error;
        if (record.state == JobState::done) {
            it->second.info.epochs_done = it->second.info.epochs_total;
        }
    }

    // Rotate the journal, then attach it: restored records re-journal into
    // the fresh file, so the next crash replays one epoch of history, not
    // the whole daemon lifetime.
    JobJournal::truncate(journal_->path());
    jobs_.set_journal(journal_);
    std::vector<std::string> resubmit;
    for (auto& [id, rec] : records) {
        const bool interrupted = !rec.terminal;
        if (interrupted) {
            rec.info.state = JobState::failed;
            rec.info.error = "interrupted by daemon restart";
        }
        jobs_.restore_terminal(rec.info);
        recovered_jobs_.fetch_add(1, std::memory_order_relaxed);
        if (interrupted && !rec.request_line.empty()) {
            resubmit.push_back(rec.request_line);
        }
    }
    // Deterministic resume: replay each interrupted request as a fresh
    // submission.  The failed record above is kept — the client that polls
    // the old id learns what happened; the re-run gets a new id like any
    // other submission.  This runs only after EVERY restored record has
    // advanced the job counter, so a resubmitted id can never collide with
    // a journaled one still waiting to be restored.
    for (const auto& line : resubmit) {
        try {
            const Response response = handle(parse_request(line));
            if (response.ok) {
                resubmitted_jobs_.fetch_add(1, std::memory_order_relaxed);
            }
        } catch (const std::exception&) {
            // A request line from an older protocol era; the failed
            // record already tells the operator what was lost.
        }
    }
}

namespace {

/// One u64 field ("rev=", "bytes=", "checksum=") of a digest line.
std::optional<std::uint64_t> digest_field(const std::string& token,
                                          std::string_view key) {
    if (token.size() <= key.size() || token.compare(0, key.size(), key) != 0) {
        return std::nullopt;
    }
    try {
        return parse_u64(token.substr(key.size()), "digest field");
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

/// Parses a peer's DIGEST payload back into entries.  Malformed lines are
/// skipped — anti-entropy degrades to repairing less, never to crashing.
std::vector<DigestEntry> parse_digest_payload(const std::string& payload) {
    std::vector<DigestEntry> out;
    for (const auto& line : text::split(payload, '\n')) {
        if (line.empty() || text::starts_with(line, "models=")) {
            continue;
        }
        const auto tokens = text::split(line, ' ');
        if (tokens.size() != 4) {
            continue;
        }
        const auto rev = digest_field(tokens[1], "rev=");
        const auto bytes = digest_field(tokens[2], "bytes=");
        const auto checksum = digest_field(tokens[3], "checksum=");
        if (!rev.has_value() || !bytes.has_value() || !checksum.has_value()) {
            continue;
        }
        out.push_back(DigestEntry{tokens[0], *rev, *bytes, *checksum});
    }
    return out;
}

}  // namespace

std::size_t SynthServer::anti_entropy_now() {
    const auto c = cluster();
    if (c == nullptr) {
        return 0;
    }
    anti_entropy_rounds_.fetch_add(1, std::memory_order_relaxed);
    std::size_t repaired = 0;
    for (const auto& peer : c->peer_names()) {
        if (!c->peer_up(peer)) {
            continue;
        }
        std::vector<DigestEntry> remote;
        try {
            remote = parse_digest_payload(c->digest_from(peer));
        } catch (const Error&) {
            continue;  // peer died mid-digest; the prober will notice
        }
        for (const auto& entry : remote) {
            // Only models this node should hold: self on the ring
            // preference list.  Anything else stays the owners' problem —
            // anti-entropy repairs placement, it does not replicate
            // everything everywhere.
            const auto preference = c->preference(entry.name);
            if (std::find(preference.begin(), preference.end(), c->self_name()) ==
                preference.end()) {
                continue;
            }
            const auto local = registry_.get(entry.name);
            if (local != nullptr && (entry.revision <= local->revision ||
                                     entry.checksum == local->checksum)) {
                continue;  // ours is as new, or the bytes already match
            }
            try {
                admit_model(entry.name, read_snapshot(c->fetch_from(peer, entry.name)),
                            entry.revision);
                repairs_.fetch_add(1, std::memory_order_relaxed);
                ++repaired;
            } catch (const std::exception&) {
                // The fetch raced a drop, or the copy was corrupt in
                // flight; the next round retries against a healthy peer.
            }
        }
    }
    return repaired;
}

std::size_t SynthServer::rebalance_now() {
    const auto c = cluster();
    if (c == nullptr) {
        return 0;
    }
    c->rebalances.fetch_add(1, std::memory_order_relaxed);
    std::size_t moved = 0;
    // Pull phase: snapshots the current ring places here that this node is
    // missing (or holds stale) are fetched from whichever up peer reports
    // them — the new owner pulls, so a joining node fills itself instead of
    // every old owner having to notice the join.
    for (const auto& peer : c->peer_names()) {
        if (!c->peer_up(peer)) {
            continue;
        }
        std::vector<DigestEntry> remote;
        try {
            remote = parse_digest_payload(c->digest_from(peer));
        } catch (const Error&) {
            continue;  // peer died mid-digest; the prober will notice
        }
        for (const auto& entry : remote) {
            const auto preference = c->preference(entry.name);
            if (std::find(preference.begin(), preference.end(), c->self_name()) ==
                preference.end()) {
                continue;  // not placed here
            }
            const auto local = registry_.get(entry.name);
            if (local != nullptr && local->revision >= entry.revision) {
                continue;  // ours is as new
            }
            try {
                KINET_FAILPOINT("cluster.handoff");
                const std::string container = c->fetch_from(peer, entry.name);
                admit_model(entry.name, read_snapshot(container), entry.revision);
                c->handoff_snapshots.fetch_add(1, std::memory_order_relaxed);
                c->handoff_bytes.fetch_add(container.size(), std::memory_order_relaxed);
                ++moved;
            } catch (const std::exception&) {
                // Raced a drop, or the copy was corrupt in flight; epoch-
                // aware anti-entropy completes the move on a later round.
                c->handoff_failures.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    // Retire phase: snapshots this node holds that the ring moved elsewhere
    // are pushed (revision-guarded) to the first reachable member of their
    // new preference list *before* the local copy is dropped — the fleet
    // never retires its only copy.  An unreachable new owner just means the
    // copy stays here until a later rebalance or anti-entropy finishes the
    // move.
    for (const auto& name : registry_.names()) {
        const auto preference = c->preference(name);
        if (std::find(preference.begin(), preference.end(), c->self_name()) !=
            preference.end()) {
            continue;  // still placed here
        }
        const auto local = registry_.get(name);
        if (local == nullptr) {
            continue;  // concurrently dropped
        }
        bool handed_off = false;
        for (const auto& node : preference) {
            if (node == c->self_name() || !c->peer_up(node)) {
                continue;
            }
            try {
                KINET_FAILPOINT("cluster.handoff");
                std::string container;
                {
                    const MutexLock lock(local->mu);
                    container = write_snapshot(*local->model);
                }
                c->replicate_to(node, name, container, local->revision);
                c->handoff_snapshots.fetch_add(1, std::memory_order_relaxed);
                c->handoff_bytes.fetch_add(container.size(), std::memory_order_relaxed);
                handed_off = true;
                ++moved;
                break;
            } catch (const std::exception&) {
                c->handoff_failures.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (handed_off) {
            registry_.erase(name);
            if (store_ != nullptr && !crashed_.load(std::memory_order_relaxed)) {
                store_->remove(name);
            }
        }
    }
    return moved;
}

std::shared_ptr<ModelEntry> SynthServer::require_model(const std::string& name) const {
    auto entry = registry_.get(name);
    if (entry == nullptr) {
        throw Error("no model named " + name);
    }
    return entry;
}

std::shared_ptr<ModelEntry> SynthServer::acquire_model(const std::string& name,
                                                       bool allow_pull_through) {
    if (auto entry = registry_.get(name)) {
        return entry;
    }
    const auto c = cluster();
    if (c != nullptr && allow_pull_through) {
        for (const auto& node : c->preference(name)) {
            if (node == c->self_name() || !c->peer_up(node)) {
                continue;
            }
            try {
                admit_model(name, read_snapshot(c->fetch_from(node, name)));
                c->cache_fills.fetch_add(1, std::memory_order_relaxed);
                if (auto entry = registry_.get(name)) {
                    return entry;
                }
            } catch (const Error&) {
                // That member doesn't have it (or died); try the next one.
            }
        }
    }
    throw Error("no model named " + name);
}

}  // namespace kinet::service
