#include "src/service/server.hpp"

#include <future>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/common/parallel.hpp"
#include "src/common/text.hpp"
#include "src/data/split.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/service/snapshot.hpp"

namespace kinet::service {
namespace {

/// Upper bound on rows per SAMPLE/VALIDATE request — protects the daemon
/// from a single request monopolising memory; clients page with seeds.
constexpr std::uint64_t kMaxSampleRows = 1'000'000;

std::string kv_line(const std::string& key, const std::string& value) {
    return key + "=" + value + "\n";
}

Response error_response(std::string message) {
    Response r;
    r.ok = false;
    r.error = std::move(message);
    return r;
}

}  // namespace

SynthServer::SynthServer(ServerOptions options)
    : options_(options), kg_(kg::NetworkKg::build_lab()) {}

SynthServer::~SynthServer() { stop(); }

void SynthServer::start() {
    KINET_CHECK(!running_.load(), "SynthServer::start: already running");
    listener_ = TcpListener::bind_loopback(options_.port);
    running_.store(true);
    acceptor_ = std::thread([this] { accept_loop(); });
}

void SynthServer::stop() {
    if (!running_.exchange(false)) {
        return;
    }
    listener_.shutdown();
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    std::unordered_map<std::uint64_t, std::thread> threads;
    {
        const std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& [id, stream] : live_conns_) {
            stream->shutdown();  // unblocks the connection thread's read
        }
        threads.swap(conn_threads_);
        finished_conns_.clear();
    }
    for (auto& [id, t] : threads) {
        t.join();
    }
}

void SynthServer::reap_finished_connections() {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::uint64_t id : finished_conns_) {
        const auto it = conn_threads_.find(id);
        if (it != conn_threads_.end()) {
            it->second.join();  // serve loop already returned: joins instantly
            conn_threads_.erase(it);
        }
    }
    finished_conns_.clear();
}

std::uint16_t SynthServer::port() const noexcept { return listener_.port(); }

void SynthServer::accept_loop() {
    while (running_.load()) {
        auto stream = listener_.accept();
        if (!stream.has_value()) {
            break;  // listener shut down
        }
        reap_finished_connections();
        // Registration in live_conns_ happens here, under the same lock as
        // the running_ check — so stop() either sees the connection (and
        // shuts its socket down) or the connection is never spawned.  The
        // stream lives on the heap so the registered pointer stays stable
        // when ownership moves into the thread.
        auto owned = std::make_unique<TcpStream>(std::move(*stream));
        const std::lock_guard<std::mutex> lock(conns_mu_);
        if (!running_.load()) {
            break;  // raced with stop(): drop the connection
        }
        const std::uint64_t id = next_conn_id_++;
        live_conns_[id] = owned.get();
        conn_threads_.emplace(
            id, std::thread([this, id, s = std::move(owned)]() mutable {
                serve_connection(id, *s);
            }));
    }
}

void SynthServer::serve_connection(std::uint64_t id, TcpStream& stream) {
    try {
        for (;;) {
            const auto line = stream.read_line();
            if (!line.has_value()) {
                break;  // client disconnected
            }
            Request request;
            try {
                request = parse_request(*line);
            } catch (const Error& e) {
                stream.write_all(format_response(error_response(e.what())));
                continue;
            }
            if (request.op == Op::quit) {
                stream.write_all(format_response(Response{}));
                break;
            }
            // The connection thread only does I/O; the handler — training,
            // sampling, anything compute-bound — runs on the shared pool.
            Response response;
            std::promise<void> done;
            ThreadPool::global().submit([&] {
                response = handle(request);
                done.set_value();
            });
            done.get_future().wait();
            stream.write_all(format_response(response));
        }
    } catch (const Error&) {
        // Socket-level failure (peer reset, shutdown during stop()): the
        // connection is over either way.
    }
    const std::lock_guard<std::mutex> lock(conns_mu_);
    live_conns_.erase(id);
    finished_conns_.push_back(id);
}

Response SynthServer::handle(const Request& request) {
    try {
        return dispatch(request);
    } catch (const std::exception& e) {
        return error_response(e.what());
    }
}

Response SynthServer::dispatch(const Request& request) {
    switch (request.op) {
    case Op::ping: {
        Response r;
        r.payload = "pong\n";
        return r;
    }
    case Op::train:
        return handle_train(request);
    case Op::load: {
        auto model = load_snapshot_file(request.positional.at(0));
        registry_.put(request.model, std::move(model));
        return Response{};
    }
    case Op::save: {
        const auto entry = require_model(request.model);
        const std::lock_guard<std::mutex> lock(entry->mu);
        save_snapshot_file(*entry->model, request.positional.at(0));
        return Response{};
    }
    case Op::drop:
        if (!registry_.erase(request.model)) {
            return error_response("no model named " + request.model);
        }
        return Response{};
    case Op::sample:
        return handle_sample(request);
    case Op::validate:
        return handle_validate(request);
    case Op::stats:
        return handle_stats(request);
    case Op::quit:
        return Response{};  // transport-level; acknowledged by the connection
    }
    return error_response("unhandled op");
}

Response SynthServer::handle_train(const Request& request) {
    netsim::LabSimOptions sim;
    sim.records = static_cast<std::size_t>(kv_u64(request, "records", 2000));
    sim.seed = kv_u64(request, "sim-seed", 7);
    sim.attack_intensity = kv_double(request, "attack", 1.0);

    data::Table train = netsim::LabTrafficSimulator(sim).generate();
    const double split_frac = kv_double(request, "split-frac", 0.0);
    if (split_frac > 0.0) {
        Rng split_rng(kv_u64(request, "split-seed", 0));
        auto split = data::train_test_split(train, split_frac, split_rng,
                                            netsim::lab_label_column());
        train = std::move(split.train);
    }

    core::KiNetGanOptions opts;
    opts.gan.epochs = static_cast<std::size_t>(
        kv_u64(request, "epochs", options_.default_epochs));
    opts.gan.seed = kv_u64(request, "gan-seed", 42);

    auto model = std::make_unique<core::KiNetGan>(
        kg_.make_oracle(), netsim::lab_conditional_columns(), opts);
    model->fit(train);

    Response r;
    r.payload += kv_line("rows", std::to_string(train.rows()));
    r.payload += kv_line("epochs", std::to_string(opts.gan.epochs));
    r.payload += kv_line("seconds", text::format_double(model->report().seconds, 3));
    r.payload += kv_line("adherence", text::format_double(model->last_cond_adherence(), 4));
    registry_.put(request.model, std::move(model));
    return r;
}

Response SynthServer::handle_sample(const Request& request) {
    const auto entry = require_model(request.model);
    const auto n = static_cast<std::size_t>(
        parse_u64(request.positional.at(0), "SAMPLE row count"));
    KINET_CHECK(n <= kMaxSampleRows, "SAMPLE: row count " + std::to_string(n) +
                                         " exceeds the per-request cap of " +
                                         std::to_string(kMaxSampleRows));
    const std::uint64_t seed = kv_u64(request, "seed", 0);

    std::string cond_column;
    std::string cond_value;
    if (const auto it = request.kv.find("cond"); it != request.kv.end()) {
        const std::size_t colon = it->second.find(':');
        KINET_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < it->second.size(),
                    "SAMPLE: cond must be <column>:<value>");
        cond_column = it->second.substr(0, colon);
        cond_value = it->second.substr(colon + 1);
    }

    data::Table rows;
    {
        const std::lock_guard<std::mutex> lock(entry->mu);
        rows = cond_column.empty()
                   ? entry->model->sample_seeded(n, seed)
                   : entry->model->sample_conditional_seeded(n, cond_column, cond_value, seed);
    }
    entry->requests.fetch_add(1, std::memory_order_relaxed);
    entry->rows_served.fetch_add(rows.rows(), std::memory_order_relaxed);

    Response r;
    r.payload = csv::serialize(rows.to_csv());
    return r;
}

Response SynthServer::handle_validate(const Request& request) {
    const auto entry = require_model(request.model);
    const auto n = static_cast<std::size_t>(
        kv_u64(request, "n", options_.default_validate_rows));
    KINET_CHECK(n <= kMaxSampleRows, "VALIDATE: row count " + std::to_string(n) +
                                         " exceeds the per-request cap of " +
                                         std::to_string(kMaxSampleRows));
    const std::uint64_t seed = kv_u64(request, "seed", 0);
    double validity = 0.0;
    {
        const std::lock_guard<std::mutex> lock(entry->mu);
        const data::Table rows = entry->model->sample_seeded(n, seed);
        validity = entry->model->kg_validity_rate(rows);
    }
    entry->requests.fetch_add(1, std::memory_order_relaxed);

    Response r;
    r.payload += kv_line("rows", std::to_string(n));
    r.payload += kv_line("validity", text::format_double(validity, 4));
    return r;
}

Response SynthServer::handle_stats(const Request& request) {
    Response r;
    if (!request.model.empty()) {
        const auto entry = require_model(request.model);
        const std::lock_guard<std::mutex> lock(entry->mu);
        const auto& report = entry->model->report();
        r.payload += kv_line("model", request.model);
        r.payload += kv_line("requests", std::to_string(entry->requests.load()));
        r.payload += kv_line("rows_served", std::to_string(entry->rows_served.load()));
        r.payload += kv_line("epochs_trained", std::to_string(report.generator_loss.size()));
        r.payload += kv_line("train_seconds", text::format_double(report.seconds, 3));
        r.payload += kv_line("adherence",
                             text::format_double(entry->model->last_cond_adherence(), 4));
        if (!report.generator_loss.empty()) {
            r.payload += kv_line("final_g_loss",
                                 text::format_double(report.generator_loss.back(), 4));
            r.payload += kv_line("final_d_loss",
                                 text::format_double(report.discriminator_loss.back(), 4));
        }
        return r;
    }
    r.payload += kv_line("models", std::to_string(registry_.size()));
    for (const auto& name : registry_.names()) {
        const auto entry = registry_.get(name);
        if (entry == nullptr) {
            continue;  // concurrently dropped
        }
        r.payload += name + " requests=" + std::to_string(entry->requests.load()) +
                     " rows_served=" + std::to_string(entry->rows_served.load()) + "\n";
    }
    return r;
}

std::shared_ptr<ModelEntry> SynthServer::require_model(const std::string& name) const {
    auto entry = registry_.get(name);
    if (entry == nullptr) {
        throw Error("no model named " + name);
    }
    return entry;
}

}  // namespace kinet::service
