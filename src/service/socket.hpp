// Minimal RAII wrappers over POSIX TCP sockets — just enough for the kinetd
// daemon and its clients: a loopback listener with ephemeral-port support and
// a buffered stream with line/exact-length reads matching the protocol
// framing, plus the non-blocking read/write primitives the event-driven
// server core multiplexes over epoll.  Errors surface as kinet::Error with
// errno text.  SIGPIPE is ignored process-wide the first time any socket is
// created (a peer-closed write must surface as EPIPE, never kill the
// daemon), with MSG_NOSIGNAL kept per-send as defence in depth.
#ifndef KINETGAN_SERVICE_SOCKET_H
#define KINETGAN_SERVICE_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace kinet::service {

/// Installs SIG_IGN for SIGPIPE once per process (idempotent, thread-safe).
/// Called by every socket constructor path; exposed so servers embedding
/// raw fds can guarantee it too.
void ignore_sigpipe();

/// A connected TCP byte stream (move-only; closes on destruction).
class TcpStream {
public:
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream();
    TcpStream(TcpStream&& other) noexcept;
    TcpStream& operator=(TcpStream&& other) noexcept;
    TcpStream(const TcpStream&) = delete;
    TcpStream& operator=(const TcpStream&) = delete;

    /// Connects to host:port; throws kinet::Error on failure.  A non-zero
    /// `connect_timeout_ms` bounds the TCP handshake (non-blocking connect
    /// + poll) so a black-holed server fails the call instead of hanging
    /// for the kernel default (minutes).
    [[nodiscard]] static TcpStream connect(const std::string& host, std::uint16_t port,
                                           std::size_t connect_timeout_ms = 0);

    /// Bounds every subsequent blocking read: a server that accepts but
    /// never responds makes read_line()/read_exact() throw kinet::Error
    /// ("receive timed out") after `ms` milliseconds.  0 disables.
    void set_recv_timeout(std::size_t ms);

    /// Writes the whole buffer (retrying short writes); throws on error.
    void write_all(std::string_view data);

    /// Reads up to the next LF; returns the line without it, or nullopt on
    /// clean EOF at a line boundary.  Throws on socket errors or EOF mid-line.
    [[nodiscard]] std::optional<std::string> read_line();

    /// Reads exactly n bytes; throws on EOF or error.
    [[nodiscard]] std::string read_exact(std::size_t n);

    /// Half-closes both directions without releasing the fd — unblocks a
    /// read_line() in progress on another thread (used for server shutdown).
    void shutdown();
    void close();
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }
    /// Relinquishes ownership of the fd (the stream becomes invalid).
    [[nodiscard]] int release() noexcept;

    /// Toggles O_NONBLOCK (the event loop runs every connection fd
    /// non-blocking; the blocking client never calls this).
    void set_nonblocking(bool nonblocking);

    // ---- non-blocking primitives (fd must be O_NONBLOCK) ----

    /// Appends whatever the socket has ready to `out` (drains until
    /// EAGAIN); returns false on peer EOF, true otherwise.  Throws on
    /// hard socket errors (reset).
    bool read_available(std::string& out);

    /// Writes as much of `data` as the socket accepts right now and
    /// returns the byte count (possibly 0 on EAGAIN — the caller yields
    /// back to the event loop and retries on EPOLLOUT).  EINTR retries
    /// internally; EPIPE/reset throw kinet::Error.
    std::size_t write_some(std::string_view data);

private:
    /// Refills rdbuf_; returns false on EOF.
    bool fill();

    int fd_ = -1;
    std::string rdbuf_;
    std::size_t rdpos_ = 0;
    bool recv_timeout_set_ = false;
};

/// A listening TCP socket bound to 127.0.0.1 (move-only).
class TcpListener {
public:
    TcpListener() = default;
    ~TcpListener();
    TcpListener(TcpListener&& other) noexcept;
    TcpListener& operator=(TcpListener&& other) noexcept;
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// Binds and listens on 127.0.0.1:port (0 picks an ephemeral port).
    [[nodiscard]] static TcpListener bind_loopback(std::uint16_t port);

    /// Blocks for the next connection; nullopt once shutdown() was called.
    [[nodiscard]] std::optional<TcpStream> accept();

    /// Non-blocking accept for the event loop (the listener fd must be
    /// O_NONBLOCK via set_nonblocking): nullopt when no connection is
    /// pending (EAGAIN) — hard errors throw.
    [[nodiscard]] std::optional<TcpStream> try_accept();

    void set_nonblocking(bool nonblocking);

    /// Unblocks any accept() in progress (e.g. from another thread); the
    /// socket stays allocated until destruction.
    void shutdown();

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_SOCKET_H
