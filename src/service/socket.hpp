// Minimal RAII wrappers over POSIX TCP sockets — just enough for the kinetd
// daemon and its clients: a loopback listener with ephemeral-port support and
// a buffered stream with line/exact-length reads matching the protocol
// framing.  Errors surface as kinet::Error with errno text.
#ifndef KINETGAN_SERVICE_SOCKET_H
#define KINETGAN_SERVICE_SOCKET_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace kinet::service {

/// A connected TCP byte stream (move-only; closes on destruction).
class TcpStream {
public:
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream();
    TcpStream(TcpStream&& other) noexcept;
    TcpStream& operator=(TcpStream&& other) noexcept;
    TcpStream(const TcpStream&) = delete;
    TcpStream& operator=(const TcpStream&) = delete;

    /// Connects to host:port; throws kinet::Error on failure.
    [[nodiscard]] static TcpStream connect(const std::string& host, std::uint16_t port);

    /// Writes the whole buffer (retrying short writes); throws on error.
    void write_all(std::string_view data);

    /// Reads up to the next LF; returns the line without it, or nullopt on
    /// clean EOF at a line boundary.  Throws on socket errors or EOF mid-line.
    [[nodiscard]] std::optional<std::string> read_line();

    /// Reads exactly n bytes; throws on EOF or error.
    [[nodiscard]] std::string read_exact(std::size_t n);

    /// Half-closes both directions without releasing the fd — unblocks a
    /// read_line() in progress on another thread (used for server shutdown).
    void shutdown();
    void close();
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

private:
    /// Refills rdbuf_; returns false on EOF.
    bool fill();

    int fd_ = -1;
    std::string rdbuf_;
    std::size_t rdpos_ = 0;
};

/// A listening TCP socket bound to 127.0.0.1 (move-only).
class TcpListener {
public:
    TcpListener() = default;
    ~TcpListener();
    TcpListener(TcpListener&& other) noexcept;
    TcpListener& operator=(TcpListener&& other) noexcept;
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// Binds and listens on 127.0.0.1:port (0 picks an ephemeral port).
    [[nodiscard]] static TcpListener bind_loopback(std::uint16_t port);

    /// Blocks for the next connection; nullopt once shutdown() was called.
    [[nodiscard]] std::optional<TcpStream> accept();

    /// Unblocks any accept() in progress (e.g. from another thread); the
    /// socket stays allocated until destruction.
    void shutdown();

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_SOCKET_H
