// Lock-cheap serving metrics for the event-driven server core.
//
// Every counter is a relaxed atomic and the latency histograms use
// fixed power-of-two buckets, so recording from the event loop, the
// request workers and the training executor never takes a lock and never
// contends beyond a cache line.  Reads (the STATS op) walk the atomics and
// render a point-in-time snapshot — approximate under concurrent writes,
// which is exactly what a metrics surface is allowed to be.
#ifndef KINETGAN_SERVICE_METRICS_H
#define KINETGAN_SERVICE_METRICS_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/service/protocol.hpp"

namespace kinet::service {

/// Log₂-bucketed latency histogram over microseconds: bucket i counts
/// samples in [2^i, 2^(i+1)) µs, so 40 buckets span 1 µs to ~12 days.
/// record() is two relaxed fetch_adds; quantiles come from a bucket walk
/// and report the bucket's upper bound (≤ 2x overestimate, never under).
class LatencyHistogram {
public:
    static constexpr std::size_t kBuckets = 40;

    void record(std::uint64_t micros) noexcept;

    struct Snapshot {
        std::uint64_t count = 0;
        std::uint64_t sum_us = 0;
        std::uint64_t p50_us = 0;
        std::uint64_t p90_us = 0;
        std::uint64_t p99_us = 0;
        [[nodiscard]] double mean_us() const noexcept {
            return count == 0 ? 0.0 : static_cast<double>(sum_us) / static_cast<double>(count);
        }
    };
    [[nodiscard]] Snapshot snapshot() const noexcept;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_us_{0};
};

/// Sliding-window rate counter: a ring of per-second cells tagged with
/// their absolute second.  add() and per_second() are all-atomic and
/// wait-free; cells being recycled across a second boundary can lose a
/// handful of counts, an accepted property of a monitoring rate (the
/// lifetime total lives in a separate counter).
class WindowedRate {
public:
    static constexpr std::size_t kWindow = 16;  // seconds of history

    void add(std::uint64_t amount, std::int64_t now_sec) noexcept;
    /// Mean per-second rate over the window ending at now_sec (inclusive).
    [[nodiscard]] double per_second(std::int64_t now_sec) const noexcept;

private:
    struct Cell {
        std::atomic<std::int64_t> sec{-1};
        std::atomic<std::uint64_t> amount{0};
    };
    std::array<Cell, kWindow> cells_{};
};

/// The daemon-wide metrics block rendered by the global STATS op.
class Metrics {
public:
    Metrics();

    /// Records one completed request of `op` taking `micros`.
    void record_op(Op op, std::uint64_t micros) noexcept;
    /// Records `rows` synthetic rows leaving the process (framed or
    /// streamed) at the current wall-second.
    void record_rows(std::uint64_t rows) noexcept;

    /// Seconds since the metrics block was constructed (server start).
    [[nodiscard]] double uptime_seconds() const noexcept;
    /// Current absolute second on the metrics clock (for WindowedRate).
    [[nodiscard]] std::int64_t now_sec() const noexcept;

    /// Renders the kv block the global STATS response embeds: uptime,
    /// connection/queue/stream gauges, rows/s, and one line per op that
    /// has traffic (count, mean, p50/p90/p99).
    [[nodiscard]] std::string render() const;

    // -- gauges and counters (public on purpose: the event loop and the
    // server mutate them directly; every field is atomic).
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_refused{0};
    std::atomic<std::int64_t> connections_open{0};
    std::atomic<std::uint64_t> connections_peak{0};
    std::atomic<std::uint64_t> requests_handled{0};
    std::atomic<std::uint64_t> queue_full_rejections{0};
    std::atomic<std::int64_t> queue_depth{0};
    std::atomic<std::uint64_t> streams_opened{0};
    std::atomic<std::int64_t> streams_active{0};
    std::atomic<std::uint64_t> stream_suspensions{0};
    std::atomic<std::uint64_t> rows_served{0};
    std::atomic<std::uint64_t> bytes_out{0};

    /// Raises connections_peak to at least `open` (monotonic max).
    void note_peak(std::int64_t open) noexcept;

private:
    std::array<LatencyHistogram, kOpCount> op_latency_{};
    WindowedRate rows_rate_{};
    std::chrono::steady_clock::time_point start_;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_METRICS_H
