#include "src/service/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "src/common/bytes.hpp"
#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"
#include "src/common/fsio.hpp"

namespace kinet::service {

std::string write_snapshot(core::KiNetGan& model) {
    KINET_FAILPOINT("snapshot.write");
    bytes::Writer payload;
    model.save(payload);
    return wrap_snapshot_payload(payload.buffer());
}

std::string wrap_snapshot_payload(std::string_view payload) {
    bytes::Writer out;
    out.raw(kSnapshotMagic);
    out.u32(kSnapshotVersion);
    out.u64(payload.size());
    out.u64(bytes::fnv1a(payload));
    out.raw(payload);
    return out.take();
}

std::unique_ptr<core::KiNetGan> read_snapshot(std::string_view data) {
    KINET_FAILPOINT("snapshot.read");
    bytes::Reader header(data);
    if (header.remaining() < kSnapshotMagic.size() + 4 + 8 + 8) {
        throw Error("snapshot: truncated header (" + std::to_string(data.size()) + " bytes)");
    }
    if (header.raw(kSnapshotMagic.size()) != kSnapshotMagic) {
        throw Error("snapshot: bad magic — not a KiNETGAN snapshot");
    }
    const std::uint32_t version = header.u32();
    if (version != kSnapshotVersion) {
        throw Error("snapshot: unsupported format version " + std::to_string(version) +
                    " (this build reads version " + std::to_string(kSnapshotVersion) + ")");
    }
    const auto payload_size = static_cast<std::size_t>(header.u64());
    const std::uint64_t expected_hash = header.u64();
    if (header.remaining() != payload_size) {
        throw Error("snapshot: truncated payload (declared " + std::to_string(payload_size) +
                    " bytes, have " + std::to_string(header.remaining()) + ")");
    }
    const std::string_view payload = header.raw(payload_size);
    const std::uint64_t actual_hash = bytes::fnv1a(payload);
    if (actual_hash != expected_hash) {
        throw Error("snapshot: payload checksum mismatch — file is corrupt");
    }

    bytes::Reader body(payload);
    auto model = core::KiNetGan::load(body);
    if (!body.exhausted()) {
        throw Error("snapshot: " + std::to_string(body.remaining()) +
                    " trailing bytes after model state");
    }
    return model;
}

void save_snapshot_file(core::KiNetGan& model, const std::string& path) {
    const std::string blob = write_snapshot(model);
    // Atomic replacement: the container goes to `path + ".tmp"`, is fsynced,
    // and only then renamed over the target.  A crash (or an injected fault)
    // at any instant leaves either the previous snapshot or the new one on
    // disk — never a torn file a restart would refuse to load.
    fsio::write_file_durable(path + ".tmp", blob);
    KINET_FAILPOINT("snapshot.commit");
    fsio::rename_durable(path + ".tmp", path);
}

std::unique_ptr<core::KiNetGan> load_snapshot_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    KINET_CHECK(in.good(), "snapshot: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    KINET_CHECK(!in.bad(), "snapshot: read from " + path + " failed");
    return read_snapshot(buf.str());
}

}  // namespace kinet::service
