#include "src/service/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "src/common/bytes.hpp"
#include "src/common/check.hpp"

namespace kinet::service {

std::string write_snapshot(core::KiNetGan& model) {
    bytes::Writer payload;
    model.save(payload);

    bytes::Writer out;
    out.raw(kSnapshotMagic);
    out.u32(kSnapshotVersion);
    out.u64(payload.size());
    out.u64(bytes::fnv1a(payload.buffer()));
    out.raw(payload.buffer());
    return out.take();
}

std::unique_ptr<core::KiNetGan> read_snapshot(std::string_view data) {
    bytes::Reader header(data);
    if (header.remaining() < kSnapshotMagic.size() + 4 + 8 + 8) {
        throw Error("snapshot: truncated header (" + std::to_string(data.size()) + " bytes)");
    }
    if (header.raw(kSnapshotMagic.size()) != kSnapshotMagic) {
        throw Error("snapshot: bad magic — not a KiNETGAN snapshot");
    }
    const std::uint32_t version = header.u32();
    if (version != kSnapshotVersion) {
        throw Error("snapshot: unsupported format version " + std::to_string(version) +
                    " (this build reads version " + std::to_string(kSnapshotVersion) + ")");
    }
    const auto payload_size = static_cast<std::size_t>(header.u64());
    const std::uint64_t expected_hash = header.u64();
    if (header.remaining() != payload_size) {
        throw Error("snapshot: truncated payload (declared " + std::to_string(payload_size) +
                    " bytes, have " + std::to_string(header.remaining()) + ")");
    }
    const std::string_view payload = header.raw(payload_size);
    const std::uint64_t actual_hash = bytes::fnv1a(payload);
    if (actual_hash != expected_hash) {
        throw Error("snapshot: payload checksum mismatch — file is corrupt");
    }

    bytes::Reader body(payload);
    auto model = core::KiNetGan::load(body);
    if (!body.exhausted()) {
        throw Error("snapshot: " + std::to_string(body.remaining()) +
                    " trailing bytes after model state");
    }
    return model;
}

void save_snapshot_file(core::KiNetGan& model, const std::string& path) {
    const std::string blob = write_snapshot(model);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    KINET_CHECK(out.good(), "snapshot: cannot open " + path + " for writing");
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    KINET_CHECK(out.good(), "snapshot: write to " + path + " failed");
}

std::unique_ptr<core::KiNetGan> load_snapshot_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    KINET_CHECK(in.good(), "snapshot: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    KINET_CHECK(!in.bad(), "snapshot: read from " + path + " failed");
    return read_snapshot(buf.str());
}

}  // namespace kinet::service
