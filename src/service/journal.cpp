#include "src/service/journal.hpp"

#include <optional>
#include <sstream>

#include "src/common/failpoint.hpp"
#include "src/common/fsio.hpp"
#include "src/common/text.hpp"

namespace kinet::service {
namespace {

std::optional<JobState> parse_state(std::string_view token) {
    for (const JobState s : {JobState::queued, JobState::running, JobState::done,
                             JobState::failed, JobState::cancelled}) {
        if (job_state_name(s) == token) {
            return s;
        }
    }
    return std::nullopt;
}

std::optional<std::uint64_t> parse_number(const std::string& token) {
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(token, &used);
        if (used != token.size()) {
            return std::nullopt;
        }
        return v;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

/// One line -> one record; nullopt marks the torn tail replay stops at.
std::optional<JobJournal::Record> parse_line(const std::string& line) {
    const auto tokens = text::split(line, ' ');
    if (tokens.size() < 2 || tokens[0] != "v1") {
        return std::nullopt;
    }
    JobJournal::Record record;
    if (tokens[1] == "submit") {
        if (tokens.size() != 6) {
            return std::nullopt;
        }
        record.kind = JobJournal::Record::Kind::submit;
        const auto id = parse_number(tokens[2]);
        const auto epochs = parse_number(tokens[3]);
        if (!id.has_value() || !epochs.has_value()) {
            return std::nullopt;
        }
        record.id = *id;
        record.epochs_total = static_cast<std::size_t>(*epochs);
        try {
            record.model = text::hex_decode(tokens[4]);
            record.request_line = text::hex_decode(tokens[5]);
        } catch (const std::exception&) {
            return std::nullopt;
        }
        return record;
    }
    if (tokens[1] == "term") {
        if (tokens.size() != 5) {
            return std::nullopt;
        }
        record.kind = JobJournal::Record::Kind::terminal;
        const auto id = parse_number(tokens[2]);
        const auto state = parse_state(tokens[3]);
        if (!id.has_value() || !state.has_value()) {
            return std::nullopt;
        }
        record.id = *id;
        record.state = *state;
        try {
            record.error = text::hex_decode(tokens[4]);
        } catch (const std::exception&) {
            return std::nullopt;
        }
        return record;
    }
    return std::nullopt;
}

}  // namespace

void JobJournal::append_submit(std::uint64_t id, std::size_t epochs_total,
                               const std::string& model,
                               const std::string& request_line) {
    KINET_FAILPOINT("journal.append");
    fsio::append_durable(path_, "v1 submit " + std::to_string(id) + " " +
                                    std::to_string(epochs_total) + " " +
                                    text::hex_encode(model) + " " +
                                    text::hex_encode(request_line) + "\n");
}

void JobJournal::append_terminal(std::uint64_t id, JobState state,
                                 const std::string& error) {
    KINET_FAILPOINT("journal.append");
    fsio::append_durable(path_, "v1 term " + std::to_string(id) + " " +
                                    std::string(job_state_name(state)) + " " +
                                    text::hex_encode(error) + "\n");
}

std::vector<JobJournal::Record> JobJournal::replay(const std::string& path) {
    std::string content;
    try {
        content = fsio::read_file(path);
    } catch (const std::exception&) {
        return {};  // no journal yet — a fresh daemon
    }
    std::vector<Record> records;
    std::stringstream ss(content);
    std::string line;
    while (std::getline(ss, line)) {
        auto record = parse_line(line);
        if (!record.has_value()) {
            break;  // torn tail from a crashed append; everything before is good
        }
        records.push_back(std::move(*record));
    }
    return records;
}

void JobJournal::truncate(const std::string& path) {
    fsio::replace_file_durable(path, "");
}

}  // namespace kinet::service
