// Named model store behind the synthetic-data service.
//
// The registry maps site-scoped model names ("site-0", "site-1", ...) to
// fitted KiNetGan instances.  Lookups take a shared lock, so concurrent
// requests against different models never contend; registration and removal
// take the exclusive lock.  Seeded sampling runs on the const inference
// fast path (per-request workspaces, no layer-cache mutation), so any
// number of SAMPLE/VALIDATE requests share one entry without locking; the
// per-entry mutex only serialises the remaining whole-model operations
// (SAVE's serialization, STATS' report reads).
#ifndef KINETGAN_SERVICE_REGISTRY_H
#define KINETGAN_SERVICE_REGISTRY_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/kinetgan.hpp"

namespace kinet::service {

/// One registered model plus its serving bookkeeping.
struct ModelEntry {
    std::unique_ptr<core::KiNetGan> model;
    /// Serialises whole-model operations (SAVE, STATS report reads);
    /// seeded sampling is const/thread-safe and does not take it.
    std::mutex mu;
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> rows_served{0};
};

class ModelRegistry {
public:
    /// Registers (or replaces) a model under `name`; exclusive-write.
    void put(const std::string& name, std::unique_ptr<core::KiNetGan> model);

    /// Shared-read lookup; nullptr if absent.  The returned shared_ptr keeps
    /// the entry alive even if it is concurrently replaced or erased.
    [[nodiscard]] std::shared_ptr<ModelEntry> get(const std::string& name) const;

    /// Removes a model; returns false if absent.  Exclusive-write.
    bool erase(const std::string& name);

    /// Registered names in sorted order.
    [[nodiscard]] std::vector<std::string> names() const;

    [[nodiscard]] std::size_t size() const;

private:
    mutable std::shared_mutex mu_;
    std::map<std::string, std::shared_ptr<ModelEntry>> models_;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_REGISTRY_H
