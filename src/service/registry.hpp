// Named model store behind the synthetic-data service.
//
// The registry maps site-scoped model names ("site-0", "site-1", ...) to
// fitted KiNetGan instances.  Lookups take a shared lock, so concurrent
// requests against different models never contend; registration and removal
// take the exclusive lock.  Seeded sampling runs on the const inference
// fast path (per-request workspaces, no layer-cache mutation), so any
// number of SAMPLE/VALIDATE requests share one entry without locking; the
// per-entry mutex only serialises the remaining whole-model operations
// (SAVE's serialization, STATS' report reads).
//
// A memory budget and idle TTL keep a long-lived daemon's snapshot cache
// bounded: each entry's serialized size is measured once at registration,
// put() evicts least-recently-used entries while the total exceeds the
// budget, and evict_expired() (driven by the server's housekeeping tick)
// drops entries idle longer than the TTL.  Both limits default to off.
// Eviction only unlinks the name — in-flight requests holding the entry's
// shared_ptr (including suspended stream cursors) keep the model alive
// until they finish.
#ifndef KINETGAN_SERVICE_REGISTRY_H
#define KINETGAN_SERVICE_REGISTRY_H

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/core/kinetgan.hpp"

namespace kinet::service {

/// One registered model plus its serving bookkeeping.
struct ModelEntry {
    std::unique_ptr<core::KiNetGan> model;
    /// Serialises whole-model operations (SAVE, STATS report reads);
    /// seeded sampling is const/thread-safe and does not take it.  It
    /// guards `model`'s non-const surface, not a field list — the pointee
    /// is shared with lock-free const readers by design, so the mutex
    /// carries no GUARDED_BY edges the analysis could check.
    Mutex mu;
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> rows_served{0};
    /// Serialized snapshot size, measured once at put() — the unit the
    /// registry's memory budget is accounted in.
    std::uint64_t memory_bytes = 0;
    /// FNV-1a of the serialized payload — the same checksum the snapshot
    /// container carries, so digests compare across the fleet for free.
    std::uint64_t checksum = 0;
    /// Registry revision stamped at put() — a Lamport-style counter that
    /// orders replacements of the same name across restarts and peers
    /// (anti-entropy pulls a peer's copy only when its revision is newer).
    std::uint64_t revision = 0;
    /// Milliseconds on the registry clock of the last get(); drives both
    /// LRU ordering and TTL expiry.
    std::atomic<std::int64_t> last_access_ms{0};
};

/// One model's line in the registry digest (the DIGEST op's manifest and
/// the persistence manifest both serialize this).
struct DigestEntry {
    std::string name;
    std::uint64_t revision = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
};

class ModelRegistry {
public:
    /// Registers (or replaces) a model under `name`; exclusive-write.
    /// While the configured budget is exceeded, least-recently-used other
    /// entries are evicted (the newly registered model itself is never the
    /// victim, even if it alone exceeds the budget).
    ///
    /// `revision` 0 stamps the next local revision; a non-zero revision
    /// (from a peer's digest or the recovery manifest) is adopted verbatim
    /// and the local clock advanced past it, Lamport-style.  Returns the
    /// stamped revision.  When `container_out` is non-null it receives the
    /// full snapshot container for the registered payload — callers that
    /// persist write-through get the bytes without re-serializing.
    std::uint64_t put(const std::string& name, std::unique_ptr<core::KiNetGan> model,
                      std::uint64_t revision = 0, std::string* container_out = nullptr);

    /// Shared-read lookup; nullptr if absent.  Touches the entry's LRU/TTL
    /// clock.  The returned shared_ptr keeps the entry alive even if it is
    /// concurrently replaced, erased or evicted.
    [[nodiscard]] std::shared_ptr<ModelEntry> get(const std::string& name) const;

    /// Removes a model; returns false if absent.  Exclusive-write.
    bool erase(const std::string& name);

    /// Registered names in sorted order.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Per-model name/revision/bytes/checksum manifest in sorted-name order
    /// — the payload of the DIGEST op and the persistence manifest.
    [[nodiscard]] std::vector<DigestEntry> digest() const;

    [[nodiscard]] std::size_t size() const;

    /// Configures the cache bounds: `budget_bytes` caps the summed
    /// serialized size (0 = unlimited), `ttl_ms` expires entries idle that
    /// long (0 = never).  Applies from the next put()/evict_expired().
    void set_limits(std::uint64_t budget_bytes, std::uint64_t ttl_ms);

    /// Evicts entries idle past the TTL; returns how many were dropped.
    /// No-op when the TTL is 0.
    std::size_t evict_expired();

    /// Summed serialized size of all registered models.
    [[nodiscard]] std::uint64_t memory_bytes() const;

    /// Lifetime count of budget/TTL evictions (not explicit DROPs).
    [[nodiscard]] std::uint64_t evictions() const noexcept {
        return evictions_.load(std::memory_order_relaxed);
    }

private:
    /// Milliseconds since registry construction (steady clock).
    [[nodiscard]] std::int64_t now_ms() const noexcept;
    /// Drops LRU entries while over budget; requires the exclusive lock.
    /// `keep` is exempt (the entry just registered).
    void evict_over_budget_locked(const std::string& keep) KINET_REQUIRES(mu_);

    mutable SharedMutex mu_;
    std::map<std::string, std::shared_ptr<ModelEntry>> models_ KINET_GUARDED_BY(mu_);
    std::uint64_t revision_clock_ KINET_GUARDED_BY(mu_) = 0;
    std::uint64_t budget_bytes_ KINET_GUARDED_BY(mu_) = 0;
    std::uint64_t ttl_ms_ KINET_GUARDED_BY(mu_) = 0;
    std::uint64_t total_bytes_ KINET_GUARDED_BY(mu_) = 0;
    std::atomic<std::uint64_t> evictions_{0};
    std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_REGISTRY_H
