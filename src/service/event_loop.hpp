// Event-driven server core: one epoll loop multiplexing every connection.
//
// The loop thread owns all sockets — non-blocking reads into per-connection
// buffers, request framing, and write flushing with EPOLLOUT-driven
// backpressure.  It never computes: anything heavier than parsing runs on a
// bounded worker pool and posts its bytes back through a completion queue +
// eventfd wakeup, so total thread count is workers + 1 regardless of how
// many thousands of connections are open.  Streaming responses are
// resumable producers: the loop schedules one next_frame() at a time and
// simply stops scheduling while the connection's write buffer is above the
// high watermark — a stalled client suspends its own generator without
// holding any thread — resuming when the buffer drains below the low
// watermark.  Admission control is two-level: a connection cap (excess
// accepts get a best-effort `ERR queue_full` and close) and a bounded
// request queue (excess requests answer `ERR queue_full` instead of
// queueing without bound).
#ifndef KINETGAN_SERVICE_EVENT_LOOP_H
#define KINETGAN_SERVICE_EVENT_LOOP_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/service/metrics.hpp"
#include "src/service/protocol.hpp"
#include "src/service/socket.hpp"

namespace kinet::service {

struct EventLoopOptions {
    /// Listen port on 127.0.0.1; 0 picks an ephemeral port.
    std::uint16_t port = 0;
    /// Open-connection cap; accepts beyond it are refused with queue_full.
    std::size_t max_connections = 4096;
    /// Bound on requests queued for the worker pool (running requests
    /// excluded); past it, requests answer `ERR queue_full` immediately.
    std::size_t queue_depth = 256;
    /// Worker threads executing non-fast requests and stream steps.
    std::size_t workers = 4;
    /// Write-buffer backlog that suspends an active stream producer...
    std::size_t write_high_water = 1 << 20;
    /// ...and the drain level that resumes it.
    std::size_t write_low_water = 1 << 18;
    /// Longest accepted request line; beyond it the connection gets an ERR
    /// and is closed (a line that never ends is not a client worth keeping).
    std::size_t max_line_bytes = 1 << 20;
};

/// A resumable streaming response.  The loop requests one frame at a time
/// (on a worker thread, never concurrently with itself) and writes it out;
/// between calls the producer holds no thread, which is what makes a
/// stalled stream free to suspend.  Returning false marks `out` as the
/// final frame (END trailer or mid-stream ERR) and destroys the producer.
class StreamProducer {
public:
    virtual ~StreamProducer() = default;
    virtual bool next_frame(std::string& out) = 0;
};

/// The protocol brain the loop delegates to (all callbacks required except
/// on_tick).  The loop itself only knows framing, QUIT, and admission.
struct EventLoopHandlers {
    /// Executes one request to a full response frame (status line +
    /// payload).  Runs on a worker thread; must not throw.
    std::function<std::string(const Request&)> execute;
    /// True for ops cheap enough to execute() inline on the loop thread,
    /// bypassing the queue (liveness and monitoring stay responsive even
    /// when the queue is saturated).
    std::function<bool(const Request&)> is_fast;
    /// Returns a producer if the request selects a streaming response,
    /// nullptr for ordinary requests.  Runs on the loop thread and must be
    /// cheap (validate + open a cursor); throwing kinet::Error turns into
    /// an ordinary ERR response.
    std::function<std::unique_ptr<StreamProducer>(const Request&)> open_stream;
    /// Optional housekeeping invoked on the loop thread roughly once per
    /// second (registry TTL sweeps).
    std::function<void()> on_tick;
};

class EventLoop {
public:
    EventLoop(EventLoopOptions options, EventLoopHandlers handlers, Metrics& metrics);
    ~EventLoop();
    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    /// Binds the listener, spawns the workers and the loop thread.
    void start();
    /// Joins the loop and the workers and closes every connection.
    /// Idempotent; start() afterwards restores full service.
    void stop();
    /// Graceful-shutdown gate: new connections are refused and every
    /// non-fast request answers the retryable `draining:` rejection, while
    /// in-flight work (and fast ops — health checks keep answering) runs to
    /// completion.  The caller polls inflight_requests() and then stop()s.
    void drain();

    [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
    [[nodiscard]] bool running() const noexcept { return running_.load(); }
    /// Requests currently queued for or running on the worker pool
    /// (including stream steps) — the drain() progress gauge.
    [[nodiscard]] std::size_t inflight_requests() const noexcept {
        return inflight_.load(std::memory_order_relaxed);
    }

private:
    struct Connection {
        std::uint64_t id = 0;
        TcpStream stream;
        std::string rdbuf;
        std::size_t rdpos = 0;
        std::string wrbuf;
        std::size_t wrpos = 0;
        std::unique_ptr<StreamProducer> producer;
        /// A parsed request line whose declared binary body (REPLICATE) has
        /// not fully arrived yet; `pending_body` is the byte count still
        /// owed before it can dispatch.
        std::optional<Request> pending;
        std::size_t pending_body = 0;
        bool inflight = false;          // a worker owns this connection's turn
        bool suspended = false;         // producer parked on write backpressure
        bool close_after_flush = false;  // QUIT acknowledged / fatal ERR sent
        /// Logically dead: no further I/O or dispatch.  The object stays in
        /// the map (stack frames may still hold references, and an inflight
        /// worker may still post a completion) until the loop reaps it at
        /// the end of the iteration.
        bool closing = false;
        bool peer_eof = false;
        bool want_write = false;        // EPOLLOUT interest currently armed
        bool want_read = true;          // EPOLLIN interest (read backpressure)

        explicit Connection(std::uint64_t cid, TcpStream s)
            : id(cid), stream(std::move(s)) {}
        [[nodiscard]] std::size_t write_backlog() const noexcept {
            return wrbuf.size() - wrpos;
        }
        [[nodiscard]] std::size_t read_backlog() const noexcept {
            return rdbuf.size() - rdpos;
        }
    };

    /// Bytes a worker finished producing for one connection.
    struct Completion {
        std::uint64_t conn_id = 0;
        std::string bytes;
        bool stream_step = false;
        bool stream_final = false;
    };

    void loop_main();
    void worker_main();
    void handle_accepts();
    void handle_readable(Connection& conn);
    void handle_writable(Connection& conn);
    /// Parses and dispatches as many buffered requests as the connection's
    /// state allows (stops at an active stream or inflight task).
    void process_input(Connection& conn);
    void dispatch_request(Connection& conn, Request request);
    /// Appends bytes to the write buffer and flushes what the socket takes.
    void queue_output(Connection& conn, std::string_view bytes);
    /// Flushes the write buffer; manages EPOLLOUT interest, stream
    /// resumption below the low watermark, and close-after-flush.
    void flush_writes(Connection& conn);
    void schedule_stream_step(Connection& conn);
    void drain_completions();
    void apply_completion(const Completion& done);
    /// Marks the connection logically dead (deregisters it from epoll and
    /// half-closes the socket); the object is erased later — at the reap
    /// point of the loop iteration, and only once no task is inflight — so
    /// references held by frames further up the stack stay valid.
    void destroy_connection(Connection& conn);
    /// Erases connections queued by destroy_connection (loop thread, called
    /// when no Connection references are live on the stack).
    void reap_dead_connections();
    void update_interest(Connection& conn);
    /// Enqueues a worker task if the queue has room; false == queue full.
    bool try_enqueue_task(std::function<void()> task);
    void enqueue_task_unbounded(std::function<void()> task);
    void push_completion(Completion done);
    void wake_loop();

    EventLoopOptions options_;
    EventLoopHandlers handlers_;
    Metrics& metrics_;

    TcpListener listener_;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    std::thread loop_thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};
    /// Tasks handed to the pool whose completion has not been applied yet.
    std::atomic<std::size_t> inflight_{0};

    // Connection state is confined to the loop thread (loop_main and the
    // handlers it calls; stop() touches it only after joining the loop) —
    // single-owner by construction, so no capability guards it.
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
    std::vector<std::uint64_t> dead_;  // closing connections awaiting erase
    std::uint64_t next_conn_id_ = 1;

    std::vector<std::thread> workers_;
    Mutex tasks_mu_;
    CondVar tasks_cv_;
    std::deque<std::function<void()>> tasks_ KINET_GUARDED_BY(tasks_mu_);
    bool workers_stop_ KINET_GUARDED_BY(tasks_mu_) = false;

    Mutex done_mu_;
    std::vector<Completion> done_ KINET_GUARDED_BY(done_mu_);
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_EVENT_LOOP_H
