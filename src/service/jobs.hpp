// Async training-job subsystem for the synthetic-data service.
//
// A TRAIN is minutes of compute; serving it inline holds a connection
// thread *and* a shared pool worker for the whole fit, so a handful of
// concurrent trainings starve every SAMPLE/VALIDATE client (the paper's
// deployment has many sites training against one shared daemon).  The
// JobManager gives training its own small executor: dedicated worker
// threads pull queued jobs, run them with a cancellation + progress
// context, and record a terminal state the protocol's POLL/CANCEL/JOBS
// ops expose.  Request-pool latency is therefore independent of how many
// fits are in flight.
//
// Cancellation is cooperative: request_cancel() flips a flag the running
// work observes (KiNetGan::fit checks it at epoch boundaries via its
// FitObserver); a job still queued is cancelled immediately without ever
// running.
#ifndef KINETGAN_SERVICE_JOBS_H
#define KINETGAN_SERVICE_JOBS_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.hpp"

namespace kinet::service {

class JobJournal;

enum class JobState { queued, running, done, failed, cancelled };

[[nodiscard]] std::string_view job_state_name(JobState state);

/// A point-in-time view of one job, safe to read after the job finished.
struct JobInfo {
    std::uint64_t id = 0;
    std::string model;
    JobState state = JobState::queued;
    std::size_t epochs_done = 0;
    std::size_t epochs_total = 0;
    std::string error;  // failure message (state == failed only)
};

class JobManager {
public:
    struct Job;  // internal; opaque to callers

    /// Handed to running work: progress reporting + the cancellation flag.
    class Context {
    public:
        /// True once request_cancel() (or stop()) hit this job; work should
        /// abort promptly — KiNetGan::fit does so by returning false from
        /// its FitObserver.
        [[nodiscard]] bool cancel_requested() const noexcept;
        /// Records completed-epoch progress for POLL.
        void report_progress(std::size_t epochs_done) noexcept;

    private:
        friend class JobManager;
        explicit Context(Job& job) : job_(job) {}
        Job& job_;
    };

    using Work = std::function<void(Context&)>;

    /// Starts `workers` dedicated executor threads (at least 1).  These are
    /// separate from the request pool on purpose: a fit occupying every
    /// executor never delays a SAMPLE.
    explicit JobManager(std::size_t workers);
    ~JobManager();
    JobManager(const JobManager&) = delete;
    JobManager& operator=(const JobManager&) = delete;

    /// Enqueues work and returns its job id immediately.  `epochs_total` is
    /// the progress denominator reported by POLL.  On success the work
    /// function is responsible for publishing its result (the server's
    /// training jobs put() the fitted model into the registry) before
    /// returning; a throw marks the job failed — or cancelled, when
    /// cancellation was requested first.
    ///
    /// With a journal attached, the submission is durably journaled before
    /// it is queued (a failed append fails the submit — no job may run that
    /// a restart cannot see).  `request_line` is the original wire request
    /// recorded for crash recovery; empty marks the job non-resumable.
    std::uint64_t submit(std::string model, std::size_t epochs_total, Work work,
                         std::string request_line = {});

    /// Attaches (or, with nullptr, detaches) the durable job journal.
    /// Detaching is also the chaos-test crash hatch: a "crashed" in-process
    /// daemon stops journaling, freezing the on-disk state exactly as
    /// kill -9 would.
    void set_journal(std::shared_ptr<JobJournal> journal);

    /// Re-creates a terminal job record from the recovery journal: the id
    /// becomes POLLable with the given state/error, and the id allocator
    /// advances past it so new jobs never collide with journaled ones.
    /// Re-journals the record when a journal is attached (recovery rotates
    /// the journal, so restored records must be written back).
    void restore_terminal(const JobInfo& info);

    /// Snapshot of one job; nullopt if the id was never allocated (or the
    /// record was pruned — only terminal jobs are ever pruned).
    [[nodiscard]] std::optional<JobInfo> info(std::uint64_t id) const;

    /// Blocks until the job reaches a terminal state (done/failed/cancelled)
    /// or `timeout_ms` elapses, then returns its snapshot — the long-poll
    /// behind `POLL <id> wait=1`.  A caller must inspect the returned state:
    /// a timeout simply returns the still-live snapshot.  Returns nullopt
    /// for unknown ids immediately.  Progress (epochs_done) does not wake
    /// the wait; only terminal transitions and stop() do.
    [[nodiscard]] std::optional<JobInfo> wait(std::uint64_t id, std::size_t timeout_ms);

    /// Requests cancellation and returns the job's post-cancel snapshot in
    /// one critical section (nullopt if the id is unknown).  A queued job
    /// is cancelled on the spot; a running one stops at its next progress
    /// check; a job already terminal keeps its state — the snapshot shows
    /// it either way.
    std::optional<JobInfo> request_cancel(std::uint64_t id);

    /// All retained jobs, oldest first.
    [[nodiscard]] std::vector<JobInfo> list() const;

    /// Number of retained job records (live + terminal).
    [[nodiscard]] std::size_t size() const;

    [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

    /// Requests cancellation of every live job (queued ones become
    /// cancelled on the spot) without touching the executor threads —
    /// the manager keeps accepting new work afterwards.
    void cancel_all();

    /// Cancels queued and running jobs, then joins the executors; no
    /// further submissions are accepted.  Idempotent; also invoked by the
    /// destructor.
    void stop();

private:
    void worker_loop();
    /// Best-effort terminal append — a journal failure here is equivalent
    /// to crashing before the record landed, which recovery handles.
    void journal_terminal_locked(const Job& job) KINET_REQUIRES(mu_);
    void prune_terminal_locked() KINET_REQUIRES(mu_);

    mutable Mutex mu_;
    CondVar cv_;
    bool stopping_ KINET_GUARDED_BY(mu_) = false;
    std::uint64_t next_id_ KINET_GUARDED_BY(mu_) = 1;
    /// Durable journal (nullptr = journaling off).  Appends happen inside
    /// the manager's critical sections, so journal order == job-state order;
    /// training jobs are rare enough that the fsync under mu_ is immaterial.
    std::shared_ptr<JobJournal> journal_ KINET_GUARDED_BY(mu_);
    /// Ordered by id.  The map and queue structure is guarded; the pointed-
    /// to Job records carry their own discipline (see jobs.cpp).
    std::map<std::uint64_t, std::shared_ptr<Job>> jobs_ KINET_GUARDED_BY(mu_);
    std::deque<std::shared_ptr<Job>> queue_ KINET_GUARDED_BY(mu_);
    std::vector<std::thread> workers_;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_JOBS_H
