#include "src/service/metrics.hpp"

#include <bit>

#include "src/common/text.hpp"

namespace kinet::service {
namespace {

/// Bucket index of a microsecond latency: floor(log2(us)), clamped.
std::size_t bucket_of(std::uint64_t micros) noexcept {
    if (micros == 0) {
        return 0;
    }
    const auto b = static_cast<std::size_t>(std::bit_width(micros) - 1);
    return b < LatencyHistogram::kBuckets ? b : LatencyHistogram::kBuckets - 1;
}

}  // namespace

void LatencyHistogram::record(std::uint64_t micros) noexcept {
    buckets_[bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(micros, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
    Snapshot snap;
    std::array<std::uint64_t, kBuckets> counts{};
    for (std::size_t i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        snap.count += counts[i];
    }
    snap.sum_us = sum_us_.load(std::memory_order_relaxed);
    if (snap.count == 0) {
        return snap;
    }
    const auto quantile = [&](double q) -> std::uint64_t {
        // Rank within the locally summed counts (count_ may be mid-update).
        const auto rank = static_cast<std::uint64_t>(
            q * static_cast<double>(snap.count - 1));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen > rank) {
                return i + 1 >= 64 ? ~0ULL : (1ULL << (i + 1)) - 1;  // bucket upper bound
            }
        }
        return ~0ULL;
    };
    snap.p50_us = quantile(0.50);
    snap.p90_us = quantile(0.90);
    snap.p99_us = quantile(0.99);
    return snap;
}

void WindowedRate::add(std::uint64_t amount, std::int64_t now_sec) noexcept {
    Cell& cell = cells_[static_cast<std::size_t>(now_sec) % kWindow];
    std::int64_t tagged = cell.sec.load(std::memory_order_relaxed);
    if (tagged != now_sec) {
        // First writer of this second recycles the cell; a racing add for
        // the outgoing second may be dropped — accepted for a rate gauge.
        if (cell.sec.compare_exchange_strong(tagged, now_sec, std::memory_order_relaxed)) {
            cell.amount.store(0, std::memory_order_relaxed);
        }
    }
    cell.amount.fetch_add(amount, std::memory_order_relaxed);
}

double WindowedRate::per_second(std::int64_t now_sec) const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
        const std::int64_t sec = cell.sec.load(std::memory_order_relaxed);
        if (sec >= 0 && sec <= now_sec && now_sec - sec < static_cast<std::int64_t>(kWindow)) {
            total += cell.amount.load(std::memory_order_relaxed);
        }
    }
    const auto span = static_cast<double>(
        std::min<std::int64_t>(static_cast<std::int64_t>(kWindow), now_sec + 1));
    return span <= 0.0 ? 0.0 : static_cast<double>(total) / span;
}

Metrics::Metrics() : start_(std::chrono::steady_clock::now()) {}

void Metrics::record_op(Op op, std::uint64_t micros) noexcept {
    op_latency_[static_cast<std::size_t>(op)].record(micros);
    requests_handled.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_rows(std::uint64_t rows) noexcept {
    rows_served.fetch_add(rows, std::memory_order_relaxed);
    rows_rate_.add(rows, now_sec());
}

double Metrics::uptime_seconds() const noexcept {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count();
}

std::int64_t Metrics::now_sec() const noexcept {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::seconds>(elapsed).count();
}

void Metrics::note_peak(std::int64_t open) noexcept {
    const auto value = open < 0 ? 0ULL : static_cast<std::uint64_t>(open);
    std::uint64_t peak = connections_peak.load(std::memory_order_relaxed);
    while (value > peak &&
           !connections_peak.compare_exchange_weak(peak, value, std::memory_order_relaxed)) {
    }
}

std::string Metrics::render() const {
    std::string out;
    const auto kv = [&out](const std::string& key, const std::string& value) {
        out += key + "=" + value + "\n";
    };
    kv("uptime_seconds", text::format_double(uptime_seconds(), 1));
    kv("connections", std::to_string(connections_open.load(std::memory_order_relaxed)));
    kv("connections_peak",
       std::to_string(connections_peak.load(std::memory_order_relaxed)));
    kv("connections_accepted",
       std::to_string(connections_accepted.load(std::memory_order_relaxed)));
    kv("connections_refused",
       std::to_string(connections_refused.load(std::memory_order_relaxed)));
    kv("requests_handled", std::to_string(requests_handled.load(std::memory_order_relaxed)));
    kv("queue_depth", std::to_string(queue_depth.load(std::memory_order_relaxed)));
    kv("queue_full_rejections",
       std::to_string(queue_full_rejections.load(std::memory_order_relaxed)));
    kv("streams_opened", std::to_string(streams_opened.load(std::memory_order_relaxed)));
    kv("streams_active", std::to_string(streams_active.load(std::memory_order_relaxed)));
    kv("stream_suspensions",
       std::to_string(stream_suspensions.load(std::memory_order_relaxed)));
    kv("rows_served", std::to_string(rows_served.load(std::memory_order_relaxed)));
    kv("rows_per_sec", text::format_double(rows_rate_.per_second(now_sec()), 1));
    kv("bytes_out", std::to_string(bytes_out.load(std::memory_order_relaxed)));
    for (std::size_t i = 0; i < kOpCount; ++i) {
        const auto snap = op_latency_[i].snapshot();
        if (snap.count == 0) {
            continue;
        }
        out += "op_" + std::string(op_name(static_cast<Op>(i))) +
               " count=" + std::to_string(snap.count) +
               " mean_us=" + text::format_double(snap.mean_us(), 1) +
               " p50_us=" + std::to_string(snap.p50_us) +
               " p90_us=" + std::to_string(snap.p90_us) +
               " p99_us=" + std::to_string(snap.p99_us) + "\n";
    }
    return out;
}

}  // namespace kinet::service
