// Durable model store behind `kinetd --persist/--recover`.
//
// The store owns two kinds of state inside the server's snapshot_dir:
//
//   m_<hex(name)>.snap   one snapshot container per persisted model (the
//                        hex-encoded name confines hostile model names —
//                        "../../etc" becomes an inert filename token)
//   MANIFEST             the durable registry manifest:
//                            KNETMANIFEST 1
//                            <hex(name)> rev=<r> bytes=<b> checksum=<c>
//   jobs.journal         the JobManager's append-only journal (see
//                        journal.hpp; the store only names the path)
//
// Write protocol: the snapshot container is written tmp + fsync + rename
// first, the manifest is atomically rewritten second.  A crash between the
// two leaves an orphan snapshot file the manifest does not name — recovery
// simply ignores it (the old manifest still describes a consistent store).
// Zero corrupt snapshots are loadable after a crash at ANY instant; the
// chaos suite drives a failpoint through every window to prove it.
#ifndef KINETGAN_SERVICE_PERSISTENCE_H
#define KINETGAN_SERVICE_PERSISTENCE_H

#include <string>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/service/registry.hpp"

namespace kinet::service {

class PersistentStore {
public:
    /// Opens (and on first use creates) the store rooted at `dir`, loading
    /// the manifest if one exists.  Throws kinet::Error when the directory
    /// cannot be created.
    explicit PersistentStore(std::string dir);

    /// Durably writes the model's snapshot container and then the updated
    /// manifest.  `entry` carries the name/revision/bytes/checksum exactly
    /// as the registry stamped them.
    void store(const DigestEntry& entry, const std::string& container);

    /// Removes a model from the manifest (and its snapshot file, best
    /// effort).  No-op for unknown names.
    void remove(const std::string& name);

    /// The manifest as last durably written, sorted by name.
    [[nodiscard]] std::vector<DigestEntry> manifest() const;

    /// Reads the snapshot container bytes for a manifest-listed model;
    /// throws kinet::Error if the model is not in the manifest or the file
    /// cannot be read.
    [[nodiscard]] std::string load(const std::string& name) const;

    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

    /// Path of the job journal inside this store.
    [[nodiscard]] std::string journal_path() const;

private:
    [[nodiscard]] std::string model_path(const std::string& name) const;
    [[nodiscard]] std::string manifest_path() const;
    void write_manifest_locked() KINET_REQUIRES(mu_);

    std::string dir_;
    mutable Mutex mu_;
    /// In-memory mirror of the durable manifest, keyed by model name.
    std::map<std::string, DigestEntry> entries_ KINET_GUARDED_BY(mu_);
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_PERSISTENCE_H
