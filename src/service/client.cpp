#include "src/service/client.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "src/common/backoff.hpp"
#include "src/common/bytes.hpp"
#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/common/text.hpp"

namespace kinet::service {

namespace {

/// True for failures of the connection itself (as opposed to a well-framed
/// ERR response): socket-layer errors and a peer that closed on us.  Only
/// these are safe to heal by reconnecting — a protocol ERR means the server
/// answered and the connection is still in sync.
bool is_transport_error(std::string_view message) {
    return text::starts_with(message, "socket: ") ||
           message == "client: server closed the connection";
}

}  // namespace

SynthClient SynthClient::connect(const std::string& host, std::uint16_t port,
                                 const ClientOptions& options) {
    const std::size_t attempts = options.connect_attempts == 0 ? 1 : options.connect_attempts;
    for (std::size_t attempt = 0;; ++attempt) {
        try {
            auto stream = TcpStream::connect(host, port, options.connect_timeout_ms);
            if (options.recv_timeout_ms > 0) {
                stream.set_recv_timeout(options.recv_timeout_ms);
            }
            return SynthClient(std::move(stream), options, host, port);
        } catch (const Error&) {
            if (attempt + 1 >= attempts) {
                throw;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    }
}

Response SynthClient::rpc(const Request& request) {
    // A retryable coded ERR (queue_full, draining, ...) is a complete,
    // well-framed response: the connection stays in sync, so the request can
    // simply be sent again after backing off — the condition is transient by
    // design.  Permanent errors (including every uncoded legacy message)
    // surface on the first hit.
    for (std::size_t attempt = 0;; ++attempt) {
        const Response response = rpc_transport(request);
        if (response.ok) {
            return response;
        }
        if (attempt >= options_.queue_full_retries || !is_retryable_error(response.error)) {
            throw Error("server: " + response.error);
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.retry_backoff_ms * (attempt + 1)));
    }
}

Response SynthClient::call(const Request& request) { return rpc_transport(request); }

Response SynthClient::rpc_transport(const Request& request) {
    // A pooled connection can sit idle across a peer restart; the stale
    // socket only reveals itself (ECONNRESET/EPIPE/closed) on the next use.
    // Fresh sockets heal that — up to reconnect_attempts of them, each after
    // a jittered exponential backoff so a fleet of clients does not hammer a
    // peer that is mid-restart.  A failure on the last fresh socket means
    // the peer is genuinely unreachable and throws.
    std::optional<Backoff> backoff;
    for (std::size_t attempt = 0;; ++attempt) {
        try {
            if (attempt > 0) {
                if (!backoff.has_value()) {
                    BackoffOptions opts;
                    opts.base_ms = options_.reconnect_backoff_ms;
                    // Deterministic per-endpoint jitter stream.
                    backoff.emplace(opts,
                                    bytes::fnv1a(host_ + ":" + std::to_string(port_)));
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff->next_delay_ms()));
                auto stream = TcpStream::connect(host_, port_, options_.connect_timeout_ms);
                if (options_.recv_timeout_ms > 0) {
                    stream.set_recv_timeout(options_.recv_timeout_ms);
                }
                stream_ = std::move(stream);
            }
            return rpc_once(request);
        } catch (const Error& e) {
            if (!options_.reconnect_on_reset || attempt >= options_.reconnect_attempts ||
                !is_transport_error(e.what())) {
                throw;
            }
        }
    }
}

Response SynthClient::rpc_once(const Request& request) {
    // Line and body go out in one write: REPLICATE's binary payload directly
    // follows the LF, exactly request_body_size() bytes of it.
    std::string wire = format_request(request) + "\n";
    wire += request.body;
    stream_.write_all(wire);
    const auto status = stream_.read_line();
    if (!status.has_value()) {
        throw Error("client: server closed the connection");
    }
    if (text::starts_with(*status, "ERR ")) {
        Response response;
        response.ok = false;
        response.error = status->substr(4);
        return response;
    }
    KINET_CHECK(text::starts_with(*status, "OK "),
                "client: malformed status line '" + *status + "'");
    std::size_t payload_size = 0;
    try {
        payload_size = std::stoull(status->substr(3));
    } catch (const std::exception&) {
        throw Error("client: malformed payload length in '" + *status + "'");
    }
    Response response;
    response.payload = stream_.read_exact(payload_size);
    return response;
}

void SynthClient::ping() {
    Request request;
    request.op = Op::ping;
    (void)rpc(request);
}

namespace {

Request train_request(const std::string& model, const TrainSpec& spec) {
    Request request;
    request.op = Op::train;
    request.model = model;
    request.kv["records"] = std::to_string(spec.records);
    request.kv["sim-seed"] = std::to_string(spec.sim_seed);
    request.kv["attack"] = text::format_double(spec.attack_intensity, 6);
    request.kv["split-frac"] = text::format_double(spec.split_frac, 6);
    request.kv["split-seed"] = std::to_string(spec.split_seed);
    request.kv["epochs"] = std::to_string(spec.epochs);
    request.kv["gan-seed"] = std::to_string(spec.gan_seed);
    if (spec.domain != "lab") {
        request.kv["domain"] = spec.domain;
    }
    if (!spec.csv_source.empty()) {
        request.kv["source"] = "csv:" + spec.csv_source;
    }
    return request;
}

Request job_request(Op op, std::uint64_t id) {
    Request request;
    request.op = op;
    request.positional.push_back(std::to_string(id));
    return request;
}

}  // namespace

std::map<std::string, std::string> SynthClient::train(const std::string& model,
                                                      const TrainSpec& spec) {
    return parse_kv_payload(rpc(train_request(model, spec)).payload);
}

std::uint64_t SynthClient::train_async(const std::string& model, const TrainSpec& spec) {
    Request request = train_request(model, spec);
    request.kv["async"] = "1";
    const auto kv = parse_kv_payload(rpc(request).payload);
    const auto it = kv.find("job");
    KINET_CHECK(it != kv.end(), "client: async TRAIN response lacks a job id");
    return std::stoull(it->second);
}

std::map<std::string, std::string> SynthClient::poll_job(std::uint64_t id) {
    return parse_kv_payload(rpc(job_request(Op::poll, id)).payload);
}

std::map<std::string, std::string> SynthClient::cancel_job(std::uint64_t id) {
    return parse_kv_payload(rpc(job_request(Op::cancel, id)).payload);
}

std::string SynthClient::jobs() {
    Request request;
    request.op = Op::jobs;
    return rpc(request).payload;
}

std::map<std::string, std::string> SynthClient::poll_job_wait(std::uint64_t id,
                                                              std::size_t timeout_ms) {
    Request request = job_request(Op::poll, id);
    request.kv["wait"] = "1";
    request.kv["timeout"] = std::to_string(timeout_ms);
    return parse_kv_payload(rpc(request).payload);
}

std::map<std::string, std::string> SynthClient::wait_for_job(std::uint64_t id,
                                                             std::size_t wait_slice_ms) {
    std::size_t slice = wait_slice_ms == 0 ? 1000 : wait_slice_ms;
    if (options_.recv_timeout_ms > 0) {
        // The long-poll must come back before the socket receive timeout
        // fires, or a healthy server parked on wait= looks like a hang.
        slice = std::min(slice, options_.recv_timeout_ms / 2 + 1);
    }
    for (;;) {
        auto info = poll_job_wait(id, slice);
        const auto it = info.find("state");
        KINET_CHECK(it != info.end(), "client: POLL response lacks a state");
        if (it->second == "done" || it->second == "failed" || it->second == "cancelled") {
            return info;
        }
    }
}

std::string SynthClient::sample_csv(const std::string& model, std::size_t n,
                                    std::uint64_t seed, const std::string& cond) {
    Request request;
    request.op = Op::sample;
    request.model = model;
    request.positional.push_back(std::to_string(n));
    request.kv["seed"] = std::to_string(seed);
    if (!cond.empty()) {
        request.kv["cond"] = cond;
    }
    return rpc(request).payload;
}

data::Table SynthClient::sample(const std::string& model, std::size_t n, std::uint64_t seed,
                                const std::vector<data::ColumnMeta>& schema,
                                const std::string& cond) {
    return data::Table::from_csv(csv::parse(sample_csv(model, n, seed, cond)), schema);
}

std::uint64_t SynthClient::sample_stream(
    const std::string& model, std::size_t n, std::uint64_t seed,
    const std::function<void(const std::string& csv_chunk)>& on_chunk, std::size_t chunk_rows,
    const std::string& cond) {
    KINET_CHECK(on_chunk != nullptr, "client: sample_stream needs a chunk callback");
    Request request;
    request.op = Op::sample;
    request.model = model;
    request.positional.push_back(std::to_string(n));
    request.kv["seed"] = std::to_string(seed);
    request.kv["stream"] = "1";
    if (chunk_rows > 0) {
        request.kv["chunk"] = std::to_string(chunk_rows);
    }
    if (!cond.empty()) {
        request.kv["cond"] = cond;
    }
    stream_.write_all(format_request(request) + "\n");

    const auto status = stream_.read_line();
    if (!status.has_value()) {
        throw Error("client: server closed the connection");
    }
    if (text::starts_with(*status, "ERR ")) {
        throw Error("server: " + status->substr(4));
    }
    KINET_CHECK(*status == "OK STREAM",
                "client: malformed stream status line '" + *status + "'");

    std::uint64_t chunks_seen = 0;
    for (;;) {
        const auto frame = stream_.read_line();
        if (!frame.has_value()) {
            throw Error("client: stream truncated before its END trailer");
        }
        if (text::starts_with(*frame, "CHUNK ")) {
            std::size_t bytes = 0;
            try {
                bytes = std::stoull(frame->substr(6));
            } catch (const std::exception&) {
                throw Error("client: malformed chunk frame '" + *frame + "'");
            }
            const std::string chunk = stream_.read_exact(bytes);
            try {
                on_chunk(chunk);
            } catch (...) {
                // The server keeps writing frames this caller will never
                // read; the connection can only desync from here, so close
                // it rather than hand back a poisoned stream.
                stream_.close();
                throw;
            }
            ++chunks_seen;
            continue;
        }
        if (text::starts_with(*frame, "ERR ")) {
            throw Error("server: stream aborted: " + frame->substr(4));
        }
        KINET_CHECK(text::starts_with(*frame, "END "), "client: unexpected stream frame '" +
                                                           *frame + "'");
        std::map<std::string, std::string> trailer;
        for (const auto& token : text::split(frame->substr(4), ' ')) {
            const std::size_t eq = token.find('=');
            if (eq != std::string::npos && eq > 0) {
                trailer[token.substr(0, eq)] = token.substr(eq + 1);
            }
        }
        const auto rows_it = trailer.find("rows");
        const auto chunks_it = trailer.find("chunks");
        KINET_CHECK(rows_it != trailer.end() && chunks_it != trailer.end(),
                    "client: stream trailer lacks rows/chunks");
        std::uint64_t rows = 0;
        std::uint64_t chunks = 0;
        try {
            rows = std::stoull(rows_it->second);
            chunks = std::stoull(chunks_it->second);
        } catch (const std::exception&) {
            throw Error("client: malformed stream trailer '" + *frame + "'");
        }
        KINET_CHECK(chunks == chunks_seen, "client: stream chunk count mismatch");
        return rows;
    }
}

data::Table SynthClient::sample_streamed(const std::string& model, std::size_t n,
                                         std::uint64_t seed,
                                         const std::vector<data::ColumnMeta>& schema,
                                         std::size_t chunk_rows, const std::string& cond) {
    std::string csv_text;
    (void)sample_stream(
        model, n, seed, [&csv_text](const std::string& chunk) { csv_text += chunk; },
        chunk_rows, cond);
    return data::Table::from_csv(csv::parse(csv_text), schema);
}

double SynthClient::validate(const std::string& model, std::size_t n, std::uint64_t seed) {
    Request request;
    request.op = Op::validate;
    request.model = model;
    request.kv["n"] = std::to_string(n);
    request.kv["seed"] = std::to_string(seed);
    const auto kv = parse_kv_payload(rpc(request).payload);
    const auto it = kv.find("validity");
    KINET_CHECK(it != kv.end(), "client: VALIDATE response lacks validity");
    return std::stod(it->second);
}

std::map<std::string, std::string> SynthClient::stats(const std::string& model) {
    Request request;
    request.op = Op::stats;
    request.model = model;
    return parse_kv_payload(rpc(request).payload);
}

void SynthClient::save(const std::string& model, const std::string& path) {
    Request request;
    request.op = Op::save;
    request.model = model;
    request.positional.push_back(path);
    (void)rpc(request);
}

void SynthClient::load(const std::string& model, const std::string& path) {
    Request request;
    request.op = Op::load;
    request.model = model;
    request.positional.push_back(path);
    (void)rpc(request);
}

std::map<std::string, std::string> SynthClient::cluster(const std::string& model) {
    Request request;
    request.op = Op::cluster;
    request.model = model;
    return parse_kv_payload(rpc(request).payload);
}

void SynthClient::replicate(const std::string& model, const std::string& snapshot_bytes) {
    Request request;
    request.op = Op::replicate;
    request.model = model;
    request.positional.push_back(std::to_string(snapshot_bytes.size()));
    request.body = snapshot_bytes;
    (void)rpc(request);
}

std::string SynthClient::fetch(const std::string& model) {
    Request request;
    request.op = Op::fetch;
    request.model = model;
    return rpc(request).payload;
}

std::uint64_t SynthClient::fedtrain_async(const std::string& model, const TrainSpec& spec) {
    Request request = train_request(model, spec);
    request.op = Op::fedtrain;
    const auto kv = parse_kv_payload(rpc(request).payload);
    const auto it = kv.find("job");
    KINET_CHECK(it != kv.end(), "client: FEDTRAIN response lacks a job id");
    return std::stoull(it->second);
}

void SynthClient::quit() {
    Request request;
    request.op = Op::quit;
    (void)rpc(request);
    stream_.close();
}

RingClient::RingClient(std::vector<PeerAddress> seeds, ClientOptions options)
    : seeds_(std::move(seeds)), options_(options) {
    KINET_CHECK(!seeds_.empty(), "ring client: at least one seed endpoint is required");
}

void RingClient::adopt_payload(const std::string& payload) {
    MemberView fresh = MemberView::parse(payload);
    const auto kv = parse_kv_payload(payload);
    if (const auto it = kv.find("virtual_nodes"); it != kv.end()) {
        virtual_nodes_ =
            static_cast<std::size_t>(parse_u64(it->second, "EPOCH virtual_nodes"));
    }
    if (const auto it = kv.find("replicas"); it != kv.end()) {
        replicas_ = static_cast<std::size_t>(parse_u64(it->second, "EPOCH replicas"));
    }
    view_ = std::move(fresh);
    const auto nodes = view_.ring_nodes();
    ring_ = nodes.empty()
                ? nullptr
                : std::make_unique<HashRing>(nodes,
                                             virtual_nodes_ == 0 ? 1 : virtual_nodes_);
    // Members that left take their pooled connections with them.
    for (auto it = clients_.begin(); it != clients_.end();) {
        it = view_.find(it->first) == nullptr ? clients_.erase(it) : std::next(it);
    }
}

void RingClient::refresh() {
    // Known members first — they are certainly part of the fleet the last
    // view described — then any bootstrap seed not already tried.
    std::vector<PeerAddress> endpoints;
    for (const auto& member : view_.members) {
        endpoints.push_back(member.addr);
    }
    for (const auto& seed : seeds_) {
        if (std::find(endpoints.begin(), endpoints.end(), seed) == endpoints.end()) {
            endpoints.push_back(seed);
        }
    }
    std::string last_error = "no endpoint reachable";
    Request epoch_request;
    epoch_request.op = Op::epoch;
    for (const auto& addr : endpoints) {
        try {
            auto client = SynthClient::connect(addr.host, addr.port, options_);
            const Response response = client.call(epoch_request);
            if (!response.ok) {
                last_error = response.error;  // standalone node, most likely
                continue;
            }
            adopt_payload(response.payload);
            return;
        } catch (const Error& e) {
            last_error = e.what();
        }
    }
    throw Error("ring client: view refresh failed: " + last_error);
}

void RingClient::ensure_view() {
    if (view_.epoch == 0) {
        refresh();
    }
}

std::string RingClient::owner_of(const std::string& model) {
    ensure_view();
    KINET_CHECK(ring_ != nullptr, "ring client: the fleet view has no routable member");
    return ring_->owner_of(model);
}

std::vector<std::string> RingClient::candidates(const std::string& model) const {
    if (ring_ == nullptr) {
        return {};
    }
    auto order = ring_->preference(model, replicas_ == 0 ? 1 : replicas_);
    // The rest of the ring trails the preference list: when every replica
    // of a model is unreachable, any member can still answer (forwarding or
    // pull-through) — worse than direct routing, better than failing.
    for (const auto& node : view_.ring_nodes()) {
        if (std::find(order.begin(), order.end(), node) == order.end()) {
            order.push_back(node);
        }
    }
    return order;
}

SynthClient& RingClient::member_client(const std::string& name) {
    if (const auto it = clients_.find(name); it != clients_.end()) {
        return it->second;
    }
    const Member* member = view_.find(name);
    if (member == nullptr) {
        throw Error("ring client: unknown member " + name);
    }
    return clients_
        .emplace(name,
                 SynthClient::connect(member->addr.host, member->addr.port, options_))
        .first->second;
}

Response RingClient::rpc(Request request) {
    ensure_view();
    // Two view generations: the cached one, and one refresh triggered by a
    // wrong_owner rejection or by every candidate failing.
    for (int generation = 0;; ++generation) {
        request.kv["epoch"] = std::to_string(view_.epoch);
        std::string last_error = "no routable member for " + request.model;
        for (const auto& name : candidates(request.model)) {
            SynthClient* client = nullptr;
            try {
                client = &member_client(name);
            } catch (const Error& e) {
                last_error = e.what();
                continue;  // unreachable member: fail over down the list
            }
            Response response;
            try {
                response = client->call(request);
            } catch (const Error& e) {
                clients_.erase(name);  // dead connection: drop the pool slot
                last_error = e.what();
                continue;
            }
            if (!response.ok && error_code(response.error) == kWrongOwnerCode) {
                // Membership moved under us: adopt the server's view and
                // re-route under the new epoch.
                ++reroutes_;
                last_error = response.error;
                break;
            }
            return response;
        }
        if (generation >= 1) {
            throw Error("ring client: " + last_error);
        }
        refresh();
    }
}

std::string RingClient::sample_csv(const std::string& model, std::size_t n,
                                   std::uint64_t seed, const std::string& cond) {
    Request request;
    request.op = Op::sample;
    request.model = model;
    request.positional.push_back(std::to_string(n));
    request.kv["seed"] = std::to_string(seed);
    if (!cond.empty()) {
        request.kv["cond"] = cond;
    }
    Response response = rpc(std::move(request));
    if (!response.ok) {
        throw Error("server: " + response.error);
    }
    return std::move(response.payload);
}

double RingClient::validate(const std::string& model, std::size_t n, std::uint64_t seed) {
    Request request;
    request.op = Op::validate;
    request.model = model;
    request.kv["n"] = std::to_string(n);
    request.kv["seed"] = std::to_string(seed);
    const Response response = rpc(std::move(request));
    if (!response.ok) {
        throw Error("server: " + response.error);
    }
    const auto kv = parse_kv_payload(response.payload);
    const auto it = kv.find("validity");
    KINET_CHECK(it != kv.end(), "client: VALIDATE response lacks validity");
    return std::stod(it->second);
}

std::map<std::string, std::string> RingClient::train(const std::string& model,
                                                     const TrainSpec& spec) {
    const Response response = rpc(train_request(model, spec));
    if (!response.ok) {
        throw Error("server: " + response.error);
    }
    return parse_kv_payload(response.payload);
}

std::map<std::string, std::string> parse_kv_payload(const std::string& payload) {
    std::map<std::string, std::string> out;
    for (const auto& line : text::split(payload, '\n')) {
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            continue;  // non-kv lines (e.g. the global STATS model list)
        }
        out[line.substr(0, eq)] = line.substr(eq + 1);
    }
    return out;
}

}  // namespace kinet::service
