// Versioned, checksummed container around KiNetGan's serialized state.
//
// Layout (integers in host byte order — see src/common/bytes.hpp):
//   bytes 0-7   magic "KNETSNAP"
//   bytes 8-11  u32 format version (kSnapshotVersion)
//   bytes 12-19 u64 payload length
//   bytes 20-27 u64 FNV-1a of the payload
//   bytes 28-   payload (KiNetGan::save stream)
//
// Truncated files, bit corruption and snapshots written by a different
// format version are all rejected with distinct kinet::Error messages before
// any model state is touched — a registry never loads a half-read model.
#ifndef KINETGAN_SERVICE_SNAPSHOT_H
#define KINETGAN_SERVICE_SNAPSHOT_H

#include <memory>
#include <string>
#include <string_view>

#include "src/core/kinetgan.hpp"

namespace kinet::service {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::string_view kSnapshotMagic = "KNETSNAP";

/// Serializes a fitted model into the container format.
[[nodiscard]] std::string write_snapshot(core::KiNetGan& model);

/// Wraps an already-serialized KiNetGan::save stream into the container
/// format (magic, version, length, checksum) without re-serializing — the
/// registry uses this to persist the payload it just measured.
[[nodiscard]] std::string wrap_snapshot_payload(std::string_view payload);

/// Parses and validates a container; throws kinet::Error naming the failure
/// (bad magic / unsupported version / truncation / checksum mismatch).
[[nodiscard]] std::unique_ptr<core::KiNetGan> read_snapshot(std::string_view data);

/// File convenience wrappers.
void save_snapshot_file(core::KiNetGan& model, const std::string& path);
[[nodiscard]] std::unique_ptr<core::KiNetGan> load_snapshot_file(const std::string& path);

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_SNAPSHOT_H
