#include "src/service/registry.hpp"

#include "src/common/check.hpp"

namespace kinet::service {

void ModelRegistry::put(const std::string& name, std::unique_ptr<core::KiNetGan> model) {
    KINET_CHECK(!name.empty(), "ModelRegistry::put: empty model name");
    KINET_CHECK(model != nullptr && model->is_fitted(),
                "ModelRegistry::put: model must be fitted");
    auto entry = std::make_shared<ModelEntry>();
    entry->model = std::move(model);
    const std::unique_lock<std::shared_mutex> lock(mu_);
    models_[name] = std::move(entry);
}

std::shared_ptr<ModelEntry> ModelRegistry::get(const std::string& name) const {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = models_.find(name);
    return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::erase(const std::string& name) {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto& [name, entry] : models_) {
        out.push_back(name);
    }
    return out;
}

std::size_t ModelRegistry::size() const {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    return models_.size();
}

}  // namespace kinet::service
