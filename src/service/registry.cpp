#include "src/service/registry.hpp"

#include <utility>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"
#include "src/service/snapshot.hpp"

namespace kinet::service {

std::int64_t ModelRegistry::now_ms() const noexcept {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::uint64_t ModelRegistry::put(const std::string& name,
                                 std::unique_ptr<core::KiNetGan> model,
                                 std::uint64_t revision, std::string* container_out) {
    KINET_CHECK(!name.empty(), "ModelRegistry::put: empty model name");
    KINET_CHECK(model != nullptr && model->is_fitted(),
                "ModelRegistry::put: model must be fitted");
    auto entry = std::make_shared<ModelEntry>();
    // Measure the serialized size once, while this thread exclusively owns
    // the model — the same bytes SAVE would write, so the budget is
    // accounted in real snapshot bytes rather than a heap estimate.  The
    // checksum over the same payload is what peers compare in digests.
    {
        bytes::Writer writer;
        model->save(writer);
        entry->memory_bytes = writer.size();
        entry->checksum = bytes::fnv1a(writer.buffer());
        if (container_out != nullptr) {
            *container_out = wrap_snapshot_payload(writer.buffer());
        }
    }
    entry->model = std::move(model);
    entry->last_access_ms.store(now_ms(), std::memory_order_relaxed);
    const WriterLock lock(mu_);
    if (revision == 0) {
        revision = ++revision_clock_;
    } else if (revision > revision_clock_) {
        revision_clock_ = revision;  // adopt the remote clock, Lamport-style
    }
    entry->revision = revision;
    if (const auto it = models_.find(name); it != models_.end()) {
        total_bytes_ -= it->second->memory_bytes;
    }
    total_bytes_ += entry->memory_bytes;
    models_[name] = std::move(entry);
    evict_over_budget_locked(name);
    return revision;
}

void ModelRegistry::evict_over_budget_locked(const std::string& keep) {
    while (budget_bytes_ > 0 && total_bytes_ > budget_bytes_ && models_.size() > 1) {
        // Injected faults surface to the put() caller (a request worker);
        // the WriterLock unwinds cleanly, so the map stays consistent.
        KINET_FAILPOINT("registry.evict");
        auto victim = models_.end();
        std::int64_t oldest = 0;
        for (auto it = models_.begin(); it != models_.end(); ++it) {
            if (it->first == keep) {
                continue;
            }
            const auto seen = it->second->last_access_ms.load(std::memory_order_relaxed);
            if (victim == models_.end() || seen < oldest) {
                victim = it;
                oldest = seen;
            }
        }
        if (victim == models_.end()) {
            return;  // only `keep` is left; it is never the victim
        }
        total_bytes_ -= victim->second->memory_bytes;
        models_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::shared_ptr<ModelEntry> ModelRegistry::get(const std::string& name) const {
    const ReaderLock lock(mu_);
    const auto it = models_.find(name);
    if (it == models_.end()) {
        return nullptr;
    }
    it->second->last_access_ms.store(now_ms(), std::memory_order_relaxed);
    return it->second;
}

bool ModelRegistry::erase(const std::string& name) {
    const WriterLock lock(mu_);
    const auto it = models_.find(name);
    if (it == models_.end()) {
        return false;
    }
    total_bytes_ -= it->second->memory_bytes;
    models_.erase(it);
    return true;
}

std::vector<std::string> ModelRegistry::names() const {
    const ReaderLock lock(mu_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto& [name, entry] : models_) {
        out.push_back(name);
    }
    return out;
}

std::size_t ModelRegistry::size() const {
    const ReaderLock lock(mu_);
    return models_.size();
}

std::vector<DigestEntry> ModelRegistry::digest() const {
    const ReaderLock lock(mu_);
    std::vector<DigestEntry> out;
    out.reserve(models_.size());
    for (const auto& [name, entry] : models_) {
        out.push_back(DigestEntry{name, entry->revision, entry->memory_bytes,
                                  entry->checksum});
    }
    return out;
}

void ModelRegistry::set_limits(std::uint64_t budget_bytes, std::uint64_t ttl_ms) {
    const WriterLock lock(mu_);
    budget_bytes_ = budget_bytes;
    ttl_ms_ = ttl_ms;
}

std::size_t ModelRegistry::evict_expired() {
    const WriterLock lock(mu_);
    if (ttl_ms_ == 0) {
        return 0;
    }
    const std::int64_t now = now_ms();
    std::size_t dropped = 0;
    for (auto it = models_.begin(); it != models_.end();) {
        const auto seen = it->second->last_access_ms.load(std::memory_order_relaxed);
        if (now - seen > static_cast<std::int64_t>(ttl_ms_)) {
            total_bytes_ -= it->second->memory_bytes;
            it = models_.erase(it);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

std::uint64_t ModelRegistry::memory_bytes() const {
    const ReaderLock lock(mu_);
    return total_bytes_;
}

}  // namespace kinet::service
