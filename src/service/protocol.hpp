// The kinetd wire protocol (version KNP/1) — a framed line protocol.
//
// A request is a single LF-terminated ASCII line:
//     <OP> [<model>] [<positional>...] [key=value ...]
// A response is a status line followed by an exact-length payload:
//     OK <payload-bytes>\n<payload>
//     ERR <message>\n
// The byte-counted framing lets clients read CSV payloads of any size
// without sentinels; see docs/protocol.md for the full grammar.
#ifndef KINETGAN_SERVICE_PROTOCOL_H
#define KINETGAN_SERVICE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kinet::service {

enum class Op {
    ping,      // liveness probe
    train,     // TRAIN <model> key=value...       — fit a model on site data
               //   async=1 queues a training job and returns job=<id>;
               //   source=csv:<path> / domain=unsw select the training data
    load,      // LOAD <model> <path>              — register a snapshot file
    save,      // SAVE <model> <path>              — write a snapshot file
    drop,      // DROP <model>                     — unregister a model
    sample,    // SAMPLE <model> <n> [seed=] [cond=col:value] — draw rows (CSV)
               //   stream=1 [chunk=R] switches to chunked frames (OK STREAM /
               //   CHUNK <bytes> ... / END trailer) with no request row cap
    validate,  // VALIDATE <model> [n=] [seed=]    — KG validity of a fresh draw
    stats,     // STATS [<model>]                  — serving/training metrics
    poll,      // POLL <job-id>                    — async job state/progress
    cancel,    // CANCEL <job-id>                  — request job cancellation
    jobs,      // JOBS                             — list training jobs
    quit,      // close the connection after acknowledging
    cluster,   // CLUSTER [<model>]                — ring + peer health view;
               //   with a model: its owner and ring preference list
    replicate, // REPLICATE <model> <nbytes>       — request line followed by
               //   exactly nbytes of snapshot container (push replication)
    fetch,     // FETCH <model>                    — snapshot container bytes
               //   as the response payload (pull-through replication)
    fedtrain,  // FEDTRAIN <model> key=value...    — async job: train locally
               //   on site data, then publish the snapshot to every peer
    fault,     // FAULT [<name>] [spec=<spec>]     — admin-only failpoint
               //   control: no args lists status, name+spec (re)configures,
               //   spec=off disarms (requires --enable-failpoints)
    digest,    // DIGEST                           — registry digest manifest
               //   (name/revision/bytes/checksum per model) for anti-entropy
    join,      // JOIN <name> <host:port>          — admit a member into the
               //   fleet (epoch bump); the response carries the new view
    leave,     // LEAVE <name>                     — begin a member's departure;
               //   sent to the leaving node it drains and hands off first
    epoch,     // EPOCH                            — the current membership view
               //   (epoch, member list + states, ring parameters)
};

/// Number of protocol ops (for per-op metric arrays indexed by Op).
inline constexpr std::size_t kOpCount = 21;

/// Machine-readable prefix of admission-control rejections: a server at
/// capacity answers `ERR queue_full: <detail>` (connection cap reached or
/// the bounded request queue is full).  Clients match this prefix to tell
/// "back off and retry" apart from genuine request errors.
inline constexpr std::string_view kQueueFullPrefix = "queue_full";

struct Request {
    Op op = Op::ping;
    std::string model;                        // empty where the op allows it
    std::vector<std::string> positional;      // op-specific positional args
    std::map<std::string, std::string> kv;    // key=value arguments
    /// Binary request body following the request line (REPLICATE only).
    /// The line itself stays pure ASCII: positional args carry the byte
    /// count and the transport reads exactly that many bytes after the LF.
    std::string body;
};

struct Response {
    bool ok = true;
    std::string error;    // ERR message (ok == false)
    std::string payload;  // OK payload (ok == true)
};

/// True if an ERR message (server-side `Response::error` or the client's
/// "server: "-prefixed rethrow) is an admission-control rejection.
[[nodiscard]] bool is_queue_full_message(std::string_view message);

/// Builds the canonical admission-control ERR response.
[[nodiscard]] Response queue_full_response(std::string_view detail);

// --- Machine-readable error codes -----------------------------------------
//
// Coded errors carry a leading `<code>: <detail>` token so clients and peers
// can classify failures without string-matching free-form text.  The
// retryable codes mean "the same request may succeed later on the same
// server"; everything else — including every uncoded legacy message — is
// permanent and must not be retried (retrying a checksum mismatch just
// resends the same corrupt bytes).  docs/protocol.md has the full table.

/// Transient server conditions: back off and retry the same request.
inline constexpr std::string_view kDrainingCode = "draining";        // SIGTERM drain
inline constexpr std::string_view kBreakerOpenCode = "breaker_open"; // peer circuit open
inline constexpr std::string_view kUnavailableCode = "unavailable";  // transient dependency
/// Misrouted during a membership transition: the detail carries the
/// server's `epoch=<n>` (and the owner it computes) so ring-aware clients
/// refresh their view and re-resolve instead of failing.
inline constexpr std::string_view kWrongOwnerCode = "wrong_owner";

/// Permanent REPLICATE body rejections (non-retryable by classification).
inline constexpr std::string_view kBodyTooLargeCode = "body_too_large";
inline constexpr std::string_view kChecksumMismatchCode = "checksum_mismatch";
inline constexpr std::string_view kShortBodyCode = "short_body";
inline constexpr std::string_view kBadSnapshotCode = "bad_snapshot";

/// The leading machine-readable code of an ERR message (`<code>: ...`), or
/// an empty view for legacy free-form messages.  Tolerates the client-side
/// "server: " framing.  A code is all-lowercase [a-z0-9_]+ — ordinary prose
/// with a colon ("cluster: peer died") is not mistaken for one.
[[nodiscard]] std::string_view error_code(std::string_view message);

/// True iff the error is worth retrying against the same server: a
/// retryable code (queue_full / draining / breaker_open / unavailable) or a
/// transport-layer failure ("socket: ...", "client: server closed the
/// connection").  Unknown codes and free-form messages are permanent.
[[nodiscard]] bool is_retryable_error(std::string_view message);

/// Builds an `ERR <code>: <detail>` response.
[[nodiscard]] Response coded_error(std::string_view code, std::string_view detail);

/// Upper bound on a REPLICATE request body — a hostile byte count must not
/// become an allocation primitive against the daemon.
inline constexpr std::size_t kMaxRequestBodyBytes = 256ULL * 1024 * 1024;

/// Key marking a request as already forwarded once by a peer.  A request
/// carrying it is never forwarded again, so a misconfigured ring (or a
/// race with ring state) can produce at most one extra hop, never a loop.
inline constexpr std::string_view kForwardedKey = "fwd";

/// Bytes of request body the transport must read after the request line
/// (0 for every op but REPLICATE, whose second positional argument is the
/// body length).  Throws kinet::Error on a malformed or oversized count.
[[nodiscard]] std::size_t request_body_size(const Request& request);

/// Parses one request line (no trailing newline); throws kinet::Error with a
/// protocol-level message on unknown ops or malformed arguments.
[[nodiscard]] Request parse_request(std::string_view line);

/// Renders a request back into its wire line (no trailing newline).
[[nodiscard]] std::string format_request(const Request& request);

/// Renders the full response frame including status line and payload.
[[nodiscard]] std::string format_response(const Response& response);

[[nodiscard]] std::string_view op_name(Op op);

/// Argument helpers: kv lookups with typed parsing and clear errors.
[[nodiscard]] std::uint64_t kv_u64(const Request& request, const std::string& key,
                                   std::uint64_t fallback);
/// Finite doubles only: nan/inf (which std::stod accepts) would silently
/// poison downstream arithmetic (`TRAIN m attack=nan`), so they are
/// protocol errors.
[[nodiscard]] double kv_double(const Request& request, const std::string& key, double fallback);
[[nodiscard]] std::string kv_string(const Request& request, const std::string& key,
                                    const std::string& fallback);

/// Strict non-negative integer parse (rejects signs, spaces and trailing
/// characters); `what` names the argument in the error message.
[[nodiscard]] std::uint64_t parse_u64(const std::string& token, const std::string& what);

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_PROTOCOL_H
