// The kinetd wire protocol (version KNP/1) — a framed line protocol.
//
// A request is a single LF-terminated ASCII line:
//     <OP> [<model>] [<positional>...] [key=value ...]
// A response is a status line followed by an exact-length payload:
//     OK <payload-bytes>\n<payload>
//     ERR <message>\n
// The byte-counted framing lets clients read CSV payloads of any size
// without sentinels; see docs/protocol.md for the full grammar.
#ifndef KINETGAN_SERVICE_PROTOCOL_H
#define KINETGAN_SERVICE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kinet::service {

enum class Op {
    ping,      // liveness probe
    train,     // TRAIN <model> key=value...       — fit a model on site data
               //   async=1 queues a training job and returns job=<id>;
               //   source=csv:<path> / domain=unsw select the training data
    load,      // LOAD <model> <path>              — register a snapshot file
    save,      // SAVE <model> <path>              — write a snapshot file
    drop,      // DROP <model>                     — unregister a model
    sample,    // SAMPLE <model> <n> [seed=] [cond=col:value] — draw rows (CSV)
               //   stream=1 [chunk=R] switches to chunked frames (OK STREAM /
               //   CHUNK <bytes> ... / END trailer) with no request row cap
    validate,  // VALIDATE <model> [n=] [seed=]    — KG validity of a fresh draw
    stats,     // STATS [<model>]                  — serving/training metrics
    poll,      // POLL <job-id>                    — async job state/progress
    cancel,    // CANCEL <job-id>                  — request job cancellation
    jobs,      // JOBS                             — list training jobs
    quit,      // close the connection after acknowledging
};

/// Number of protocol ops (for per-op metric arrays indexed by Op).
inline constexpr std::size_t kOpCount = 12;

/// Machine-readable prefix of admission-control rejections: a server at
/// capacity answers `ERR queue_full: <detail>` (connection cap reached or
/// the bounded request queue is full).  Clients match this prefix to tell
/// "back off and retry" apart from genuine request errors.
inline constexpr std::string_view kQueueFullPrefix = "queue_full";

struct Request {
    Op op = Op::ping;
    std::string model;                        // empty where the op allows it
    std::vector<std::string> positional;      // op-specific positional args
    std::map<std::string, std::string> kv;    // key=value arguments
};

struct Response {
    bool ok = true;
    std::string error;    // ERR message (ok == false)
    std::string payload;  // OK payload (ok == true)
};

/// True if an ERR message (server-side `Response::error` or the client's
/// "server: "-prefixed rethrow) is an admission-control rejection.
[[nodiscard]] bool is_queue_full_message(std::string_view message);

/// Builds the canonical admission-control ERR response.
[[nodiscard]] Response queue_full_response(std::string_view detail);

/// Parses one request line (no trailing newline); throws kinet::Error with a
/// protocol-level message on unknown ops or malformed arguments.
[[nodiscard]] Request parse_request(std::string_view line);

/// Renders a request back into its wire line (no trailing newline).
[[nodiscard]] std::string format_request(const Request& request);

/// Renders the full response frame including status line and payload.
[[nodiscard]] std::string format_response(const Response& response);

[[nodiscard]] std::string_view op_name(Op op);

/// Argument helpers: kv lookups with typed parsing and clear errors.
[[nodiscard]] std::uint64_t kv_u64(const Request& request, const std::string& key,
                                   std::uint64_t fallback);
/// Finite doubles only: nan/inf (which std::stod accepts) would silently
/// poison downstream arithmetic (`TRAIN m attack=nan`), so they are
/// protocol errors.
[[nodiscard]] double kv_double(const Request& request, const std::string& key, double fallback);
[[nodiscard]] std::string kv_string(const Request& request, const std::string& key,
                                    const std::string& fallback);

/// Strict non-negative integer parse (rejects signs, spaces and trailing
/// characters); `what` names the argument in the error message.
[[nodiscard]] std::uint64_t parse_u64(const std::string& token, const std::string& what);

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_PROTOCOL_H
