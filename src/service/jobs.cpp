#include "src/service/jobs.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

#include "src/common/check.hpp"
#include "src/service/journal.hpp"

namespace kinet::service {
namespace {

/// Terminal job records retained for POLL after completion.  Beyond this,
/// the oldest terminal records are pruned so a long-lived daemon's job
/// table stays bounded; live (queued/running) jobs are never pruned.
constexpr std::size_t kMaxTerminalJobs = 256;

}  // namespace

/// All fields except the atomics are guarded by JobManager::mu_; the
/// atomics let the executing work report progress and observe cancellation
/// without taking the manager lock on the training path.
struct JobManager::Job {
    std::uint64_t id = 0;
    std::string model;
    JobState state = JobState::queued;
    std::size_t epochs_total = 0;
    std::string error;
    Work work;
    std::atomic<std::size_t> epochs_done{0};
    std::atomic<bool> cancel{false};
};

namespace {

/// Point-in-time copy of one job's fields; caller holds JobManager::mu_.
JobInfo snapshot_locked(const JobManager::Job& job) {
    JobInfo out;
    out.id = job.id;
    out.model = job.model;
    out.state = job.state;
    out.epochs_done = job.epochs_done.load(std::memory_order_relaxed);
    out.epochs_total = job.epochs_total;
    out.error = job.error;
    return out;
}

}  // namespace

std::string_view job_state_name(JobState state) {
    switch (state) {
    case JobState::queued:
        return "queued";
    case JobState::running:
        return "running";
    case JobState::done:
        return "done";
    case JobState::failed:
        return "failed";
    case JobState::cancelled:
        return "cancelled";
    }
    return "?";
}

bool JobManager::Context::cancel_requested() const noexcept {
    return job_.cancel.load(std::memory_order_relaxed);
}

void JobManager::Context::report_progress(std::size_t epochs_done) noexcept {
    job_.epochs_done.store(epochs_done, std::memory_order_relaxed);
}

JobManager::JobManager(std::size_t workers) {
    const std::size_t count = workers == 0 ? 1 : workers;
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

JobManager::~JobManager() { stop(); }

std::uint64_t JobManager::submit(std::string model, std::size_t epochs_total, Work work,
                                 std::string request_line) {
    KINET_CHECK(work != nullptr, "JobManager::submit: null work");
    auto job = std::make_shared<Job>();
    job->model = std::move(model);
    job->epochs_total = epochs_total;
    job->work = std::move(work);
    std::uint64_t id = 0;
    {
        const MutexLock lock(mu_);
        KINET_CHECK(!stopping_, "JobManager::submit: manager is stopped");
        id = next_id_++;
        job->id = id;
        // Journal before queueing: if the durable append fails (disk error
        // or injected fault) the submit throws and no job runs that a
        // restart could not see.  The id is burned; ids need not be dense.
        if (journal_ != nullptr) {
            journal_->append_submit(id, epochs_total, job->model, request_line);
        }
        jobs_[id] = job;
        queue_.push_back(std::move(job));
        prune_terminal_locked();
    }
    cv_.notify_one();
    return id;
}

void JobManager::set_journal(std::shared_ptr<JobJournal> journal) {
    const MutexLock lock(mu_);
    journal_ = std::move(journal);
}

void JobManager::restore_terminal(const JobInfo& info) {
    auto job = std::make_shared<Job>();
    job->id = info.id;
    job->model = info.model;
    job->state = info.state;
    job->epochs_total = info.epochs_total;
    job->error = info.error;
    job->epochs_done.store(info.epochs_done, std::memory_order_relaxed);
    const MutexLock lock(mu_);
    KINET_CHECK(!stopping_, "JobManager::restore_terminal: manager is stopped");
    next_id_ = std::max(next_id_, info.id + 1);
    if (journal_ != nullptr) {
        journal_->append_submit(info.id, info.epochs_total, info.model, std::string{});
        journal_->append_terminal(info.id, info.state, info.error);
    }
    jobs_[info.id] = std::move(job);
    prune_terminal_locked();
}

std::optional<JobInfo> JobManager::info(std::uint64_t id) const {
    const MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        return std::nullopt;
    }
    return snapshot_locked(*it->second);
}

std::optional<JobInfo> JobManager::wait(std::uint64_t id, std::size_t timeout_ms) {
    UniqueLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        return std::nullopt;
    }
    // Hold the shared_ptr, not the iterator: terminal pruning may erase the
    // map entry while we sleep, and the snapshot must still be readable.
    const std::shared_ptr<Job> job = it->second;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    // Condition checked inline (not via a wait predicate) so the analysis
    // sees the guarded reads happen with mu_ held.
    while (!(stopping_ || job->state == JobState::done || job->state == JobState::failed ||
             job->state == JobState::cancelled)) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            break;
        }
    }
    return snapshot_locked(*job);
}

std::optional<JobInfo> JobManager::request_cancel(std::uint64_t id) {
    const MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        return std::nullopt;
    }
    Job& job = *it->second;
    job.cancel.store(true, std::memory_order_relaxed);
    if (job.state == JobState::queued) {
        job.state = JobState::cancelled;  // the worker skips it on pop
        journal_terminal_locked(job);
        cv_.notify_all();                 // wake POLL wait= long-polls
    }
    return snapshot_locked(job);
}

std::vector<JobInfo> JobManager::list() const {
    const MutexLock lock(mu_);
    std::vector<JobInfo> out;
    out.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) {
        out.push_back(snapshot_locked(*job));
    }
    return out;
}

std::size_t JobManager::size() const {
    const MutexLock lock(mu_);
    return jobs_.size();
}

void JobManager::cancel_all() {
    const MutexLock lock(mu_);
    for (auto& job : queue_) {
        if (job->state == JobState::queued) {
            job->state = JobState::cancelled;
        }
    }
    queue_.clear();
    for (auto& [id, job] : jobs_) {
        job->cancel.store(true, std::memory_order_relaxed);
    }
}

void JobManager::stop() {
    {
        const MutexLock lock(mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;  // from here on submit() refuses new work
    }
    cancel_all();
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
    workers_.clear();
}

void JobManager::worker_loop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            UniqueLock lock(mu_);
            while (!stopping_ && queue_.empty()) {
                cv_.wait(lock);
            }
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            job = queue_.front();
            queue_.pop_front();
            if (job->state != JobState::queued) {
                continue;  // cancelled while queued
            }
            job->state = JobState::running;
        }

        Context context(*job);
        std::string error;
        bool ok = false;
        try {
            job->work(context);
            ok = true;
        } catch (const std::exception& e) {
            error = e.what();
        } catch (...) {
            error = "non-standard exception";
        }

        {
            const MutexLock lock(mu_);
            if (ok) {
                // A cancel that lands after the work already published its
                // result arrived too late: the job is done.
                job->state = JobState::done;
                job->epochs_done.store(job->epochs_total, std::memory_order_relaxed);
            } else if (job->cancel.load(std::memory_order_relaxed)) {
                job->state = JobState::cancelled;
            } else {
                job->state = JobState::failed;
                job->error = std::move(error);
            }
            journal_terminal_locked(*job);
            job->work = nullptr;  // release captured resources promptly
        }
        cv_.notify_all();  // wake long-polls parked in wait()
    }
}

void JobManager::journal_terminal_locked(const Job& job) {
    if (journal_ == nullptr) {
        return;
    }
    // A lost terminal record is exactly the state a crash leaves behind;
    // recovery already resolves it deterministically (the job is treated as
    // interrupted), so a failed append here must not take the worker down.
    try {
        journal_->append_terminal(job.id, job.state, job.error);
    } catch (const std::exception&) {
    }
}

void JobManager::prune_terminal_locked() {
    std::size_t terminal = 0;
    for (const auto& [id, job] : jobs_) {
        if (job->state == JobState::done || job->state == JobState::failed ||
            job->state == JobState::cancelled) {
            ++terminal;
        }
    }
    for (auto it = jobs_.begin(); it != jobs_.end() && terminal > kMaxTerminalJobs;) {
        const JobState s = it->second->state;
        if (s == JobState::done || s == JobState::failed || s == JobState::cancelled) {
            it = jobs_.erase(it);
            --terminal;
        } else {
            ++it;
        }
    }
}

}  // namespace kinet::service
