// The peer layer that turns N kinetd instances into one logical fleet.
//
// ClusterService owns everything peer-facing: the consistent-hash ring
// (placement), one pooled SynthClient per peer (forwarding, replication,
// probes), per-peer health state driven by a background PING prober, and
// the cluster counters/latency histograms STATS surfaces.  The server
// consults route() to decide whether a request is answered locally or
// proxied to the model's owner, and uses replicate/fetch/publish for
// snapshot movement.  All peer RPC is blocking and runs on request workers
// or the prober thread — never on the epoll loop.
//
// Health model: a peer starts `up` (optimistic — the prober corrects within
// one interval), is marked down on any transport failure (probe or live
// RPC), and comes back on the next successful probe.  Forwarding consults
// the ring's preference list and skips down members, so a dead owner fails
// over to its replica owner without any ring mutation; placement itself
// never changes at runtime (membership is static config).
#ifndef KINETGAN_SERVICE_CLUSTER_CLUSTER_H
#define KINETGAN_SERVICE_CLUSTER_CLUSTER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/service/client.hpp"
#include "src/service/cluster/breaker.hpp"
#include "src/service/cluster/config.hpp"
#include "src/service/cluster/ring.hpp"
#include "src/service/metrics.hpp"
#include "src/service/protocol.hpp"

namespace kinet::service {

class ClusterService {
public:
    explicit ClusterService(ClusterConfig config);
    ~ClusterService();
    ClusterService(const ClusterService&) = delete;
    ClusterService& operator=(const ClusterService&) = delete;

    /// Launches the background prober (idempotent).  Separate from the
    /// constructor so tests can drive probes synchronously via probe_now().
    void start_probing();
    /// Stops the prober and closes pooled connections.  Idempotent; also
    /// run by the destructor.
    void stop();

    [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
    [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
    [[nodiscard]] const std::string& self_name() const noexcept { return self_; }

    // ---- placement ----

    /// The ring owner of `model` (health-blind).
    [[nodiscard]] const std::string& owner_of(const std::string& model) const;
    /// Owner plus fallback owners, failover order, length = replicas.
    [[nodiscard]] std::vector<std::string> preference(const std::string& model) const;
    /// True when this node is the ring owner of `model`.
    [[nodiscard]] bool owns(const std::string& model) const;
    /// The peer a request for `model` should be proxied to: the first *up*
    /// member of the preference list.  nullopt means this node answers —
    /// either it is that first healthy member, or every listed peer is
    /// down and local best-effort beats a guaranteed error.
    [[nodiscard]] std::optional<std::string> route(const std::string& model) const;

    // ---- peer RPC (pooled, health-updating) ----

    /// Proxies `request` to `peer_name`, marking it forwarded (fwd=1) so
    /// the peer never forwards it again.  A peer ERR comes back verbatim as
    /// Response{ok=false}; transport failures mark the peer down, count as
    /// forward_errors and throw kinet::Error.
    Response forward(const std::string& peer_name, Request request);
    /// Pushes a serialized snapshot container to one peer (REPLICATE).  A
    /// non-zero `revision` rides along as rev= so the receiver adopts the
    /// sender's Lamport revision instead of stamping its own.
    void replicate_to(const std::string& peer_name, const std::string& model,
                      const std::string& snapshot, std::uint64_t revision = 0);
    /// Pulls a model's snapshot container from one peer (FETCH).
    [[nodiscard]] std::string fetch_from(const std::string& peer_name, const std::string& model);
    /// Pulls a peer's registry digest (DIGEST payload) for anti-entropy.
    [[nodiscard]] std::string digest_from(const std::string& peer_name);
    /// Pushes a snapshot to every peer (FEDTRAIN's publish phase), down or
    /// not — replication is how a restarted peer catches up.  Calls
    /// `on_peer_done(completed, total)` after each attempt; returns the
    /// number of successful pushes and records the first failure message in
    /// `first_error` (when non-null).
    std::size_t publish(const std::string& model, const std::string& snapshot,
                        std::uint64_t revision,
                        const std::function<void(std::size_t, std::size_t)>& on_peer_done,
                        std::string* first_error);

    // ---- health ----

    [[nodiscard]] bool peer_up(const std::string& peer_name) const;
    /// The endpoint behind a peer name (nullopt for unknown names or self).
    [[nodiscard]] std::optional<PeerAddress> peer_address(const std::string& peer_name) const;
    /// Every peer's ring name, config order (self excluded).
    [[nodiscard]] std::vector<std::string> peer_names() const;
    /// Up members including self (self is always up from its own view).
    [[nodiscard]] std::size_t members_up() const;
    /// One synchronous probe round over all peers (what the background
    /// prober runs each interval; exposed for tests and deterministic use).
    void probe_now();
    /// Installs the periodic anti-entropy callback the prober thread fires
    /// every anti_entropy_interval_ms (the server wires anti_entropy_now()
    /// in here).  Must be set before start_probing() — the prober reads it
    /// without a lock.
    void set_anti_entropy_hook(std::function<void()> hook) {
        anti_entropy_hook_ = std::move(hook);
    }

    // ---- rendering ----

    /// CLUSTER payload: fleet/ring view, plus `model`'s placement when the
    /// request named one.
    [[nodiscard]] std::string render_status(const std::string& model) const;
    /// The cluster section of the global STATS payload.
    [[nodiscard]] std::string render_stats() const;

    // ---- counters (public atomics; the server increments the ingest side)
    std::atomic<std::uint64_t> forwards{0};
    std::atomic<std::uint64_t> forward_errors{0};
    std::atomic<std::uint64_t> replications_in{0};   // REPLICATE bodies accepted
    std::atomic<std::uint64_t> replications_out{0};  // snapshots pushed to peers
    std::atomic<std::uint64_t> fetches_in{0};        // FETCH requests served
    std::atomic<std::uint64_t> fetches_out{0};       // pull-through cache fills
    std::atomic<std::uint64_t> cache_fills{0};       // models admitted via pull-through
    std::atomic<std::uint64_t> rpc_retries{0};       // retryable-failure retries spent
    std::atomic<std::uint64_t> breaker_rejections{0};  // RPCs refused while open
    std::atomic<std::uint64_t> digest_pulls{0};      // anti-entropy DIGEST pulls

private:
    /// One fleet peer: its pooled blocking client (guarded by `mu` — peer
    /// RPC serializes per peer, different peers proceed in parallel),
    /// lock-free health/latency state, and its circuit breaker.
    struct Peer {
        PeerAddress addr;
        std::string name;
        Mutex mu;
        std::optional<SynthClient> client KINET_GUARDED_BY(mu);
        std::atomic<bool> up{true};
        std::atomic<std::uint64_t> rpc_errors{0};
        LatencyHistogram latency;
        CircuitBreaker breaker;

        Peer(PeerAddress address, const BreakerOptions& breaker_options)
            : addr(std::move(address)),
              name(addr.name()),
              // Per-peer deterministic seed: jitter decorrelates across
              // peers yet replays identically run-to-run.
              breaker(breaker_options, bytes::fnv1a(name)) {}
    };

    [[nodiscard]] Peer& peer_by_name(const std::string& name);
    [[nodiscard]] const Peer* find_peer(const std::string& name) const;
    /// Sends one request on the peer's pooled connection, (re)connecting as
    /// needed, timing it into the peer histogram and updating health and
    /// the breaker.  Retryable failures are retried with jittered backoff
    /// up to config_.rpc_retries times; `probe` bypasses breaker admission
    /// (and never retries) but still feeds outcomes into it.
    Response peer_rpc(Peer& peer, const Request& request, bool probe = false);
    void probe_loop();

    ClusterConfig config_;
    std::string self_;
    HashRing ring_;
    std::vector<std::unique_ptr<Peer>> peers_;
    /// Fired by the prober thread every anti_entropy_interval_ms; set once
    /// before start_probing(), read without a lock.
    std::function<void()> anti_entropy_hook_;

    Mutex stop_mu_;
    CondVar stop_cv_;
    bool stopping_ KINET_GUARDED_BY(stop_mu_) = false;
    bool probing_ KINET_GUARDED_BY(stop_mu_) = false;
    /// Written under stop_mu_ in start_probing(); joined in stop() after
    /// the stopping_ handshake published it (mutex release/acquire order),
    /// so the join itself runs unlocked — it must, the probe loop takes
    /// stop_mu_ to sleep.
    std::thread prober_;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_CLUSTER_CLUSTER_H
