// The peer layer that turns N kinetd instances into one logical fleet.
//
// ClusterService owns everything peer-facing: the epoch-versioned
// membership view (MembershipTable), the consistent-hash ring derived from
// it (placement), one pooled SynthClient per peer (forwarding, replication,
// probes), per-peer health state driven by a background PING prober, and
// the cluster counters/latency histograms STATS surfaces.  The server
// consults route() to decide whether a request is answered locally or
// proxied to the model's owner, and uses replicate/fetch/publish for
// snapshot movement.  All peer RPC is blocking and runs on request workers
// or the prober thread — never on the epoll loop.
//
// Membership is dynamic: JOIN/LEAVE/adoption of a newer remote view bump
// the epoch and atomically swap in a freshly built ring and peer table
// (existing Peer objects are retained by name so pooled connections,
// health and breaker state survive a rebuild; in-flight RPCs hold their
// Peer via shared_ptr).  View dissemination piggybacks on the prober: its
// PINGs carry this node's epoch, pong payloads carry the peer's, and the
// newer side is pulled whole via the EPOCH op.  On any epoch change the
// rebalance hook (the server's pull-based snapshot handoff) is scheduled
// on the prober thread.
//
// Health model: a peer starts `up` (optimistic — the prober corrects within
// one interval), is marked down on any transport failure (probe or live
// RPC), and comes back on the next successful probe.  Forwarding consults
// the ring's preference list and skips down members, so a dead owner fails
// over to its replica owner without waiting for a membership change.
#ifndef KINETGAN_SERVICE_CLUSTER_CLUSTER_H
#define KINETGAN_SERVICE_CLUSTER_CLUSTER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/service/client.hpp"
#include "src/service/cluster/breaker.hpp"
#include "src/service/cluster/config.hpp"
#include "src/service/cluster/membership.hpp"
#include "src/service/cluster/ring.hpp"
#include "src/service/metrics.hpp"
#include "src/service/protocol.hpp"

namespace kinet::service {

class ClusterService {
public:
    explicit ClusterService(ClusterConfig config);
    ~ClusterService();
    ClusterService(const ClusterService&) = delete;
    ClusterService& operator=(const ClusterService&) = delete;

    /// Launches the background prober (idempotent).  Separate from the
    /// constructor so tests can drive probes synchronously via probe_now().
    void start_probing();
    /// Stops the prober and closes pooled connections.  Idempotent; also
    /// run by the destructor.
    void stop();

    [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
    [[nodiscard]] const std::string& self_name() const noexcept { return self_; }

    // ---- membership ----

    [[nodiscard]] std::uint64_t epoch() const { return members_.epoch(); }
    [[nodiscard]] MemberView view() const { return members_.view(); }
    /// Adopts a strictly newer remote view: swaps ring + peer table and
    /// schedules the rebalance hook.  Returns whether the view changed.
    bool adopt_view(const MemberView& remote);
    /// Admits `name` at `addr` in the joining state (epoch bump; idempotent
    /// re-JOIN does not bump).  Returns the resulting view.
    MemberView join_member(const std::string& name, const PeerAddress& addr);
    /// Transitions a member's lifecycle state (epoch bump when it changes).
    MemberView set_member_state(const std::string& name, MemberState state);
    /// Drops a member from the view outright (epoch bump).
    MemberView remove_member(const std::string& name);
    /// Pulls a peer's full membership view via the EPOCH op.
    [[nodiscard]] MemberView fetch_view_from(const std::string& peer_name);
    /// Called (from the loop thread — must not block) when a request told
    /// us `peer_name` sits at a strictly newer epoch: schedules the prober
    /// to pull and adopt that peer's view.
    void note_remote_epoch(const std::string& peer_name, std::uint64_t remote_epoch);

    // ---- placement ----

    /// The ring owner of `model` (health-blind).
    [[nodiscard]] std::string owner_of(const std::string& model) const;
    /// Owner plus fallback owners, failover order, length = replicas.
    [[nodiscard]] std::vector<std::string> preference(const std::string& model) const;
    /// True when this node is the ring owner of `model`.
    [[nodiscard]] bool owns(const std::string& model) const;
    /// The peer a request for `model` should be proxied to: the first *up*
    /// member of the preference list.  nullopt means this node answers —
    /// either it is that first healthy member, or every listed peer is
    /// down and local best-effort beats a guaranteed error.
    [[nodiscard]] std::optional<std::string> route(const std::string& model) const;

    // ---- peer RPC (pooled, health-updating) ----

    /// Proxies `request` to `peer_name`, marking it forwarded (fwd=1) so
    /// the peer never forwards it again.  A peer ERR comes back verbatim as
    /// Response{ok=false}; transport failures mark the peer down, count as
    /// forward_errors and throw kinet::Error.
    Response forward(const std::string& peer_name, Request request);
    /// Pushes a serialized snapshot container to one peer (REPLICATE).  A
    /// non-zero `revision` rides along as rev= so the receiver adopts the
    /// sender's Lamport revision instead of stamping its own.
    void replicate_to(const std::string& peer_name, const std::string& model,
                      const std::string& snapshot, std::uint64_t revision = 0);
    /// Pulls a model's snapshot container from one peer (FETCH).
    [[nodiscard]] std::string fetch_from(const std::string& peer_name, const std::string& model);
    /// Pulls a peer's registry digest (DIGEST payload) for anti-entropy.
    [[nodiscard]] std::string digest_from(const std::string& peer_name);
    /// Pushes a snapshot to every peer (FEDTRAIN's publish phase), down or
    /// not — replication is how a restarted peer catches up.  Calls
    /// `on_peer_done(completed, total)` after each attempt; returns the
    /// number of successful pushes and records the first failure message in
    /// `first_error` (when non-null).
    std::size_t publish(const std::string& model, const std::string& snapshot,
                        std::uint64_t revision,
                        const std::function<void(std::size_t, std::size_t)>& on_peer_done,
                        std::string* first_error);

    // ---- health ----

    [[nodiscard]] bool peer_up(const std::string& peer_name) const;
    /// The endpoint behind a peer name (nullopt for unknown names or self).
    [[nodiscard]] std::optional<PeerAddress> peer_address(const std::string& peer_name) const;
    /// Every current peer's ring name (self excluded), name order.
    [[nodiscard]] std::vector<std::string> peer_names() const;
    /// Up members including self (self is always up from its own view).
    [[nodiscard]] std::size_t members_up() const;
    /// One synchronous probe round over all peers (what the background
    /// prober runs each interval; exposed for tests and deterministic use).
    /// Pongs carrying a newer epoch trigger an inline view pull + adoption.
    void probe_now();
    /// Installs the periodic anti-entropy callback the prober thread fires
    /// every anti_entropy_interval_ms (the server wires anti_entropy_now()
    /// in here).  Must be set before start_probing() — the prober reads it
    /// without a lock.
    void set_anti_entropy_hook(std::function<void()> hook) {
        anti_entropy_hook_ = std::move(hook);
    }
    /// Installs the rebalance callback the prober fires after any epoch
    /// change (the server wires rebalance_now() in here).  Same contract:
    /// set before start_probing().
    void set_rebalance_hook(std::function<void()> hook) {
        rebalance_hook_ = std::move(hook);
    }

    // ---- rendering ----

    /// CLUSTER payload: fleet/ring view, plus `model`'s placement when the
    /// request named one.
    [[nodiscard]] std::string render_status(const std::string& model) const;
    /// The cluster section of the global STATS payload.
    [[nodiscard]] std::string render_stats() const;

    // ---- counters (public atomics; the server increments the ingest side)
    std::atomic<std::uint64_t> forwards{0};
    std::atomic<std::uint64_t> forward_errors{0};
    std::atomic<std::uint64_t> replications_in{0};   // REPLICATE bodies accepted
    std::atomic<std::uint64_t> replications_out{0};  // snapshots pushed to peers
    std::atomic<std::uint64_t> fetches_in{0};        // FETCH requests served
    std::atomic<std::uint64_t> fetches_out{0};       // pull-through cache fills
    std::atomic<std::uint64_t> cache_fills{0};       // models admitted via pull-through
    std::atomic<std::uint64_t> rpc_retries{0};       // retryable-failure retries spent
    std::atomic<std::uint64_t> breaker_rejections{0};  // RPCs refused while open
    std::atomic<std::uint64_t> digest_pulls{0};      // anti-entropy DIGEST pulls
    std::atomic<std::uint64_t> rebalances{0};        // rebalance rounds run
    std::atomic<std::uint64_t> handoff_snapshots{0};  // snapshots moved by rebalance
    std::atomic<std::uint64_t> handoff_bytes{0};      // container bytes moved
    std::atomic<std::uint64_t> handoff_failures{0};   // failed handoff attempts

private:
    /// One fleet peer: its pooled blocking client (guarded by `mu` — peer
    /// RPC serializes per peer, different peers proceed in parallel),
    /// lock-free health/latency state, and its circuit breaker.  Held by
    /// shared_ptr so a membership rebuild never invalidates a peer an
    /// in-flight RPC is using.
    struct Peer {
        PeerAddress addr;
        std::string name;
        Mutex mu;
        std::optional<SynthClient> client KINET_GUARDED_BY(mu);
        std::atomic<bool> up{true};
        std::atomic<std::uint64_t> rpc_errors{0};
        LatencyHistogram latency;
        CircuitBreaker breaker;

        Peer(PeerAddress address, std::string peer_name,
             const BreakerOptions& breaker_options)
            : addr(std::move(address)),
              name(std::move(peer_name)),
              // Per-peer deterministic seed: jitter decorrelates across
              // peers yet replays identically run-to-run.
              breaker(breaker_options, bytes::fnv1a(name)) {}
    };

    [[nodiscard]] std::shared_ptr<Peer> find_peer(const std::string& name) const;
    [[nodiscard]] std::shared_ptr<Peer> require_peer(const std::string& name) const;
    /// Sends one request on the peer's pooled connection, (re)connecting as
    /// needed, timing it into the peer histogram and updating health and
    /// the breaker.  Retryable failures are retried with jittered backoff
    /// up to config_.rpc_retries times; `probe` bypasses breaker admission
    /// (and never retries) but still feeds outcomes into it.
    Response peer_rpc(const std::shared_ptr<Peer>& peer, const Request& request,
                      bool probe = false);
    /// Rebuilds the ring and peer table from the current membership view
    /// (existing peers are retained by name).
    void rebuild_topology();
    /// Wakes the prober to run work off the critical path: a pending view
    /// pull, a repair round (probe + anti-entropy) after a breaker closed,
    /// or the rebalance hook after an epoch change.
    void wake_prober();
    void probe_loop();

    ClusterConfig config_;
    std::string self_;
    MembershipTable members_;
    mutable SharedMutex topology_mu_;
    std::shared_ptr<const HashRing> ring_ KINET_GUARDED_BY(topology_mu_);
    std::vector<std::shared_ptr<Peer>> peers_ KINET_GUARDED_BY(topology_mu_);
    /// Fired by the prober thread every anti_entropy_interval_ms; set once
    /// before start_probing(), read without a lock.
    std::function<void()> anti_entropy_hook_;
    /// Fired by the prober thread after an adopted/locally-bumped epoch;
    /// set once before start_probing(), read without a lock.
    std::function<void()> rebalance_hook_;
    /// An epoch change happened; the prober owes a rebalance_hook_ run.
    std::atomic<bool> rebalance_pending_{false};

    Mutex stop_mu_;
    CondVar stop_cv_;
    bool stopping_ KINET_GUARDED_BY(stop_mu_) = false;
    bool probing_ KINET_GUARDED_BY(stop_mu_) = false;
    /// Prober wakeup state: set under stop_mu_, consumed at the top of each
    /// prober iteration.
    bool wake_ KINET_GUARDED_BY(stop_mu_) = false;
    /// Peers whose views the prober should pull and adopt (they reported a
    /// newer epoch on a request we could not block on).
    std::vector<std::string> pending_view_pulls_ KINET_GUARDED_BY(stop_mu_);
    /// A breaker just closed: run probe + anti-entropy immediately so
    /// repair latency is bounded by the RPC, not the probe timer.  Only
    /// honoured while background anti-entropy is enabled
    /// (anti_entropy_interval_ms != 0) — 0 means "tests drive repair".
    bool repair_requested_ KINET_GUARDED_BY(stop_mu_) = false;
    /// Written under stop_mu_ in start_probing(); joined in stop() after
    /// the stopping_ handshake published it (mutex release/acquire order),
    /// so the join itself runs unlocked — it must, the probe loop takes
    /// stop_mu_ to sleep.
    std::thread prober_;
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_CLUSTER_CLUSTER_H
