#include "src/service/cluster/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/backoff.hpp"
#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"
#include "src/common/text.hpp"

namespace kinet::service {
namespace {

/// Epoch 1: the static config everybody was started with, all active.
MemberView initial_view(const ClusterConfig& config) {
    MemberView view;
    view.epoch = 1;
    view.members.push_back(Member{config.self.name(), config.self, MemberState::active});
    for (const auto& peer : config.peers) {
        view.members.push_back(Member{peer.name(), peer, MemberState::active});
    }
    return view;
}

/// The epoch= line of a pong/DIGEST payload (nullopt when absent).
std::optional<std::uint64_t> payload_epoch(const std::string& payload) {
    for (const auto& line : text::split(payload, '\n')) {
        if (text::starts_with(line, "epoch=")) {
            try {
                return parse_u64(line.substr(6), "payload epoch");
            } catch (const Error&) {
                return std::nullopt;
            }
        }
    }
    return std::nullopt;
}

}  // namespace

ClusterService::ClusterService(ClusterConfig config)
    : config_(std::move(config)),
      self_(config_.self.name()),
      members_(initial_view(config_)) {
    rebuild_topology();
}

ClusterService::~ClusterService() { stop(); }

void ClusterService::start_probing() {
    const MutexLock lock(stop_mu_);
    if (probing_ || stopping_) {
        return;
    }
    probing_ = true;
    prober_ = std::thread([this] { probe_loop(); });
}

void ClusterService::stop() {
    {
        const MutexLock lock(stop_mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
    }
    stop_cv_.notify_all();
    if (prober_.joinable()) {
        prober_.join();
    }
    std::vector<std::shared_ptr<Peer>> peers;
    {
        const ReaderLock lock(topology_mu_);
        peers = peers_;
    }
    for (auto& peer : peers) {
        const MutexLock lock(peer->mu);
        peer->client.reset();
    }
}

// ---- membership ----

bool ClusterService::adopt_view(const MemberView& remote) {
    KINET_FAILPOINT("cluster.epoch_adopt");
    if (!members_.adopt(remote)) {
        return false;
    }
    rebuild_topology();
    rebalance_pending_.store(true, std::memory_order_relaxed);
    wake_prober();
    return true;
}

MemberView ClusterService::join_member(const std::string& name, const PeerAddress& addr) {
    const std::uint64_t before = members_.epoch();
    const MemberView view = members_.join(name, addr);
    if (view.epoch != before) {
        rebuild_topology();
        rebalance_pending_.store(true, std::memory_order_relaxed);
        wake_prober();
    }
    return view;
}

MemberView ClusterService::set_member_state(const std::string& name, MemberState state) {
    const std::uint64_t before = members_.epoch();
    const MemberView view = members_.set_state(name, state);
    if (view.epoch != before) {
        rebuild_topology();
        rebalance_pending_.store(true, std::memory_order_relaxed);
        wake_prober();
    }
    return view;
}

MemberView ClusterService::remove_member(const std::string& name) {
    const std::uint64_t before = members_.epoch();
    const MemberView view = members_.remove(name);
    if (view.epoch != before) {
        rebuild_topology();
        rebalance_pending_.store(true, std::memory_order_relaxed);
        wake_prober();
    }
    return view;
}

MemberView ClusterService::fetch_view_from(const std::string& peer_name) {
    Request request;
    request.op = Op::epoch;
    request.kv[std::string(kForwardedKey)] = "1";
    if (const auto peer = find_peer(peer_name)) {
        Response response = peer_rpc(peer, request);
        if (!response.ok) {
            throw Error("cluster: EPOCH from " + peer_name + " failed: " + response.error);
        }
        return MemberView::parse(response.payload);
    }
    // Not (yet) a known peer — a joining member announcing itself.  Member
    // names are host:port in every stock deployment, so a direct one-shot
    // connection resolves the view; an unparseable custom name just leaves
    // convergence to dissemination through peers we do know.
    const PeerAddress addr = parse_peer_address(peer_name);
    ClientOptions options;
    options.connect_timeout_ms = config_.connect_timeout_ms;
    options.connect_attempts = 1;
    options.recv_timeout_ms = config_.peer_timeout_ms;
    auto client = SynthClient::connect(addr.host, addr.port, options);
    const Response response = client.call(request);
    if (!response.ok) {
        throw Error("cluster: EPOCH from " + peer_name + " failed: " + response.error);
    }
    return MemberView::parse(response.payload);
}

void ClusterService::note_remote_epoch(const std::string& peer_name,
                                       std::uint64_t remote_epoch) {
    if (peer_name.empty() || peer_name == self_ || remote_epoch <= epoch()) {
        return;
    }
    {
        const MutexLock lock(stop_mu_);
        if (std::find(pending_view_pulls_.begin(), pending_view_pulls_.end(), peer_name) ==
            pending_view_pulls_.end()) {
            pending_view_pulls_.push_back(peer_name);
        }
        wake_ = true;
    }
    stop_cv_.notify_all();
}

void ClusterService::rebuild_topology() {
    const MemberView view = members_.view();
    auto nodes = view.ring_nodes();
    if (nodes.empty()) {
        // A view whose every member is leaving/down still needs a ring (the
        // local node answers best-effort until it actually departs).
        nodes.push_back(self_);
    }
    auto ring = std::make_shared<const HashRing>(
        std::move(nodes), config_.virtual_nodes == 0 ? 1 : config_.virtual_nodes);
    const WriterLock lock(topology_mu_);
    std::vector<std::shared_ptr<Peer>> rebuilt;
    rebuilt.reserve(view.members.size());
    for (const auto& member : view.members) {
        if (member.name == self_) {
            continue;
        }
        std::shared_ptr<Peer> kept;
        for (const auto& peer : peers_) {
            if (peer->name == member.name && peer->addr == member.addr) {
                kept = peer;  // health, breaker and pooled connection survive
                break;
            }
        }
        rebuilt.push_back(kept != nullptr
                              ? std::move(kept)
                              : std::make_shared<Peer>(member.addr, member.name,
                                                       config_.breaker));
    }
    peers_ = std::move(rebuilt);
    ring_ = std::move(ring);
}

void ClusterService::wake_prober() {
    {
        const MutexLock lock(stop_mu_);
        wake_ = true;
    }
    stop_cv_.notify_all();
}

// ---- placement ----

std::string ClusterService::owner_of(const std::string& model) const {
    const ReaderLock lock(topology_mu_);
    return ring_->owner_of(model);
}

std::vector<std::string> ClusterService::preference(const std::string& model) const {
    const ReaderLock lock(topology_mu_);
    return ring_->preference(model, config_.replicas == 0 ? 1 : config_.replicas);
}

bool ClusterService::owns(const std::string& model) const { return owner_of(model) == self_; }

std::optional<std::string> ClusterService::route(const std::string& model) const {
    for (const auto& name : preference(model)) {
        if (name == self_) {
            return std::nullopt;  // we are the first healthy candidate
        }
        if (peer_up(name)) {
            return name;
        }
    }
    // Every candidate peer is down: answering locally (pull-through cache
    // or a clear not-found) beats guaranteeing an error.
    return std::nullopt;
}

std::shared_ptr<ClusterService::Peer> ClusterService::find_peer(
    const std::string& name) const {
    const ReaderLock lock(topology_mu_);
    for (const auto& peer : peers_) {
        if (peer->name == name) {
            return peer;
        }
    }
    return nullptr;
}

std::shared_ptr<ClusterService::Peer> ClusterService::require_peer(
    const std::string& name) const {
    auto peer = find_peer(name);
    if (peer == nullptr) {
        throw Error("cluster: unknown peer " + name);
    }
    return peer;
}

Response ClusterService::peer_rpc(const std::shared_ptr<Peer>& peer, const Request& request,
                                  bool probe) {
    // Breaker admission happens *before* the peer mutex: while the circuit
    // is open, callers fail fast instead of queueing behind whatever wedged
    // RPC opened it.  Probes bypass admission — they are how an open
    // circuit learns of recovery — but their outcomes feed in below.
    if (!probe && !peer->breaker.allow()) {
        breaker_rejections.fetch_add(1, std::memory_order_relaxed);
        throw Error(std::string(kBreakerOpenCode) + ": circuit for peer " + peer->name +
                    " is open");
    }
    const MutexLock lock(peer->mu);
    const std::size_t attempts = probe ? 1 : config_.rpc_retries + 1;
    Backoff backoff(BackoffOptions{config_.rpc_backoff_ms, config_.rpc_backoff_max_ms},
                    bytes::fnv1a(peer->name));
    for (std::size_t attempt = 1;; ++attempt) {
        const auto start = std::chrono::steady_clock::now();
        try {
            KINET_FAILPOINT("cluster.rpc");
            if (!peer->client.has_value()) {
                ClientOptions options;
                options.connect_timeout_ms = config_.connect_timeout_ms;
                options.connect_attempts = 1;  // a down peer costs one refused connect
                options.recv_timeout_ms = config_.peer_timeout_ms;
                options.reconnect_on_reset = true;
                peer->client = SynthClient::connect(peer->addr.host, peer->addr.port, options);
            }
            Response response = peer->client->call(request);
            const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
            peer->latency.record(static_cast<std::uint64_t>(micros));
            peer->up.store(true, std::memory_order_relaxed);
            if (peer->breaker.record_success() && config_.anti_entropy_interval_ms != 0) {
                // The circuit just closed after an outage: schedule an
                // immediate probe + anti-entropy round on the prober thread
                // (never inline — this thread holds the peer mutex, and the
                // round re-enters peer RPC), so repair latency is bounded
                // by this RPC rather than the background timers.
                {
                    const MutexLock wake_lock(stop_mu_);
                    repair_requested_ = true;
                    wake_ = true;
                }
                stop_cv_.notify_all();
            }
            if (!response.ok && attempt < attempts && is_retryable_error(response.error)) {
                // A retryable ERR (queue_full, draining) is a healthy peer
                // refusing work: back off and retry without marking it down.
                rpc_retries.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff.next_delay_ms()));
                continue;
            }
            return response;
        } catch (const Error& e) {
            // Transport failure (connect refused, reset, receive timeout) or
            // an injected fault: drop the pooled connection, then either
            // retry (retryable classification, budget left) or mark the peer
            // down and record the breaker failure.
            peer->client.reset();
            if (attempt < attempts && is_retryable_error(e.what())) {
                rpc_retries.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff.next_delay_ms()));
                continue;
            }
            peer->up.store(false, std::memory_order_relaxed);
            peer->rpc_errors.fetch_add(1, std::memory_order_relaxed);
            peer->breaker.record_failure();
            throw;
        }
    }
}

Response ClusterService::forward(const std::string& peer_name, Request request) {
    KINET_FAILPOINT("cluster.forward");
    request.kv[std::string(kForwardedKey)] = "1";
    forwards.fetch_add(1, std::memory_order_relaxed);
    try {
        return peer_rpc(require_peer(peer_name), request);
    } catch (const Error&) {
        forward_errors.fetch_add(1, std::memory_order_relaxed);
        throw;
    }
}

void ClusterService::replicate_to(const std::string& peer_name, const std::string& model,
                                  const std::string& snapshot, std::uint64_t revision) {
    KINET_FAILPOINT("cluster.replicate");
    Request request;
    request.op = Op::replicate;
    request.model = model;
    request.positional.push_back(std::to_string(snapshot.size()));
    request.body = snapshot;
    request.kv[std::string(kForwardedKey)] = "1";  // replication never cascades
    if (revision != 0) {
        request.kv["rev"] = std::to_string(revision);
    }
    const Response response = peer_rpc(require_peer(peer_name), request);
    if (!response.ok) {
        throw Error("cluster: REPLICATE " + model + " to " + peer_name + " failed: " +
                    response.error);
    }
    replications_out.fetch_add(1, std::memory_order_relaxed);
}

std::string ClusterService::fetch_from(const std::string& peer_name, const std::string& model) {
    KINET_FAILPOINT("cluster.fetch");
    Request request;
    request.op = Op::fetch;
    request.model = model;
    request.kv[std::string(kForwardedKey)] = "1";  // a miss must not cascade
    Response response = peer_rpc(require_peer(peer_name), request);
    if (!response.ok) {
        throw Error("cluster: FETCH " + model + " from " + peer_name + " failed: " +
                    response.error);
    }
    fetches_out.fetch_add(1, std::memory_order_relaxed);
    return std::move(response.payload);
}

std::string ClusterService::digest_from(const std::string& peer_name) {
    KINET_FAILPOINT("cluster.digest");
    Request request;
    request.op = Op::digest;
    request.kv[std::string(kForwardedKey)] = "1";
    Response response = peer_rpc(require_peer(peer_name), request);
    if (!response.ok) {
        throw Error("cluster: DIGEST from " + peer_name + " failed: " + response.error);
    }
    digest_pulls.fetch_add(1, std::memory_order_relaxed);
    // The digest carries the peer's epoch: a strictly newer view is pulled
    // and adopted right here — anti-entropy is epoch-aware, so a partition
    // that missed a membership change heals on its first digest exchange.
    if (const auto remote = payload_epoch(response.payload);
        remote.has_value() && *remote > epoch()) {
        try {
            (void)adopt_view(fetch_view_from(peer_name));
        } catch (const Error&) {
            // The peer died between the digest and the view pull; the next
            // round retries.
        }
    }
    return std::move(response.payload);
}

std::size_t ClusterService::publish(const std::string& model, const std::string& snapshot,
                                    std::uint64_t revision,
                                    const std::function<void(std::size_t, std::size_t)>& on_peer_done,
                                    std::string* first_error) {
    const auto names = peer_names();
    std::size_t ok = 0;
    const std::size_t total = names.size();
    for (std::size_t i = 0; i < total; ++i) {
        try {
            // Down peers are attempted too: publish is also how a restarted
            // peer catches up, and a failure just stays in the error report.
            replicate_to(names[i], model, snapshot, revision);
            ++ok;
        } catch (const Error& e) {
            if (first_error != nullptr && first_error->empty()) {
                *first_error = e.what();
            }
        }
        if (on_peer_done) {
            on_peer_done(i + 1, total);
        }
    }
    return ok;
}

std::optional<PeerAddress> ClusterService::peer_address(const std::string& peer_name) const {
    const auto peer = find_peer(peer_name);
    if (peer == nullptr) {
        return std::nullopt;
    }
    return peer->addr;
}

bool ClusterService::peer_up(const std::string& peer_name) const {
    const auto peer = find_peer(peer_name);
    return peer != nullptr && peer->up.load(std::memory_order_relaxed);
}

std::vector<std::string> ClusterService::peer_names() const {
    const ReaderLock lock(topology_mu_);
    std::vector<std::string> names;
    names.reserve(peers_.size());
    for (const auto& peer : peers_) {
        names.push_back(peer->name);
    }
    return names;
}

std::size_t ClusterService::members_up() const {
    const ReaderLock lock(topology_mu_);
    std::size_t up = 1;  // self
    for (const auto& peer : peers_) {
        if (peer->up.load(std::memory_order_relaxed)) {
            ++up;
        }
    }
    return up;
}

void ClusterService::probe_now() {
    Request ping;
    ping.op = Op::ping;
    ping.kv[std::string(kForwardedKey)] = "1";
    ping.kv["from"] = self_;
    std::vector<std::shared_ptr<Peer>> peers;
    {
        const ReaderLock lock(topology_mu_);
        peers = peers_;
    }
    for (const auto& peer : peers) {
        ping.kv["epoch"] = std::to_string(epoch());
        try {
            // probe=true: bypasses breaker admission (an open circuit needs
            // the probe to learn of recovery) and marks the peer up/closes
            // the breaker on success.
            const Response pong = peer_rpc(peer, ping, /*probe=*/true);
            // The pong carries the peer's epoch; a strictly newer view is
            // pulled and adopted inline (we are on the prober or a test
            // thread — blocking RPC is fine here).
            if (const auto remote = payload_epoch(pong.payload);
                remote.has_value() && *remote > epoch()) {
                try {
                    (void)adopt_view(fetch_view_from(peer->name));
                } catch (const Error&) {
                    // Peer died between pong and pull; next probe retries.
                }
            }
        } catch (const Error&) {
            // peer_rpc already marked it down.
        }
    }
}

void ClusterService::probe_loop() {
    const auto interval =
        std::chrono::milliseconds(config_.probe_interval_ms == 0 ? 1000 : config_.probe_interval_ms);
    auto last_anti_entropy = std::chrono::steady_clock::now();
    for (;;) {
        std::vector<std::string> pulls;
        bool repair = false;
        bool periodic = false;
        {
            UniqueLock lock(stop_mu_);
            const auto deadline = std::chrono::steady_clock::now() + interval;
            // Inline condition loop (not a wait predicate) so the guarded
            // reads of stopping_/wake_ are visibly under stop_mu_.
            while (!stopping_ && !wake_) {
                if (stop_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
                    periodic = true;
                    break;
                }
            }
            if (stopping_) {
                return;
            }
            wake_ = false;
            pulls.swap(pending_view_pulls_);
            repair = repair_requested_;
            repair_requested_ = false;
        }
        // Deferred view pulls: a request thread saw a peer claim a newer
        // epoch but could not block on the pull itself.
        for (const auto& name : pulls) {
            try {
                (void)adopt_view(fetch_view_from(name));
            } catch (const Error&) {
                // Unreachable or unresolvable; dissemination through other
                // peers converges the view instead.
            }
        }
        if (periodic) {
            probe_now();
        }
        if (repair) {
            // A breaker just closed: one immediate probe + anti-entropy
            // round so the recovered peer is repaired now, not at the next
            // timer tick.
            probe_now();
            if (anti_entropy_hook_ != nullptr) {
                anti_entropy_hook_();
            }
        }
        if (rebalance_pending_.exchange(false, std::memory_order_relaxed) &&
            rebalance_hook_ != nullptr) {
            rebalance_hook_();
        }
        const auto now = std::chrono::steady_clock::now();
        if (periodic && anti_entropy_hook_ != nullptr &&
            config_.anti_entropy_interval_ms != 0 &&
            now - last_anti_entropy >=
                std::chrono::milliseconds(config_.anti_entropy_interval_ms)) {
            last_anti_entropy = now;
            anti_entropy_hook_();
        }
    }
}

std::string ClusterService::render_status(const std::string& model) const {
    const MemberView view = members_.view();
    std::string out;
    out += "self=" + self_ + "\n";
    out += "epoch=" + std::to_string(view.epoch) + "\n";
    out += "members=" + std::to_string(view.members.size()) + "\n";
    out += "members_up=" + std::to_string(members_up()) + "\n";
    out += "replicas=" + std::to_string(config_.replicas) + "\n";
    out += "virtual_nodes=" + std::to_string(config_.virtual_nodes) + "\n";
    for (const auto& member : view.members) {
        out += "member." + member.name + "=" +
               std::string(member_state_name(member.state)) + "\n";
    }
    std::vector<std::shared_ptr<Peer>> peers;
    {
        const ReaderLock lock(topology_mu_);
        peers = peers_;
    }
    for (const auto& peer : peers) {
        out += "peer." + peer->name + "=" +
               (peer->up.load(std::memory_order_relaxed) ? "up" : "down") + "\n";
    }
    if (!model.empty()) {
        out += "model=" + model + "\n";
        out += "owner=" + owner_of(model) + "\n";
        out += "pref=" + text::join(preference(model), ",") + "\n";
        out += "local=" + std::string(owns(model) ? "1" : "0") + "\n";
    }
    return out;
}

std::string ClusterService::render_stats() const {
    std::string out;
    std::vector<std::shared_ptr<Peer>> peers;
    {
        const ReaderLock lock(topology_mu_);
        peers = peers_;
    }
    std::size_t peers_up_count = 0;
    for (const auto& peer : peers) {
        if (peer->up.load(std::memory_order_relaxed)) {
            ++peers_up_count;
        }
    }
    out += "epoch=" + std::to_string(epoch()) + "\n";
    out += "members=" + std::to_string(members_.view().members.size()) + "\n";
    out += "peers=" + std::to_string(peers.size()) + "\n";
    out += "peers_up=" + std::to_string(peers_up_count) + "\n";
    out += "forwards=" + std::to_string(forwards.load(std::memory_order_relaxed)) + "\n";
    out += "forward_errors=" + std::to_string(forward_errors.load(std::memory_order_relaxed)) +
           "\n";
    out += "replications=" + std::to_string(replications_out.load(std::memory_order_relaxed)) +
           "\n";
    out += "replications_in=" + std::to_string(replications_in.load(std::memory_order_relaxed)) +
           "\n";
    out += "fetches_in=" + std::to_string(fetches_in.load(std::memory_order_relaxed)) + "\n";
    out += "fetches_out=" + std::to_string(fetches_out.load(std::memory_order_relaxed)) + "\n";
    out += "cache_fills=" + std::to_string(cache_fills.load(std::memory_order_relaxed)) + "\n";
    out += "rpc_retries=" + std::to_string(rpc_retries.load(std::memory_order_relaxed)) + "\n";
    out += "breaker_rejections=" +
           std::to_string(breaker_rejections.load(std::memory_order_relaxed)) + "\n";
    out += "digest_pulls=" + std::to_string(digest_pulls.load(std::memory_order_relaxed)) +
           "\n";
    out += "rebalances=" + std::to_string(rebalances.load(std::memory_order_relaxed)) + "\n";
    out += "handoff_snapshots=" +
           std::to_string(handoff_snapshots.load(std::memory_order_relaxed)) + "\n";
    out += "handoff_bytes=" + std::to_string(handoff_bytes.load(std::memory_order_relaxed)) +
           "\n";
    out += "handoff_failures=" +
           std::to_string(handoff_failures.load(std::memory_order_relaxed)) + "\n";
    for (const auto& peer : peers) {
        const std::string prefix = "peer." + peer->name;
        out += prefix + ".up=" +
               (peer->up.load(std::memory_order_relaxed) ? "1" : "0") + "\n";
        out += prefix + ".errors=" +
               std::to_string(peer->rpc_errors.load(std::memory_order_relaxed)) + "\n";
        out += prefix + ".breaker=" +
               std::string(CircuitBreaker::state_name(peer->breaker.state())) + "\n";
        out += prefix + ".breaker_opens=" + std::to_string(peer->breaker.opens()) + "\n";
        const auto snap = peer->latency.snapshot();
        if (snap.count > 0) {
            out += prefix + ".rpcs=" + std::to_string(snap.count) + "\n";
            out += prefix + ".rpc_mean_us=" + text::format_double(snap.mean_us(), 1) + "\n";
            out += prefix + ".rpc_p50_us=" + std::to_string(snap.p50_us) + "\n";
            out += prefix + ".rpc_p99_us=" + std::to_string(snap.p99_us) + "\n";
        }
    }
    return out;
}

}  // namespace kinet::service
