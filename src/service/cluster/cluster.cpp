#include "src/service/cluster/cluster.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "src/common/backoff.hpp"
#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"
#include "src/common/text.hpp"

namespace kinet::service {
namespace {

std::vector<std::string> member_names(const ClusterConfig& config) {
    std::vector<std::string> names;
    names.reserve(config.peers.size() + 1);
    names.push_back(config.self.name());
    for (const auto& peer : config.peers) {
        names.push_back(peer.name());
    }
    return names;
}

}  // namespace

ClusterService::ClusterService(ClusterConfig config)
    : config_(std::move(config)),
      self_(config_.self.name()),
      ring_(member_names(config_), config_.virtual_nodes == 0 ? 1 : config_.virtual_nodes) {
    peers_.reserve(config_.peers.size());
    for (const auto& addr : config_.peers) {
        peers_.push_back(std::make_unique<Peer>(addr, config_.breaker));
    }
}

ClusterService::~ClusterService() { stop(); }

void ClusterService::start_probing() {
    const MutexLock lock(stop_mu_);
    if (probing_ || stopping_) {
        return;
    }
    probing_ = true;
    prober_ = std::thread([this] { probe_loop(); });
}

void ClusterService::stop() {
    {
        const MutexLock lock(stop_mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
    }
    stop_cv_.notify_all();
    if (prober_.joinable()) {
        prober_.join();
    }
    for (auto& peer : peers_) {
        const MutexLock lock(peer->mu);
        peer->client.reset();
    }
}

const std::string& ClusterService::owner_of(const std::string& model) const {
    return ring_.owner_of(model);
}

std::vector<std::string> ClusterService::preference(const std::string& model) const {
    return ring_.preference(model, config_.replicas == 0 ? 1 : config_.replicas);
}

bool ClusterService::owns(const std::string& model) const { return owner_of(model) == self_; }

std::optional<std::string> ClusterService::route(const std::string& model) const {
    for (const auto& name : preference(model)) {
        if (name == self_) {
            return std::nullopt;  // we are the first healthy candidate
        }
        if (peer_up(name)) {
            return name;
        }
    }
    // Every candidate peer is down: answering locally (pull-through cache
    // or a clear not-found) beats guaranteeing an error.
    return std::nullopt;
}

ClusterService::Peer& ClusterService::peer_by_name(const std::string& name) {
    for (auto& peer : peers_) {
        if (peer->name == name) {
            return *peer;
        }
    }
    throw Error("cluster: unknown peer " + name);
}

const ClusterService::Peer* ClusterService::find_peer(const std::string& name) const {
    for (const auto& peer : peers_) {
        if (peer->name == name) {
            return peer.get();
        }
    }
    return nullptr;
}

Response ClusterService::peer_rpc(Peer& peer, const Request& request, bool probe) {
    // Breaker admission happens *before* the peer mutex: while the circuit
    // is open, callers fail fast instead of queueing behind whatever wedged
    // RPC opened it.  Probes bypass admission — they are how an open
    // circuit learns of recovery — but their outcomes feed in below.
    if (!probe && !peer.breaker.allow()) {
        breaker_rejections.fetch_add(1, std::memory_order_relaxed);
        throw Error(std::string(kBreakerOpenCode) + ": circuit for peer " + peer.name +
                    " is open");
    }
    const MutexLock lock(peer.mu);
    const std::size_t attempts = probe ? 1 : config_.rpc_retries + 1;
    Backoff backoff(BackoffOptions{config_.rpc_backoff_ms, config_.rpc_backoff_max_ms},
                    bytes::fnv1a(peer.name));
    for (std::size_t attempt = 1;; ++attempt) {
        const auto start = std::chrono::steady_clock::now();
        try {
            KINET_FAILPOINT("cluster.rpc");
            if (!peer.client.has_value()) {
                ClientOptions options;
                options.connect_timeout_ms = config_.connect_timeout_ms;
                options.connect_attempts = 1;  // a down peer costs one refused connect
                options.recv_timeout_ms = config_.peer_timeout_ms;
                options.reconnect_on_reset = true;
                peer.client = SynthClient::connect(peer.addr.host, peer.addr.port, options);
            }
            Response response = peer.client->call(request);
            const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
            peer.latency.record(static_cast<std::uint64_t>(micros));
            peer.up.store(true, std::memory_order_relaxed);
            peer.breaker.record_success();
            if (!response.ok && attempt < attempts && is_retryable_error(response.error)) {
                // A retryable ERR (queue_full, draining) is a healthy peer
                // refusing work: back off and retry without marking it down.
                rpc_retries.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff.next_delay_ms()));
                continue;
            }
            return response;
        } catch (const Error& e) {
            // Transport failure (connect refused, reset, receive timeout) or
            // an injected fault: drop the pooled connection, then either
            // retry (retryable classification, budget left) or mark the peer
            // down and record the breaker failure.
            peer.client.reset();
            if (attempt < attempts && is_retryable_error(e.what())) {
                rpc_retries.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff.next_delay_ms()));
                continue;
            }
            peer.up.store(false, std::memory_order_relaxed);
            peer.rpc_errors.fetch_add(1, std::memory_order_relaxed);
            peer.breaker.record_failure();
            throw;
        }
    }
}

Response ClusterService::forward(const std::string& peer_name, Request request) {
    KINET_FAILPOINT("cluster.forward");
    request.kv[std::string(kForwardedKey)] = "1";
    forwards.fetch_add(1, std::memory_order_relaxed);
    try {
        return peer_rpc(peer_by_name(peer_name), request);
    } catch (const Error&) {
        forward_errors.fetch_add(1, std::memory_order_relaxed);
        throw;
    }
}

void ClusterService::replicate_to(const std::string& peer_name, const std::string& model,
                                  const std::string& snapshot, std::uint64_t revision) {
    KINET_FAILPOINT("cluster.replicate");
    Request request;
    request.op = Op::replicate;
    request.model = model;
    request.positional.push_back(std::to_string(snapshot.size()));
    request.body = snapshot;
    request.kv[std::string(kForwardedKey)] = "1";  // replication never cascades
    if (revision != 0) {
        request.kv["rev"] = std::to_string(revision);
    }
    const Response response = peer_rpc(peer_by_name(peer_name), request);
    if (!response.ok) {
        throw Error("cluster: REPLICATE " + model + " to " + peer_name + " failed: " +
                    response.error);
    }
    replications_out.fetch_add(1, std::memory_order_relaxed);
}

std::string ClusterService::fetch_from(const std::string& peer_name, const std::string& model) {
    KINET_FAILPOINT("cluster.fetch");
    Request request;
    request.op = Op::fetch;
    request.model = model;
    request.kv[std::string(kForwardedKey)] = "1";  // a miss must not cascade
    Response response = peer_rpc(peer_by_name(peer_name), request);
    if (!response.ok) {
        throw Error("cluster: FETCH " + model + " from " + peer_name + " failed: " +
                    response.error);
    }
    fetches_out.fetch_add(1, std::memory_order_relaxed);
    return std::move(response.payload);
}

std::string ClusterService::digest_from(const std::string& peer_name) {
    KINET_FAILPOINT("cluster.digest");
    Request request;
    request.op = Op::digest;
    request.kv[std::string(kForwardedKey)] = "1";
    Response response = peer_rpc(peer_by_name(peer_name), request);
    if (!response.ok) {
        throw Error("cluster: DIGEST from " + peer_name + " failed: " + response.error);
    }
    digest_pulls.fetch_add(1, std::memory_order_relaxed);
    return std::move(response.payload);
}

std::size_t ClusterService::publish(const std::string& model, const std::string& snapshot,
                                    std::uint64_t revision,
                                    const std::function<void(std::size_t, std::size_t)>& on_peer_done,
                                    std::string* first_error) {
    std::size_t ok = 0;
    const std::size_t total = peers_.size();
    for (std::size_t i = 0; i < total; ++i) {
        try {
            // Down peers are attempted too: publish is also how a restarted
            // peer catches up, and a failure just stays in the error report.
            replicate_to(peers_[i]->name, model, snapshot, revision);
            ++ok;
        } catch (const Error& e) {
            if (first_error != nullptr && first_error->empty()) {
                *first_error = e.what();
            }
        }
        if (on_peer_done) {
            on_peer_done(i + 1, total);
        }
    }
    return ok;
}

std::optional<PeerAddress> ClusterService::peer_address(const std::string& peer_name) const {
    const Peer* peer = find_peer(peer_name);
    if (peer == nullptr) {
        return std::nullopt;
    }
    return peer->addr;
}

bool ClusterService::peer_up(const std::string& peer_name) const {
    const Peer* peer = find_peer(peer_name);
    return peer != nullptr && peer->up.load(std::memory_order_relaxed);
}

std::vector<std::string> ClusterService::peer_names() const {
    std::vector<std::string> names;
    names.reserve(peers_.size());
    for (const auto& peer : peers_) {
        names.push_back(peer->name);
    }
    return names;
}

std::size_t ClusterService::members_up() const {
    std::size_t up = 1;  // self
    for (const auto& peer : peers_) {
        if (peer->up.load(std::memory_order_relaxed)) {
            ++up;
        }
    }
    return up;
}

void ClusterService::probe_now() {
    Request ping;
    ping.op = Op::ping;
    ping.kv[std::string(kForwardedKey)] = "1";
    for (auto& peer : peers_) {
        try {
            // probe=true: bypasses breaker admission (an open circuit needs
            // the probe to learn of recovery) and marks the peer up/closes
            // the breaker on success.
            (void)peer_rpc(*peer, ping, /*probe=*/true);
        } catch (const Error&) {
            // peer_rpc already marked it down.
        }
    }
}

void ClusterService::probe_loop() {
    const auto interval =
        std::chrono::milliseconds(config_.probe_interval_ms == 0 ? 1000 : config_.probe_interval_ms);
    auto last_anti_entropy = std::chrono::steady_clock::now();
    for (;;) {
        {
            UniqueLock lock(stop_mu_);
            const auto deadline = std::chrono::steady_clock::now() + interval;
            // Inline condition loop (not a wait predicate) so the guarded
            // read of stopping_ is visibly under stop_mu_.
            while (!stopping_) {
                if (stop_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
                    break;
                }
            }
            if (stopping_) {
                return;
            }
        }
        probe_now();
        const auto now = std::chrono::steady_clock::now();
        if (anti_entropy_hook_ != nullptr && config_.anti_entropy_interval_ms != 0 &&
            now - last_anti_entropy >=
                std::chrono::milliseconds(config_.anti_entropy_interval_ms)) {
            last_anti_entropy = now;
            anti_entropy_hook_();
        }
    }
}

std::string ClusterService::render_status(const std::string& model) const {
    std::string out;
    out += "self=" + self_ + "\n";
    out += "members=" + std::to_string(peers_.size() + 1) + "\n";
    out += "members_up=" + std::to_string(members_up()) + "\n";
    out += "replicas=" + std::to_string(config_.replicas) + "\n";
    out += "virtual_nodes=" + std::to_string(config_.virtual_nodes) + "\n";
    for (const auto& peer : peers_) {
        out += "peer." + peer->name + "=" +
               (peer->up.load(std::memory_order_relaxed) ? "up" : "down") + "\n";
    }
    if (!model.empty()) {
        out += "model=" + model + "\n";
        out += "owner=" + owner_of(model) + "\n";
        out += "pref=" + text::join(preference(model), ",") + "\n";
        out += "local=" + std::string(owns(model) ? "1" : "0") + "\n";
    }
    return out;
}

std::string ClusterService::render_stats() const {
    std::string out;
    std::size_t peers_up_count = 0;
    for (const auto& peer : peers_) {
        if (peer->up.load(std::memory_order_relaxed)) {
            ++peers_up_count;
        }
    }
    out += "peers=" + std::to_string(peers_.size()) + "\n";
    out += "peers_up=" + std::to_string(peers_up_count) + "\n";
    out += "forwards=" + std::to_string(forwards.load(std::memory_order_relaxed)) + "\n";
    out += "forward_errors=" + std::to_string(forward_errors.load(std::memory_order_relaxed)) +
           "\n";
    out += "replications=" + std::to_string(replications_out.load(std::memory_order_relaxed)) +
           "\n";
    out += "replications_in=" + std::to_string(replications_in.load(std::memory_order_relaxed)) +
           "\n";
    out += "fetches_in=" + std::to_string(fetches_in.load(std::memory_order_relaxed)) + "\n";
    out += "fetches_out=" + std::to_string(fetches_out.load(std::memory_order_relaxed)) + "\n";
    out += "cache_fills=" + std::to_string(cache_fills.load(std::memory_order_relaxed)) + "\n";
    out += "rpc_retries=" + std::to_string(rpc_retries.load(std::memory_order_relaxed)) + "\n";
    out += "breaker_rejections=" +
           std::to_string(breaker_rejections.load(std::memory_order_relaxed)) + "\n";
    out += "digest_pulls=" + std::to_string(digest_pulls.load(std::memory_order_relaxed)) +
           "\n";
    for (const auto& peer : peers_) {
        const std::string prefix = "peer." + peer->name;
        out += prefix + ".up=" +
               (peer->up.load(std::memory_order_relaxed) ? "1" : "0") + "\n";
        out += prefix + ".errors=" +
               std::to_string(peer->rpc_errors.load(std::memory_order_relaxed)) + "\n";
        out += prefix + ".breaker=" +
               std::string(CircuitBreaker::state_name(peer->breaker.state())) + "\n";
        out += prefix + ".breaker_opens=" + std::to_string(peer->breaker.opens()) + "\n";
        const auto snap = peer->latency.snapshot();
        if (snap.count > 0) {
            out += prefix + ".rpcs=" + std::to_string(snap.count) + "\n";
            out += prefix + ".rpc_mean_us=" + text::format_double(snap.mean_us(), 1) + "\n";
            out += prefix + ".rpc_p50_us=" + std::to_string(snap.p50_us) + "\n";
            out += prefix + ".rpc_p99_us=" + std::to_string(snap.p99_us) + "\n";
        }
    }
    return out;
}

}  // namespace kinet::service
