#include "src/service/cluster/ring.hpp"

#include <algorithm>

#include "src/common/bytes.hpp"
#include "src/common/check.hpp"

namespace kinet::service {
namespace {

/// Ring positions need avalanche, not just determinism: raw FNV-1a moves
/// the high bits barely at all when two short strings differ only in a
/// trailing digit ("site-1" vs "site-2", "host:9190#7" vs "#8"), which
/// clusters vnodes and keys into a few tight arcs and starves members.
/// A 64-bit finalizer (the murmur3 fmix) on top restores uniform spread
/// while staying a pure function of the bytes, so every member computes
/// identical placement.
std::uint64_t ring_hash(std::string_view data) {
    std::uint64_t h = bytes::fnv1a(data);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

}  // namespace

HashRing::HashRing(std::vector<std::string> nodes, std::size_t virtual_nodes)
    : nodes_(std::move(nodes)) {
    KINET_CHECK(!nodes_.empty(), "cluster: ring needs at least one node");
    KINET_CHECK(virtual_nodes > 0, "cluster: ring needs at least one virtual node");
    points_.reserve(nodes_.size() * virtual_nodes);
    for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
        for (std::size_t v = 0; v < virtual_nodes; ++v) {
            const std::string label = nodes_[n] + "#" + std::to_string(v);
            points_.push_back({ring_hash(label), n});
        }
    }
    std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
        // Tie-break on node index so two members hashing a vnode to the
        // same point still order identically on every fleet member.
        return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
    });
}

const std::string& HashRing::owner_of(std::string_view key) const {
    const std::uint64_t h = ring_hash(key);
    auto it = std::lower_bound(points_.begin(), points_.end(), h,
                               [](const Point& p, std::uint64_t value) { return p.hash < value; });
    if (it == points_.end()) {
        it = points_.begin();  // wrap past the top of the circle
    }
    return nodes_[it->node];
}

std::vector<std::string> HashRing::preference(std::string_view key, std::size_t count) const {
    const std::size_t want = std::min(count, nodes_.size());
    std::vector<std::string> out;
    if (want == 0) {
        return out;
    }
    const std::uint64_t h = ring_hash(key);
    auto it = std::lower_bound(points_.begin(), points_.end(), h,
                               [](const Point& p, std::uint64_t value) { return p.hash < value; });
    const std::size_t start = it == points_.end()
                                  ? 0
                                  : static_cast<std::size_t>(it - points_.begin());
    std::vector<bool> taken(nodes_.size(), false);
    for (std::size_t step = 0; step < points_.size() && out.size() < want; ++step) {
        const Point& point = points_[(start + step) % points_.size()];
        if (!taken[point.node]) {
            taken[point.node] = true;
            out.push_back(nodes_[point.node]);
        }
    }
    return out;
}

}  // namespace kinet::service
