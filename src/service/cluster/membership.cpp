#include "src/service/cluster/membership.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/text.hpp"
#include "src/service/protocol.hpp"

namespace kinet::service {
namespace {

void sort_members(std::vector<Member>& members) {
    std::sort(members.begin(), members.end(),
              [](const Member& a, const Member& b) { return a.name < b.name; });
}

}  // namespace

std::string_view member_state_name(MemberState state) {
    switch (state) {
    case MemberState::joining:
        return "joining";
    case MemberState::active:
        return "active";
    case MemberState::leaving:
        return "leaving";
    case MemberState::down:
        return "down";
    }
    return "?";
}

MemberState parse_member_state(std::string_view token) {
    if (token == "joining") {
        return MemberState::joining;
    }
    if (token == "active") {
        return MemberState::active;
    }
    if (token == "leaving") {
        return MemberState::leaving;
    }
    if (token == "down") {
        return MemberState::down;
    }
    throw Error("membership: unknown member state '" + std::string(token) + "'");
}

const Member* MemberView::find(std::string_view name) const {
    for (const auto& member : members) {
        if (member.name == name) {
            return &member;
        }
    }
    return nullptr;
}

std::vector<std::string> MemberView::ring_nodes() const {
    std::vector<std::string> nodes;
    nodes.reserve(members.size());
    for (const auto& member : members) {
        if (member.state == MemberState::joining || member.state == MemberState::active) {
            nodes.push_back(member.name);
        }
    }
    return nodes;
}

std::string MemberView::serialize() const {
    std::string out;
    out += "epoch=" + std::to_string(epoch) + "\n";
    out += "members=" + std::to_string(members.size()) + "\n";
    for (const auto& member : members) {
        out += "member " + member.name + " " + member.addr.name() + " " +
               std::string(member_state_name(member.state)) + "\n";
    }
    return out;
}

MemberView MemberView::parse(const std::string& payload) {
    MemberView view;
    bool saw_epoch = false;
    for (const auto& line : text::split(payload, '\n')) {
        if (text::starts_with(line, "epoch=")) {
            view.epoch = parse_u64(line.substr(6), "membership epoch");
            saw_epoch = true;
            continue;
        }
        if (!text::starts_with(line, "member ")) {
            continue;  // members= count and any appended ring parameters
        }
        const auto tokens = text::split(line, ' ');
        KINET_CHECK(tokens.size() == 4, "membership: malformed member line '" + line + "'");
        Member member;
        member.name = tokens[1];
        member.addr = parse_peer_address(tokens[2]);
        member.state = parse_member_state(tokens[3]);
        view.members.push_back(std::move(member));
    }
    KINET_CHECK(saw_epoch, "membership: view payload has no epoch= line");
    sort_members(view.members);
    return view;
}

MembershipTable::MembershipTable(MemberView initial) : view_(std::move(initial)) {
    const MutexLock lock(mu_);
    sort_members(view_.members);
}

MemberView MembershipTable::view() const {
    const MutexLock lock(mu_);
    return view_;
}

std::uint64_t MembershipTable::epoch() const {
    const MutexLock lock(mu_);
    return view_.epoch;
}

bool MembershipTable::adopt(const MemberView& remote) {
    const MutexLock lock(mu_);
    if (remote.epoch <= view_.epoch) {
        return false;
    }
    view_ = remote;
    sort_members(view_.members);
    return true;
}

MemberView MembershipTable::join(const std::string& name, const PeerAddress& addr) {
    const MutexLock lock(mu_);
    for (auto& member : view_.members) {
        if (member.name != name) {
            continue;
        }
        if (member.addr == addr &&
            (member.state == MemberState::joining || member.state == MemberState::active)) {
            return view_;  // idempotent re-JOIN: no bump
        }
        // Rejoin after leave/crash, or a moved endpoint: re-admit.
        member.addr = addr;
        member.state = MemberState::joining;
        ++view_.epoch;
        return view_;
    }
    view_.members.push_back(Member{name, addr, MemberState::joining});
    sort_members(view_.members);
    ++view_.epoch;
    return view_;
}

MemberView MembershipTable::set_state(const std::string& name, MemberState state) {
    const MutexLock lock(mu_);
    for (auto& member : view_.members) {
        if (member.name == name) {
            if (member.state != state) {
                member.state = state;
                ++view_.epoch;
            }
            return view_;
        }
    }
    return view_;
}

MemberView MembershipTable::remove(const std::string& name) {
    const MutexLock lock(mu_);
    const auto it = std::find_if(view_.members.begin(), view_.members.end(),
                                 [&](const Member& m) { return m.name == name; });
    if (it == view_.members.end()) {
        return view_;
    }
    view_.members.erase(it);
    ++view_.epoch;
    return view_;
}

}  // namespace kinet::service
