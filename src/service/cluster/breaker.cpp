#include "src/service/cluster/breaker.hpp"

#include <algorithm>
#include <cmath>

namespace kinet::service {

std::string_view CircuitBreaker::state_name(State state) {
    switch (state) {
    case State::closed:
        return "closed";
    case State::open:
        return "open";
    case State::half_open:
        return "half_open";
    }
    return "?";
}

std::int64_t CircuitBreaker::now_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void CircuitBreaker::open_locked() {
    state_ = State::open;
    trial_inflight_ = false;
    cooldown_ms_ = cooldown_ms_ == 0
                       ? options_.open_ms
                       : std::min(static_cast<std::uint64_t>(std::llround(
                                      static_cast<double>(cooldown_ms_) *
                                      std::max(options_.multiplier, 1.0))),
                                  options_.max_open_ms);
    double cooldown = static_cast<double>(std::max<std::uint64_t>(cooldown_ms_, 1));
    if (options_.jitter > 0.0) {
        const double j = std::min(options_.jitter, 1.0);
        cooldown *= rng_.uniform(1.0 - j, 1.0 + j);
    }
    open_until_ms_ = now_ms() + std::llround(cooldown);
    opens_.fetch_add(1, std::memory_order_relaxed);
}

bool CircuitBreaker::allow() {
    if (options_.failure_threshold == 0) {
        return true;  // breaker disabled
    }
    const MutexLock lock(mu_);
    switch (state_) {
    case State::closed:
        return true;
    case State::open:
        if (now_ms() < open_until_ms_) {
            return false;
        }
        state_ = State::half_open;
        trial_inflight_ = true;
        return true;
    case State::half_open:
        if (trial_inflight_) {
            return false;  // one trial at a time
        }
        trial_inflight_ = true;
        return true;
    }
    return true;
}

bool CircuitBreaker::record_success() {
    if (options_.failure_threshold == 0) {
        return false;
    }
    const MutexLock lock(mu_);
    const bool closed_now = state_ != State::closed;
    state_ = State::closed;
    consecutive_failures_ = 0;
    cooldown_ms_ = 0;
    trial_inflight_ = false;
    return closed_now;
}

void CircuitBreaker::record_failure() {
    if (options_.failure_threshold == 0) {
        return;
    }
    const MutexLock lock(mu_);
    ++consecutive_failures_;
    switch (state_) {
    case State::closed:
        if (consecutive_failures_ >= options_.failure_threshold) {
            open_locked();
        }
        return;
    case State::half_open:
        open_locked();  // the trial failed — reopen with a grown cooldown
        return;
    case State::open:
        // A probe failed during the cooldown: keep the circuit open and
        // push the horizon out (no growth — growth is reserved for failed
        // trials, or probe storms would escalate the cooldown for free).
        open_until_ms_ = std::max(open_until_ms_,
                                  now_ms() + static_cast<std::int64_t>(cooldown_ms_));
        return;
    }
}

CircuitBreaker::State CircuitBreaker::state() const {
    if (options_.failure_threshold == 0) {
        return State::closed;
    }
    const MutexLock lock(mu_);
    return state_;
}

}  // namespace kinet::service
