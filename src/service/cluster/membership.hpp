// Epoch-versioned fleet membership for the kinetd cluster layer.
//
// A MemberView is a monotonically versioned snapshot of who is in the
// fleet: an epoch counter plus a name-sorted member list, each member
// carrying its lifecycle state (joining/active/leaving/down).  Every
// topology change — JOIN, LEAVE, state transition — bumps the epoch by
// exactly one on the node applying it; every other node converges by
// adopting any strictly newer view it hears about (piggybacked on PING
// probes and DIGEST anti-entropy, or pulled whole via the EPOCH op).
// Higher-epoch-wins is safe because a view is a complete replacement, not
// a delta: adopting can never un-apply a change it has not seen, only lag
// behind one it will hear about again.
//
// Ring placement derives from the view: joining and active members hold
// ring slots (a joining member takes its final placement immediately, so
// the pull-based handoff targets the layout it will keep); leaving and
// down members hold none, so marking a member leaving is what moves
// ownership off it and triggers the rebalance.
#ifndef KINETGAN_SERVICE_CLUSTER_MEMBERSHIP_H
#define KINETGAN_SERVICE_CLUSTER_MEMBERSHIP_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/service/cluster/config.hpp"

namespace kinet::service {

/// Lifecycle state of one fleet member within a view.
enum class MemberState {
    joining,  // admitted, placed on the ring, still pulling its snapshots
    active,   // full member
    leaving,  // handing off; off the ring, still answering RPCs
    down,     // administratively dead; off the ring, kept for visibility
};

[[nodiscard]] std::string_view member_state_name(MemberState state);
/// Throws kinet::Error on an unknown state token.
[[nodiscard]] MemberState parse_member_state(std::string_view token);

/// One member of the fleet: ring identity, endpoint, lifecycle state.
struct Member {
    std::string name;  // ring identity (host:port unless overridden)
    PeerAddress addr;
    MemberState state = MemberState::active;
};

/// An immutable membership snapshot.  Serializes to the line format the
/// JOIN and EPOCH ops carry:
///     epoch=<n>
///     members=<k>
///     member <name> <host:port> <state>
struct MemberView {
    std::uint64_t epoch = 0;
    std::vector<Member> members;  // kept sorted by name

    [[nodiscard]] const Member* find(std::string_view name) const;
    /// Ring slot holders: joining and active members, view order.
    [[nodiscard]] std::vector<std::string> ring_nodes() const;
    [[nodiscard]] std::string serialize() const;
    /// Parses a serialized view; unknown lines are ignored (the EPOCH
    /// payload appends ring parameters after the member list).  Throws
    /// kinet::Error on malformed member lines or a missing epoch.
    [[nodiscard]] static MemberView parse(const std::string& payload);
};

/// The mutable, mutex-guarded membership table a ClusterService owns.
/// Local mutations (join/set_state/remove) bump the epoch by one and
/// return the new view; adopt() replaces the whole view when the remote
/// epoch is strictly newer.
class MembershipTable {
public:
    explicit MembershipTable(MemberView initial);

    [[nodiscard]] MemberView view() const;
    [[nodiscard]] std::uint64_t epoch() const;

    /// Adopts `remote` iff remote.epoch > the current epoch.  Returns
    /// whether the view changed.
    bool adopt(const MemberView& remote);

    /// Admits a member in the joining state (epoch bump).  Re-joining with
    /// the same name and address is idempotent (no bump) unless the member
    /// had left the ring (leaving/down), which re-admits it; a changed
    /// address replaces the old endpoint.
    MemberView join(const std::string& name, const PeerAddress& addr);
    /// Transitions a member's state (epoch bump; no-op view if already
    /// there or unknown).
    MemberView set_state(const std::string& name, MemberState state);
    /// Removes a member outright (epoch bump; no-op view if unknown).
    MemberView remove(const std::string& name);

private:
    mutable Mutex mu_;
    MemberView view_ KINET_GUARDED_BY(mu_);
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_CLUSTER_MEMBERSHIP_H
