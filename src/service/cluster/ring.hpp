// Consistent-hash ring for model placement across the fleet.
//
// Every member contributes `virtual_nodes` points on a 64-bit hash circle
// (FNV-1a of "name#i"); a model lands on the first point clockwise from the
// hash of its name, and its preference list is the sequence of *distinct*
// members encountered continuing clockwise.  The construction is the
// standard one (Karger et al.): adding or removing a member moves only the
// keys adjacent to its points, and virtual nodes keep the per-member share
// close to uniform.  A ring object is immutable after construction, so
// lookups need no locking; membership changes build a *new* ring from the
// adopted view and swap it wholesale under the cluster's epoch lock.
#ifndef KINETGAN_SERVICE_CLUSTER_RING_H
#define KINETGAN_SERVICE_CLUSTER_RING_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kinet::service {

class HashRing {
public:
    /// `nodes` are member identities (host:port names); order does not
    /// affect placement.  Throws kinet::Error on an empty member set or
    /// zero virtual nodes.
    HashRing(std::vector<std::string> nodes, std::size_t virtual_nodes);

    [[nodiscard]] const std::vector<std::string>& nodes() const noexcept { return nodes_; }

    /// The member owning `key` (first ring point clockwise from its hash).
    [[nodiscard]] const std::string& owner_of(std::string_view key) const;

    /// The first min(count, nodes) distinct members clockwise from `key` —
    /// owner first, then the fallback owners in failover order.
    [[nodiscard]] std::vector<std::string> preference(std::string_view key,
                                                      std::size_t count) const;

private:
    struct Point {
        std::uint64_t hash;
        std::uint32_t node;  // index into nodes_
    };

    std::vector<std::string> nodes_;
    std::vector<Point> points_;  // sorted by hash
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_CLUSTER_RING_H
