// Per-peer circuit breaker for cluster RPC.
//
// Classic three-state machine.  closed: RPCs flow; consecutive failures
// past the threshold open the circuit.  open: regular RPCs fail fast with
// a retryable `breaker_open:` error for a jittered cooldown — no connect
// timeouts burned on a peer that is known down.  half-open: after the
// cooldown one trial RPC is admitted; success closes the circuit, failure
// reopens it with a grown (capped) cooldown.
//
// The health prober is deliberately *outside* the breaker's admission: its
// PINGs always run and their outcomes feed record_success/record_failure,
// so a recovered peer closes its breaker within one probe interval even if
// no request traffic ever risks a trial.  Cooldown jitter comes from a
// seeded kinet::Rng (per-peer seed), keeping fleet behaviour deterministic
// in tests while decorrelating reopen storms in production.
#ifndef KINETGAN_SERVICE_CLUSTER_BREAKER_H
#define KINETGAN_SERVICE_CLUSTER_BREAKER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "src/common/rng.hpp"
#include "src/common/thread_annotations.hpp"

namespace kinet::service {

struct BreakerOptions {
    /// Consecutive failures that open the circuit (0 disables the breaker:
    /// allow() is always true and state stays closed).
    std::size_t failure_threshold = 5;
    /// First cooldown after opening, before jitter.
    std::uint64_t open_ms = 2000;
    /// Cooldown growth factor on each reopen from half-open.
    double multiplier = 2.0;
    /// Cooldown ceiling.
    std::uint64_t max_open_ms = 30000;
    /// Jitter fraction applied to every cooldown (scaled by uniform(1-j, 1+j)).
    double jitter = 0.2;
};

class CircuitBreaker {
public:
    enum class State { closed, open, half_open };

    explicit CircuitBreaker(BreakerOptions options = {}, std::uint64_t seed = 0)
        : options_(options), rng_(seed) {}

    /// True iff a regular RPC may proceed now.  While open, flips to
    /// half-open once the cooldown has elapsed and admits exactly one
    /// trial; further calls fail until that trial resolves.
    [[nodiscard]] bool allow();

    /// Any successful exchange with the peer (RPC or probe): closes the
    /// circuit and resets the failure count and cooldown.  Returns true
    /// when this call actually closed an open/half-open circuit — the
    /// recovery edge callers use to trigger immediate repair instead of
    /// waiting out the next probe or anti-entropy interval.
    bool record_success();

    /// Any failed exchange: counts toward opening; a failed half-open
    /// trial reopens with a grown cooldown.
    void record_failure();

    [[nodiscard]] State state() const;

    /// Lifetime count of closed/half-open -> open transitions.
    [[nodiscard]] std::uint64_t opens() const noexcept {
        return opens_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] static std::string_view state_name(State state);

private:
    [[nodiscard]] std::int64_t now_ms() const;
    void open_locked() KINET_REQUIRES(mu_);

    BreakerOptions options_;
    mutable Mutex mu_;
    State state_ KINET_GUARDED_BY(mu_) = State::closed;
    std::size_t consecutive_failures_ KINET_GUARDED_BY(mu_) = 0;
    std::int64_t open_until_ms_ KINET_GUARDED_BY(mu_) = 0;
    std::uint64_t cooldown_ms_ KINET_GUARDED_BY(mu_) = 0;
    bool trial_inflight_ KINET_GUARDED_BY(mu_) = false;
    Rng rng_ KINET_GUARDED_BY(mu_);
    std::atomic<std::uint64_t> opens_{0};
    std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_CLUSTER_BREAKER_H
