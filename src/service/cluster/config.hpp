// Bootstrap fleet configuration for the kinetd cluster layer.
//
// The paper's deployment is a handful of tenant sites that know each other
// by address, so a ClusterConfig is the simple seed: this node's advertised
// address plus every peer it starts out knowing.  Two sources produce one:
// the `--peers host:port,...` flag (one line of CSV) and `--cluster-config
// <file>` (a line-oriented file that can also tune ring and probe
// parameters).  The config only *seeds* membership — it becomes epoch 1 of
// the epoch-versioned view (membership.hpp), which JOIN/LEAVE then evolve
// at runtime; a member started with `--join` needs no config at all.  The
// CLUSTER and EPOCH ops exist partly so an operator can check that the
// fleet agrees about placement.
#ifndef KINETGAN_SERVICE_CLUSTER_CONFIG_H
#define KINETGAN_SERVICE_CLUSTER_CONFIG_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/service/cluster/breaker.hpp"

namespace kinet::service {

/// One fleet member's TCP endpoint.  `name()` ("host:port") doubles as the
/// node's identity on the hash ring, so advertised addresses must be stable
/// and written identically in every member's config.
struct PeerAddress {
    std::string host;
    std::uint16_t port = 0;

    [[nodiscard]] std::string name() const { return host + ":" + std::to_string(port); }
    [[nodiscard]] bool operator==(const PeerAddress& other) const = default;
};

/// Parses "host:port"; throws kinet::Error on a malformed token.
[[nodiscard]] PeerAddress parse_peer_address(std::string_view token);

struct ClusterConfig {
    /// This node's advertised address (its ring identity).
    PeerAddress self;
    /// Every other fleet member.  Entries equal to `self` are dropped by
    /// the parsers, so the same `--peers` list can be handed to all nodes.
    std::vector<PeerAddress> peers;
    /// Virtual nodes per member on the consistent-hash ring; more vnodes
    /// smooth placement at the cost of a larger (still tiny) ring table.
    std::size_t virtual_nodes = 64;
    /// Preference-list depth: the ring owner plus (replicas - 1) fallback
    /// owners a request fails over to when the owner is down.
    std::size_t replicas = 2;
    /// Period of the background PING probe marking peers up/down.
    std::size_t probe_interval_ms = 1000;
    /// TCP connect timeout for pooled peer connections and probes.
    std::size_t connect_timeout_ms = 500;
    /// Receive timeout on pooled peer RPCs — bounds how long a forward can
    /// hold a request worker when a peer wedges mid-response.
    std::size_t peer_timeout_ms = 10000;
    /// Retries (beyond the first attempt) for a peer RPC that fails with a
    /// retryable error; each retry reconnects after a jittered backoff.
    std::size_t rpc_retries = 2;
    /// First retry backoff, before jitter...
    std::size_t rpc_backoff_ms = 50;
    /// ...doubling per retry up to this ceiling.
    std::size_t rpc_backoff_max_ms = 2000;
    /// Per-peer circuit-breaker tuning (failure threshold, cooldown growth).
    BreakerOptions breaker;
    /// Period of the anti-entropy digest exchange repairing divergent or
    /// missing replicas (0 disables the background rounds).
    std::size_t anti_entropy_interval_ms = 10000;

    /// A config with no peers leaves the daemon standalone.
    [[nodiscard]] bool enabled() const noexcept { return !peers.empty(); }
};

/// Builds a config from the `--peers` CSV ("host:port,host:port,...").
/// `self` may appear in the list; it is removed from `peers`.
[[nodiscard]] ClusterConfig parse_peer_list(const PeerAddress& self, std::string_view csv);

/// Loads the line-oriented config file:
///     self 127.0.0.1:7101        # required
///     peer 127.0.0.1:7102        # one line per member (self tolerated)
///     virtual-nodes 64           # optional tuning keys
///     replicas 2
///     probe-interval-ms 1000
///     connect-timeout-ms 500
///     peer-timeout-ms 10000
///     rpc-retries 2
///     rpc-backoff-ms 50
///     rpc-backoff-max-ms 2000
///     breaker-threshold 5
///     breaker-open-ms 2000
///     breaker-max-open-ms 30000
///     anti-entropy-interval-ms 10000
/// Blank lines and '#' comments are ignored.  Throws kinet::Error on
/// unknown keys, malformed addresses, or a missing `self`.
[[nodiscard]] ClusterConfig load_cluster_config(const std::string& path);

}  // namespace kinet::service

#endif  // KINETGAN_SERVICE_CLUSTER_CONFIG_H
