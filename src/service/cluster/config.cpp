#include "src/service/cluster/config.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "src/common/check.hpp"
#include "src/common/text.hpp"

namespace kinet::service {
namespace {

std::uint64_t parse_number(std::string_view token, const std::string& what) {
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() || token.empty()) {
        throw Error("cluster: " + what + " '" + std::string(token) +
                    "' is not a non-negative integer");
    }
    return value;
}

/// Drops entries equal to `self` and exact duplicates, preserving order.
void dedupe_peers(ClusterConfig& config) {
    std::vector<PeerAddress> unique;
    unique.reserve(config.peers.size());
    for (auto& peer : config.peers) {
        if (peer == config.self) {
            continue;
        }
        if (std::find(unique.begin(), unique.end(), peer) == unique.end()) {
            unique.push_back(std::move(peer));
        }
    }
    config.peers = std::move(unique);
}

}  // namespace

PeerAddress parse_peer_address(std::string_view token) {
    token = text::trim(token);
    const std::size_t colon = token.rfind(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= token.size()) {
        throw Error("cluster: peer address '" + std::string(token) +
                    "' is not of the form host:port");
    }
    PeerAddress address;
    address.host = std::string(token.substr(0, colon));
    const auto port = parse_number(token.substr(colon + 1), "peer port");
    if (port == 0 || port > 65535) {
        throw Error("cluster: peer port " + std::to_string(port) + " is out of range");
    }
    address.port = static_cast<std::uint16_t>(port);
    return address;
}

ClusterConfig parse_peer_list(const PeerAddress& self, std::string_view csv) {
    ClusterConfig config;
    config.self = self;
    for (const auto& token : text::split(csv, ',')) {
        const auto trimmed = text::trim(token);
        if (trimmed.empty()) {
            continue;
        }
        config.peers.push_back(parse_peer_address(trimmed));
    }
    dedupe_peers(config);
    return config;
}

ClusterConfig load_cluster_config(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("cluster: cannot open config file " + path);
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    ClusterConfig config;
    bool have_self = false;
    std::size_t line_no = 0;
    for (const auto& raw_line : text::split(buffer.str(), '\n')) {
        ++line_no;
        std::string_view line = text::trim(raw_line);
        const std::size_t hash = line.find('#');
        if (hash != std::string_view::npos) {
            line = text::trim(line.substr(0, hash));
        }
        if (line.empty()) {
            continue;
        }
        const std::size_t space = line.find(' ');
        if (space == std::string_view::npos) {
            throw Error("cluster: " + path + ":" + std::to_string(line_no) +
                        ": expected '<key> <value>', got '" + std::string(line) + "'");
        }
        const std::string_view key = line.substr(0, space);
        const std::string_view value = text::trim(line.substr(space + 1));
        if (key == "self") {
            config.self = parse_peer_address(value);
            have_self = true;
        } else if (key == "peer") {
            config.peers.push_back(parse_peer_address(value));
        } else if (key == "virtual-nodes") {
            config.virtual_nodes = parse_number(value, "virtual-nodes");
        } else if (key == "replicas") {
            config.replicas = parse_number(value, "replicas");
        } else if (key == "probe-interval-ms") {
            config.probe_interval_ms = parse_number(value, "probe-interval-ms");
        } else if (key == "connect-timeout-ms") {
            config.connect_timeout_ms = parse_number(value, "connect-timeout-ms");
        } else if (key == "peer-timeout-ms") {
            config.peer_timeout_ms = parse_number(value, "peer-timeout-ms");
        } else if (key == "rpc-retries") {
            config.rpc_retries = parse_number(value, "rpc-retries");
        } else if (key == "rpc-backoff-ms") {
            config.rpc_backoff_ms = parse_number(value, "rpc-backoff-ms");
        } else if (key == "rpc-backoff-max-ms") {
            config.rpc_backoff_max_ms = parse_number(value, "rpc-backoff-max-ms");
        } else if (key == "breaker-threshold") {
            config.breaker.failure_threshold = parse_number(value, "breaker-threshold");
        } else if (key == "breaker-open-ms") {
            config.breaker.open_ms = parse_number(value, "breaker-open-ms");
        } else if (key == "breaker-max-open-ms") {
            config.breaker.max_open_ms = parse_number(value, "breaker-max-open-ms");
        } else if (key == "anti-entropy-interval-ms") {
            config.anti_entropy_interval_ms = parse_number(value, "anti-entropy-interval-ms");
        } else {
            throw Error("cluster: " + path + ":" + std::to_string(line_no) +
                        ": unknown key '" + std::string(key) + "'");
        }
    }
    if (!have_self) {
        throw Error("cluster: config file " + path + " lacks a 'self host:port' line");
    }
    if (config.virtual_nodes == 0) {
        throw Error("cluster: virtual-nodes must be at least 1");
    }
    if (config.replicas == 0) {
        throw Error("cluster: replicas must be at least 1");
    }
    dedupe_peers(config);
    return config;
}

}  // namespace kinet::service
