#include "src/service/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"

namespace kinet::service {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw Error("socket: " + what + ": " + std::strerror(errno));
}

/// write() on a peer-closed socket raises SIGPIPE by default, which would
/// kill the daemon; MSG_NOSIGNAL turns it into EPIPE per-call and
/// ignore_sigpipe() masks it process-wide (covers any path that writes a
/// socket without the flag, e.g. third-party code or future fds).
constexpr int kSendFlags = MSG_NOSIGNAL;

void set_fd_nonblocking(int fd, bool nonblocking) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) {
        throw_errno("fcntl(F_GETFL)");
    }
    const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
        throw_errno("fcntl(F_SETFL)");
    }
}

}  // namespace

void ignore_sigpipe() {
    static std::once_flag once;
    std::call_once(once, [] { (void)std::signal(SIGPIPE, SIG_IGN); });
}

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rdbuf_(std::move(other.rdbuf_)),
      rdpos_(std::exchange(other.rdpos_, 0)),
      recv_timeout_set_(std::exchange(other.recv_timeout_set_, false)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        rdbuf_ = std::move(other.rdbuf_);
        rdpos_ = std::exchange(other.rdpos_, 0);
        recv_timeout_set_ = std::exchange(other.recv_timeout_set_, false);
    }
    return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             std::size_t connect_timeout_ms) {
    ignore_sigpipe();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw_errno("socket()");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw Error("socket: bad host address " + host);
    }
    const std::string where = host + ":" + std::to_string(port);
    if (connect_timeout_ms == 0) {
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            throw_errno("connect to " + where);
        }
    } else {
        // Bounded handshake: start the connect non-blocking, poll for
        // writability, then read SO_ERROR for the actual outcome.
        set_fd_nonblocking(fd, true);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
            if (errno != EINPROGRESS) {
                ::close(fd);
                throw_errno("connect to " + where);
            }
            pollfd pfd{fd, POLLOUT, 0};
            int rc;
            do {
                rc = ::poll(&pfd, 1, static_cast<int>(connect_timeout_ms));
            } while (rc < 0 && errno == EINTR);
            if (rc == 0) {
                ::close(fd);
                throw Error("socket: connect to " + where + " timed out after " +
                            std::to_string(connect_timeout_ms) + "ms");
            }
            if (rc < 0) {
                ::close(fd);
                throw_errno("poll() during connect to " + where);
            }
            int err = 0;
            socklen_t len = sizeof(err);
            if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
                ::close(fd);
                throw Error("socket: connect to " + where + ": " +
                            std::strerror(err != 0 ? err : errno));
            }
        }
        set_fd_nonblocking(fd, false);
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream(fd);
}

void TcpStream::set_recv_timeout(std::size_t ms) {
    KINET_CHECK(valid(), "socket: set_recv_timeout on closed stream");
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
        throw_errno("setsockopt(SO_RCVTIMEO)");
    }
    recv_timeout_set_ = ms > 0;
}

void TcpStream::write_all(std::string_view data) {
    KINET_FAILPOINT("socket.send");
    KINET_CHECK(valid(), "socket: write on closed stream");
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, kSendFlags);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw_errno("send()");
        }
        sent += static_cast<std::size_t>(n);
    }
}

bool TcpStream::fill() {
    KINET_FAILPOINT("socket.recv");
    KINET_CHECK(valid(), "socket: read on closed stream");
    if (rdpos_ == rdbuf_.size()) {
        rdbuf_.clear();
        rdpos_ = 0;
    }
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            if (recv_timeout_set_ && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                // SO_RCVTIMEO expired: the server accepted but stopped
                // talking — a protocol-visible failure, not a hang.
                throw Error("socket: receive timed out");
            }
            throw_errno("recv()");
        }
        if (n == 0) {
            return false;
        }
        rdbuf_.append(chunk, static_cast<std::size_t>(n));
        return true;
    }
}

std::optional<std::string> TcpStream::read_line() {
    for (;;) {
        const std::size_t nl = rdbuf_.find('\n', rdpos_);
        if (nl != std::string::npos) {
            std::string line = rdbuf_.substr(rdpos_, nl - rdpos_);
            rdpos_ = nl + 1;
            return line;
        }
        if (!fill()) {
            if (rdpos_ == rdbuf_.size()) {
                return std::nullopt;  // clean EOF between messages
            }
            throw Error("socket: connection closed mid-line");
        }
    }
}

std::string TcpStream::read_exact(std::size_t n) {
    while (rdbuf_.size() - rdpos_ < n) {
        if (!fill()) {
            throw Error("socket: connection closed " +
                        std::to_string(n - (rdbuf_.size() - rdpos_)) +
                        " bytes short of a framed payload");
        }
    }
    std::string out = rdbuf_.substr(rdpos_, n);
    rdpos_ += n;
    return out;
}

void TcpStream::shutdown() {
    if (fd_ >= 0) {
        (void)::shutdown(fd_, SHUT_RDWR);
    }
}

void TcpStream::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int TcpStream::release() noexcept {
    rdbuf_.clear();
    rdpos_ = 0;
    return std::exchange(fd_, -1);
}

void TcpStream::set_nonblocking(bool nonblocking) {
    KINET_CHECK(valid(), "socket: set_nonblocking on closed stream");
    set_fd_nonblocking(fd_, nonblocking);
}

bool TcpStream::read_available(std::string& out) {
    KINET_CHECK(valid(), "socket: read on closed stream");
    char chunk[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            out.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            return false;  // peer EOF
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return true;  // drained for now
        }
        throw_errno("recv()");
    }
}

std::size_t TcpStream::write_some(std::string_view data) {
    KINET_CHECK(valid(), "socket: write on closed stream");
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, kSendFlags);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;  // kernel buffer full — resume on EPOLLOUT
        }
        throw_errno("send()");
    }
    return sent;
}

TcpListener::~TcpListener() {
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) {
            ::close(fd_);
        }
        fd_ = std::exchange(other.fd_, -1);
        port_ = std::exchange(other.port_, 0);
    }
    return *this;
}

TcpListener TcpListener::bind_loopback(std::uint16_t port) {
    ignore_sigpipe();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw_errno("socket()");
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd, 256) != 0) {
        ::close(fd);
        throw_errno("listen()");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        ::close(fd);
        throw_errno("getsockname()");
    }
    TcpListener listener;
    listener.fd_ = fd;
    listener.port_ = ntohs(bound.sin_port);
    return listener;
}

std::optional<TcpStream> TcpListener::accept() {
    KINET_CHECK(valid(), "socket: accept on closed listener");
    for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) {
            const int one = 1;
            (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return TcpStream(client);
        }
        if (errno == EINTR) {
            continue;
        }
        // shutdown() surfaces as EINVAL (Linux) / ECONNABORTED — treat any
        // non-transient failure as "listener is done".
        return std::nullopt;
    }
}

std::optional<TcpStream> TcpListener::try_accept() {
    KINET_CHECK(valid(), "socket: accept on closed listener");
    for (;;) {
        const int client = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (client >= 0) {
            const int one = 1;
            (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return TcpStream(client);
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
            return std::nullopt;
        }
        throw_errno("accept4()");
    }
}

void TcpListener::set_nonblocking(bool nonblocking) {
    KINET_CHECK(valid(), "socket: set_nonblocking on closed listener");
    set_fd_nonblocking(fd_, nonblocking);
}

void TcpListener::shutdown() {
    if (fd_ >= 0) {
        (void)::shutdown(fd_, SHUT_RDWR);
    }
}

}  // namespace kinet::service
