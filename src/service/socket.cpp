#include "src/service/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include "src/common/check.hpp"

namespace kinet::service {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw Error("socket: " + what + ": " + std::strerror(errno));
}

/// write() on a peer-closed socket raises SIGPIPE by default, which would
/// kill the daemon; send with MSG_NOSIGNAL turns it into EPIPE.
constexpr int kSendFlags = MSG_NOSIGNAL;

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rdbuf_(std::move(other.rdbuf_)),
      rdpos_(std::exchange(other.rdpos_, 0)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        rdbuf_ = std::move(other.rdbuf_);
        rdpos_ = std::exchange(other.rdpos_, 0);
    }
    return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw_errno("socket()");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw Error("socket: bad host address " + host);
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("connect to " + host + ":" + std::to_string(port));
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream(fd);
}

void TcpStream::write_all(std::string_view data) {
    KINET_CHECK(valid(), "socket: write on closed stream");
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, kSendFlags);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw_errno("send()");
        }
        sent += static_cast<std::size_t>(n);
    }
}

bool TcpStream::fill() {
    KINET_CHECK(valid(), "socket: read on closed stream");
    if (rdpos_ == rdbuf_.size()) {
        rdbuf_.clear();
        rdpos_ = 0;
    }
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw_errno("recv()");
        }
        if (n == 0) {
            return false;
        }
        rdbuf_.append(chunk, static_cast<std::size_t>(n));
        return true;
    }
}

std::optional<std::string> TcpStream::read_line() {
    for (;;) {
        const std::size_t nl = rdbuf_.find('\n', rdpos_);
        if (nl != std::string::npos) {
            std::string line = rdbuf_.substr(rdpos_, nl - rdpos_);
            rdpos_ = nl + 1;
            return line;
        }
        if (!fill()) {
            if (rdpos_ == rdbuf_.size()) {
                return std::nullopt;  // clean EOF between messages
            }
            throw Error("socket: connection closed mid-line");
        }
    }
}

std::string TcpStream::read_exact(std::size_t n) {
    while (rdbuf_.size() - rdpos_ < n) {
        if (!fill()) {
            throw Error("socket: connection closed " +
                        std::to_string(n - (rdbuf_.size() - rdpos_)) +
                        " bytes short of a framed payload");
        }
    }
    std::string out = rdbuf_.substr(rdpos_, n);
    rdpos_ += n;
    return out;
}

void TcpStream::shutdown() {
    if (fd_ >= 0) {
        (void)::shutdown(fd_, SHUT_RDWR);
    }
}

void TcpStream::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

TcpListener::~TcpListener() {
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) {
            ::close(fd_);
        }
        fd_ = std::exchange(other.fd_, -1);
        port_ = std::exchange(other.port_, 0);
    }
    return *this;
}

TcpListener TcpListener::bind_loopback(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw_errno("socket()");
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        throw_errno("listen()");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        ::close(fd);
        throw_errno("getsockname()");
    }
    TcpListener listener;
    listener.fd_ = fd;
    listener.port_ = ntohs(bound.sin_port);
    return listener;
}

std::optional<TcpStream> TcpListener::accept() {
    KINET_CHECK(valid(), "socket: accept on closed listener");
    for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) {
            const int one = 1;
            (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return TcpStream(client);
        }
        if (errno == EINTR) {
            continue;
        }
        // shutdown() surfaces as EINVAL (Linux) / ECONNABORTED — treat any
        // non-transient failure as "listener is done".
        return std::nullopt;
    }
}

void TcpListener::shutdown() {
    if (fd_ >= 0) {
        (void)::shutdown(fd_, SHUT_RDWR);
    }
}

}  // namespace kinet::service
