#include "src/service/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

#include "src/common/check.hpp"

namespace kinet::service {
namespace {

struct OpSpec {
    Op op;
    std::string_view name;
    bool needs_model;
    std::size_t min_positional;  // beyond the model argument
    bool optional_model = false;  // a non-kv first token is taken as a model
};

constexpr OpSpec kOps[] = {
    {Op::ping, "PING", false, 0},     {Op::train, "TRAIN", true, 0},
    {Op::load, "LOAD", true, 1},      {Op::save, "SAVE", true, 1},
    {Op::drop, "DROP", true, 0},      {Op::sample, "SAMPLE", true, 1},
    {Op::validate, "VALIDATE", true, 0}, {Op::stats, "STATS", false, 0, true},
    {Op::poll, "POLL", false, 1},     {Op::cancel, "CANCEL", false, 1},
    {Op::jobs, "JOBS", false, 0},     {Op::quit, "QUIT", false, 0},
    {Op::cluster, "CLUSTER", false, 0, true}, {Op::replicate, "REPLICATE", true, 1},
    {Op::fetch, "FETCH", true, 0},    {Op::fedtrain, "FEDTRAIN", true, 0},
    {Op::fault, "FAULT", false, 0},   {Op::digest, "DIGEST", false, 0},
    {Op::join, "JOIN", true, 1},      {Op::leave, "LEAVE", true, 0},
    {Op::epoch, "EPOCH", false, 0},
};

const OpSpec* find_op(std::string_view name) {
    for (const auto& spec : kOps) {
        if (spec.name == name) {
            return &spec;
        }
    }
    return nullptr;
}

std::vector<std::string> tokenize(std::string_view line) {
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
        while (pos < line.size() && line[pos] == ' ') {
            ++pos;
        }
        const std::size_t start = pos;
        while (pos < line.size() && line[pos] != ' ') {
            ++pos;
        }
        if (pos > start) {
            tokens.emplace_back(line.substr(start, pos - start));
        }
    }
    return tokens;
}

}  // namespace

Request parse_request(std::string_view line) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
        throw Error("protocol: empty request line");
    }
    std::string op_token = tokens[0];
    std::transform(op_token.begin(), op_token.end(), op_token.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    const OpSpec* spec = find_op(op_token);
    if (spec == nullptr) {
        throw Error("protocol: unknown op " + tokens[0]);
    }

    Request request;
    request.op = spec->op;
    std::size_t next = 1;
    if (spec->needs_model) {
        if (tokens.size() < 2 || tokens[1].find('=') != std::string::npos) {
            throw Error("protocol: " + std::string(spec->name) + " requires a model name");
        }
        request.model = tokens[next++];
    } else if (spec->optional_model && tokens.size() > 1 &&
               tokens[1].find('=') == std::string::npos) {
        request.model = tokens[next++];  // STATS/CLUSTER take an optional model
    }
    for (; next < tokens.size(); ++next) {
        const std::string& token = tokens[next];
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            request.positional.push_back(token);
        } else {
            KINET_CHECK(eq > 0, "protocol: malformed key=value argument " + token);
            request.kv[token.substr(0, eq)] = token.substr(eq + 1);
        }
    }
    if (request.positional.size() < spec->min_positional) {
        throw Error("protocol: " + std::string(spec->name) + " requires at least " +
                    std::to_string(spec->min_positional) + " positional argument(s)");
    }
    return request;
}

std::size_t request_body_size(const Request& request) {
    if (request.op != Op::replicate) {
        return 0;
    }
    const auto bytes = parse_u64(request.positional.at(0), "REPLICATE body size");
    if (bytes > kMaxRequestBodyBytes) {
        // Coded and permanent: a peer must not retry an oversize push.
        throw Error(std::string(kBodyTooLargeCode) + ": REPLICATE body of " +
                    std::to_string(bytes) + " bytes exceeds the limit of " +
                    std::to_string(kMaxRequestBodyBytes));
    }
    return static_cast<std::size_t>(bytes);
}

std::string format_request(const Request& request) {
    std::string line(op_name(request.op));
    if (!request.model.empty()) {
        line += ' ';
        line += request.model;
    }
    for (const auto& arg : request.positional) {
        line += ' ';
        line += arg;
    }
    for (const auto& [key, value] : request.kv) {
        line += ' ';
        line += key;
        line += '=';
        line += value;
    }
    return line;
}

std::string format_response(const Response& response) {
    if (!response.ok) {
        std::string error = response.error.empty() ? "unspecified error" : response.error;
        // The status line is the frame: an embedded newline would desync it.
        std::replace(error.begin(), error.end(), '\n', ' ');
        return "ERR " + error + "\n";
    }
    return "OK " + std::to_string(response.payload.size()) + "\n" + response.payload;
}

bool is_queue_full_message(std::string_view message) {
    // Tolerate the client-side "server: " framing so callers can match on
    // the exception text they actually see.
    constexpr std::string_view kClientPrefix = "server: ";
    if (message.substr(0, kClientPrefix.size()) == kClientPrefix) {
        message.remove_prefix(kClientPrefix.size());
    }
    return message.substr(0, kQueueFullPrefix.size()) == kQueueFullPrefix;
}

Response queue_full_response(std::string_view detail) {
    Response r;
    r.ok = false;
    r.error = std::string(kQueueFullPrefix) + ": " + std::string(detail);
    return r;
}

std::string_view error_code(std::string_view message) {
    constexpr std::string_view kClientPrefix = "server: ";
    if (message.substr(0, kClientPrefix.size()) == kClientPrefix) {
        message.remove_prefix(kClientPrefix.size());
    }
    const std::size_t colon = message.find(':');
    if (colon == std::string_view::npos || colon == 0) {
        return {};
    }
    const std::string_view code = message.substr(0, colon);
    for (const char c : code) {
        const bool code_char =
            (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
        if (!code_char) {
            return {};  // prose before the colon, not a machine code
        }
    }
    return code;
}

bool is_retryable_error(std::string_view message) {
    constexpr std::string_view kClientPrefix = "server: ";
    if (message.substr(0, kClientPrefix.size()) == kClientPrefix) {
        message.remove_prefix(kClientPrefix.size());
    }
    // Transport-layer failures: the request may never have reached the
    // server (or died mid-response) — reconnect and resend is sound for
    // this protocol's idempotent request/response exchanges.
    constexpr std::string_view kSocketPrefix = "socket: ";
    if (message.substr(0, kSocketPrefix.size()) == kSocketPrefix ||
        message == "client: server closed the connection") {
        return true;
    }
    const std::string_view code = error_code(message);
    return code == kQueueFullPrefix || code == kDrainingCode ||
           code == kBreakerOpenCode || code == kUnavailableCode ||
           code == kWrongOwnerCode;
}

Response coded_error(std::string_view code, std::string_view detail) {
    Response r;
    r.ok = false;
    r.error = std::string(code) + ": " + std::string(detail);
    return r;
}

std::string_view op_name(Op op) {
    for (const auto& spec : kOps) {
        if (spec.op == op) {
            return spec.name;
        }
    }
    return "?";
}

std::uint64_t parse_u64(const std::string& token, const std::string& what) {
    std::uint64_t value = 0;
    const char* first = token.data();
    const char* last = first + token.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last || token.empty()) {
        throw Error("protocol: " + what + " '" + token + "' is not a non-negative integer");
    }
    return value;
}

std::uint64_t kv_u64(const Request& request, const std::string& key, std::uint64_t fallback) {
    const auto it = request.kv.find(key);
    if (it == request.kv.end()) {
        return fallback;
    }
    return parse_u64(it->second, "argument " + key);
}

double kv_double(const Request& request, const std::string& key, double fallback) {
    const auto it = request.kv.find(key);
    if (it == request.kv.end()) {
        return fallback;
    }
    double value = 0.0;
    try {
        std::size_t consumed = 0;
        value = std::stod(it->second, &consumed);
        KINET_CHECK(consumed == it->second.size(), "trailing characters");
    } catch (const std::exception&) {
        throw Error("protocol: argument " + key + "=" + it->second + " is not a number");
    }
    // std::stod happily parses "nan"/"inf" (and overflows to inf); none of
    // them is a meaningful protocol argument.
    if (!std::isfinite(value)) {
        throw Error("protocol: argument " + key + "=" + it->second + " must be finite");
    }
    return value;
}

std::string kv_string(const Request& request, const std::string& key,
                      const std::string& fallback) {
    const auto it = request.kv.find(key);
    return it == request.kv.end() ? fallback : it->second;
}

}  // namespace kinet::service
