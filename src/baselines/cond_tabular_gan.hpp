// Shared core for the CTGAN-family baselines (CTGAN, OCT-GAN).
//
// Implements Xu et al.'s conditional tabular GAN: mode-specific
// normalization, single-attribute conditioning (the condition vector carries
// only the anchor block, with a cross-entropy penalty on that block), and
// training-by-sampling.  OCT-GAN (Kim et al., WWW 2021) is the same pipeline
// with neural-ODE blocks inserted into both networks.
#ifndef KINETGAN_BASELINES_COND_TABULAR_GAN_H
#define KINETGAN_BASELINES_COND_TABULAR_GAN_H

#include <memory>
#include <string>
#include <vector>

#include "src/data/sampler.hpp"
#include "src/data/transformer.hpp"
#include "src/gan/cond_vector.hpp"
#include "src/gan/gan_common.hpp"
#include "src/gan/synthesizer.hpp"
#include "src/nn/nn.hpp"

namespace kinet::baselines {

struct CondTabularGanOptions {
    gan::GanOptions gan;
    data::TransformerOptions transformer;
    data::SamplerOptions sampler;
    float cond_penalty_weight = 1.0F;
    /// OCT-GAN mode: insert OdeBlocks into generator and discriminator.
    bool ode_blocks = false;
    std::size_t ode_steps = 3;
};

class CondTabularGan : public gan::Synthesizer {
public:
    CondTabularGan(std::string display_name, std::vector<std::size_t> cond_columns,
                   CondTabularGanOptions options);

    void fit(const data::Table& table) override;
    [[nodiscard]] data::Table sample(std::size_t n) override;
    [[nodiscard]] std::string name() const override { return display_name_; }

    /// Sigmoid(D) per row — white-box membership-inference surface.
    [[nodiscard]] std::vector<double> discriminator_scores(const data::Table& table);

private:
    std::string display_name_;
    std::vector<std::size_t> cond_columns_;
    CondTabularGanOptions options_;
    Rng rng_;

    std::vector<data::ColumnMeta> schema_;
    data::TableTransformer transformer_;
    std::unique_ptr<data::ConditionalSampler> sampler_;
    std::unique_ptr<gan::CondVectorBuilder> cond_builder_;
    std::vector<data::OutputSpan> cond_spans_;

    // Generator trunk (ends in Linear logits) + output activation, kept
    // separate so the anchor penalty acts on the logits (as in CTGAN).
    std::unique_ptr<nn::Sequential> g_trunk_;
    std::unique_ptr<gan::OutputActivation> g_act_;
    std::unique_ptr<nn::Sequential> discriminator_;
    bool fitted_ = false;
};

/// CTGAN baseline (Xu et al., NeurIPS 2019).
class CtGan : public CondTabularGan {
public:
    CtGan(std::vector<std::size_t> cond_columns, CondTabularGanOptions options = {});
};

/// OCT-GAN baseline (Kim et al., WWW 2021): CTGAN with neural-ODE blocks.
class OctGan : public CondTabularGan {
public:
    OctGan(std::vector<std::size_t> cond_columns, CondTabularGanOptions options = {});
};

}  // namespace kinet::baselines

#endif  // KINETGAN_BASELINES_COND_TABULAR_GAN_H
