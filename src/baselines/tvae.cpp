#include "src/baselines/tvae.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/common/stopwatch.hpp"
#include "src/tensor/ops.hpp"

namespace kinet::baselines {

using nn::Matrix;

namespace {

// Reconstruction loss over the transformer representation:
//  - alpha spans: MSE between tanh(raw) and the target alpha;
//  - one-hot spans: softmax cross-entropy against the target's argmax.
// Returns mean loss and gradient w.r.t. the raw decoder output.
struct ReconResult {
    double value = 0.0;
    Matrix grad;
};

ReconResult reconstruction_loss(const Matrix& raw, const Matrix& target,
                                const std::vector<data::OutputSpan>& spans) {
    ReconResult res;
    res.grad.resize(raw.rows(), raw.cols());
    double total = 0.0;
    std::size_t terms = 0;

    for (const auto& span : spans) {
        if (span.kind == data::SpanKind::continuous_alpha) {
            for (std::size_t r = 0; r < raw.rows(); ++r) {
                const double a = std::tanh(static_cast<double>(raw(r, span.offset)));
                const double t = target(r, span.offset);
                const double d = a - t;
                total += d * d;
                res.grad(r, span.offset) = static_cast<float>(2.0 * d * (1.0 - a * a));
                ++terms;
            }
        } else {
            for (std::size_t r = 0; r < raw.rows(); ++r) {
                // Target index = argmax of the one-hot span.
                std::size_t tgt = 0;
                for (std::size_t j = 1; j < span.width; ++j) {
                    if (target(r, span.offset + j) > target(r, span.offset + tgt)) {
                        tgt = j;
                    }
                }
                // Stable softmax CE on the raw logits of this span.
                double mx = raw(r, span.offset);
                for (std::size_t j = 1; j < span.width; ++j) {
                    mx = std::max(mx, static_cast<double>(raw(r, span.offset + j)));
                }
                double denom = 0.0;
                for (std::size_t j = 0; j < span.width; ++j) {
                    denom += std::exp(static_cast<double>(raw(r, span.offset + j)) - mx);
                }
                const double log_denom = std::log(denom) + mx;
                total += log_denom - static_cast<double>(raw(r, span.offset + tgt));
                for (std::size_t j = 0; j < span.width; ++j) {
                    const double p =
                        std::exp(static_cast<double>(raw(r, span.offset + j)) - log_denom);
                    res.grad(r, span.offset + j) =
                        static_cast<float>(p - ((j == tgt) ? 1.0 : 0.0));
                }
                ++terms;
            }
        }
    }
    KINET_CHECK(terms > 0, "reconstruction_loss: no spans");
    const double inv = 1.0 / static_cast<double>(terms);
    res.value = total * inv;
    res.grad *= static_cast<float>(inv);
    return res;
}

}  // namespace

Tvae::Tvae(TvaeOptions options) : options_(options), rng_(options.seed) {}

void Tvae::fit(const data::Table& table) {
    Stopwatch watch;
    schema_ = table.schema();
    transformer_.fit(table, options_.transformer, rng_);
    const Matrix encoded = transformer_.transform(table, rng_);

    const std::size_t width = transformer_.output_width();
    const std::size_t latent = options_.latent_dim;

    encoder_ = std::make_unique<nn::Sequential>();
    encoder_->emplace<nn::Linear>(width, options_.hidden_dim, rng_, "enc.fc0");
    encoder_->emplace<nn::ReLU>();
    encoder_->emplace<nn::Linear>(options_.hidden_dim, options_.hidden_dim, rng_, "enc.fc1");
    encoder_->emplace<nn::ReLU>();
    encoder_->emplace<nn::Linear>(options_.hidden_dim, 2 * latent, rng_, "enc.head");

    decoder_ = std::make_unique<nn::Sequential>();
    decoder_->emplace<nn::Linear>(latent, options_.hidden_dim, rng_, "dec.fc0");
    decoder_->emplace<nn::ReLU>();
    decoder_->emplace<nn::Linear>(options_.hidden_dim, options_.hidden_dim, rng_, "dec.fc1");
    decoder_->emplace<nn::ReLU>();
    decoder_->emplace<nn::Linear>(options_.hidden_dim, width, rng_, "dec.head");

    auto params = encoder_->parameters();
    for (auto* p : decoder_->parameters()) {
        params.push_back(p);
    }
    nn::Adam opt(params, options_.lr, 0.9F, 0.999F);

    const std::size_t batch = std::min<std::size_t>(options_.batch_size, table.rows());
    const std::size_t steps = std::max<std::size_t>(1, table.rows() / batch);
    report_ = gan::FitReport{};

    for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
        double loss_acc = 0.0;
        for (std::size_t step = 0; step < steps; ++step) {
            std::vector<std::size_t> rows(batch);
            for (auto& r : rows) {
                r = static_cast<std::size_t>(
                    rng_.randint(0, static_cast<std::int64_t>(table.rows()) - 1));
            }
            const Matrix x = encoded.gather_rows(rows);

            encoder_->zero_grad();
            decoder_->zero_grad();

            // Encode and split into mu / logvar (logvar clamped for stability).
            Matrix enc_out = encoder_->forward(x, true);
            Matrix mu = enc_out.slice_cols(0, latent);
            Matrix logvar = enc_out.slice_cols(latent, 2 * latent);
            tensor::map_inplace(logvar, [](float v) { return std::clamp(v, -8.0F, 8.0F); });

            // Reparameterise.
            Matrix eps(batch, latent);
            for (auto& v : eps.data()) {
                v = static_cast<float>(rng_.normal());
            }
            Matrix z = mu;
            for (std::size_t i = 0; i < z.data().size(); ++i) {
                z.data()[i] += eps.data()[i] * std::exp(0.5F * logvar.data()[i]);
            }

            // Decode and compute ELBO pieces.
            Matrix raw = decoder_->forward(z, true);
            auto recon = reconstruction_loss(raw, x, transformer_.spans());
            auto kl = nn::gaussian_kl(mu, logvar);

            // Backward: decoder -> dz -> (dmu, dlogvar) -> encoder.
            Matrix dz = decoder_->backward(recon.grad);
            Matrix enc_grad(batch, 2 * latent);
            for (std::size_t r = 0; r < batch; ++r) {
                for (std::size_t c = 0; c < latent; ++c) {
                    const float dmu = dz(r, c) + options_.kl_weight * kl.grad_mu(r, c);
                    const float dlv = dz(r, c) * eps(r, c) * 0.5F *
                                          std::exp(0.5F * logvar(r, c)) +
                                      options_.kl_weight * kl.grad_logvar(r, c);
                    enc_grad(r, c) = dmu;
                    enc_grad(r, latent + c) = dlv;
                }
            }
            (void)encoder_->backward(enc_grad);

            nn::clip_grad_norm(params, options_.grad_clip);
            opt.step();
            loss_acc += recon.value + options_.kl_weight * kl.value;
        }
        report_.generator_loss.push_back(loss_acc / static_cast<double>(steps));
        report_.discriminator_loss.push_back(0.0);
    }

    report_.seconds = watch.seconds();
    fitted_ = true;
}

data::Table Tvae::sample(std::size_t n) {
    KINET_CHECK(fitted_, "Tvae::sample before fit");
    data::Table out(schema_);
    const std::size_t batch = options_.batch_size;
    std::size_t remaining = n;
    while (remaining > 0) {
        const std::size_t b = std::min(batch, remaining);
        Matrix z(b, options_.latent_dim);
        for (auto& v : z.data()) {
            v = static_cast<float>(rng_.normal());
        }
        Matrix raw = decoder_->forward(z, false);

        // Apply output activations: tanh on alphas; sample one-hot spans from
        // their softmax distribution for categorical diversity.
        for (const auto& span : transformer_.spans()) {
            if (span.kind == data::SpanKind::continuous_alpha) {
                for (std::size_t r = 0; r < b; ++r) {
                    raw(r, span.offset) = std::tanh(raw(r, span.offset));
                }
            } else {
                tensor::softmax_rows_inplace(raw, span.offset, span.offset + span.width);
                for (std::size_t r = 0; r < b; ++r) {
                    std::vector<double> probs(span.width);
                    for (std::size_t j = 0; j < span.width; ++j) {
                        probs[j] = raw(r, span.offset + j);
                    }
                    const std::size_t pick = rng_.categorical(probs);
                    for (std::size_t j = 0; j < span.width; ++j) {
                        raw(r, span.offset + j) = (j == pick) ? 1.0F : 0.0F;
                    }
                }
            }
        }
        out.append_rows(transformer_.inverse(raw));
        remaining -= b;
    }
    return out;
}

}  // namespace kinet::baselines
