#include "src/baselines/tablegan.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/stopwatch.hpp"
#include "src/tensor/ops.hpp"

namespace kinet::baselines {

using nn::Matrix;

namespace {

// Information loss: squared distance between batch means and batch standard
// deviations of real vs. fake.  Returns loss and gradient w.r.t. fake.
struct InfoResult {
    double value = 0.0;
    Matrix grad;
};

InfoResult info_loss(const Matrix& fake, const Matrix& real) {
    InfoResult res;
    res.grad.resize(fake.rows(), fake.cols());
    const Matrix mu_f = tensor::col_mean(fake);
    const Matrix mu_r = tensor::col_mean(real);
    const Matrix var_f = tensor::col_var(fake);
    const Matrix var_r = tensor::col_var(real);
    const auto n = static_cast<double>(fake.rows());
    const auto width = static_cast<double>(fake.cols());

    double total = 0.0;
    for (std::size_t c = 0; c < fake.cols(); ++c) {
        const double sd_f = std::sqrt(var_f(0, c) + 1e-8);
        const double sd_r = std::sqrt(var_r(0, c) + 1e-8);
        const double dmu = mu_f(0, c) - mu_r(0, c);
        const double dsd = sd_f - sd_r;
        total += dmu * dmu + dsd * dsd;
        for (std::size_t r = 0; r < fake.rows(); ++r) {
            // d mu_f / d x = 1/n; d sd_f / d x = (x - mu_f) / (n * sd_f).
            const double g_mu = 2.0 * dmu / n;
            const double g_sd = 2.0 * dsd * (fake(r, c) - mu_f(0, c)) / (n * sd_f);
            res.grad(r, c) = static_cast<float>((g_mu + g_sd) / width);
        }
    }
    res.value = total / width;
    return res;
}

}  // namespace

TableGan::TableGan(TableGanOptions options) : options_(options), rng_(options.gan.seed) {}

void TableGan::fit(const data::Table& table) {
    Stopwatch watch;
    schema_ = table.schema();
    KINET_CHECK(options_.label_column < schema_.size(), "TableGan: label column out of range");
    KINET_CHECK(schema_[options_.label_column].is_categorical(),
                "TableGan: label column must be categorical");
    label_classes_ = schema_[options_.label_column].categories.size();

    transformer_.fit(table);
    const Matrix encoded = transformer_.transform(table);
    const std::size_t width = transformer_.output_width();

    const auto& g = options_.gan;
    generator_ = gan::make_generator_trunk(g.noise_dim, g.hidden_dim, g.hidden_layers, width, rng_);
    generator_->emplace<nn::Tanh>();
    discriminator_ = gan::make_discriminator(width, g.hidden_dim, g.hidden_layers, g.dropout, rng_);

    // Classifier predicts the label category from the other columns.
    classifier_ = std::make_unique<nn::Sequential>();
    classifier_->emplace<nn::Linear>(width - 1, g.hidden_dim, rng_, "c.fc0");
    classifier_->emplace<nn::LeakyReLU>(0.2F);
    classifier_->emplace<nn::Linear>(g.hidden_dim, label_classes_, rng_, "c.out");

    nn::Adam g_opt(generator_->parameters(), g.lr_generator, g.adam_beta1, g.adam_beta2);
    nn::Adam d_opt(discriminator_->parameters(), g.lr_discriminator, g.adam_beta1, g.adam_beta2);
    nn::Adam c_opt(classifier_->parameters(), g.lr_discriminator, g.adam_beta1, g.adam_beta2);

    const std::size_t batch = std::min<std::size_t>(g.batch_size, table.rows());
    const std::size_t steps = std::max<std::size_t>(1, table.rows() / batch);
    const std::size_t label_col = options_.label_column;
    report_ = gan::FitReport{};

    auto drop_label_col = [label_col](const Matrix& m) {
        Matrix left = m.slice_cols(0, label_col);
        Matrix right = m.slice_cols(label_col + 1, m.cols());
        return Matrix::hcat(left, right);
    };

    for (std::size_t epoch = 0; epoch < g.epochs; ++epoch) {
        double g_loss_acc = 0.0;
        double d_loss_acc = 0.0;
        for (std::size_t step = 0; step < steps; ++step) {
            std::vector<std::size_t> rows(batch);
            std::vector<std::size_t> labels(batch);
            for (std::size_t b = 0; b < batch; ++b) {
                rows[b] = static_cast<std::size_t>(
                    rng_.randint(0, static_cast<std::int64_t>(table.rows()) - 1));
                labels[b] = table.category_at(rows[b], label_col);
            }
            const Matrix real = encoded.gather_rows(rows);

            // ---- classifier step (real data only) ----
            classifier_->zero_grad();
            Matrix c_logits = classifier_->forward(drop_label_col(real), true);
            auto c_loss = nn::softmax_cross_entropy(c_logits, labels);
            (void)classifier_->backward(c_loss.grad);
            nn::clip_grad_norm(classifier_->parameters(), g.grad_clip);
            c_opt.step();

            // ---- D step ----
            discriminator_->zero_grad();
            Matrix z = gan::sample_noise(batch, g.noise_dim, rng_);
            Matrix fake = generator_->forward(z, true);

            Matrix d_real = discriminator_->forward(real, true);
            auto real_loss = nn::bce_with_logits(d_real, gan::constant_targets(batch, 1.0F));
            (void)discriminator_->backward(real_loss.grad);
            Matrix d_fake = discriminator_->forward(fake, true);
            auto fake_loss = nn::bce_with_logits(d_fake, gan::constant_targets(batch, 0.0F));
            (void)discriminator_->backward(fake_loss.grad);
            nn::clip_grad_norm(discriminator_->parameters(), g.grad_clip);
            d_opt.step();
            d_loss_acc += real_loss.value + fake_loss.value;

            // ---- G step: adversarial + info + classifier-consistency ----
            generator_->zero_grad();
            z = gan::sample_noise(batch, g.noise_dim, rng_);
            fake = generator_->forward(z, true);

            discriminator_->zero_grad();
            Matrix adv_logits = discriminator_->forward(fake, true);
            auto adv = nn::bce_with_logits(adv_logits, gan::constant_targets(batch, 1.0F));
            Matrix grad_total = discriminator_->backward(adv.grad);
            discriminator_->zero_grad();
            double g_loss = adv.value;

            auto info = info_loss(fake, real);
            info.grad *= options_.info_weight;
            grad_total += info.grad;
            g_loss += options_.info_weight * info.value;

            // Classifier consistency: the label the fake row carries should
            // match what the real-data classifier predicts from its features.
            {
                // Decode the fake label ordinals (min-max scale -> class id).
                std::vector<std::size_t> fake_labels(batch);
                const auto scale = static_cast<float>(label_classes_ - 1);
                for (std::size_t b = 0; b < batch; ++b) {
                    const float v = (std::clamp(fake(b, label_col), -1.0F, 1.0F) + 1.0F) * 0.5F *
                                    scale;
                    fake_labels[b] = static_cast<std::size_t>(
                        std::clamp<long>(std::lround(v), 0, static_cast<long>(label_classes_) - 1));
                }
                classifier_->zero_grad();
                Matrix fc_logits = classifier_->forward(drop_label_col(fake), true);
                auto cc = nn::softmax_cross_entropy(fc_logits, fake_labels);
                Matrix grad_features = classifier_->backward(cc.grad);
                classifier_->zero_grad();
                // Scatter the feature gradient back around the label column.
                for (std::size_t b = 0; b < batch; ++b) {
                    for (std::size_t c = 0; c < width; ++c) {
                        if (c == label_col) {
                            continue;
                        }
                        const std::size_t src = (c < label_col) ? c : c - 1;
                        grad_total(b, c) += options_.class_weight * grad_features(b, src);
                    }
                }
                g_loss += options_.class_weight * cc.value;
            }

            (void)generator_->backward(grad_total);
            nn::clip_grad_norm(generator_->parameters(), g.grad_clip);
            g_opt.step();
            g_loss_acc += g_loss;
        }
        report_.generator_loss.push_back(g_loss_acc / static_cast<double>(steps));
        report_.discriminator_loss.push_back(d_loss_acc / static_cast<double>(steps));
    }

    report_.seconds = watch.seconds();
    fitted_ = true;
}

data::Table TableGan::sample(std::size_t n) {
    KINET_CHECK(fitted_, "TableGan::sample before fit");
    data::Table out(schema_);
    const std::size_t batch = options_.gan.batch_size;
    std::size_t remaining = n;
    while (remaining > 0) {
        const std::size_t b = std::min(batch, remaining);
        const Matrix z = gan::sample_noise(b, options_.gan.noise_dim, rng_);
        const Matrix fake = generator_->forward(z, false);
        out.append_rows(transformer_.inverse(fake));
        remaining -= b;
    }
    return out;
}

std::vector<double> TableGan::discriminator_scores(const data::Table& table) {
    KINET_CHECK(fitted_, "discriminator_scores before fit");
    const Matrix encoded = transformer_.transform(table);
    const Matrix logits = discriminator_->forward(encoded, false);
    std::vector<double> scores(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        scores[r] = 1.0 / (1.0 + std::exp(-static_cast<double>(logits(r, 0))));
    }
    return scores;
}

}  // namespace kinet::baselines
