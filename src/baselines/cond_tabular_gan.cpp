#include "src/baselines/cond_tabular_gan.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/stopwatch.hpp"

namespace kinet::baselines {

using nn::Matrix;

namespace {

// CTGAN generator-loss penalty: softmax cross-entropy between the anchor
// block of C and the matching logits span, per row (gradient w.r.t. logits).
struct AnchorPenalty {
    double value = 0.0;
    Matrix grad;
};

AnchorPenalty anchor_ce_penalty(const Matrix& gen_logits,
                                const std::vector<data::CondDraw>& draws,
                                const std::vector<data::OutputSpan>& span_for_block) {
    AnchorPenalty res;
    res.grad.resize(gen_logits.rows(), gen_logits.cols());
    double total = 0.0;
    for (std::size_t r = 0; r < draws.size(); ++r) {
        const auto& span = span_for_block[draws[r].anchor_column];
        const std::size_t target = draws[r].anchor_value;
        double mx = gen_logits(r, span.offset);
        for (std::size_t j = 1; j < span.width; ++j) {
            mx = std::max(mx, static_cast<double>(gen_logits(r, span.offset + j)));
        }
        double denom = 0.0;
        for (std::size_t j = 0; j < span.width; ++j) {
            denom += std::exp(static_cast<double>(gen_logits(r, span.offset + j)) - mx);
        }
        const double log_denom = std::log(denom) + mx;
        total += log_denom - static_cast<double>(gen_logits(r, span.offset + target));
        for (std::size_t j = 0; j < span.width; ++j) {
            const double p =
                std::exp(static_cast<double>(gen_logits(r, span.offset + j)) - log_denom);
            res.grad(r, span.offset + j) = static_cast<float>(p - ((j == target) ? 1.0 : 0.0));
        }
    }
    const double inv = 1.0 / static_cast<double>(draws.size());
    res.value = total * inv;
    res.grad *= static_cast<float>(inv);
    return res;
}

std::unique_ptr<nn::Sequential> make_ode_generator(std::size_t in_dim, std::size_t hidden,
                                                   std::size_t out_dim, std::size_t ode_steps,
                                                   Rng& rng) {
    auto net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Linear>(in_dim, hidden, rng, "g.fc0");
    net->emplace<nn::BatchNorm1d>(hidden);
    net->emplace<nn::ReLU>();
    auto field = std::make_unique<nn::Sequential>();
    field->emplace<nn::Linear>(hidden, hidden, rng, "g.ode.f");
    field->emplace<nn::Tanh>();
    net->emplace<nn::OdeBlock>(std::move(field), ode_steps);
    net->emplace<nn::Linear>(hidden, out_dim, rng, "g.out");
    return net;
}

std::unique_ptr<nn::Sequential> make_ode_discriminator(std::size_t in_dim, std::size_t hidden,
                                                       std::size_t ode_steps, Rng& rng) {
    auto net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Linear>(in_dim, hidden, rng, "d.fc0");
    net->emplace<nn::LeakyReLU>(0.2F);
    auto field = std::make_unique<nn::Sequential>();
    field->emplace<nn::Linear>(hidden, hidden, rng, "d.ode.f");
    field->emplace<nn::Tanh>();
    net->emplace<nn::OdeBlock>(std::move(field), ode_steps);
    net->emplace<nn::Linear>(hidden, 1, rng, "d.out");
    return net;
}

}  // namespace

CondTabularGan::CondTabularGan(std::string display_name, std::vector<std::size_t> cond_columns,
                               CondTabularGanOptions options)
    : display_name_(std::move(display_name)),
      cond_columns_(std::move(cond_columns)),
      options_(options),
      rng_(options.gan.seed) {
    KINET_CHECK(!cond_columns_.empty(), "CondTabularGan: need conditional columns");
}

void CondTabularGan::fit(const data::Table& table) {
    Stopwatch watch;
    schema_ = table.schema();

    transformer_.fit(table, options_.transformer, rng_);
    const Matrix encoded = transformer_.transform(table, rng_);

    sampler_ = std::make_unique<data::ConditionalSampler>(table, cond_columns_, options_.sampler);
    cond_builder_ = std::make_unique<gan::CondVectorBuilder>(schema_, cond_columns_);
    cond_spans_ = gan::category_spans_for_blocks(transformer_, *cond_builder_);

    const auto& g = options_.gan;
    const std::size_t data_width = transformer_.output_width();
    const std::size_t cond_width = cond_builder_->width();

    if (options_.ode_blocks) {
        g_trunk_ = make_ode_generator(g.noise_dim + cond_width, g.hidden_dim, data_width,
                                      options_.ode_steps, rng_);
        discriminator_ =
            make_ode_discriminator(data_width + cond_width, g.hidden_dim, options_.ode_steps, rng_);
    } else {
        g_trunk_ = gan::make_generator_trunk(g.noise_dim + cond_width, g.hidden_dim,
                                             g.hidden_layers, data_width, rng_);
        discriminator_ = gan::make_discriminator(data_width + cond_width, g.hidden_dim,
                                                 g.hidden_layers, g.dropout, rng_);
    }
    g_act_ = std::make_unique<gan::OutputActivation>(transformer_.spans(), g.gumbel_tau, rng_);

    nn::Adam g_opt(g_trunk_->parameters(), g.lr_generator, g.adam_beta1, g.adam_beta2);
    nn::Adam d_opt(discriminator_->parameters(), g.lr_discriminator, g.adam_beta1, g.adam_beta2);

    const std::size_t batch = std::min<std::size_t>(g.batch_size, table.rows());
    const std::size_t steps = std::max<std::size_t>(1, table.rows() / batch);

    report_ = gan::FitReport{};

    for (std::size_t epoch = 0; epoch < g.epochs; ++epoch) {
        double g_loss_acc = 0.0;
        double d_loss_acc = 0.0;

        for (std::size_t step = 0; step < steps; ++step) {
            std::vector<data::CondDraw> draws;
            draws.reserve(batch);
            std::vector<std::size_t> real_rows;
            real_rows.reserve(batch);
            for (std::size_t b = 0; b < batch; ++b) {
                draws.push_back(sampler_->draw(rng_));
                real_rows.push_back(draws.back().row);
            }
            const Matrix cond = cond_builder_->encode_anchor_only(draws);
            const Matrix real = encoded.gather_rows(real_rows);

            // ---- D step ----
            discriminator_->zero_grad();
            Matrix z = gan::sample_noise(batch, g.noise_dim, rng_);
            Matrix fake = g_act_->forward(g_trunk_->forward(Matrix::hcat(z, cond), true), true);

            Matrix d_real = discriminator_->forward(Matrix::hcat(real, cond), true);
            auto real_loss = nn::bce_with_logits(d_real, gan::constant_targets(batch, 1.0F));
            (void)discriminator_->backward(real_loss.grad);

            Matrix d_fake = discriminator_->forward(Matrix::hcat(fake, cond), true);
            auto fake_loss = nn::bce_with_logits(d_fake, gan::constant_targets(batch, 0.0F));
            (void)discriminator_->backward(fake_loss.grad);

            nn::clip_grad_norm(discriminator_->parameters(), g.grad_clip);
            d_opt.step();
            d_loss_acc += real_loss.value + fake_loss.value;

            // ---- G step ----
            g_trunk_->zero_grad();
            z = gan::sample_noise(batch, g.noise_dim, rng_);
            Matrix fake_logits = g_trunk_->forward(Matrix::hcat(z, cond), true);
            fake = g_act_->forward(fake_logits, true);

            discriminator_->zero_grad();
            Matrix adv_logits = discriminator_->forward(Matrix::hcat(fake, cond), true);
            auto adv = nn::bce_with_logits(adv_logits, gan::constant_targets(batch, 1.0F));
            Matrix grad_d_in = discriminator_->backward(adv.grad);
            discriminator_->zero_grad();

            Matrix grad_logits = g_act_->backward(grad_d_in.slice_cols(0, fake.cols()));
            double g_loss = adv.value;

            auto pen = anchor_ce_penalty(fake_logits, draws, cond_spans_);
            pen.grad *= options_.cond_penalty_weight;
            grad_logits += pen.grad;
            g_loss += options_.cond_penalty_weight * pen.value;

            (void)g_trunk_->backward(grad_logits);
            nn::clip_grad_norm(g_trunk_->parameters(), g.grad_clip);
            g_opt.step();
            g_loss_acc += g_loss;
        }

        report_.generator_loss.push_back(g_loss_acc / static_cast<double>(steps));
        report_.discriminator_loss.push_back(d_loss_acc / static_cast<double>(steps));
    }

    report_.seconds = watch.seconds();
    fitted_ = true;
}

data::Table CondTabularGan::sample(std::size_t n) {
    KINET_CHECK(fitted_, "CondTabularGan::sample before fit");
    data::Table out(schema_);
    const std::size_t batch = options_.gan.batch_size;
    std::size_t remaining = n;
    while (remaining > 0) {
        const std::size_t b = std::min(batch, remaining);
        std::vector<data::CondDraw> draws;
        draws.reserve(b);
        for (std::size_t i = 0; i < b; ++i) {
            draws.push_back(sampler_->draw_empirical(rng_));
        }
        const Matrix cond = cond_builder_->encode_anchor_only(draws);
        const Matrix z = gan::sample_noise(b, options_.gan.noise_dim, rng_);
        const Matrix fake =
            g_act_->forward(g_trunk_->forward(Matrix::hcat(z, cond), false), false);
        out.append_rows(transformer_.inverse(fake));
        remaining -= b;
    }
    return out;
}

std::vector<double> CondTabularGan::discriminator_scores(const data::Table& table) {
    KINET_CHECK(fitted_, "discriminator_scores before fit");
    const Matrix encoded = transformer_.transform(table, rng_);
    std::vector<data::CondDraw> draws(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        draws[r].row = r;
        draws[r].values.resize(cond_columns_.size());
        for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
            draws[r].values[p] = table.category_at(r, cond_columns_[p]);
        }
        draws[r].anchor_column = 0;
        draws[r].anchor_value = draws[r].values[0];
    }
    const Matrix cond = cond_builder_->encode_anchor_only(draws);
    const Matrix logits = discriminator_->forward(Matrix::hcat(encoded, cond), false);
    std::vector<double> scores(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        scores[r] = 1.0 / (1.0 + std::exp(-static_cast<double>(logits(r, 0))));
    }
    return scores;
}

CtGan::CtGan(std::vector<std::size_t> cond_columns, CondTabularGanOptions options)
    : CondTabularGan("CTGAN", std::move(cond_columns), [&options] {
          options.ode_blocks = false;
          return options;
      }()) {}

OctGan::OctGan(std::vector<std::size_t> cond_columns, CondTabularGanOptions options)
    : CondTabularGan("OCTGAN", std::move(cond_columns), [&options] {
          options.ode_blocks = true;
          return options;
      }()) {}

}  // namespace kinet::baselines
