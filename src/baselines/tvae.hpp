// TVAE baseline (Xu et al., NeurIPS 2019): a variational autoencoder over
// the same mode-specific-normalized representation CTGAN uses.  The ELBO is
// reconstruction (MSE on tanh'd alpha dimensions, cross-entropy on one-hot
// spans) plus the Gaussian KL regulariser; sampling decodes z ~ N(0, I).
#ifndef KINETGAN_BASELINES_TVAE_H
#define KINETGAN_BASELINES_TVAE_H

#include <memory>

#include "src/data/transformer.hpp"
#include "src/gan/synthesizer.hpp"
#include "src/nn/nn.hpp"

namespace kinet::baselines {

struct TvaeOptions {
    std::size_t epochs = 60;
    std::size_t batch_size = 128;
    std::size_t hidden_dim = 128;
    std::size_t latent_dim = 32;
    float lr = 1e-3F;
    float kl_weight = 1.0F;
    float grad_clip = 5.0F;
    std::uint64_t seed = 42;
    data::TransformerOptions transformer;
};

class Tvae : public gan::Synthesizer {
public:
    explicit Tvae(TvaeOptions options = {});

    void fit(const data::Table& table) override;
    [[nodiscard]] data::Table sample(std::size_t n) override;
    [[nodiscard]] std::string name() const override { return "TVAE"; }

private:
    TvaeOptions options_;
    Rng rng_;

    std::vector<data::ColumnMeta> schema_;
    data::TableTransformer transformer_;
    std::unique_ptr<nn::Sequential> encoder_;  // width -> 2 * latent (mu | logvar)
    std::unique_ptr<nn::Sequential> decoder_;  // latent -> width (raw logits/alphas)
    bool fitted_ = false;
};

}  // namespace kinet::baselines

#endif  // KINETGAN_BASELINES_TVAE_H
