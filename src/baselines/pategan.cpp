#include "src/baselines/pategan.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/stopwatch.hpp"

namespace kinet::baselines {

using nn::Matrix;

PateGan::PateGan(PateGanOptions options) : options_(options), rng_(options.gan.seed) {
    KINET_CHECK(options_.teachers >= 2, "PateGan: need at least two teachers");
    KINET_CHECK(options_.laplace_scale > 0.0, "PateGan: laplace scale must be positive");
}

void PateGan::fit(const data::Table& table) {
    Stopwatch watch;
    schema_ = table.schema();
    transformer_.fit(table, options_.transformer, rng_);
    const Matrix encoded = transformer_.transform(table, rng_);
    const std::size_t width = transformer_.output_width();

    const auto& g = options_.gan;
    generator_ = gan::make_generator_trunk(g.noise_dim, g.hidden_dim, g.hidden_layers, width, rng_);
    generator_->emplace<gan::OutputActivation>(transformer_.spans(), g.gumbel_tau, rng_);

    teachers_.clear();
    for (std::size_t t = 0; t < options_.teachers; ++t) {
        teachers_.push_back(gan::make_discriminator(width, g.hidden_dim / 2, 1, 0.0F, rng_));
    }
    student_ = gan::make_discriminator(width, g.hidden_dim, g.hidden_layers, g.dropout, rng_);

    nn::Adam g_opt(generator_->parameters(), g.lr_generator, g.adam_beta1, g.adam_beta2);
    std::vector<std::unique_ptr<nn::Adam>> t_opts;
    for (auto& t : teachers_) {
        t_opts.push_back(std::make_unique<nn::Adam>(t->parameters(), g.lr_discriminator,
                                                    g.adam_beta1, g.adam_beta2));
    }
    nn::Adam s_opt(student_->parameters(), g.lr_discriminator, g.adam_beta1, g.adam_beta2);

    // Disjoint data partitions, one per teacher.
    const auto perm = rng_.permutation(table.rows());
    std::vector<std::vector<std::size_t>> partitions(options_.teachers);
    for (std::size_t i = 0; i < perm.size(); ++i) {
        partitions[i % options_.teachers].push_back(perm[i]);
    }
    for (const auto& part : partitions) {
        KINET_CHECK(!part.empty(), "PateGan: a teacher partition is empty (too few rows)");
    }

    const std::size_t batch = std::min<std::size_t>(g.batch_size, table.rows());
    const std::size_t steps = std::max<std::size_t>(1, table.rows() / batch);
    report_ = gan::FitReport{};

    for (std::size_t epoch = 0; epoch < g.epochs; ++epoch) {
        double g_loss_acc = 0.0;
        double d_loss_acc = 0.0;
        for (std::size_t step = 0; step < steps; ++step) {
            // ---- teacher steps (each on its own partition + fresh fakes) ----
            Matrix z = gan::sample_noise(batch, g.noise_dim, rng_);
            Matrix fake = generator_->forward(z, true);
            for (std::size_t t = 0; t < teachers_.size(); ++t) {
                auto& teacher = *teachers_[t];
                const auto& part = partitions[t];
                std::vector<std::size_t> rows(batch);
                for (auto& r : rows) {
                    r = part[static_cast<std::size_t>(
                        rng_.randint(0, static_cast<std::int64_t>(part.size()) - 1))];
                }
                const Matrix real = encoded.gather_rows(rows);

                teacher.zero_grad();
                Matrix tr = teacher.forward(real, true);
                auto real_loss = nn::bce_with_logits(tr, gan::constant_targets(batch, 1.0F));
                (void)teacher.backward(real_loss.grad);
                Matrix tf = teacher.forward(fake, true);
                auto fake_loss = nn::bce_with_logits(tf, gan::constant_targets(batch, 0.0F));
                (void)teacher.backward(fake_loss.grad);
                nn::clip_grad_norm(teacher.parameters(), g.grad_clip);
                t_opts[t]->step();
                d_loss_acc += (real_loss.value + fake_loss.value) /
                              static_cast<double>(teachers_.size());
            }

            // ---- student step: noisy PATE aggregation of teacher votes ----
            z = gan::sample_noise(batch, g.noise_dim, rng_);
            fake = generator_->forward(z, true);
            Matrix targets(batch, 1);
            {
                std::vector<double> votes(batch, 0.0);
                for (auto& teacher : teachers_) {
                    Matrix logits = teacher->forward(fake, false);
                    for (std::size_t b = 0; b < batch; ++b) {
                        votes[b] += (logits(b, 0) > 0.0F) ? 1.0 : 0.0;
                    }
                }
                for (std::size_t b = 0; b < batch; ++b) {
                    const double n1 = votes[b] + rng_.laplace(0.0, options_.laplace_scale);
                    const double n0 = (static_cast<double>(teachers_.size()) - votes[b]) +
                                      rng_.laplace(0.0, options_.laplace_scale);
                    targets(b, 0) = (n1 > n0) ? 1.0F : 0.0F;
                }
            }
            student_->zero_grad();
            Matrix s_logits = student_->forward(fake, true);
            auto s_loss = nn::bce_with_logits(s_logits, targets);
            (void)student_->backward(s_loss.grad);
            nn::clip_grad_norm(student_->parameters(), g.grad_clip);
            s_opt.step();

            // ---- generator step against the student ----
            generator_->zero_grad();
            z = gan::sample_noise(batch, g.noise_dim, rng_);
            fake = generator_->forward(z, true);
            student_->zero_grad();
            Matrix adv_logits = student_->forward(fake, true);
            auto adv = nn::bce_with_logits(adv_logits, gan::constant_targets(batch, 1.0F));
            Matrix grad_fake = student_->backward(adv.grad);
            student_->zero_grad();
            (void)generator_->backward(grad_fake);
            nn::clip_grad_norm(generator_->parameters(), g.grad_clip);
            g_opt.step();
            g_loss_acc += adv.value;
        }
        report_.generator_loss.push_back(g_loss_acc / static_cast<double>(steps));
        report_.discriminator_loss.push_back(d_loss_acc / static_cast<double>(steps));
    }

    report_.seconds = watch.seconds();
    fitted_ = true;
}

data::Table PateGan::sample(std::size_t n) {
    KINET_CHECK(fitted_, "PateGan::sample before fit");
    data::Table out(schema_);
    const std::size_t batch = options_.gan.batch_size;
    std::size_t remaining = n;
    while (remaining > 0) {
        const std::size_t b = std::min(batch, remaining);
        const Matrix z = gan::sample_noise(b, options_.gan.noise_dim, rng_);
        const Matrix fake = generator_->forward(z, false);
        out.append_rows(transformer_.inverse(fake));
        remaining -= b;
    }
    return out;
}

}  // namespace kinet::baselines
