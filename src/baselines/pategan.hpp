// PATE-GAN baseline (Jordon et al., ICLR 2019).
//
// Differential privacy via the PATE mechanism: k teacher discriminators are
// trained on disjoint partitions of the real data; a student discriminator
// only ever sees generated samples labelled by the Laplace-noised majority
// vote of the teachers; the generator trains against the student.  The
// noise scale (1/epsilon per query) trades privacy for fidelity — which is
// exactly why PATE-GAN trails the non-private models on the distance metrics
// in Table I while doing well on the privacy attacks.
#ifndef KINETGAN_BASELINES_PATEGAN_H
#define KINETGAN_BASELINES_PATEGAN_H

#include <memory>

#include "src/data/transformer.hpp"
#include "src/gan/gan_common.hpp"
#include "src/gan/synthesizer.hpp"
#include "src/nn/nn.hpp"

namespace kinet::baselines {

struct PateGanOptions {
    gan::GanOptions gan;
    data::TransformerOptions transformer;
    std::size_t teachers = 5;
    /// Laplace noise scale added to each teacher vote count (≈ 1/epsilon).
    double laplace_scale = 1.0;
};

class PateGan : public gan::Synthesizer {
public:
    explicit PateGan(PateGanOptions options = {});

    void fit(const data::Table& table) override;
    [[nodiscard]] data::Table sample(std::size_t n) override;
    [[nodiscard]] std::string name() const override { return "PATEGAN"; }

private:
    PateGanOptions options_;
    Rng rng_;

    std::vector<data::ColumnMeta> schema_;
    data::TableTransformer transformer_;
    std::unique_ptr<nn::Sequential> generator_;
    std::vector<std::unique_ptr<nn::Sequential>> teachers_;
    std::unique_ptr<nn::Sequential> student_;
    bool fitted_ = false;
};

}  // namespace kinet::baselines

#endif  // KINETGAN_BASELINES_PATEGAN_H
