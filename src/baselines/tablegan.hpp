// TableGAN baseline (Park et al., VLDB 2018).
//
// Works on a min-max scaled ordinal encoding (no mode-specific normalization,
// no conditioning) with three losses: the usual adversarial loss, an
// information loss matching first/second moments of real vs. generated
// batches, and a classifier-consistency loss tying the generated label column
// to a classifier trained on real records.  The original operates on
// record-as-image CNNs; we use MLPs of matched capacity (documented in
// DESIGN.md) — the distinguishing mechanisms are the encoding and the two
// auxiliary losses, which are preserved.
#ifndef KINETGAN_BASELINES_TABLEGAN_H
#define KINETGAN_BASELINES_TABLEGAN_H

#include <memory>

#include "src/data/transformer.hpp"
#include "src/gan/gan_common.hpp"
#include "src/gan/synthesizer.hpp"
#include "src/nn/nn.hpp"

namespace kinet::baselines {

struct TableGanOptions {
    gan::GanOptions gan;
    float info_weight = 1.0F;
    float class_weight = 1.0F;
    /// Index of the label column (for the classifier-consistency loss).
    std::size_t label_column = 0;
};

class TableGan : public gan::Synthesizer {
public:
    explicit TableGan(TableGanOptions options);

    void fit(const data::Table& table) override;
    [[nodiscard]] data::Table sample(std::size_t n) override;
    [[nodiscard]] std::string name() const override { return "TABLEGAN"; }

    /// Sigmoid(D) per row — white-box membership-inference surface.
    [[nodiscard]] std::vector<double> discriminator_scores(const data::Table& table);

private:
    TableGanOptions options_;
    Rng rng_;

    std::vector<data::ColumnMeta> schema_;
    data::MinMaxTransformer transformer_;
    std::size_t label_classes_ = 0;

    std::unique_ptr<nn::Sequential> generator_;
    std::unique_ptr<nn::Sequential> discriminator_;
    std::unique_ptr<nn::Sequential> classifier_;
    bool fitted_ = false;
};

}  // namespace kinet::baselines

#endif  // KINETGAN_BASELINES_TABLEGAN_H
