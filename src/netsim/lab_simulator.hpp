// Event-driven lab traffic simulator — the substitute for the paper's
// 14,520-record Wireshark capture of a physical IoT testbed (Sec. IV-B1).
//
// The simulator walks a simulated clock; at each step it draws an event type
// from the diurnally-modulated mix, an emitting device permitted by the KG's
// event template, flow magnitudes from the event's traffic profile, and an
// exponential inter-arrival gap.  Attack events arrive in bursts, as real
// floods and scans do.  The emitted schema matches what the paper collects:
// source device, destination, ports, protocols plus flow statistics and the
// NIDS label.
#ifndef KINETGAN_NETSIM_LAB_SIMULATOR_H
#define KINETGAN_NETSIM_LAB_SIMULATOR_H

#include <cstdint>

#include "src/data/table.hpp"

namespace kinet::netsim {

struct LabSimOptions {
    std::size_t records = 14520;  // paper's dataset size
    std::uint64_t seed = 7;
    /// Scales all attack mix weights (1.0 = profile defaults, ~7 % attacks).
    double attack_intensity = 1.0;
    /// Mean number of consecutive records per attack burst.
    double attack_burst_length = 6.0;
    /// Enables the day/night modulation of chatty device events.
    bool diurnal = true;
    /// Fraction of records with deliberately corrupted numeric fields —
    /// 0 for experiments; used by failure-injection tests.
    double corruption_fraction = 0.0;
};

/// The lab table schema (shared by the GANs and the evaluation harness).
/// Columns: src_device, dst_endpoint, protocol, app_protocol, dst_port,
/// event_type, pkt_count, byte_count, duration_ms, iat_ms, label.
[[nodiscard]] std::vector<data::ColumnMeta> lab_schema();

/// Indexes of the conditional attributes used by the GANs
/// (src_device, protocol, app_protocol, dst_port, event_type).
[[nodiscard]] std::vector<std::size_t> lab_conditional_columns();

/// Index of the NIDS target column (label).
[[nodiscard]] std::size_t lab_label_column();

class LabTrafficSimulator {
public:
    explicit LabTrafficSimulator(LabSimOptions options = {});

    /// Generates the full dataset.
    [[nodiscard]] data::Table generate() const;

private:
    LabSimOptions options_;
};

}  // namespace kinet::netsim

#endif  // KINETGAN_NETSIM_LAB_SIMULATOR_H
