// IPv4 / MAC address helpers for the traffic simulators.
#ifndef KINETGAN_NETSIM_ADDRESS_H
#define KINETGAN_NETSIM_ADDRESS_H

#include <cstdint>
#include <string>

#include "src/common/rng.hpp"

namespace kinet::netsim {

/// Dotted-quad string of a host-order IPv4 address.
[[nodiscard]] std::string ipv4_to_string(std::uint32_t addr);

/// Parses dotted-quad; throws kinet::Error on malformed input.
[[nodiscard]] std::uint32_t ipv4_from_string(const std::string& text);

/// Address inside 192.168.1.0/24 with the given host octet.
[[nodiscard]] std::uint32_t lan_address(std::uint8_t host);

/// True if the address is in the simulator's LAN subnet.
[[nodiscard]] bool is_lan(std::uint32_t addr);

/// Random locally-administered MAC ("02:xx:xx:xx:xx:xx").
[[nodiscard]] std::string random_mac(Rng& rng);

}  // namespace kinet::netsim

#endif  // KINETGAN_NETSIM_ADDRESS_H
