// The simulated IoT device fleet (paper Sec. IV-B1: Blink-style camera,
// smart plug, motion sensor, tag manager plus hub/phone, and the attacker).
#ifndef KINETGAN_NETSIM_DEVICE_H
#define KINETGAN_NETSIM_DEVICE_H

#include <string>
#include <vector>

#include "src/common/rng.hpp"

namespace kinet::netsim {

struct Device {
    std::string kind;  // one of kg::lab_devices()
    std::string ip;
    std::string mac;
};

/// Builds one device per lab device kind, with LAN addresses for local
/// devices and an external address for the attacker.
[[nodiscard]] std::vector<Device> build_lab_fleet(Rng& rng);

/// The fleet entry of a given kind; throws kinet::Error if missing.
[[nodiscard]] const Device& device_of_kind(const std::vector<Device>& fleet,
                                           const std::string& kind);

}  // namespace kinet::netsim

#endif  // KINETGAN_NETSIM_DEVICE_H
