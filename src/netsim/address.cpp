#include "src/netsim/address.hpp"

#include <cstdio>

#include "src/common/check.hpp"
#include "src/common/text.hpp"

namespace kinet::netsim {

namespace {
constexpr std::uint32_t kLanBase = (192U << 24) | (168U << 16) | (1U << 8);
constexpr std::uint32_t kLanMask = 0xFFFFFF00U;
}  // namespace

std::string ipv4_to_string(std::uint32_t addr) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xFFU, (addr >> 16) & 0xFFU,
                  (addr >> 8) & 0xFFU, addr & 0xFFU);
    return buf;
}

std::uint32_t ipv4_from_string(const std::string& text) {
    const auto parts = text::split(text, '.');
    KINET_CHECK(parts.size() == 4, "malformed IPv4 address: " + text);
    std::uint32_t addr = 0;
    for (const auto& part : parts) {
        KINET_CHECK(!part.empty(), "malformed IPv4 address: " + text);
        int value = 0;
        for (char c : part) {
            KINET_CHECK(c >= '0' && c <= '9', "malformed IPv4 address: " + text);
            value = value * 10 + (c - '0');
        }
        KINET_CHECK(value <= 255, "IPv4 octet out of range: " + text);
        addr = (addr << 8) | static_cast<std::uint32_t>(value);
    }
    return addr;
}

std::uint32_t lan_address(std::uint8_t host) {
    return kLanBase | host;
}

bool is_lan(std::uint32_t addr) {
    return (addr & kLanMask) == kLanBase;
}

std::string random_mac(Rng& rng) {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "02:%02x:%02x:%02x:%02x:%02x",
                  static_cast<unsigned>(rng.randint(0, 255)),
                  static_cast<unsigned>(rng.randint(0, 255)),
                  static_cast<unsigned>(rng.randint(0, 255)),
                  static_cast<unsigned>(rng.randint(0, 255)),
                  static_cast<unsigned>(rng.randint(0, 255)));
    return buf;
}

}  // namespace kinet::netsim
