// UNSW-NB15-style dataset synthesizer (substitute for Sec. IV-B2).
//
// The real dataset (2.54 M rows, 49 attributes) is not available offline;
// this generator reproduces its *structure*: the 9 attack categories plus
// Normal with their characteristic imbalance, an 18-attribute subset spanning
// the paper's feature groups (flow, basic, content, time), and per-category
// generative profiles whose (proto, service, state) draws respect the
// protocol-consistency rules encoded in the UNSW knowledge graph.
#ifndef KINETGAN_NETSIM_UNSW_SYNTHESIZER_H
#define KINETGAN_NETSIM_UNSW_SYNTHESIZER_H

#include <cstdint>

#include "src/data/table.hpp"

namespace kinet::netsim {

struct UnswOptions {
    std::size_t records = 24000;
    std::uint64_t seed = 11;
    /// Scales attack prevalence (1.0 ≈ the real dataset's ~13 % attacks).
    double attack_intensity = 1.0;
};

/// Schema: proto, service, state, dur, spkts, dpkts, sbytes, dbytes, sttl,
/// dttl, sload, dload, smean, dmean, tcprtt, attack_cat, label.
[[nodiscard]] std::vector<data::ColumnMeta> unsw_schema();

/// Conditional attribute columns for the GANs (proto, service, state,
/// attack_cat).
[[nodiscard]] std::vector<std::size_t> unsw_conditional_columns();

/// Binary NIDS target column (label: normal / attack).
[[nodiscard]] std::size_t unsw_label_column();

class UnswNb15Synthesizer {
public:
    explicit UnswNb15Synthesizer(UnswOptions options = {});
    [[nodiscard]] data::Table generate() const;

private:
    UnswOptions options_;
};

}  // namespace kinet::netsim

#endif  // KINETGAN_NETSIM_UNSW_SYNTHESIZER_H
