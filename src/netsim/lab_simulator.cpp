#include "src/netsim/lab_simulator.hpp"

#include <cmath>
#include <numbers>

#include "src/common/check.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/events.hpp"

namespace kinet::netsim {
namespace {

std::size_t index_of(const std::vector<std::string>& items, const std::string& value) {
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i] == value) {
            return i;
        }
    }
    throw Error("lab simulator: unknown category '" + value + "'");
}

// Chatty interactive events quiet down at night; background chatter doesn't.
double diurnal_factor(const std::string& event_type, double hour_of_day) {
    static const std::vector<std::string> kInteractive = {
        "motion_detected", "video_stream", "lamp_activation", "tag_interaction", "app_control"};
    for (const auto& e : kInteractive) {
        if (e == event_type) {
            // Peak in the evening (hour 20), trough at 4am.
            const double phase = 2.0 * std::numbers::pi * (hour_of_day - 20.0) / 24.0;
            return 0.55 + 0.45 * std::cos(phase);
        }
    }
    return 1.0;
}

}  // namespace

std::vector<data::ColumnMeta> lab_schema() {
    using data::ColumnMeta;
    return {
        ColumnMeta::categorical_column("src_device", kg::lab_devices()),
        ColumnMeta::categorical_column("dst_endpoint", kg::lab_endpoints()),
        ColumnMeta::categorical_column("protocol", kg::lab_protocols()),
        ColumnMeta::categorical_column("app_protocol", kg::lab_app_protocols()),
        ColumnMeta::categorical_column("dst_port", kg::lab_ports()),
        ColumnMeta::categorical_column("event_type", kg::lab_event_types()),
        ColumnMeta::continuous_column("pkt_count"),
        ColumnMeta::continuous_column("byte_count"),
        ColumnMeta::continuous_column("duration_ms"),
        ColumnMeta::continuous_column("iat_ms"),
        ColumnMeta::categorical_column("label", kg::lab_labels()),
    };
}

std::vector<std::size_t> lab_conditional_columns() {
    return {0, 2, 3, 4, 5};  // src_device, protocol, app_protocol, dst_port, event_type
}

std::size_t lab_label_column() {
    return 10;
}

LabTrafficSimulator::LabTrafficSimulator(LabSimOptions options) : options_(options) {
    KINET_CHECK(options_.records > 0, "lab simulator: records must be positive");
    KINET_CHECK(options_.attack_intensity >= 0.0, "lab simulator: bad attack intensity");
    KINET_CHECK(options_.corruption_fraction >= 0.0 && options_.corruption_fraction <= 1.0,
                "lab simulator: corruption fraction must be in [0, 1]");
}

data::Table LabTrafficSimulator::generate() const {
    Rng rng(options_.seed);
    const auto& specs = kg::lab_event_specs();
    const auto schema = lab_schema();
    data::Table table(schema);

    // Pre-resolve category ids for speed.
    const auto& devices = kg::lab_devices();
    const auto& endpoints = kg::lab_endpoints();
    const auto& protocols = kg::lab_protocols();
    const auto& apps = kg::lab_app_protocols();
    const auto& ports = kg::lab_ports();
    const auto& events = kg::lab_event_types();
    const auto& labels = kg::lab_labels();

    struct ResolvedSpec {
        const kg::LabEventSpec* spec = nullptr;
        std::size_t endpoint_id = 0;
        std::size_t protocol_id = 0;
        std::size_t app_id = 0;
        std::size_t port_id = 0;
        std::size_t event_id = 0;
        std::size_t label_id = 0;
        std::vector<std::size_t> device_ids;
        const EventProfile* profile = nullptr;
        bool is_attack = false;
    };
    std::vector<ResolvedSpec> resolved;
    resolved.reserve(specs.size());
    for (const auto& spec : specs) {
        ResolvedSpec r;
        r.spec = &spec;
        r.endpoint_id = index_of(endpoints, spec.dst_endpoint);
        r.protocol_id = index_of(protocols, spec.protocol);
        r.app_id = index_of(apps, spec.app_protocol);
        r.port_id = index_of(ports, spec.dst_port);
        r.event_id = index_of(events, spec.event_type);
        r.label_id = index_of(labels, spec.label);
        for (const auto& d : spec.src_devices) {
            r.device_ids.push_back(index_of(devices, d));
        }
        r.profile = &lab_event_profile(spec.event_type);
        r.is_attack = (spec.label != "benign");
        resolved.push_back(std::move(r));
    }

    double sim_time_ms = 0.0;
    std::vector<double> weights(resolved.size());
    std::size_t burst_remaining = 0;
    std::size_t burst_spec = 0;

    for (std::size_t n = 0; n < options_.records; ++n) {
        const double hour = std::fmod(sim_time_ms / 3.6e6, 24.0);

        std::size_t chosen = 0;
        if (burst_remaining > 0) {
            chosen = burst_spec;
            --burst_remaining;
        } else {
            for (std::size_t i = 0; i < resolved.size(); ++i) {
                double w = resolved[i].profile->mix_weight;
                if (resolved[i].is_attack) {
                    // Each attack draw expands into a burst of records, so
                    // divide by the expected burst length to keep the attack
                    // *record* share at the profile's mix weight.
                    w *= options_.attack_intensity / std::max(1.0, options_.attack_burst_length);
                } else if (options_.diurnal) {
                    w *= diurnal_factor(resolved[i].spec->event_type, hour);
                }
                weights[i] = w;
            }
            chosen = rng.categorical(weights);
            if (resolved[chosen].is_attack) {
                // Attacks arrive in bursts; geometric length with the given mean.
                const double p = 1.0 / std::max(1.0, options_.attack_burst_length);
                burst_spec = chosen;
                burst_remaining = 0;
                while (!rng.bernoulli(p) && burst_remaining < 64) {
                    ++burst_remaining;
                }
            }
        }

        const ResolvedSpec& r = resolved[chosen];
        const auto device_id =
            r.device_ids[static_cast<std::size_t>(rng.randint(0, static_cast<std::int64_t>(r.device_ids.size()) - 1))];
        FlowNumbers numbers = draw_flow_numbers(*r.profile, rng);

        // Inter-arrival: benign background is seconds-scale; bursts are dense.
        double iat_ms = 0.0;
        if (r.is_attack && burst_remaining > 0) {
            iat_ms = rng.exponential(1.0 / 4.0);  // ~4 ms between burst flows
        } else {
            iat_ms = rng.exponential(1.0 / 2500.0);  // ~2.5 s mean gap
        }
        sim_time_ms += iat_ms;

        if (options_.corruption_fraction > 0.0 && rng.bernoulli(options_.corruption_fraction)) {
            // Failure injection: implausible magnitudes (but still finite).
            numbers.bytes *= 1e6;
            numbers.packets = 0.0;
        }

        table.append_row({
            static_cast<float>(device_id),
            static_cast<float>(r.endpoint_id),
            static_cast<float>(r.protocol_id),
            static_cast<float>(r.app_id),
            static_cast<float>(r.port_id),
            static_cast<float>(r.event_id),
            static_cast<float>(numbers.packets),
            static_cast<float>(numbers.bytes),
            static_cast<float>(numbers.duration_ms),
            static_cast<float>(iat_ms),
            static_cast<float>(r.label_id),
        });
    }
    return table;
}

}  // namespace kinet::netsim
