#include "src/netsim/device.hpp"

#include "src/common/check.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/address.hpp"

namespace kinet::netsim {

std::vector<Device> build_lab_fleet(Rng& rng) {
    std::vector<Device> fleet;
    std::uint8_t next_host = 10;
    for (const auto& kind : kg::lab_devices()) {
        Device d;
        d.kind = kind;
        if (kind == "attacker") {
            d.ip = "203.0.113.66";  // TEST-NET-3: clearly external
        } else {
            d.ip = ipv4_to_string(lan_address(next_host++));
        }
        d.mac = random_mac(rng);
        fleet.push_back(std::move(d));
    }
    return fleet;
}

const Device& device_of_kind(const std::vector<Device>& fleet, const std::string& kind) {
    for (const auto& d : fleet) {
        if (d.kind == kind) {
            return d;
        }
    }
    throw Error("no device of kind '" + kind + "' in fleet");
}

}  // namespace kinet::netsim
