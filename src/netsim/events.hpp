// Per-event numeric traffic profiles and the benign/attack event mix.
//
// Packet/byte/duration magnitudes are log-normal (heavy-tailed, as observed
// in real flow captures); each lab event type has its own parameters so that
// e.g. video streams dwarf DNS lookups and floods dwarf everything.
#ifndef KINETGAN_NETSIM_EVENTS_H
#define KINETGAN_NETSIM_EVENTS_H

#include <string>
#include <vector>

#include "src/common/rng.hpp"

namespace kinet::netsim {

/// Log-normal parameters (mu/sigma of the underlying normal).
struct LogNormalParam {
    double mu = 0.0;
    double sigma = 0.5;
};

struct EventProfile {
    LogNormalParam packets;
    LogNormalParam bytes;
    LogNormalParam duration_ms;
    /// Relative frequency in the steady-state event mix.
    double mix_weight = 1.0;
};

/// Profile of a lab event type; throws kinet::Error for unknown events.
[[nodiscard]] const EventProfile& lab_event_profile(const std::string& event_type);

/// Numeric draw helpers.
struct FlowNumbers {
    double packets = 0.0;
    double bytes = 0.0;
    double duration_ms = 0.0;
};
[[nodiscard]] FlowNumbers draw_flow_numbers(const EventProfile& profile, Rng& rng);

}  // namespace kinet::netsim

#endif  // KINETGAN_NETSIM_EVENTS_H
