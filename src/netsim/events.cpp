#include "src/netsim/events.hpp"

#include <cmath>
#include <unordered_map>

#include "src/common/check.hpp"

namespace kinet::netsim {
namespace {

// mu values are log(typical magnitude); sigma controls spread.
const std::unordered_map<std::string, EventProfile>& profiles() {
    static const std::unordered_map<std::string, EventProfile> kProfiles = {
        // event            packets            bytes               duration_ms        weight
        {"dns_query",       {{std::log(2), 0.3},  {std::log(150), 0.3},  {std::log(25), 0.5},   18.0}},
        {"ntp_sync",        {{std::log(2), 0.2},  {std::log(90), 0.1},   {std::log(30), 0.4},    8.0}},
        {"motion_detected", {{std::log(15), 0.5}, {std::log(8000), 0.6}, {std::log(350), 0.5},   7.0}},
        {"video_stream",    {{std::log(1800), 0.7}, {std::log(1.4e6), 0.8}, {std::log(15000), 0.7}, 3.0}},
        {"lamp_activation", {{std::log(6), 0.4},  {std::log(620), 0.4},  {std::log(120), 0.5},   6.0}},
        {"plug_telemetry",  {{std::log(4), 0.3},  {std::log(400), 0.3},  {std::log(80), 0.4},    6.0}},
        {"tag_interaction", {{std::log(10), 0.5}, {std::log(2100), 0.5}, {std::log(200), 0.5},   5.0}},
        {"heartbeat",       {{std::log(4), 0.2},  {std::log(310), 0.2},  {std::log(60), 0.3},   15.0}},
        {"mdns_discovery",  {{std::log(2), 0.4},  {std::log(240), 0.3},  {std::log(15), 0.4},   10.0}},
        {"ssdp_discovery",  {{std::log(3), 0.4},  {std::log(350), 0.3},  {std::log(20), 0.4},    4.0}},
        {"firmware_check",  {{std::log(20), 0.6}, {std::log(30000), 0.9}, {std::log(900), 0.6},  2.0}},
        {"app_control",     {{std::log(12), 0.5}, {std::log(3200), 0.5}, {std::log(250), 0.5},   5.0}},
        {"ping",            {{std::log(2), 0.2},  {std::log(120), 0.1},  {std::log(10), 0.3},    2.0}},
        {"arp_heartbeat",   {{std::log(1), 0.1},  {std::log(60), 0.05},  {std::log(5), 0.2},     2.0}},
        // attacks
        {"flood_attack",    {{std::log(4800), 0.6}, {std::log(5.2e5), 0.6}, {std::log(2200), 0.5}, 3.0}},
        {"port_scan",       {{std::log(220), 0.5}, {std::log(11000), 0.5}, {std::log(4000), 0.5},  1.8}},
        {"brute_force",     {{std::log(60), 0.4},  {std::log(8200), 0.4},  {std::log(6000), 0.5},  1.2}},
        {"rpc_probe",       {{std::log(8), 0.4},   {std::log(1200), 0.4},  {std::log(150), 0.4},   1.0}},
    };
    return kProfiles;
}

}  // namespace

const EventProfile& lab_event_profile(const std::string& event_type) {
    const auto& map = profiles();
    const auto it = map.find(event_type);
    KINET_CHECK(it != map.end(), "no traffic profile for event '" + event_type + "'");
    return it->second;
}

FlowNumbers draw_flow_numbers(const EventProfile& profile, Rng& rng) {
    FlowNumbers out;
    out.packets = std::max(1.0, std::round(rng.lognormal(profile.packets.mu, profile.packets.sigma)));
    out.bytes = std::max(40.0, std::round(rng.lognormal(profile.bytes.mu, profile.bytes.sigma)));
    out.duration_ms = std::max(1.0, rng.lognormal(profile.duration_ms.mu, profile.duration_ms.sigma));
    return out;
}

}  // namespace kinet::netsim
