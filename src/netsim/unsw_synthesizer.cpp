#include "src/netsim/unsw_synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/kg/network_kg.hpp"

namespace kinet::netsim {
namespace {

std::size_t index_of(const std::vector<std::string>& items, const std::string& value) {
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i] == value) {
            return i;
        }
    }
    throw Error("unsw synthesizer: unknown category '" + value + "'");
}

/// Per-category generative profile.  proto_service_state lists weighted
/// (proto, service, state) draws — all KG-valid combinations; numeric fields
/// are log-normal magnitudes characteristic of the category.
struct CategoryProfile {
    double mix_weight = 1.0;
    struct Pss {
        const char* proto;
        const char* service;
        const char* state;
        double weight;
    };
    std::vector<Pss> pss;
    double log_dur_mu, log_dur_sigma;
    double log_sbytes_mu, log_sbytes_sigma;
    double log_dbytes_mu, log_dbytes_sigma;
    double sttl_mean, dttl_mean;
    double rtt_scale;  // tcprtt multiplier (0 for non-TCP-ish categories)
};

const std::vector<std::pair<std::string, CategoryProfile>>& category_profiles() {
    static const std::vector<std::pair<std::string, CategoryProfile>> kProfiles = {
        {"Normal",
         {87.0,
          {{"tcp", "http", "FIN", 28}, {"tcp", "smtp", "FIN", 8}, {"tcp", "ftp", "FIN", 6},
           {"tcp", "ssh", "FIN", 5},  {"udp", "dns", "CON", 30}, {"udp", "snmp", "CON", 4},
           {"tcp", "-", "FIN", 10},   {"udp", "-", "CON", 6},    {"arp", "-", "INT", 2},
           {"icmp", "-", "ECO", 1}},
          std::log(0.8), 1.2, std::log(3200), 1.3, std::log(9200), 1.5, 62, 252, 1.0}},
        {"Generic",
         {5.8,
          {{"udp", "dns", "CON", 70}, {"udp", "dns", "INT", 20}, {"udp", "-", "INT", 10}},
          std::log(0.02), 0.9, std::log(430), 0.5, std::log(170), 0.8, 254, 0, 0.0}},
        {"Exploits",
         {3.3,
          {{"tcp", "http", "FIN", 40}, {"tcp", "ftp", "RST", 15}, {"tcp", "-", "FIN", 30},
           {"tcp", "smtp", "RST", 15}},
          std::log(1.5), 1.1, std::log(5200), 1.2, std::log(2800), 1.4, 254, 252, 1.4}},
        {"Fuzzers",
         {1.8,
          {{"tcp", "-", "REQ", 35}, {"udp", "-", "INT", 35}, {"tcp", "http", "REQ", 20},
           {"udp", "dns", "REQ", 10}},
          std::log(2.2), 1.0, std::log(4100), 1.1, std::log(900), 1.2, 254, 252, 0.8}},
        {"DoS",
         {1.2,
          {{"tcp", "http", "REQ", 55}, {"tcp", "-", "RST", 30}, {"udp", "-", "INT", 15}},
          std::log(0.9), 1.0, std::log(21000), 1.0, std::log(260), 0.9, 254, 60, 0.6}},
        {"Reconnaissance",
         {1.0,
          {{"tcp", "-", "REQ", 40}, {"icmp", "-", "ECO", 25}, {"udp", "-", "INT", 20},
           {"tcp", "http", "REQ", 15}},
          std::log(0.15), 0.8, std::log(310), 0.6, std::log(120), 0.8, 254, 60, 0.3}},
        {"Analysis",
         {0.25,
          {{"tcp", "http", "REQ", 50}, {"tcp", "-", "CON", 50}},
          std::log(0.4), 0.9, std::log(720), 0.8, std::log(280), 0.9, 254, 60, 0.4}},
        {"Backdoors",
         {0.2,
          {{"tcp", "-", "CON", 60}, {"udp", "-", "CON", 40}},
          std::log(1.1), 0.9, std::log(1600), 0.9, std::log(1900), 1.0, 254, 252, 0.9}},
        {"Shellcode",
         {0.12,
          {{"tcp", "-", "FIN", 55}, {"udp", "-", "CON", 45}},
          std::log(0.5), 0.8, std::log(1350), 0.6, std::log(480), 0.8, 254, 252, 0.7}},
        {"Worms",
         {0.05,
          {{"tcp", "http", "FIN", 60}, {"tcp", "smtp", "FIN", 40}},
          std::log(0.9), 0.7, std::log(2900), 0.7, std::log(1400), 0.9, 254, 252, 1.0}},
    };
    return kProfiles;
}

}  // namespace

std::vector<data::ColumnMeta> unsw_schema() {
    using data::ColumnMeta;
    return {
        ColumnMeta::categorical_column("proto", kg::unsw_protocols()),
        ColumnMeta::categorical_column("service", kg::unsw_services()),
        ColumnMeta::categorical_column("state", kg::unsw_states()),
        ColumnMeta::continuous_column("dur"),
        ColumnMeta::continuous_column("spkts"),
        ColumnMeta::continuous_column("dpkts"),
        ColumnMeta::continuous_column("sbytes"),
        ColumnMeta::continuous_column("dbytes"),
        ColumnMeta::continuous_column("sttl"),
        ColumnMeta::continuous_column("dttl"),
        ColumnMeta::continuous_column("sload"),
        ColumnMeta::continuous_column("dload"),
        ColumnMeta::continuous_column("smean"),
        ColumnMeta::continuous_column("dmean"),
        ColumnMeta::continuous_column("tcprtt"),
        ColumnMeta::categorical_column("attack_cat", kg::unsw_attack_categories()),
        ColumnMeta::categorical_column("label", {"normal", "attack"}),
    };
}

std::vector<std::size_t> unsw_conditional_columns() {
    return {0, 1, 2, 15};  // proto, service, state, attack_cat
}

std::size_t unsw_label_column() {
    return 16;
}

UnswNb15Synthesizer::UnswNb15Synthesizer(UnswOptions options) : options_(options) {
    KINET_CHECK(options_.records > 0, "unsw synthesizer: records must be positive");
    KINET_CHECK(options_.attack_intensity >= 0.0, "unsw synthesizer: bad attack intensity");
}

data::Table UnswNb15Synthesizer::generate() const {
    Rng rng(options_.seed);
    data::Table table(unsw_schema());

    const auto& protos = kg::unsw_protocols();
    const auto& services = kg::unsw_services();
    const auto& states = kg::unsw_states();
    const auto& cats = kg::unsw_attack_categories();

    const auto& profiles = category_profiles();
    std::vector<double> cat_weights;
    cat_weights.reserve(profiles.size());
    for (const auto& [name, prof] : profiles) {
        double w = prof.mix_weight;
        if (name != "Normal") {
            w *= options_.attack_intensity;
        }
        cat_weights.push_back(w);
    }

    for (std::size_t n = 0; n < options_.records; ++n) {
        const std::size_t ci = rng.categorical(cat_weights);
        const auto& [cat_name, prof] = profiles[ci];

        std::vector<double> pss_weights;
        pss_weights.reserve(prof.pss.size());
        for (const auto& p : prof.pss) {
            pss_weights.push_back(p.weight);
        }
        const auto& pss = prof.pss[rng.categorical(pss_weights)];

        const double dur = rng.lognormal(prof.log_dur_mu, prof.log_dur_sigma);
        const double sbytes = std::max(46.0, rng.lognormal(prof.log_sbytes_mu, prof.log_sbytes_sigma));
        const double dbytes = (prof.log_dbytes_mu > 0.0)
                                  ? std::max(0.0, rng.lognormal(prof.log_dbytes_mu, prof.log_dbytes_sigma))
                                  : 0.0;
        const double smean = std::clamp(rng.normal(560.0, 180.0), 46.0, 1500.0);
        const double dmean = std::clamp(rng.normal(640.0, 220.0), 0.0, 1500.0);
        const double spkts = std::max(1.0, std::round(sbytes / smean) + rng.randint(0, 3));
        const double dpkts = (dbytes > 0.0)
                                 ? std::max(0.0, std::round(dbytes / std::max(dmean, 46.0)) +
                                                     rng.randint(0, 3))
                                 : 0.0;
        const double safe_dur = std::max(dur, 1e-3);
        const double sload = 8.0 * sbytes / safe_dur;
        const double dload = 8.0 * dbytes / safe_dur;
        const double sttl = std::clamp(rng.normal(prof.sttl_mean, 4.0), 1.0, 255.0);
        const double dttl = (prof.dttl_mean > 0.0)
                                ? std::clamp(rng.normal(prof.dttl_mean, 4.0), 0.0, 255.0)
                                : 0.0;
        const double tcprtt =
            (std::string(pss.proto) == "tcp") ? prof.rtt_scale * rng.lognormal(std::log(0.08), 0.7)
                                              : 0.0;

        const bool is_attack = (cat_name != "Normal");
        table.append_row({
            static_cast<float>(index_of(protos, pss.proto)),
            static_cast<float>(index_of(services, pss.service)),
            static_cast<float>(index_of(states, pss.state)),
            static_cast<float>(dur),
            static_cast<float>(spkts),
            static_cast<float>(dpkts),
            static_cast<float>(sbytes),
            static_cast<float>(dbytes),
            static_cast<float>(sttl),
            static_cast<float>(dttl),
            static_cast<float>(sload),
            static_cast<float>(dload),
            static_cast<float>(smean),
            static_cast<float>(dmean),
            static_cast<float>(tcprtt),
            static_cast<float>(index_of(cats, cat_name)),
            static_cast<float>(is_attack ? 1 : 0),
        });
    }
    return table;
}

}  // namespace kinet::netsim
