// Inverted dropout: active only in training mode.
#ifndef KINETGAN_NN_DROPOUT_H
#define KINETGAN_NN_DROPOUT_H

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"

namespace kinet::nn {

class Dropout : public Module {
public:
    /// Drops activations with probability `p`; scales survivors by 1/(1-p).
    Dropout(float p, Rng& rng);

    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    /// Identity in eval mode; containers skip it entirely via
    /// inference_identity(), this copy only serves direct calls.
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;
    [[nodiscard]] bool inference_identity() const override { return true; }

private:
    float p_;
    Rng* rng_;  // non-owning; the owning model outlives its layers
    Matrix mask_;
    bool used_mask_ = false;
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_DROPOUT_H
