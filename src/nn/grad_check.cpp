#include "src/nn/grad_check.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace kinet::nn {
namespace {

double probe_loss(Module& module, const Matrix& input, const Matrix& probe, bool training) {
    const Matrix out = module.forward(input, training);
    KINET_CHECK(out.rows() == probe.rows() && out.cols() == probe.cols(),
                "grad check: probe shape mismatch");
    double acc = 0.0;
    const auto od = out.data();
    const auto pd = probe.data();
    for (std::size_t i = 0; i < od.size(); ++i) {
        acc += static_cast<double>(od[i]) * static_cast<double>(pd[i]);
    }
    return acc;
}

double relative_error(double analytic, double numeric) {
    // The 1e-3 floor treats gradients below float32 finite-difference noise
    // (outputs are float, the probe loss differences are ~1e-7-scale) as
    // matching when both sides are tiny.
    const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-3});
    return std::abs(analytic - numeric) / denom;
}

}  // namespace

GradCheckResult check_gradients(Module& module, const Matrix& input, Rng& rng, bool training,
                                float epsilon) {
    // Probe weights make the scalar loss sensitive to every output entry.
    Matrix first_out = module.forward(input, training);
    Matrix probe(first_out.rows(), first_out.cols());
    for (auto& v : probe.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }

    // Analytic gradients.
    module.zero_grad();
    (void)module.forward(input, training);
    const Matrix analytic_dinput = module.backward(probe);

    std::vector<Matrix> analytic_dparams;
    const auto params = module.parameters();
    analytic_dparams.reserve(params.size());
    for (const Parameter* p : params) {
        analytic_dparams.push_back(p->grad);
    }

    GradCheckResult result;

    // dL/dinput via central differences.
    Matrix x = input;
    for (std::size_t i = 0; i < x.data().size(); ++i) {
        const float saved = x.data()[i];
        x.data()[i] = saved + epsilon;
        const double lp = probe_loss(module, x, probe, training);
        x.data()[i] = saved - epsilon;
        const double lm = probe_loss(module, x, probe, training);
        x.data()[i] = saved;
        const double numeric = (lp - lm) / (2.0 * static_cast<double>(epsilon));
        result.max_input_error =
            std::max(result.max_input_error,
                     relative_error(static_cast<double>(analytic_dinput.data()[i]), numeric));
    }

    // dL/dparams via central differences.
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
        Parameter& p = *params[pi];
        for (std::size_t i = 0; i < p.value.data().size(); ++i) {
            const float saved = p.value.data()[i];
            p.value.data()[i] = saved + epsilon;
            const double lp = probe_loss(module, input, probe, training);
            p.value.data()[i] = saved - epsilon;
            const double lm = probe_loss(module, input, probe, training);
            p.value.data()[i] = saved;
            const double numeric = (lp - lm) / (2.0 * static_cast<double>(epsilon));
            result.max_param_error = std::max(
                result.max_param_error,
                relative_error(static_cast<double>(analytic_dparams[pi].data()[i]), numeric));
        }
    }
    return result;
}

}  // namespace kinet::nn
