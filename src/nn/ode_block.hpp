// Neural-ODE block used by the OCT-GAN baseline (Kim et al., WWW 2021).
//
// Integrates dx/dt = f(x) with an unrolled fixed-step Euler scheme,
// weight-tying f across steps.  Backward uses recompute-in-backward
// (checkpointing): each step's input is cached during forward, and f's
// activations are regenerated step-by-step in reverse order.  This keeps
// memory O(steps · batch) instead of storing every inner activation, and is
// exact for deterministic f (dropout inside f is therefore rejected by
// construction — callers build f from Linear/activation/BatchNorm layers).
#ifndef KINETGAN_NN_ODE_BLOCK_H
#define KINETGAN_NN_ODE_BLOCK_H

#include <memory>
#include <vector>

#include "src/nn/sequential.hpp"

namespace kinet::nn {

class OdeBlock : public Module {
public:
    /// f: the vector field (must preserve width); steps: Euler steps over
    /// t ∈ [0, 1], so the step size is 1/steps.
    OdeBlock(std::unique_ptr<Sequential> f, std::size_t steps);

    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;

    [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

private:
    std::unique_ptr<Sequential> f_;
    std::size_t steps_;
    float h_;
    bool training_forward_ = false;
    std::vector<Matrix> step_inputs_;  // x_0 … x_{T-1}
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_ODE_BLOCK_H
