// Weight initialisation schemes.
#ifndef KINETGAN_NN_INIT_H
#define KINETGAN_NN_INIT_H

#include "src/common/rng.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::nn {

/// Glorot/Xavier uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(tensor::Matrix& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)) — for ReLU-family layers.
void kaiming_normal(tensor::Matrix& w, std::size_t fan_in, Rng& rng);

/// N(0, stddev).
void normal_init(tensor::Matrix& w, float stddev, Rng& rng);

}  // namespace kinet::nn

#endif  // KINETGAN_NN_INIT_H
