#include "src/nn/sequential.hpp"

#include "src/common/check.hpp"

namespace kinet::nn {

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
    KINET_CHECK(layer != nullptr, "Sequential::add: null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Matrix Sequential::forward(const Matrix& input, bool training) {
    Matrix x = input;
    for (auto& layer : layers_) {
        x = layer->forward(x, training);
    }
    return x;
}

Matrix Sequential::backward(const Matrix& grad_out) {
    Matrix g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
    for (auto& layer : layers_) {
        layer->collect_parameters(out);
    }
}

}  // namespace kinet::nn
