#include "src/nn/sequential.hpp"

#include "src/common/check.hpp"

namespace kinet::nn {

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
    KINET_CHECK(layer != nullptr, "Sequential::add: null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Matrix Sequential::forward(const Matrix& input, bool training) {
    Matrix x = input;
    for (auto& layer : layers_) {
        x = layer->forward(x, training);
    }
    return x;
}

Matrix Sequential::backward(const Matrix& grad_out) {
    Matrix g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
    for (auto& layer : layers_) {
        layer->collect_parameters(out);
    }
}

void Sequential::save_state(bytes::Writer& out) {
    out.u64(layers_.size());
    for (auto& layer : layers_) {
        layer->save_state(out);
    }
}

void Sequential::load_state(bytes::Reader& in) {
    const auto count = static_cast<std::size_t>(in.u64());
    KINET_CHECK(count == layers_.size(),
                "Sequential::load_state: layer count mismatch (snapshot has " +
                    std::to_string(count) + ", network has " + std::to_string(layers_.size()) +
                    ")");
    for (auto& layer : layers_) {
        layer->load_state(in);
    }
}

}  // namespace kinet::nn
