#include "src/nn/sequential.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace kinet::nn {

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
    KINET_CHECK(layer != nullptr, "Sequential::add: null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Matrix Sequential::forward(const Matrix& input, bool training) {
    Matrix x = input;
    for (auto& layer : layers_) {
        x = layer->forward(x, training);
    }
    return x;
}

void Sequential::forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const {
    // Identity layers (Dropout in eval mode) are skipped, so the chain is
    // the non-identity layers only; find the last one so it can write
    // directly into the caller's buffer.
    std::size_t last = layers_.size();
    for (std::size_t i = layers_.size(); i > 0; --i) {
        if (!layers_[i - 1]->inference_identity()) {
            last = i - 1;
            break;
        }
    }
    if (last == layers_.size()) {  // all-identity (or empty) container
        out.resize_for_overwrite(input.rows(), input.cols());
        const auto x = input.data();
        std::copy(x.begin(), x.end(), out.data().begin());
        return;
    }
    const Matrix* cur = &input;
    bool use_ping = true;
    for (std::size_t i = 0; i <= last; ++i) {
        const Module& layer = *layers_[i];
        if (layer.inference_identity()) {
            continue;
        }
        Matrix* target = (i == last) ? &out : (use_ping ? &ctx.ping : &ctx.pong);
        layer.forward_inference(*cur, *target, ctx);
        cur = target;
        use_ping = !use_ping;
    }
}

Matrix Sequential::backward(const Matrix& grad_out) {
    Matrix g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
    for (auto& layer : layers_) {
        layer->collect_parameters(out);
    }
}

void Sequential::save_state(bytes::Writer& out) {
    out.u64(layers_.size());
    for (auto& layer : layers_) {
        layer->save_state(out);
    }
}

void Sequential::load_state(bytes::Reader& in) {
    const auto count = static_cast<std::size_t>(in.u64());
    KINET_CHECK(count == layers_.size(),
                "Sequential::load_state: layer count mismatch (snapshot has " +
                    std::to_string(count) + ", network has " + std::to_string(layers_.size()) +
                    ")");
    for (auto& layer : layers_) {
        layer->load_state(in);
    }
}

}  // namespace kinet::nn
