#include "src/nn/linear.hpp"

#include "src/common/check.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/ops.hpp"

namespace kinet::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Matrix(in_features, out_features), name + ".weight"),
      bias_(Matrix(1, out_features), name + ".bias") {
    KINET_CHECK(in_features > 0 && out_features > 0, "Linear: features must be positive");
    xavier_uniform(weight_.value, in_features, out_features, rng);
}

Matrix Linear::forward(const Matrix& input, bool /*training*/) {
    KINET_CHECK(input.cols() == in_features_, "Linear: input width mismatch");
    cached_input_ = input;
    // Bias is fused into the GEMM epilogue: no broadcast temporary, and
    // each element still sees bias added after its full k accumulation, so
    // the result is bit-identical to matmul + add_row_broadcast.
    return tensor::matmul_bias(input, weight_.value, bias_.value);
}

Matrix Linear::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_input_.rows() && grad_out.cols() == out_features_,
                "Linear: grad shape mismatch");
    // The optimizer step that follows will rewrite the weights; any packed
    // inference copy is stale from here on.
    invalidate_packed();
    weight_.grad += tensor::matmul_tn(cached_input_, grad_out);
    bias_.grad += tensor::col_sum(grad_out);
    return tensor::matmul_nt(grad_out, weight_.value);
}

// Justified KINET_NO_THREAD_SAFETY_ANALYSIS site: the fast-path read of
// packed_weight_ is deliberately outside pack_mu_.  Safety argument: the
// pack is written only under pack_mu_ and published by the release store to
// packed_ready_; every reader acquires packed_ready_ first, so it observes
// the completed pack (release/acquire pairing).  Invalidation never runs
// concurrently with forward_inference — training and serving on one
// instance are mutually exclusive by contract (enforced by the server:
// fitted models in the registry are only ever sampled).
const tensor::PackedGemmB& Linear::packed_for_inference() const {
    if (!packed_ready_.load(std::memory_order_acquire)) {
        const MutexLock lock(pack_mu_);
        if (!packed_ready_.load(std::memory_order_relaxed)) {
            packed_weight_ = tensor::pack_gemm_b(weight_.value);
            packed_ready_.store(true, std::memory_order_release);
        }
    }
    return packed_weight_;
}

void Linear::forward_inference(const Matrix& input, Matrix& out, InferenceContext& /*ctx*/) const {
    KINET_CHECK(input.cols() == in_features_, "Linear: input width mismatch");
    // Same engine, same blocking, same per-element accumulation as the
    // training path's matmul_bias — only the per-call weight packing is
    // gone — so the output is bit-identical to forward(input, false).
    tensor::matmul_packed_bias_into(input, packed_for_inference(), bias_.value, out);
}

void Linear::invalidate_packed() {
    const MutexLock lock(pack_mu_);
    packed_weight_.clear();
    packed_ready_.store(false, std::memory_order_release);
}

void Linear::load_state(bytes::Reader& in) {
    Module::load_state(in);
    invalidate_packed();
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&weight_);
    out.push_back(&bias_);
}

}  // namespace kinet::nn
