// Ordered container of layers — the standard network-building block.
#ifndef KINETGAN_NN_SEQUENTIAL_H
#define KINETGAN_NN_SEQUENTIAL_H

#include <memory>
#include <vector>

#include "src/nn/module.hpp"

namespace kinet::nn {

class Sequential : public Module {
public:
    Sequential() = default;

    /// Appends a layer; returns *this for chaining.
    Sequential& add(std::unique_ptr<Module> layer);

    /// Convenience: constructs the layer in place.
    template <typename LayerT, typename... Args>
    Sequential& emplace(Args&&... args) {
        return add(std::make_unique<LayerT>(std::forward<Args>(args)...));
    }

    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    /// Chains the layers' inference paths through the context's two
    /// ping-pong buffers (identity layers are skipped outright); the last
    /// layer writes straight into `out`.  Const, thread-safe per context,
    /// allocation-free once the context is warm.
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    void save_state(bytes::Writer& out) override;
    void load_state(bytes::Reader& in) override;

    [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }

private:
    std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_SEQUENTIAL_H
