#include "src/nn/losses.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::nn {

LossResult bce_with_logits(const Matrix& logits, const Matrix& targets) {
    KINET_CHECK(logits.rows() == targets.rows() && logits.cols() == targets.cols(),
                "bce_with_logits: shape mismatch");
    KINET_CHECK(logits.size() > 0, "bce_with_logits: empty input");
    LossResult res;
    res.grad.resize_for_overwrite(logits.rows(), logits.cols());
    const auto z = logits.data();
    const auto t = targets.data();
    auto g = res.grad.data();
    const double inv_n = 1.0 / static_cast<double>(logits.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i) {
        // log(1 + e^{-|z|}) + max(z, 0) - z*t  (stable form)
        const double zi = z[i];
        const double ti = t[i];
        acc += std::log1p(std::exp(-std::abs(zi))) + std::max(zi, 0.0) - zi * ti;
        const double sigma = 1.0 / (1.0 + std::exp(-zi));
        g[i] = static_cast<float>((sigma - ti) * inv_n);
    }
    res.value = acc * inv_n;
    return res;
}

LossResult mse(const Matrix& prediction, const Matrix& target) {
    KINET_CHECK(prediction.rows() == target.rows() && prediction.cols() == target.cols(),
                "mse: shape mismatch");
    KINET_CHECK(prediction.size() > 0, "mse: empty input");
    LossResult res;
    res.grad.resize_for_overwrite(prediction.rows(), prediction.cols());
    const auto p = prediction.data();
    const auto t = target.data();
    auto g = res.grad.data();
    const double inv_n = 1.0 / static_cast<double>(prediction.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        const double d = static_cast<double>(p[i]) - static_cast<double>(t[i]);
        acc += d * d;
        g[i] = static_cast<float>(2.0 * d * inv_n);
    }
    res.value = acc * inv_n;
    return res;
}

LossResult softmax_cross_entropy(const Matrix& logits, std::span<const std::size_t> labels) {
    KINET_CHECK(logits.rows() == labels.size(), "softmax_cross_entropy: batch mismatch");
    KINET_CHECK(logits.cols() > 0, "softmax_cross_entropy: no classes");
    LossResult res;
    res.grad.resize_for_overwrite(logits.rows(), logits.cols());
    const double inv_b = 1.0 / static_cast<double>(logits.rows());
    double acc = 0.0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        KINET_CHECK(labels[r] < logits.cols(), "softmax_cross_entropy: label out of range");
        const auto row = logits.row(r);
        double mx = row[0];
        for (float v : row) {
            mx = std::max(mx, static_cast<double>(v));
        }
        double denom = 0.0;
        for (float v : row) {
            denom += std::exp(static_cast<double>(v) - mx);
        }
        const double log_denom = std::log(denom) + mx;
        acc += log_denom - static_cast<double>(row[labels[r]]);
        auto grow = res.grad.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) {
            const double p = std::exp(static_cast<double>(row[c]) - log_denom);
            grow[c] = static_cast<float>((p - ((c == labels[r]) ? 1.0 : 0.0)) * inv_b);
        }
    }
    res.value = acc * inv_b;
    return res;
}

GaussianKlResult gaussian_kl(const Matrix& mu, const Matrix& logvar) {
    KINET_CHECK(mu.rows() == logvar.rows() && mu.cols() == logvar.cols(),
                "gaussian_kl: shape mismatch");
    KINET_CHECK(mu.rows() > 0, "gaussian_kl: empty input");
    GaussianKlResult res;
    res.grad_mu.resize_for_overwrite(mu.rows(), mu.cols());
    res.grad_logvar.resize_for_overwrite(mu.rows(), mu.cols());
    const double inv_b = 1.0 / static_cast<double>(mu.rows());
    double acc = 0.0;
    const auto m = mu.data();
    const auto lv = logvar.data();
    auto gm = res.grad_mu.data();
    auto gl = res.grad_logvar.data();
    for (std::size_t i = 0; i < m.size(); ++i) {
        const double mi = m[i];
        const double li = lv[i];
        const double vi = std::exp(li);
        acc += -0.5 * (1.0 + li - mi * mi - vi);
        gm[i] = static_cast<float>(mi * inv_b);
        gl[i] = static_cast<float>(-0.5 * (1.0 - vi) * inv_b);
    }
    res.value = acc * inv_b;
    return res;
}

}  // namespace kinet::nn
