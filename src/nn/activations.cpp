#include "src/nn/activations.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::nn {

Matrix ReLU::forward(const Matrix& input, bool /*training*/) {
    cached_input_ = input;
    Matrix out = input;
    for (auto& v : out.data()) {
        v = (v > 0.0F) ? v : 0.0F;
    }
    return out;
}

Matrix ReLU::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_input_.rows() && grad_out.cols() == cached_input_.cols(),
                "ReLU: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto x = cached_input_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        if (x[i] <= 0.0F) {
            gi[i] = 0.0F;
        }
    }
    return grad_in;
}

Matrix LeakyReLU::forward(const Matrix& input, bool /*training*/) {
    cached_input_ = input;
    Matrix out = input;
    for (auto& v : out.data()) {
        v = (v > 0.0F) ? v : slope_ * v;
    }
    return out;
}

Matrix LeakyReLU::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_input_.rows() && grad_out.cols() == cached_input_.cols(),
                "LeakyReLU: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto x = cached_input_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        if (x[i] <= 0.0F) {
            gi[i] *= slope_;
        }
    }
    return grad_in;
}

Matrix Tanh::forward(const Matrix& input, bool /*training*/) {
    Matrix out = input;
    for (auto& v : out.data()) {
        v = std::tanh(v);
    }
    cached_output_ = out;
    return out;
}

Matrix Tanh::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_output_.rows() && grad_out.cols() == cached_output_.cols(),
                "Tanh: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto y = cached_output_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        gi[i] *= 1.0F - y[i] * y[i];
    }
    return grad_in;
}

Matrix Sigmoid::forward(const Matrix& input, bool /*training*/) {
    Matrix out = input;
    for (auto& v : out.data()) {
        v = 1.0F / (1.0F + std::exp(-v));
    }
    cached_output_ = out;
    return out;
}

Matrix Sigmoid::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_output_.rows() && grad_out.cols() == cached_output_.cols(),
                "Sigmoid: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto y = cached_output_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        gi[i] *= y[i] * (1.0F - y[i]);
    }
    return grad_in;
}

}  // namespace kinet::nn
