#include "src/nn/activations.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::nn {

// All four activations compute into a member buffer that is reused across
// steps (resize_for_overwrite never reallocates once warm), so a forward
// pass costs one allocation-free sweep plus the returned copy.  ReLU and
// LeakyReLU recover their backward mask from the cached *output* — for
// ReLU, out > 0 iff in > 0, and for LeakyReLU (slope > 0), out <= 0 iff
// in <= 0 — which drops the separate cached-input copy the seed kept.
//
// The forward_inference variants run the identical elementwise sweep into
// the caller's buffer instead — no member writes, so one module serves
// concurrent inference callers.

namespace {

template <typename Fn>
void elementwise_into(const Matrix& input, Matrix& out, Fn&& fn) {
    out.resize_for_overwrite(input.rows(), input.cols());
    const auto x = input.data();
    auto y = out.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = fn(x[i]);
    }
}

}  // namespace

Matrix ReLU::forward(const Matrix& input, bool /*training*/) {
    cached_output_.resize_for_overwrite(input.rows(), input.cols());
    const auto x = input.data();
    auto y = cached_output_.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = (x[i] > 0.0F) ? x[i] : 0.0F;
    }
    return cached_output_;
}

void ReLU::forward_inference(const Matrix& input, Matrix& out, InferenceContext& /*ctx*/) const {
    elementwise_into(input, out, [](float v) { return (v > 0.0F) ? v : 0.0F; });
}

Matrix ReLU::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_output_.rows() &&
                    grad_out.cols() == cached_output_.cols(),
                "ReLU: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto y = cached_output_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        if (!(y[i] > 0.0F)) {
            gi[i] = 0.0F;
        }
    }
    return grad_in;
}

Matrix LeakyReLU::forward(const Matrix& input, bool /*training*/) {
    cached_output_.resize_for_overwrite(input.rows(), input.cols());
    const auto x = input.data();
    auto y = cached_output_.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = (x[i] > 0.0F) ? x[i] : slope_ * x[i];
    }
    return cached_output_;
}

void LeakyReLU::forward_inference(const Matrix& input, Matrix& out,
                                  InferenceContext& /*ctx*/) const {
    const float slope = slope_;
    elementwise_into(input, out, [slope](float v) { return (v > 0.0F) ? v : slope * v; });
}

Matrix LeakyReLU::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_output_.rows() &&
                    grad_out.cols() == cached_output_.cols(),
                "LeakyReLU: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto y = cached_output_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        if (y[i] <= 0.0F) {
            gi[i] *= slope_;
        }
    }
    return grad_in;
}

Matrix Tanh::forward(const Matrix& input, bool /*training*/) {
    cached_output_.resize_for_overwrite(input.rows(), input.cols());
    const auto x = input.data();
    auto y = cached_output_.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = std::tanh(x[i]);
    }
    return cached_output_;
}

void Tanh::forward_inference(const Matrix& input, Matrix& out, InferenceContext& /*ctx*/) const {
    elementwise_into(input, out, [](float v) { return std::tanh(v); });
}

Matrix Tanh::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_output_.rows() && grad_out.cols() == cached_output_.cols(),
                "Tanh: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto y = cached_output_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        gi[i] *= 1.0F - y[i] * y[i];
    }
    return grad_in;
}

Matrix Sigmoid::forward(const Matrix& input, bool /*training*/) {
    cached_output_.resize_for_overwrite(input.rows(), input.cols());
    const auto x = input.data();
    auto y = cached_output_.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = 1.0F / (1.0F + std::exp(-x[i]));
    }
    return cached_output_;
}

void Sigmoid::forward_inference(const Matrix& input, Matrix& out,
                                InferenceContext& /*ctx*/) const {
    elementwise_into(input, out, [](float v) { return 1.0F / (1.0F + std::exp(-v)); });
}

Matrix Sigmoid::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == cached_output_.rows() && grad_out.cols() == cached_output_.cols(),
                "Sigmoid: grad shape mismatch");
    Matrix grad_in = grad_out;
    auto gi = grad_in.data();
    const auto y = cached_output_.data();
    for (std::size_t i = 0; i < gi.size(); ++i) {
        gi[i] *= y[i] * (1.0F - y[i]);
    }
    return grad_in;
}

}  // namespace kinet::nn
