#include "src/nn/ode_block.hpp"

#include "src/common/check.hpp"

namespace kinet::nn {

OdeBlock::OdeBlock(std::unique_ptr<Sequential> f, std::size_t steps)
    : f_(std::move(f)), steps_(steps), h_(1.0F / static_cast<float>(steps)) {
    KINET_CHECK(f_ != nullptr, "OdeBlock: null vector field");
    KINET_CHECK(steps > 0, "OdeBlock: steps must be positive");
}

Matrix OdeBlock::forward(const Matrix& input, bool training) {
    training_forward_ = training;
    step_inputs_.clear();
    step_inputs_.reserve(steps_);
    Matrix x = input;
    for (std::size_t t = 0; t < steps_; ++t) {
        step_inputs_.push_back(x);
        Matrix fx = f_->forward(x, training);
        KINET_CHECK(fx.rows() == x.rows() && fx.cols() == x.cols(),
                    "OdeBlock: f must preserve shape");
        fx *= h_;
        x += fx;
    }
    return x;
}

Matrix OdeBlock::backward(const Matrix& grad_out) {
    KINET_CHECK(step_inputs_.size() == steps_, "OdeBlock: backward before forward");
    Matrix grad = grad_out;
    for (std::size_t t = steps_; t-- > 0;) {
        // Regenerate f's caches for step t, then pull the adjoint through it.
        (void)f_->forward(step_inputs_[t], training_forward_);
        Matrix scaled = grad;
        scaled *= h_;
        Matrix grad_f_in = f_->backward(scaled);
        grad += grad_f_in;
    }
    return grad;
}

void OdeBlock::collect_parameters(std::vector<Parameter*>& out) {
    f_->collect_parameters(out);
}

}  // namespace kinet::nn
