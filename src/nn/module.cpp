#include "src/nn/module.hpp"

namespace kinet::nn {

void Module::collect_parameters(std::vector<Parameter*>& /*out*/) {}

std::vector<Parameter*> Module::parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
}

void Module::zero_grad() {
    for (Parameter* p : parameters()) {
        p->zero_grad();
    }
}

}  // namespace kinet::nn
