#include "src/nn/module.hpp"

#include "src/common/check.hpp"

namespace kinet::nn {

void Module::collect_parameters(std::vector<Parameter*>& /*out*/) {}

void Module::forward_inference(const Matrix& /*input*/, Matrix& /*out*/,
                               InferenceContext& /*ctx*/) const {
    throw Error("forward_inference: not supported by this layer type");
}

void Module::save_state(bytes::Writer& out) {
    std::vector<Parameter*> params;
    collect_parameters(params);
    out.u64(params.size());
    for (const Parameter* p : params) {
        out.str(p->name);
        bytes::write_matrix(out, p->value);
    }
}

void Module::load_state(bytes::Reader& in) {
    std::vector<Parameter*> params;
    collect_parameters(params);
    const auto count = static_cast<std::size_t>(in.u64());
    KINET_CHECK(count == params.size(),
                "Module::load_state: parameter count mismatch (snapshot has " +
                    std::to_string(count) + ", module has " + std::to_string(params.size()) + ")");
    for (Parameter* p : params) {
        const std::string name = in.str();
        KINET_CHECK(name == p->name, "Module::load_state: parameter name mismatch (snapshot " +
                                         name + ", module " + p->name + ")");
        const Matrix value = bytes::read_matrix<Matrix>(in);
        KINET_CHECK(value.rows() == p->value.rows() && value.cols() == p->value.cols(),
                    "Module::load_state: shape mismatch for parameter " + p->name);
        p->value = value;
    }
}

std::vector<Parameter*> Module::parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
}

void Module::zero_grad() {
    for (Parameter* p : parameters()) {
        p->zero_grad();
    }
}

}  // namespace kinet::nn
