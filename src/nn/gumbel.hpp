// Gumbel-softmax primitives for differentiable categorical sampling
// (Jang et al., 2017) — the output activation CTGAN-style generators use for
// one-hot spans.
#ifndef KINETGAN_NN_GUMBEL_H
#define KINETGAN_NN_GUMBEL_H

#include "src/common/rng.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::nn {

using tensor::Matrix;

/// Fills a matrix with iid Gumbel(0,1) noise.
[[nodiscard]] Matrix gumbel_noise(std::size_t rows, std::size_t cols, Rng& rng);

/// In-place forward over columns [begin, end):
///   y = softmax((logits + noise) / tau)  per row.
/// `noise` must have the same shape as `logits` (only the span is read).
void gumbel_softmax_forward_span(Matrix& logits, const Matrix& noise, std::size_t begin,
                                 std::size_t end, float tau);

/// Backward for the same span: given the forward output y and dL/dy,
/// accumulates dL/dlogits into grad_logits (same shapes).
void gumbel_softmax_backward_span(const Matrix& y, const Matrix& grad_y, Matrix& grad_logits,
                                  std::size_t begin, std::size_t end, float tau);

}  // namespace kinet::nn

#endif  // KINETGAN_NN_GUMBEL_H
