#include "src/nn/batchnorm.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/tensor/ops.hpp"

namespace kinet::nn {

BatchNorm1d::BatchNorm1d(std::size_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_(Matrix(1, features, 1.0F), "bn.gamma"),
      beta_(Matrix(1, features), "bn.beta"),
      running_mean_(1, features),
      running_var_(1, features, 1.0F) {}

Matrix BatchNorm1d::forward(const Matrix& input, bool training) {
    KINET_CHECK(input.cols() == features_, "BatchNorm1d: feature mismatch");
    if (training) {
        // Fused single-call mean+variance reduction into reused member
        // buffers (the unfused col_mean + col_var pair swept the batch a
        // third time and allocated both results every step).
        tensor::col_mean_var(input, batch_mean_, batch_var_);
        // Exponential moving average of batch statistics for inference.
        for (std::size_t c = 0; c < features_; ++c) {
            running_mean_(0, c) =
                (1.0F - momentum_) * running_mean_(0, c) + momentum_ * batch_mean_(0, c);
            running_var_(0, c) =
                (1.0F - momentum_) * running_var_(0, c) + momentum_ * batch_var_(0, c);
        }
    }
    const Matrix& mean = training ? batch_mean_ : running_mean_;
    const Matrix& var = training ? batch_var_ : running_var_;

    batch_inv_std_.resize_for_overwrite(1, features_);
    for (std::size_t c = 0; c < features_; ++c) {
        batch_inv_std_(0, c) = 1.0F / std::sqrt(var(0, c) + eps_);
    }

    x_hat_.resize_for_overwrite(input.rows(), features_);
    Matrix out(input.rows(), features_);
    for (std::size_t r = 0; r < input.rows(); ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            const float xh = (input(r, c) - mean(0, c)) * batch_inv_std_(0, c);
            x_hat_(r, c) = xh;
            out(r, c) = gamma_.value(0, c) * xh + beta_.value(0, c);
        }
    }
    trained_forward_ = training;
    return out;
}

void BatchNorm1d::forward_inference(const Matrix& input, Matrix& out,
                                    InferenceContext& ctx) const {
    KINET_CHECK(input.cols() == features_, "BatchNorm1d: feature mismatch");
    // Same operation order as forward(input, false) — inv = 1/sqrt(var+eps),
    // xh = (x - mean) * inv, out = gamma * xh + beta — so the output is
    // bitwise equal; only the scratch placement differs.
    ctx.row.resize_for_overwrite(1, features_);
    for (std::size_t c = 0; c < features_; ++c) {
        ctx.row(0, c) = 1.0F / std::sqrt(running_var_(0, c) + eps_);
    }
    out.resize_for_overwrite(input.rows(), features_);
    for (std::size_t r = 0; r < input.rows(); ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            const float xh = (input(r, c) - running_mean_(0, c)) * ctx.row(0, c);
            out(r, c) = gamma_.value(0, c) * xh + beta_.value(0, c);
        }
    }
}

Matrix BatchNorm1d::backward(const Matrix& grad_out) {
    KINET_CHECK(grad_out.rows() == x_hat_.rows() && grad_out.cols() == features_,
                "BatchNorm1d: grad shape mismatch");
    const auto n = static_cast<float>(grad_out.rows());
    Matrix grad_in(grad_out.rows(), features_);

    for (std::size_t c = 0; c < features_; ++c) {
        float sum_dy = 0.0F;
        float sum_dy_xhat = 0.0F;
        for (std::size_t r = 0; r < grad_out.rows(); ++r) {
            sum_dy += grad_out(r, c);
            sum_dy_xhat += grad_out(r, c) * x_hat_(r, c);
        }
        gamma_.grad(0, c) += sum_dy_xhat;
        beta_.grad(0, c) += sum_dy;

        const float g = gamma_.value(0, c) * batch_inv_std_(0, c);
        for (std::size_t r = 0; r < grad_out.rows(); ++r) {
            if (trained_forward_) {
                // Full batch-statistics gradient.
                grad_in(r, c) =
                    g * (grad_out(r, c) - sum_dy / n - x_hat_(r, c) * sum_dy_xhat / n);
            } else {
                // Inference mode: statistics are constants.
                grad_in(r, c) = g * grad_out(r, c);
            }
        }
    }
    return grad_in;
}

void BatchNorm1d::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

void BatchNorm1d::save_state(bytes::Writer& out) {
    Module::save_state(out);
    bytes::write_matrix(out, running_mean_);
    bytes::write_matrix(out, running_var_);
}

void BatchNorm1d::load_state(bytes::Reader& in) {
    Module::load_state(in);
    running_mean_ = bytes::read_matrix<Matrix>(in);
    running_var_ = bytes::read_matrix<Matrix>(in);
    KINET_CHECK(running_mean_.cols() == features_ && running_var_.cols() == features_,
                "BatchNorm1d::load_state: running-statistics width mismatch");
}

}  // namespace kinet::nn
