#include "src/nn/dropout.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/tensor/ops.hpp"

namespace kinet::nn {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
    KINET_CHECK(p >= 0.0F && p < 1.0F, "Dropout: p must be in [0, 1)");
}

Matrix Dropout::forward(const Matrix& input, bool training) {
    if (!training || p_ == 0.0F) {
        used_mask_ = false;
        return input;
    }
    used_mask_ = true;
    mask_.resize(input.rows(), input.cols());
    const float keep_scale = 1.0F / (1.0F - p_);
    Matrix out = input;
    auto od = out.data();
    auto md = mask_.data();
    for (std::size_t i = 0; i < od.size(); ++i) {
        const bool keep = !rng_->bernoulli(p_);
        md[i] = keep ? keep_scale : 0.0F;
        od[i] *= md[i];
    }
    return out;
}

void Dropout::forward_inference(const Matrix& input, Matrix& out,
                                InferenceContext& /*ctx*/) const {
    out.resize_for_overwrite(input.rows(), input.cols());
    const auto x = input.data();
    auto y = out.data();
    std::copy(x.begin(), x.end(), y.begin());
}

Matrix Dropout::backward(const Matrix& grad_out) {
    if (!used_mask_) {
        return grad_out;
    }
    Matrix grad_in = grad_out;
    tensor::mul_inplace(grad_in, mask_);  // shape-checked inside
    return grad_in;
}

}  // namespace kinet::nn
