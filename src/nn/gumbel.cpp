#include "src/nn/gumbel.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/tensor/ops.hpp"

namespace kinet::nn {

Matrix gumbel_noise(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix out(rows, cols);
    for (auto& v : out.data()) {
        v = static_cast<float>(rng.gumbel());
    }
    return out;
}

void gumbel_softmax_forward_span(Matrix& logits, const Matrix& noise, std::size_t begin,
                                 std::size_t end, float tau) {
    KINET_CHECK(tau > 0.0F, "gumbel softmax: tau must be positive");
    KINET_CHECK(noise.rows() == logits.rows() && noise.cols() == logits.cols(),
                "gumbel softmax: noise shape mismatch");
    KINET_CHECK(begin < end && end <= logits.cols(), "gumbel softmax: bad span");
    const float inv_tau = 1.0F / tau;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        auto row = logits.row(r);
        const auto nrow = noise.row(r);
        for (std::size_t c = begin; c < end; ++c) {
            row[c] = (row[c] + nrow[c]) * inv_tau;
        }
    }
    tensor::softmax_rows_inplace(logits, begin, end);
}

void gumbel_softmax_backward_span(const Matrix& y, const Matrix& grad_y, Matrix& grad_logits,
                                  std::size_t begin, std::size_t end, float tau) {
    KINET_CHECK(begin < end && end <= y.cols(), "gumbel softmax backward: bad span");
    KINET_CHECK(grad_y.rows() == y.rows() && grad_y.cols() == y.cols(),
                "gumbel softmax backward: grad shape mismatch");
    KINET_CHECK(grad_logits.rows() == y.rows() && grad_logits.cols() == y.cols(),
                "gumbel softmax backward: output shape mismatch");
    const float inv_tau = 1.0F / tau;
    for (std::size_t r = 0; r < y.rows(); ++r) {
        const auto yrow = y.row(r);
        const auto grow = grad_y.row(r);
        auto out = grad_logits.row(r);
        float dot = 0.0F;
        for (std::size_t c = begin; c < end; ++c) {
            dot += grow[c] * yrow[c];
        }
        for (std::size_t c = begin; c < end; ++c) {
            out[c] = yrow[c] * (grow[c] - dot) * inv_tau;
        }
    }
}

}  // namespace kinet::nn
