// Umbrella header for the neural-network stack.
#ifndef KINETGAN_NN_NN_H
#define KINETGAN_NN_NN_H

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/dropout.hpp"
#include "src/nn/grad_check.hpp"
#include "src/nn/gumbel.hpp"
#include "src/nn/init.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/losses.hpp"
#include "src/nn/module.hpp"
#include "src/nn/ode_block.hpp"
#include "src/nn/optim.hpp"
#include "src/nn/sequential.hpp"

#endif  // KINETGAN_NN_NN_H
