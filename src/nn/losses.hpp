// Loss functions.  Each returns the scalar loss (mean-reduced) and the
// gradient with respect to its first argument, ready to feed backward().
#ifndef KINETGAN_NN_LOSSES_H
#define KINETGAN_NN_LOSSES_H

#include <span>

#include "src/tensor/matrix.hpp"

namespace kinet::nn {

using tensor::Matrix;

struct LossResult {
    double value = 0.0;
    Matrix grad;  // dL/d(first argument)
};

/// Numerically-stable binary cross-entropy on raw logits.
/// targets entries must lie in [0, 1].  Mean over all elements.
[[nodiscard]] LossResult bce_with_logits(const Matrix& logits, const Matrix& targets);

/// Mean squared error, mean over all elements.
[[nodiscard]] LossResult mse(const Matrix& prediction, const Matrix& target);

/// Multi-class cross-entropy with integer labels; logits is batch x classes.
/// Mean over the batch.
[[nodiscard]] LossResult softmax_cross_entropy(const Matrix& logits,
                                               std::span<const std::size_t> labels);

/// KL( N(mu, exp(logvar)) || N(0, 1) ) summed over features, mean over batch —
/// the regulariser in the TVAE ELBO.  Returns gradients for both inputs.
struct GaussianKlResult {
    double value = 0.0;
    Matrix grad_mu;
    Matrix grad_logvar;
};
[[nodiscard]] GaussianKlResult gaussian_kl(const Matrix& mu, const Matrix& logvar);

}  // namespace kinet::nn

#endif  // KINETGAN_NN_LOSSES_H
