// Fully connected layer: y = x·W + b.
#ifndef KINETGAN_NN_LINEAR_H
#define KINETGAN_NN_LINEAR_H

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"

namespace kinet::nn {

class Linear : public Module {
public:
    /// Xavier-initialised in_features -> out_features layer.
    Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
           std::string name = "linear");

    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;

    [[nodiscard]] std::size_t in_features() const noexcept { return in_features_; }
    [[nodiscard]] std::size_t out_features() const noexcept { return out_features_; }
    [[nodiscard]] Parameter& weight() noexcept { return weight_; }
    [[nodiscard]] Parameter& bias() noexcept { return bias_; }

private:
    std::size_t in_features_;
    std::size_t out_features_;
    Parameter weight_;  // in_features x out_features
    Parameter bias_;    // 1 x out_features
    Matrix cached_input_;
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_LINEAR_H
