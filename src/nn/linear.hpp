// Fully connected layer: y = x·W + b.
#ifndef KINETGAN_NN_LINEAR_H
#define KINETGAN_NN_LINEAR_H

#include <atomic>

#include "src/common/rng.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/nn/module.hpp"
#include "src/tensor/gemm.hpp"

namespace kinet::nn {

class Linear : public Module {
public:
    /// Xavier-initialised in_features -> out_features layer.
    Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
           std::string name = "linear");

    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    /// Packed-weight GEMM with the bias fused into the epilogue; the packed
    /// copy of W is built lazily on first call (mutex-guarded, so concurrent
    /// inference callers race safely) and reused until training touches the
    /// weights again.  Bitwise-equal to forward(input, false).
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    void load_state(bytes::Reader& in) override;

    [[nodiscard]] std::size_t in_features() const noexcept { return in_features_; }
    [[nodiscard]] std::size_t out_features() const noexcept { return out_features_; }
    [[nodiscard]] Parameter& weight() noexcept { return weight_; }
    [[nodiscard]] Parameter& bias() noexcept { return bias_; }

private:
    /// Drops the packed weight cache — called whenever the weights may
    /// change (backward, the step that follows it, load_state).
    void invalidate_packed();
    /// Builds the packed copy on first call (double-checked under
    /// pack_mu_), then returns it without the lock — the documented
    /// lock-free publication site (see linear.cpp for the justification).
    [[nodiscard]] const tensor::PackedGemmB& packed_for_inference() const
        KINET_NO_THREAD_SAFETY_ANALYSIS;

    std::size_t in_features_;
    std::size_t out_features_;
    Parameter weight_;  // in_features x out_features
    Parameter bias_;    // 1 x out_features
    Matrix cached_input_;

    // Inference-only packed copy of weight_.value.  `packed_ready_` is the
    // publication flag: set (release) only after the pack is complete, read
    // (acquire) before using it, built under `pack_mu_`.  Invalidation must
    // not run concurrently with forward_inference — training and serving on
    // the same instance are mutually exclusive by contract.
    mutable Mutex pack_mu_;
    mutable std::atomic<bool> packed_ready_{false};
    mutable tensor::PackedGemmB packed_weight_ KINET_GUARDED_BY(pack_mu_);
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_LINEAR_H
