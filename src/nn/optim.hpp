// First-order optimizers bound to a fixed parameter set.
#ifndef KINETGAN_NN_OPTIM_H
#define KINETGAN_NN_OPTIM_H

#include <vector>

#include "src/nn/module.hpp"

namespace kinet::nn {

class Optimizer {
public:
    explicit Optimizer(std::vector<Parameter*> params);
    Optimizer(const Optimizer&) = delete;
    Optimizer& operator=(const Optimizer&) = delete;
    virtual ~Optimizer() = default;

    /// Applies one update from the accumulated gradients.
    virtual void step() = 0;
    void zero_grad();

protected:
    std::vector<Parameter*> params_;
};

/// SGD with classical momentum.
class Sgd : public Optimizer {
public:
    Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0F);
    void step() override;

private:
    float lr_;
    float momentum_;
    std::vector<Matrix> velocity_;
};

/// Adam with optional decoupled weight decay (AdamW when decay > 0).
class Adam : public Optimizer {
public:
    Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.5F, float beta2 = 0.9F,
         float eps = 1e-8F, float weight_decay = 0.0F);
    void step() override;

private:
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    float weight_decay_;
    std::size_t t_ = 0;
    std::vector<Matrix> m_;
    std::vector<Matrix> v_;
};

/// Rescales gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace kinet::nn

#endif  // KINETGAN_NN_OPTIM_H
