// 1-D batch normalisation over features (rows are the batch dimension).
#ifndef KINETGAN_NN_BATCHNORM_H
#define KINETGAN_NN_BATCHNORM_H

#include "src/nn/module.hpp"

namespace kinet::nn {

class BatchNorm1d : public Module {
public:
    explicit BatchNorm1d(std::size_t features, float momentum = 0.1F, float eps = 1e-5F);

    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    /// Running-statistics normalisation into `out`; the inverse-stddev row
    /// lives in the caller's context, so the layer itself stays untouched.
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    /// gamma/beta plus the running moments inference needs.
    void save_state(bytes::Writer& out) override;
    void load_state(bytes::Reader& in) override;

private:
    std::size_t features_;
    float momentum_;
    float eps_;
    Parameter gamma_;  // 1 x features
    Parameter beta_;   // 1 x features
    Matrix running_mean_;
    Matrix running_var_;
    // Caches for backward (training-mode statistics); all reused across
    // steps so the forward pass allocates only its output.
    Matrix x_hat_;
    Matrix batch_mean_;     // 1 x features
    Matrix batch_var_;      // 1 x features
    Matrix batch_inv_std_;  // 1 x features
    bool trained_forward_ = false;
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_BATCHNORM_H
