// Numerical gradient checking for Modules — used by the test suite to verify
// every layer's backward pass against central finite differences.
#ifndef KINETGAN_NN_GRAD_CHECK_H
#define KINETGAN_NN_GRAD_CHECK_H

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"

namespace kinet::nn {

struct GradCheckResult {
    double max_input_error = 0.0;  // max relative error of dL/dinput
    double max_param_error = 0.0;  // max relative error over all parameters
};

/// Checks module.backward against finite differences of the scalar probe loss
/// L = Σ w ⊙ module.forward(x), with fixed random probe weights w.
/// `training` must select a deterministic path (no dropout).
[[nodiscard]] GradCheckResult check_gradients(Module& module, const Matrix& input, Rng& rng,
                                              bool training = true, float epsilon = 1e-3F);

}  // namespace kinet::nn

#endif  // KINETGAN_NN_GRAD_CHECK_H
