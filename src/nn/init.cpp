#include "src/nn/init.hpp"

#include <cmath>

namespace kinet::nn {

void xavier_uniform(tensor::Matrix& w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
    const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (auto& v : w.data()) {
        v = static_cast<float>(rng.uniform(-a, a));
    }
}

void kaiming_normal(tensor::Matrix& w, std::size_t fan_in, Rng& rng) {
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (auto& v : w.data()) {
        v = static_cast<float>(rng.normal(0.0, stddev));
    }
}

void normal_init(tensor::Matrix& w, float stddev, Rng& rng) {
    for (auto& v : w.data()) {
        v = static_cast<float>(rng.normal(0.0, stddev));
    }
}

}  // namespace kinet::nn
