// Layer abstraction with explicit layer-wise backpropagation.
//
// Each Module caches what it needs during forward() and implements
// backward(grad_out) -> grad_in, accumulating parameter gradients as a side
// effect.  This "tape-free" design keeps the training loops easy to reason
// about and is verified by numerical gradient checks (nn/grad_check.hpp).
#ifndef KINETGAN_NN_MODULE_H
#define KINETGAN_NN_MODULE_H

#include <string>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::nn {

using tensor::Matrix;

/// A learnable tensor and its accumulated gradient.
struct Parameter {
    Matrix value;
    Matrix grad;
    std::string name;

    explicit Parameter(std::string param_name = {}) : name(std::move(param_name)) {}
    Parameter(Matrix v, std::string param_name)
        : value(std::move(v)), grad(value.rows(), value.cols()), name(std::move(param_name)) {}

    void zero_grad() { grad.fill(0.0F); }
};

/// Per-caller scratch for the inference fast path (forward_inference).
/// All layer work buffers live here instead of in the module, so a const
/// model can serve any number of concurrent callers, each with its own
/// context; every buffer is reused across calls (resize_for_overwrite), so
/// a warm context allocates nothing.  One context supports one *flat*
/// Sequential per call — a Sequential nested inside another would reuse
/// the same ping-pong pair (no such network exists on the serving path).
struct InferenceContext {
    Matrix ping;  // Sequential activation ping-pong
    Matrix pong;
    Matrix row;  // 1 x features scratch (BatchNorm inverse stddev)
};

/// Base class for all layers.
class Module {
public:
    Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;
    virtual ~Module() = default;

    /// Computes the layer output; `training` toggles dropout/batch statistics.
    virtual Matrix forward(const Matrix& input, bool training) = 0;

    /// Propagates `grad_out` (dL/d output) to dL/d input; accumulates
    /// parameter gradients.  Must be called after a matching forward().
    virtual Matrix backward(const Matrix& grad_out) = 0;

    /// Inference fast path: eval semantics (running statistics, dropout as
    /// identity), no backward caches, bitwise-equal output to
    /// forward(input, false).  Const and safe to call concurrently from
    /// many threads on one module, each with its own context — the only
    /// interior mutation is a mutex-guarded one-time cache build (e.g.
    /// Linear's packed weights), which callers must not interleave with
    /// training (backward() invalidates such caches).  `out` must not
    /// alias `input` or the context's buffers.  The default throws — only
    /// layers on the serving path implement it.
    virtual void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const;

    /// True when forward_inference is the identity (e.g. Dropout):
    /// containers skip the layer instead of copying through it.
    [[nodiscard]] virtual bool inference_identity() const { return false; }

    /// Appends pointers to this module's parameters (default: none).
    virtual void collect_parameters(std::vector<Parameter*>& out);

    /// Writes the layer's learned state (parameters plus any non-parameter
    /// statistics, e.g. BatchNorm running moments) for model snapshots.  The
    /// default covers the module's own parameters; containers and stateful
    /// layers override.
    virtual void save_state(bytes::Writer& out);
    /// Restores a save_state() stream into an identically constructed layer;
    /// throws kinet::Error on any name/shape mismatch.
    virtual void load_state(bytes::Reader& in);

    [[nodiscard]] std::vector<Parameter*> parameters();
    void zero_grad();
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_MODULE_H
