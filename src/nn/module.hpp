// Layer abstraction with explicit layer-wise backpropagation.
//
// Each Module caches what it needs during forward() and implements
// backward(grad_out) -> grad_in, accumulating parameter gradients as a side
// effect.  This "tape-free" design keeps the training loops easy to reason
// about and is verified by numerical gradient checks (nn/grad_check.hpp).
#ifndef KINETGAN_NN_MODULE_H
#define KINETGAN_NN_MODULE_H

#include <string>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::nn {

using tensor::Matrix;

/// A learnable tensor and its accumulated gradient.
struct Parameter {
    Matrix value;
    Matrix grad;
    std::string name;

    explicit Parameter(std::string param_name = {}) : name(std::move(param_name)) {}
    Parameter(Matrix v, std::string param_name)
        : value(std::move(v)), grad(value.rows(), value.cols()), name(std::move(param_name)) {}

    void zero_grad() { grad.fill(0.0F); }
};

/// Base class for all layers.
class Module {
public:
    Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;
    virtual ~Module() = default;

    /// Computes the layer output; `training` toggles dropout/batch statistics.
    virtual Matrix forward(const Matrix& input, bool training) = 0;

    /// Propagates `grad_out` (dL/d output) to dL/d input; accumulates
    /// parameter gradients.  Must be called after a matching forward().
    virtual Matrix backward(const Matrix& grad_out) = 0;

    /// Appends pointers to this module's parameters (default: none).
    virtual void collect_parameters(std::vector<Parameter*>& out);

    /// Writes the layer's learned state (parameters plus any non-parameter
    /// statistics, e.g. BatchNorm running moments) for model snapshots.  The
    /// default covers the module's own parameters; containers and stateful
    /// layers override.
    virtual void save_state(bytes::Writer& out);
    /// Restores a save_state() stream into an identically constructed layer;
    /// throws kinet::Error on any name/shape mismatch.
    virtual void load_state(bytes::Reader& in);

    [[nodiscard]] std::vector<Parameter*> parameters();
    void zero_grad();
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_MODULE_H
