// Pointwise activation layers.
#ifndef KINETGAN_NN_ACTIVATIONS_H
#define KINETGAN_NN_ACTIVATIONS_H

#include "src/nn/module.hpp"

namespace kinet::nn {

class ReLU : public Module {
public:
    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;

private:
    Matrix cached_output_;  // backward mask: out > 0 iff in > 0
};

class LeakyReLU : public Module {
public:
    explicit LeakyReLU(float negative_slope = 0.2F) : slope_(negative_slope) {}
    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;

private:
    float slope_;
    Matrix cached_output_;  // backward mask: out <= 0 iff in <= 0 (slope > 0)
};

class Tanh : public Module {
public:
    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;

private:
    Matrix cached_output_;
};

class Sigmoid : public Module {
public:
    Matrix forward(const Matrix& input, bool training) override;
    Matrix backward(const Matrix& grad_out) override;
    void forward_inference(const Matrix& input, Matrix& out, InferenceContext& ctx) const override;

private:
    Matrix cached_output_;
};

}  // namespace kinet::nn

#endif  // KINETGAN_NN_ACTIVATIONS_H
