#include "src/nn/optim.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::nn {

Optimizer::Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {
    for (const Parameter* p : params_) {
        KINET_CHECK(p != nullptr, "Optimizer: null parameter");
    }
}

void Optimizer::zero_grad() {
    for (Parameter* p : params_) {
        p->zero_grad();
    }
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
    velocity_.reserve(params_.size());
    for (const Parameter* p : params_) {
        velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        auto vel = velocity_[i].data();
        auto val = p.value.data();
        const auto grad = p.grad.data();
        for (std::size_t j = 0; j < val.size(); ++j) {
            vel[j] = momentum_ * vel[j] - lr_ * grad[j];
            val[j] += vel[j];
        }
    }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Parameter* p : params_) {
        m_.emplace_back(p->value.rows(), p->value.cols());
        v_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void Adam::step() {
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        auto m = m_[i].data();
        auto v = v_[i].data();
        auto val = p.value.data();
        const auto grad = p.grad.data();
        for (std::size_t j = 0; j < val.size(); ++j) {
            m[j] = beta1_ * m[j] + (1.0F - beta1_) * grad[j];
            v[j] = beta2_ * v[j] + (1.0F - beta2_) * grad[j] * grad[j];
            const double mhat = m[j] / bc1;
            const double vhat = v[j] / bc2;
            double update = lr_ * mhat / (std::sqrt(vhat) + eps_);
            if (weight_decay_ > 0.0F) {
                update += lr_ * weight_decay_ * val[j];
            }
            val[j] -= static_cast<float>(update);
        }
    }
}

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
    KINET_CHECK(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
    double total = 0.0;
    for (const Parameter* p : params) {
        for (float g : p->grad.data()) {
            total += static_cast<double>(g) * static_cast<double>(g);
        }
    }
    const double norm = std::sqrt(total);
    if (norm > max_norm) {
        const auto scale = static_cast<float>(max_norm / (norm + 1e-12));
        for (Parameter* p : params) {
            for (float& g : p->grad.data()) {
                g *= scale;
            }
        }
    }
    return norm;
}

}  // namespace kinet::nn
