#include "src/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/tensor/gemm.hpp"

namespace kinet::tensor {

Matrix matmul(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
    Matrix c(a.rows(), b.cols());
    gemm(a.rows(), b.cols(), a.cols(), {a.data().data(), a.cols(), 1},
         {b.data().data(), b.cols(), 1}, c.data().data(), c.cols(), nullptr);
    return c;
}

PackedGemmB pack_gemm_b(const Matrix& b) {
    return PackedGemmB::pack(b.rows(), b.cols(), {b.data().data(), b.cols(), 1});
}

Matrix matmul_packed(const Matrix& a, const PackedGemmB& b) {
    KINET_CHECK(a.cols() == b.k(), "matmul_packed: inner dimension mismatch");
    Matrix c(a.rows(), b.n());
    gemm_packed(a.rows(), {a.data().data(), a.cols(), 1}, b, c.data().data(), c.cols(), nullptr);
    return c;
}

Matrix matmul_packed_bias(const Matrix& a, const PackedGemmB& b, const Matrix& bias) {
    Matrix c;
    matmul_packed_bias_into(a, b, bias, c);
    return c;
}

void matmul_packed_bias_into(const Matrix& a, const PackedGemmB& b, const Matrix& bias,
                             Matrix& out) {
    KINET_CHECK(a.cols() == b.k(), "matmul_packed_bias: inner dimension mismatch");
    KINET_CHECK(bias.rows() == 1 && bias.cols() == b.n(), "matmul_packed_bias: bad bias shape");
    out.resize_for_overwrite(a.rows(), b.n());
    gemm_packed(a.rows(), {a.data().data(), a.cols(), 1}, b, out.data().data(), out.cols(),
                bias.data().data());
}

Matrix matmul_bias(const Matrix& a, const Matrix& b, const Matrix& bias) {
    KINET_CHECK(a.cols() == b.rows(), "matmul_bias: inner dimension mismatch");
    KINET_CHECK(bias.rows() == 1 && bias.cols() == b.cols(), "matmul_bias: bad bias shape");
    Matrix c(a.rows(), b.cols());
    gemm(a.rows(), b.cols(), a.cols(), {a.data().data(), a.cols(), 1},
         {b.data().data(), b.cols(), 1}, c.data().data(), c.cols(), bias.data().data());
    return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.rows() == b.rows(), "matmul_tn: dimension mismatch");
    // A-transposed view: element (i, p) of Aᵀ is a(p, i).
    Matrix c(a.cols(), b.cols());
    gemm(a.cols(), b.cols(), a.rows(), {a.data().data(), 1, a.cols()},
         {b.data().data(), b.cols(), 1}, c.data().data(), c.cols(), nullptr);
    return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.cols() == b.cols(), "matmul_nt: dimension mismatch");
    // B-transposed view: element (p, j) of Bᵀ is b(j, p).
    Matrix c(a.rows(), b.rows());
    gemm(a.rows(), b.rows(), a.cols(), {a.data().data(), a.cols(), 1},
         {b.data().data(), 1, b.cols()}, c.data().data(), c.cols(), nullptr);
    return c;
}

Matrix transpose(const Matrix& a) {
    Matrix out(a.cols(), a.rows());
    // Blocked walk: both the read and the write stay within a 64x64 tile
    // (16 KiB x 2), instead of streaming one side with a full-row stride.
    constexpr std::size_t kTile = 64;
    const std::size_t rows = a.rows();
    const std::size_t cols = a.cols();
    for (std::size_t r0 = 0; r0 < rows; r0 += kTile) {
        const std::size_t r1 = std::min(rows, r0 + kTile);
        for (std::size_t c0 = 0; c0 < cols; c0 += kTile) {
            const std::size_t c1 = std::min(cols, c0 + kTile);
            for (std::size_t r = r0; r < r1; ++r) {
                for (std::size_t c = c0; c < c1; ++c) {
                    out(c, r) = a(r, c);
                }
            }
        }
    }
    return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "add: shape mismatch");
    Matrix out = a;
    out += b;
    return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "sub: shape mismatch");
    Matrix out = a;
    out -= b;
    return out;
}

Matrix mul(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "mul: shape mismatch");
    Matrix out = a;
    mul_inplace(out, b);
    return out;
}

void mul_inplace(Matrix& a, const Matrix& b) {
    KINET_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "mul_inplace: shape mismatch");
    auto ad = a.data();
    const auto bd = b.data();
    for (std::size_t i = 0; i < ad.size(); ++i) {
        ad[i] *= bd[i];
    }
}

Matrix map(const Matrix& a, const std::function<float(float)>& f) {
    KINET_CHECK(f != nullptr, "map: null function");
    Matrix out = a;
    for (auto& v : out.data()) {
        v = f(v);
    }
    return out;
}

void map_inplace(Matrix& a, const std::function<float(float)>& f) {
    KINET_CHECK(f != nullptr, "map_inplace: null function");
    for (auto& v : a.data()) {
        v = f(v);
    }
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
    KINET_CHECK(row.rows() == 1 && row.cols() == a.cols(), "add_row_broadcast: bad row shape");
    Matrix out = a;
    add_row_broadcast_inplace(out, row);
    return out;
}

void add_row_broadcast_inplace(Matrix& a, const Matrix& row) {
    KINET_CHECK(row.rows() == 1 && row.cols() == a.cols(),
                "add_row_broadcast_inplace: bad row shape");
    const auto rv = row.row(0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        auto arow = a.row(r);
        for (std::size_t c = 0; c < arow.size(); ++c) {
            arow[c] += rv[c];
        }
    }
}

Matrix col_sum(const Matrix& a) {
    Matrix out(1, a.cols());
    auto acc = out.row(0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto arow = a.row(r);
        for (std::size_t c = 0; c < arow.size(); ++c) {
            acc[c] += arow[c];
        }
    }
    return out;
}

Matrix col_mean(const Matrix& a) {
    KINET_CHECK(a.rows() > 0, "col_mean of empty matrix");
    Matrix out = col_sum(a);
    out *= 1.0F / static_cast<float>(a.rows());
    return out;
}

void col_mean_var(const Matrix& a, Matrix& mean, Matrix& var) {
    KINET_CHECK(a.rows() > 0, "col_mean_var of empty matrix");
    mean.resize(1, a.cols());
    var.resize(1, a.cols());
    auto mv = mean.row(0);
    auto vv = var.row(0);
    // One sweep for the mean, one for the centred second moment — the
    // separate col_mean + col_var calls used to walk the matrix three
    // times.  Accumulation order per column is unchanged, so the results
    // are bit-identical to the unfused pair.
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto arow = a.row(r);
        for (std::size_t c = 0; c < arow.size(); ++c) {
            mv[c] += arow[c];
        }
    }
    const float inv_n = 1.0F / static_cast<float>(a.rows());
    for (std::size_t c = 0; c < mv.size(); ++c) {
        mv[c] *= inv_n;
    }
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto arow = a.row(r);
        for (std::size_t c = 0; c < arow.size(); ++c) {
            const float d = arow[c] - mv[c];
            vv[c] += d * d;
        }
    }
    for (std::size_t c = 0; c < vv.size(); ++c) {
        vv[c] *= inv_n;
    }
}

Matrix col_var(const Matrix& a) {
    KINET_CHECK(a.rows() > 0, "col_var of empty matrix");
    Matrix mean;
    Matrix var;
    col_mean_var(a, mean, var);
    return var;
}

double total_sum(const Matrix& a) {
    double acc = 0.0;
    for (float v : a.data()) {
        acc += v;
    }
    return acc;
}

std::vector<std::size_t> row_argmax(const Matrix& a, std::size_t begin, std::size_t end) {
    KINET_CHECK(begin < end && end <= a.cols(), "row_argmax: bad column range");
    std::vector<std::size_t> out(a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto row = a.row(r);
        std::size_t best = begin;
        for (std::size_t c = begin + 1; c < end; ++c) {
            if (row[c] > row[best]) {
                best = c;
            }
        }
        out[r] = best - begin;
    }
    return out;
}

void softmax_rows_inplace(Matrix& a, std::size_t begin, std::size_t end) {
    KINET_CHECK(begin < end && end <= a.cols(), "softmax: bad column range");
    for (std::size_t r = 0; r < a.rows(); ++r) {
        auto row = a.row(r);
        float mx = row[begin];
        for (std::size_t c = begin + 1; c < end; ++c) {
            mx = std::max(mx, row[c]);
        }
        float denom = 0.0F;
        for (std::size_t c = begin; c < end; ++c) {
            row[c] = std::exp(row[c] - mx);
            denom += row[c];
        }
        for (std::size_t c = begin; c < end; ++c) {
            row[c] /= denom;
        }
    }
}

double frobenius_norm(const Matrix& a) {
    double acc = 0.0;
    for (float v : a.data()) {
        acc += static_cast<double>(v) * static_cast<double>(v);
    }
    return std::sqrt(acc);
}

}  // namespace kinet::tensor
