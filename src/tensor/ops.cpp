#include "src/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace kinet::tensor {

namespace {

// Output rows are partitioned across threads; every row's accumulation
// order is fixed regardless of the partition, so results are bit-identical
// at any thread count.  Grain is sized so a chunk carries at least ~2^16
// multiply-adds — below that, parallel_for runs the kernel inline.
constexpr std::size_t kMinFlopsPerChunk = 1U << 16;

std::size_t row_grain(std::size_t flops_per_row) {
    return kMinFlopsPerChunk / std::max<std::size_t>(flops_per_row, 1) + 1;
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    Matrix c(m, n);
    // i-k-j ordering: the inner loop streams rows of B and C.
    parallel_for(m, row_grain(k * n), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
            auto crow = c.row(i);
            const auto arow = a.row(i);
            for (std::size_t p = 0; p < k; ++p) {
                const float av = arow[p];
                const auto brow = b.row(p);
                for (std::size_t j = 0; j < n; ++j) {
                    crow[j] += av * brow[j];
                }
            }
        }
    });
    return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.rows() == b.rows(), "matmul_tn: dimension mismatch");
    const std::size_t m = a.cols();
    const std::size_t k = a.rows();
    const std::size_t n = b.cols();
    Matrix c(m, n);
    // Each chunk owns a band of output rows (columns of A), streaming rows
    // of B; A is read with stride cols but only within the band.
    parallel_for(m, row_grain(k * n), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t p = 0; p < k; ++p) {
            const auto arow = a.row(p);
            const auto brow = b.row(p);
            for (std::size_t i = r0; i < r1; ++i) {
                const float av = arow[i];
                auto crow = c.row(i);
                for (std::size_t j = 0; j < n; ++j) {
                    crow[j] += av * brow[j];
                }
            }
        }
    });
    return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.cols() == b.cols(), "matmul_nt: dimension mismatch");
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    Matrix c(m, n);
    parallel_for(m, row_grain(k * n), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
            const auto arow = a.row(i);
            auto crow = c.row(i);
            for (std::size_t j = 0; j < n; ++j) {
                const auto brow = b.row(j);
                float acc = 0.0F;
                for (std::size_t p = 0; p < k; ++p) {
                    acc += arow[p] * brow[p];
                }
                crow[j] = acc;
            }
        }
    });
    return c;
}

Matrix transpose(const Matrix& a) {
    Matrix out(a.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            out(c, r) = a(r, c);
        }
    }
    return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
    Matrix out = a;
    out += b;
    return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
    Matrix out = a;
    out -= b;
    return out;
}

Matrix mul(const Matrix& a, const Matrix& b) {
    KINET_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "mul: shape mismatch");
    Matrix out = a;
    auto od = out.data();
    const auto bd = b.data();
    for (std::size_t i = 0; i < od.size(); ++i) {
        od[i] *= bd[i];
    }
    return out;
}

Matrix map(const Matrix& a, const std::function<float(float)>& f) {
    Matrix out = a;
    for (auto& v : out.data()) {
        v = f(v);
    }
    return out;
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
    KINET_CHECK(row.rows() == 1 && row.cols() == a.cols(), "add_row_broadcast: bad row shape");
    Matrix out = a;
    const auto rv = row.row(0);
    for (std::size_t r = 0; r < out.rows(); ++r) {
        auto orow = out.row(r);
        for (std::size_t c = 0; c < orow.size(); ++c) {
            orow[c] += rv[c];
        }
    }
    return out;
}

Matrix col_sum(const Matrix& a) {
    Matrix out(1, a.cols());
    auto acc = out.row(0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto arow = a.row(r);
        for (std::size_t c = 0; c < arow.size(); ++c) {
            acc[c] += arow[c];
        }
    }
    return out;
}

Matrix col_mean(const Matrix& a) {
    KINET_CHECK(a.rows() > 0, "col_mean of empty matrix");
    Matrix out = col_sum(a);
    out *= 1.0F / static_cast<float>(a.rows());
    return out;
}

Matrix col_var(const Matrix& a) {
    KINET_CHECK(a.rows() > 0, "col_var of empty matrix");
    const Matrix mean = col_mean(a);
    Matrix out(1, a.cols());
    auto acc = out.row(0);
    const auto mv = mean.row(0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto arow = a.row(r);
        for (std::size_t c = 0; c < arow.size(); ++c) {
            const float d = arow[c] - mv[c];
            acc[c] += d * d;
        }
    }
    out *= 1.0F / static_cast<float>(a.rows());
    return out;
}

double total_sum(const Matrix& a) {
    double acc = 0.0;
    for (float v : a.data()) {
        acc += v;
    }
    return acc;
}

std::vector<std::size_t> row_argmax(const Matrix& a, std::size_t begin, std::size_t end) {
    KINET_CHECK(begin < end && end <= a.cols(), "row_argmax: bad column range");
    std::vector<std::size_t> out(a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const auto row = a.row(r);
        std::size_t best = begin;
        for (std::size_t c = begin + 1; c < end; ++c) {
            if (row[c] > row[best]) {
                best = c;
            }
        }
        out[r] = best - begin;
    }
    return out;
}

void softmax_rows_inplace(Matrix& a, std::size_t begin, std::size_t end) {
    KINET_CHECK(begin < end && end <= a.cols(), "softmax: bad column range");
    for (std::size_t r = 0; r < a.rows(); ++r) {
        auto row = a.row(r);
        float mx = row[begin];
        for (std::size_t c = begin + 1; c < end; ++c) {
            mx = std::max(mx, row[c]);
        }
        float denom = 0.0F;
        for (std::size_t c = begin; c < end; ++c) {
            row[c] = std::exp(row[c] - mx);
            denom += row[c];
        }
        for (std::size_t c = begin; c < end; ++c) {
            row[c] /= denom;
        }
    }
}

double frobenius_norm(const Matrix& a) {
    double acc = 0.0;
    for (float v : a.data()) {
        acc += static_cast<double>(v) * static_cast<double>(v);
    }
    return std::sqrt(acc);
}

}  // namespace kinet::tensor
