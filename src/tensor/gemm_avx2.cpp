// AVX2/FMA GEMM instantiation.  This translation unit is compiled with
// -mavx2 -mfma (and KINET_GEMM_AVX2 defined) by CMake on x86-64 builds with
// a GNU-compatible compiler; elsewhere the entry point forwards to the
// portable kernel so dispatch stays trivial.
//
// The 6x16 micro-kernel holds its accumulator block in 12 named 8-float
// vector variables (12 YMM registers), leaving room for the broadcast A
// value and the two B vectors.  FMA contraction changes per-operation
// rounding relative to the portable kernel, but the dispatch is fixed per
// machine and the accumulation order per element is identical, so
// determinism across runs and thread counts is unaffected.
#include "src/tensor/gemm_engine.hpp"

namespace kinet::tensor::detail {

#if defined(KINET_GEMM_AVX2) && defined(KINET_GEMM_VECTOR_EXT)

namespace {

struct KernelAvx2 {
    static constexpr int MR = 6;
    static constexpr int NR = 16;

    /// Scalar twin of the micro-kernel's contraction: this TU is compiled
    /// with -mfma, where the vector accumulates lower to single-rounding
    /// FMAs, so the no-pad small-n path fuses too (same bits per element
    /// as the padded path would produce).
    static float madd(float acc, float a, float b) { return __builtin_fmaf(a, b, acc); }

    static void micro_full(std::size_t kc, const float* __restrict ap, const float* __restrict bp,
                           float* __restrict c, std::size_t ldc, bool first, const float* bias) {
        vf8 c00;
        vf8 c01;
        vf8 c10;
        vf8 c11;
        vf8 c20;
        vf8 c21;
        vf8 c30;
        vf8 c31;
        vf8 c40;
        vf8 c41;
        vf8 c50;
        vf8 c51;
        if (first) {
            c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = c40 = c41 = c50 = c51 = vf8{};
        } else {
            c00 = vload8(c + 0 * ldc);
            c01 = vload8(c + 0 * ldc + 8);
            c10 = vload8(c + 1 * ldc);
            c11 = vload8(c + 1 * ldc + 8);
            c20 = vload8(c + 2 * ldc);
            c21 = vload8(c + 2 * ldc + 8);
            c30 = vload8(c + 3 * ldc);
            c31 = vload8(c + 3 * ldc + 8);
            c40 = vload8(c + 4 * ldc);
            c41 = vload8(c + 4 * ldc + 8);
            c50 = vload8(c + 5 * ldc);
            c51 = vload8(c + 5 * ldc + 8);
        }
        for (std::size_t p = 0; p < kc; ++p) {
            const float* a = ap + p * MR;
            const float* b = bp + p * NR;
            const vf8 b0 = vload8(b);
            const vf8 b1 = vload8(b + 8);
            vf8 av = vsplat8(a[0]);
            c00 += av * b0;
            c01 += av * b1;
            av = vsplat8(a[1]);
            c10 += av * b0;
            c11 += av * b1;
            av = vsplat8(a[2]);
            c20 += av * b0;
            c21 += av * b1;
            av = vsplat8(a[3]);
            c30 += av * b0;
            c31 += av * b1;
            av = vsplat8(a[4]);
            c40 += av * b0;
            c41 += av * b1;
            av = vsplat8(a[5]);
            c50 += av * b0;
            c51 += av * b1;
        }
        if (bias != nullptr) {
            const vf8 bias0 = vload8(bias);
            const vf8 bias1 = vload8(bias + 8);
            c00 += bias0;
            c01 += bias1;
            c10 += bias0;
            c11 += bias1;
            c20 += bias0;
            c21 += bias1;
            c30 += bias0;
            c31 += bias1;
            c40 += bias0;
            c41 += bias1;
            c50 += bias0;
            c51 += bias1;
        }
        vstore8(c + 0 * ldc, c00);
        vstore8(c + 0 * ldc + 8, c01);
        vstore8(c + 1 * ldc, c10);
        vstore8(c + 1 * ldc + 8, c11);
        vstore8(c + 2 * ldc, c20);
        vstore8(c + 2 * ldc + 8, c21);
        vstore8(c + 3 * ldc, c30);
        vstore8(c + 3 * ldc + 8, c31);
        vstore8(c + 4 * ldc, c40);
        vstore8(c + 4 * ldc + 8, c41);
        vstore8(c + 5 * ldc, c50);
        vstore8(c + 5 * ldc + 8, c51);
    }
};

}  // namespace

void gemm_avx2(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b, float* c,
               std::size_t ldc, const float* bias) {
    gemm_engine<KernelAvx2>(m, n, k, a, b, c, ldc, bias);
}

void pack_b_avx2(std::size_t k, std::size_t n, GemmOperand b, std::vector<float>& out) {
    pack_b_full<KernelAvx2::NR>(k, n, b, out);
}

void gemm_packed_avx2(std::size_t m, std::size_t n, std::size_t k, GemmOperand a,
                      const float* packed, float* c, std::size_t ldc, const float* bias) {
    gemm_packed_engine<KernelAvx2>(m, n, k, a, packed, c, ldc, bias);
}

bool gemm_has_avx2_build() { return true; }

#else  // !(KINET_GEMM_AVX2 && KINET_GEMM_VECTOR_EXT)

void gemm_avx2(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b, float* c,
               std::size_t ldc, const float* bias) {
    gemm_generic(m, n, k, a, b, c, ldc, bias);
}

void pack_b_avx2(std::size_t k, std::size_t n, GemmOperand b, std::vector<float>& out) {
    pack_b_generic(k, n, b, out);
}

void gemm_packed_avx2(std::size_t m, std::size_t n, std::size_t k, GemmOperand a,
                      const float* packed, float* c, std::size_t ldc, const float* bias) {
    gemm_packed_generic(m, n, k, a, packed, c, ldc, bias);
}

bool gemm_has_avx2_build() { return false; }

#endif  // KINET_GEMM_AVX2 && KINET_GEMM_VECTOR_EXT

}  // namespace kinet::tensor::detail
