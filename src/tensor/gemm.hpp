// Packed, cache-blocked GEMM engine — the single kernel behind the matmul
// family in src/tensor/ops.hpp.
//
// The engine packs panels of A and B into contiguous, zero-padded tiles
// (KC-deep k-blocks, NC-wide column panels, MR x NR register tiles), then
// drives a fixed-width micro-kernel over the packed panels.  Two
// instantiations are built: a portable one compiled for the baseline ISA
// and an 8-wide AVX2/FMA one (x86-64 with GNU-compatible compilers);
// `gemm` picks the widest kernel the running CPU supports, once, at first
// use.
//
// Determinism contract (shared with src/common/parallel.hpp): each output
// element is produced by exactly one running accumulator that consumes the
// k dimension in ascending order — the micro-kernel loads the C tile,
// accumulates a k-block, and stores it back, so neither the KC blocking
// nor the row partition across threads changes any element's operation
// order.  Results are therefore bit-identical run-to-run at any
// KINET_NUM_THREADS (verified by tests/test_gemm.cpp).
#ifndef KINETGAN_TENSOR_GEMM_H
#define KINETGAN_TENSOR_GEMM_H

#include <cstddef>
#include <vector>

namespace kinet::tensor {

/// A strided read-only view of one GEMM operand: element (i, p) lives at
/// data[i * rs + p * cs].  Plain-transposed access is expressed by swapping
/// the strides, so one engine serves matmul, matmul_tn and matmul_nt.
struct GemmOperand {
    const float* data;
    std::size_t rs;
    std::size_t cs;
};

/// C(m x n, row-major, leading dimension ldc) = A(m x k) * B(k x n), plus
/// an optional bias row added once per output element after the final
/// k-block (bias == nullptr skips it; otherwise bias[j] is added to every
/// C(i, j)).  C's initial contents are ignored and overwritten.
void gemm(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b, float* c,
          std::size_t ldc, const float* bias);

/// A weight matrix packed once into the dispatched kernel's strip layout
/// (KC-deep k-blocks of zero-padded NR-wide column strips) and reused
/// across gemm_packed calls — the inference fast path's answer to
/// re-packing the same B on every forward pass.  The layout is tied to the
/// kernel dispatched at pack time; dispatch is latched once per process,
/// so a PackedGemmB never outlives its kernel.  Immutable after pack():
/// concurrent gemm_packed readers are safe.
class PackedGemmB {
public:
    PackedGemmB() = default;

    /// Packs B (k x n; element (p, j) at data[p*rs + j*cs]) for the
    /// currently dispatched kernel.
    [[nodiscard]] static PackedGemmB pack(std::size_t k, std::size_t n, GemmOperand b);

    [[nodiscard]] bool empty() const noexcept { return k_ == 0 || n_ == 0; }
    [[nodiscard]] std::size_t k() const noexcept { return k_; }
    [[nodiscard]] std::size_t n() const noexcept { return n_; }
    [[nodiscard]] const float* data() const noexcept { return data_.data(); }
    /// Packed footprint in floats (ceil(n/NR)*NR*k) — surfaced for tests.
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    void clear() {
        data_.clear();
        k_ = 0;
        n_ = 0;
    }

private:
    std::vector<float> data_;
    std::size_t k_ = 0;
    std::size_t n_ = 0;
};

/// C(m x n) = A(m x k(b)) * B from a pre-packed operand, plus the optional
/// fused bias row — bit-identical to gemm() with the unpacked B (same
/// micro-kernels, same blocking, same per-element accumulation chain).
void gemm_packed(std::size_t m, GemmOperand a, const PackedGemmB& b, float* c, std::size_t ldc,
                 const float* bias);

/// Name of the dispatched micro-kernel ("avx2-fma-6x16" or "generic-4x8")
/// — surfaced in benchmarks and docs, never used for logic.
[[nodiscard]] const char* gemm_kernel_name();

namespace detail {

/// Instantiation entry points (one per translation unit / ISA).  Same
/// semantics as gemm(); callers must have handled m == 0 || n == 0.
void gemm_generic(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b,
                  float* c, std::size_t ldc, const float* bias);
void gemm_avx2(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b,
               float* c, std::size_t ldc, const float* bias);

/// Full-B packing and pre-packed GEMM entry points, one pair per ISA unit
/// (same PackedGemmB layout contract as the engine header's pack_b_full).
void pack_b_generic(std::size_t k, std::size_t n, GemmOperand b, std::vector<float>& out);
void pack_b_avx2(std::size_t k, std::size_t n, GemmOperand b, std::vector<float>& out);
void gemm_packed_generic(std::size_t m, std::size_t n, std::size_t k, GemmOperand a,
                         const float* packed, float* c, std::size_t ldc, const float* bias);
void gemm_packed_avx2(std::size_t m, std::size_t n, std::size_t k, GemmOperand a,
                      const float* packed, float* c, std::size_t ldc, const float* bias);

/// Whether this build carries the AVX2 instantiation at all (x86-64 and a
/// compiler that accepts -mavx2 -mfma).
[[nodiscard]] bool gemm_has_avx2_build();

}  // namespace detail

}  // namespace kinet::tensor

#endif  // KINETGAN_TENSOR_GEMM_H
