// Degenerate-shape handling and one-time micro-kernel dispatch for the
// packed GEMM engine (see gemm.hpp for the contract).
#include "src/tensor/gemm.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace kinet::tensor {

namespace {

using GemmFn = void (*)(std::size_t, std::size_t, std::size_t, GemmOperand, GemmOperand, float*,
                        std::size_t, const float*);
using PackFn = void (*)(std::size_t, std::size_t, GemmOperand, std::vector<float>&);
using PackedFn = void (*)(std::size_t, std::size_t, std::size_t, GemmOperand, const float*,
                          float*, std::size_t, const float*);

struct Dispatch {
    GemmFn fn;
    PackFn pack;
    PackedFn packed;
    const char* name;
};

Dispatch pick_kernel() {
    // KINET_GEMM_KERNEL=generic pins the portable kernel (diagnostics /
    // cross-ISA numeric comparisons); any other value is ignored.
    const char* forced = std::getenv("KINET_GEMM_KERNEL");
    if (forced != nullptr && std::strcmp(forced, "generic") == 0) {
        return {detail::gemm_generic, detail::pack_b_generic, detail::gemm_packed_generic,
                "generic-4x8"};
    }
#if (defined(__x86_64__) || defined(__amd64__)) && (defined(__GNUC__) || defined(__clang__))
    if (detail::gemm_has_avx2_build() && __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
        return {detail::gemm_avx2, detail::pack_b_avx2, detail::gemm_packed_avx2,
                "avx2-fma-6x16"};
    }
#endif
    return {detail::gemm_generic, detail::pack_b_generic, detail::gemm_packed_generic,
            "generic-4x8"};
}

const Dispatch& dispatch() {
    static const Dispatch d = pick_kernel();
    return d;
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b, float* c,
          std::size_t ldc, const float* bias) {
    if (m == 0 || n == 0) {
        return;
    }
    if (k == 0) {
        // Empty inner dimension: the product is all zeros (plus bias).
        for (std::size_t i = 0; i < m; ++i) {
            float* crow = c + i * ldc;
            if (bias != nullptr) {
                std::copy(bias, bias + n, crow);
            } else {
                std::fill(crow, crow + n, 0.0F);
            }
        }
        return;
    }
    dispatch().fn(m, n, k, a, b, c, ldc, bias);
}

PackedGemmB PackedGemmB::pack(std::size_t k, std::size_t n, GemmOperand b) {
    PackedGemmB out;
    out.k_ = k;
    out.n_ = n;
    if (k > 0 && n > 0) {
        dispatch().pack(k, n, b, out.data_);
    }
    return out;
}

void gemm_packed(std::size_t m, GemmOperand a, const PackedGemmB& b, float* c, std::size_t ldc,
                 const float* bias) {
    const std::size_t n = b.n();
    const std::size_t k = b.k();
    if (m == 0 || n == 0) {
        return;
    }
    if (k == 0) {
        for (std::size_t i = 0; i < m; ++i) {
            float* crow = c + i * ldc;
            if (bias != nullptr) {
                std::copy(bias, bias + n, crow);
            } else {
                std::fill(crow, crow + n, 0.0F);
            }
        }
        return;
    }
    dispatch().packed(m, n, k, a, b.data(), c, ldc, bias);
}

const char* gemm_kernel_name() { return dispatch().name; }

}  // namespace kinet::tensor
