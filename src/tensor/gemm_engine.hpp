// The packed GEMM engine template — included only by the per-ISA
// instantiation units (gemm_generic.cpp, gemm_avx2.cpp).  See gemm.hpp for
// the engine-level contract.
//
// Loop structure (BLIS-style, two packing levels):
//
//   for jc over n in NC-wide column panels
//     for pc over k in KC-deep blocks
//       pack B[pc:pc+kc, jc:jc+nc] into NR-wide strips   (zero-padded)
//       parallel over MR-row strips of A:
//         pack A[strip, pc:pc+kc] into an MR-wide strip  (zero-padded)
//         for each NR strip of the B panel:
//           micro-kernel: C tile (+)= A strip * B strip [+ bias on last pc]
//
// The micro-kernel is supplied by the instantiating unit (a `Kernel` policy
// with MR/NR and micro_full), written with explicit fixed-width vector
// types so the accumulator block provably stays in registers.  It loads the
// C tile before a k-block (except the first, which starts from zero) and
// stores it after, so each C element sees one strictly k-ascending chain of
// multiply-adds regardless of blocking or thread partition.
#ifndef KINETGAN_TENSOR_GEMM_ENGINE_H
#define KINETGAN_TENSOR_GEMM_ENGINE_H

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/tensor/gemm.hpp"

namespace kinet::tensor::detail {

// Cache blocking: a KC x NR B strip (16 KiB at NR = 16) stays L1-resident
// across every A strip of the panel; the KC x NC B panel (1 MiB) fits L2.
inline constexpr std::size_t kGemmKC = 256;
inline constexpr std::size_t kGemmNC = 1024;

// Minimum multiply-adds per parallel chunk (mirrors the pre-packed kernels:
// below this, parallel_for runs the whole range inline on the caller).
inline constexpr std::size_t kGemmMinFlopsPerChunk = 1U << 16;

#if defined(__GNUC__) || defined(__clang__)
#define KINET_GEMM_VECTOR_EXT 1
/// 8 floats; on ISAs narrower than 256 bits the compiler lowers each
/// operation to the native width (e.g. two SSE ops).  The typedef is
/// byte-aligned (loads/stores may hit unaligned addresses) and may_alias
/// so dereferencing float storage through it is defined.  Direct
/// dereference — not memcpy — is what compiles to a single vmovups; the
/// memcpy form bounces every load through a stack slot.
using vf8 = float __attribute__((vector_size(32), aligned(4), may_alias));

inline vf8 vload8(const float* p) { return *reinterpret_cast<const vf8*>(p); }

inline void vstore8(float* p, vf8 v) { *reinterpret_cast<vf8*>(p) = v; }

inline vf8 vsplat8(float x) { return vf8{x, x, x, x, x, x, x, x}; }
#endif  // __GNUC__ || __clang__

/// Packs B[pc:pc+kc, jc:jc+nc] into NR-wide strips, each laid out
/// [p][0..NR) contiguously; columns past nc are zero-filled so edge tiles
/// run the same micro-kernel as full ones.
template <int NR>
void pack_b_panel(GemmOperand b, std::size_t pc, std::size_t kc, std::size_t jc, std::size_t nc,
                  float* out) {
    const std::size_t jstrips = (nc + NR - 1) / static_cast<std::size_t>(NR);
    for (std::size_t js = 0; js < jstrips; ++js) {
        float* strip = out + js * kc * NR;
        const std::size_t j0 = jc + js * NR;
        const std::size_t jn = std::min<std::size_t>(NR, jc + nc - j0);
        if (b.cs == 1) {
            // Row-major source: copy kc short contiguous runs.
            for (std::size_t p = 0; p < kc; ++p) {
                const float* src = b.data + (pc + p) * b.rs + j0;
                float* dst = strip + p * NR;
                for (std::size_t j = 0; j < jn; ++j) {
                    dst[j] = src[j];
                }
                for (std::size_t j = jn; j < NR; ++j) {
                    dst[j] = 0.0F;
                }
            }
        } else {
            // Column-contiguous source (the nt case): walk each source row
            // once, scattering into the strip at stride NR.
            for (std::size_t j = 0; j < jn; ++j) {
                const float* src = b.data + pc * b.rs + (j0 + j) * b.cs;
                for (std::size_t p = 0; p < kc; ++p) {
                    strip[p * NR + j] = src[p * b.rs];
                }
            }
            for (std::size_t j = jn; j < NR; ++j) {
                for (std::size_t p = 0; p < kc; ++p) {
                    strip[p * NR + j] = 0.0F;
                }
            }
        }
    }
}

/// Packs A[i0:i0+rows, pc:pc+kc] into one MR-wide strip laid out [p][0..MR);
/// rows past `rows` are zero-filled.
template <int MR>
void pack_a_strip(GemmOperand a, std::size_t i0, std::size_t rows, std::size_t pc, std::size_t kc,
                  float* out) {
    if (a.rs == 1) {
        // Column-major-ish source (the tn case): each p reads a contiguous
        // run of MR elements.
        for (std::size_t p = 0; p < kc; ++p) {
            const float* src = a.data + i0 + (pc + p) * a.cs;
            float* dst = out + p * MR;
            for (std::size_t i = 0; i < rows; ++i) {
                dst[i] = src[i];
            }
            for (std::size_t i = rows; i < MR; ++i) {
                dst[i] = 0.0F;
            }
        }
    } else {
        for (std::size_t i = 0; i < rows; ++i) {
            const float* src = a.data + (i0 + i) * a.rs + pc * a.cs;
            for (std::size_t p = 0; p < kc; ++p) {
                out[p * MR + i] = src[p * a.cs];
            }
        }
        for (std::size_t i = rows; i < MR; ++i) {
            for (std::size_t p = 0; p < kc; ++p) {
                out[p * MR + i] = 0.0F;
            }
        }
    }
}

/// Edge tile (rows < MR and/or cols < NR): scalar arithmetic, bounded loads
/// and stores.  The padded accumulator lanes see only packed zeros and are
/// never stored.
template <int MR, int NR>
void micro_edge(std::size_t kc, const float* __restrict ap, const float* __restrict bp,
                float* __restrict c, std::size_t ldc, std::size_t rows, std::size_t cols,
                bool first, const float* bias) {
    float acc[MR][NR] = {};
    if (!first) {
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) {
                acc[i][j] = c[i * ldc + j];
            }
        }
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const float* a = ap + p * MR;
        const float* b = bp + p * NR;
        for (int i = 0; i < MR; ++i) {
            const float av = a[i];
            for (int j = 0; j < NR; ++j) {
                acc[i][j] += av * b[j];
            }
        }
    }
    if (bias != nullptr) {
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) {
                acc[i][j] += bias[j];
            }
        }
    }
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            c[i * ldc + j] = acc[i][j];
        }
    }
}

/// Drives Kernel::micro_full over packed panels.  Kernel provides:
///   static constexpr int MR, NR;
///   static void micro_full(std::size_t kc, const float* ap, const float* bp,
///                          float* c, std::size_t ldc, bool first,
///                          const float* bias);
template <class Kernel>
void gemm_engine(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b,
                 float* c, std::size_t ldc, const float* bias) {
    constexpr int MR = Kernel::MR;
    constexpr int NR = Kernel::NR;
    static_assert(kGemmNC % NR == 0, "NC must be a whole number of NR strips");
    const std::size_t strips = (m + MR - 1) / static_cast<std::size_t>(MR);

    // Reused across calls on the packing (calling) thread; workers read it.
    thread_local std::vector<float> bpack;

    for (std::size_t jc = 0; jc < n; jc += kGemmNC) {
        const std::size_t nc = std::min(kGemmNC, n - jc);
        const std::size_t jstrips = (nc + NR - 1) / static_cast<std::size_t>(NR);
        for (std::size_t pc = 0; pc < k; pc += kGemmKC) {
            const std::size_t kc = std::min(kGemmKC, k - pc);
            const bool first = pc == 0;
            const float* tile_bias = (pc + kc == k && bias != nullptr) ? bias + jc : nullptr;

            bpack.resize(jstrips * kc * NR);
            pack_b_panel<NR>(b, pc, kc, jc, nc, bpack.data());
            const float* bp = bpack.data();

            const std::size_t flops_per_strip =
                std::max<std::size_t>(2 * static_cast<std::size_t>(MR) * nc * kc, 1);
            const std::size_t grain = kGemmMinFlopsPerChunk / flops_per_strip + 1;
            parallel_for(strips, grain, [&](std::size_t s0, std::size_t s1) {
                thread_local std::vector<float> apack;
                apack.resize(kc * MR);
                for (std::size_t s = s0; s < s1; ++s) {
                    const std::size_t i0 = s * MR;
                    const std::size_t rows = std::min<std::size_t>(MR, m - i0);
                    pack_a_strip<MR>(a, i0, rows, pc, kc, apack.data());
                    for (std::size_t js = 0; js < jstrips; ++js) {
                        const std::size_t j0 = jc + js * NR;
                        const std::size_t cols = std::min<std::size_t>(NR, jc + nc - j0);
                        float* ctile = c + i0 * ldc + j0;
                        const float* strip_bias =
                            (tile_bias != nullptr) ? tile_bias + js * NR : nullptr;
                        if (rows == MR && cols == NR) {
                            Kernel::micro_full(kc, apack.data(), bp + js * kc * NR, ctile, ldc,
                                               first, strip_bias);
                        } else {
                            micro_edge<MR, NR>(kc, apack.data(), bp + js * kc * NR, ctile, ldc,
                                               rows, cols, first, strip_bias);
                        }
                    }
                }
            });
        }
    }
}

}  // namespace kinet::tensor::detail

#endif  // KINETGAN_TENSOR_GEMM_ENGINE_H
