// The packed GEMM engine template — included only by the per-ISA
// instantiation units (gemm_generic.cpp, gemm_avx2.cpp).  See gemm.hpp for
// the engine-level contract.
//
// Loop structure (BLIS-style, two packing levels):
//
//   for jc over n in NC-wide column panels
//     for pc over k in KC-deep blocks
//       pack B[pc:pc+kc, jc:jc+nc] into NR-wide strips   (zero-padded)
//       parallel over MR-row strips of A:
//         pack A[strip, pc:pc+kc] into an MR-wide strip  (zero-padded)
//         for each NR strip of the B panel:
//           micro-kernel: C tile (+)= A strip * B strip [+ bias on last pc]
//
// The micro-kernel is supplied by the instantiating unit (a `Kernel` policy
// with MR/NR and micro_full), written with explicit fixed-width vector
// types so the accumulator block provably stays in registers.  It loads the
// C tile before a k-block (except the first, which starts from zero) and
// stores it after, so each C element sees one strictly k-ascending chain of
// multiply-adds regardless of blocking or thread partition.
#ifndef KINETGAN_TENSOR_GEMM_ENGINE_H
#define KINETGAN_TENSOR_GEMM_ENGINE_H

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/tensor/gemm.hpp"

namespace kinet::tensor::detail {

// Cache blocking: a KC x NR B strip (16 KiB at NR = 16) stays L1-resident
// across every A strip of the panel; the KC x NC B panel (1 MiB) fits L2.
inline constexpr std::size_t kGemmKC = 256;
inline constexpr std::size_t kGemmNC = 1024;

// Minimum multiply-adds per parallel chunk (mirrors the pre-packed kernels:
// below this, parallel_for runs the whole range inline on the caller).
inline constexpr std::size_t kGemmMinFlopsPerChunk = 1U << 16;

#if defined(__GNUC__) || defined(__clang__)
#define KINET_GEMM_VECTOR_EXT 1
/// 8 floats; on ISAs narrower than 256 bits the compiler lowers each
/// operation to the native width (e.g. two SSE ops).  The typedef is
/// byte-aligned (loads/stores may hit unaligned addresses) and may_alias
/// so dereferencing float storage through it is defined.  Direct
/// dereference — not memcpy — is what compiles to a single vmovups; the
/// memcpy form bounces every load through a stack slot.
using vf8 = float __attribute__((vector_size(32), aligned(4), may_alias));

// The helpers pass/return vf8 by value; on baseline-ISA units GCC notes
// that a non-inlined copy would change the calling ABI (-Wpsabi).  They
// are internal and always inlined into the micro-kernels, so the note is
// moot — the baseline unit is compiled with -Wno-psabi (see CMakeLists).

inline vf8 vload8(const float* p) { return *reinterpret_cast<const vf8*>(p); }

inline void vstore8(float* p, vf8 v) { *reinterpret_cast<vf8*>(p) = v; }

inline vf8 vsplat8(float x) { return vf8{x, x, x, x, x, x, x, x}; }
#endif  // __GNUC__ || __clang__

/// Packs B[pc:pc+kc, jc:jc+nc] into NR-wide strips, each laid out
/// [p][0..NR) contiguously; columns past nc are zero-filled so edge tiles
/// run the same micro-kernel as full ones.
template <int NR>
void pack_b_panel(GemmOperand b, std::size_t pc, std::size_t kc, std::size_t jc, std::size_t nc,
                  float* out) {
    const std::size_t jstrips = (nc + NR - 1) / static_cast<std::size_t>(NR);
    for (std::size_t js = 0; js < jstrips; ++js) {
        float* strip = out + js * kc * NR;
        const std::size_t j0 = jc + js * NR;
        const std::size_t jn = std::min<std::size_t>(NR, jc + nc - j0);
        if (b.cs == 1) {
            // Row-major source: copy kc short contiguous runs.
            for (std::size_t p = 0; p < kc; ++p) {
                const float* src = b.data + (pc + p) * b.rs + j0;
                float* dst = strip + p * NR;
                for (std::size_t j = 0; j < jn; ++j) {
                    dst[j] = src[j];
                }
                for (std::size_t j = jn; j < NR; ++j) {
                    dst[j] = 0.0F;
                }
            }
        } else {
            // Column-contiguous source (the nt case): walk each source row
            // once, scattering into the strip at stride NR.
            for (std::size_t j = 0; j < jn; ++j) {
                const float* src = b.data + pc * b.rs + (j0 + j) * b.cs;
                for (std::size_t p = 0; p < kc; ++p) {
                    strip[p * NR + j] = src[p * b.rs];
                }
            }
            for (std::size_t j = jn; j < NR; ++j) {
                for (std::size_t p = 0; p < kc; ++p) {
                    strip[p * NR + j] = 0.0F;
                }
            }
        }
    }
}

/// Packs A[i0:i0+rows, pc:pc+kc] into one MR-wide strip laid out [p][0..MR);
/// rows past `rows` are zero-filled.
template <int MR>
void pack_a_strip(GemmOperand a, std::size_t i0, std::size_t rows, std::size_t pc, std::size_t kc,
                  float* out) {
    if (a.rs == 1) {
        // Column-major-ish source (the tn case): each p reads a contiguous
        // run of MR elements.
        for (std::size_t p = 0; p < kc; ++p) {
            const float* src = a.data + i0 + (pc + p) * a.cs;
            float* dst = out + p * MR;
            for (std::size_t i = 0; i < rows; ++i) {
                dst[i] = src[i];
            }
            for (std::size_t i = rows; i < MR; ++i) {
                dst[i] = 0.0F;
            }
        }
    } else {
        for (std::size_t i = 0; i < rows; ++i) {
            const float* src = a.data + (i0 + i) * a.rs + pc * a.cs;
            for (std::size_t p = 0; p < kc; ++p) {
                out[p * MR + i] = src[p * a.cs];
            }
        }
        for (std::size_t i = rows; i < MR; ++i) {
            for (std::size_t p = 0; p < kc; ++p) {
                out[p * MR + i] = 0.0F;
            }
        }
    }
}

/// Edge tile (rows < MR and/or cols < NR): scalar arithmetic, bounded loads
/// and stores.  The padded accumulator lanes see only packed zeros and are
/// never stored.  The engine drives route edges through micro_edge_staged
/// below; this scalar form remains as KernelGeneric's micro_full on
/// toolchains without vector extensions (see gemm_generic.cpp's
/// !KINET_GEMM_VECTOR_EXT branch — the staged wrapper then stages onto it).
template <int MR, int NR>
void micro_edge(std::size_t kc, const float* __restrict ap, const float* __restrict bp,
                float* __restrict c, std::size_t ldc, std::size_t rows, std::size_t cols,
                bool first, const float* bias) {
    float acc[MR][NR] = {};
    if (!first) {
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) {
                acc[i][j] = c[i * ldc + j];
            }
        }
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const float* a = ap + p * MR;
        const float* b = bp + p * NR;
        for (int i = 0; i < MR; ++i) {
            const float av = a[i];
            for (int j = 0; j < NR; ++j) {
                acc[i][j] += av * b[j];
            }
        }
    }
    if (bias != nullptr) {
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) {
                acc[i][j] += bias[j];
            }
        }
    }
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            c[i * ldc + j] = acc[i][j];
        }
    }
}

/// Edge tile through the *vector* micro-kernel: the tile is staged into a
/// full MR x NR stack buffer (bounded loads/stores against C happen on the
/// copies), so the edge runs the same register-tiled inner loop as a full
/// tile instead of MR*NR scalar multiply-adds per k step.  Per stored
/// element the operation chain is unchanged — load, k-ascending
/// accumulate with the kernel's contraction, bias after the final block —
/// so results are bit-identical to micro_edge; staged lanes beyond
/// (rows, cols) accumulate zeros-initialised garbage-free values that are
/// simply never copied out.  An m % MR != 0 batch (e.g. 128 rows with the
/// 6-row AVX2 kernel) would otherwise spend a third of its GEMM time in
/// the scalar edge.
template <class Kernel>
void micro_edge_staged(std::size_t kc, const float* ap, const float* bp, float* c,
                       std::size_t ldc, std::size_t rows, std::size_t cols, bool first,
                       const float* bias) {
    constexpr int MR = Kernel::MR;
    constexpr int NR = Kernel::NR;
    float tile[static_cast<std::size_t>(MR) * NR] = {};
    if (!first) {
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) {
                tile[i * NR + j] = c[i * ldc + j];
            }
        }
    }
    Kernel::micro_full(kc, ap, bp, tile, NR, first, nullptr);
    if (bias != nullptr) {
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) {
                c[i * ldc + j] = tile[i * NR + j] + bias[j];
            }
        }
    } else {
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) {
                c[i * ldc + j] = tile[i * NR + j];
            }
        }
    }
}

/// No-pad path for n < NR (e.g. the discriminator head's n == 1): the
/// padded engine would spend NR lanes on one useful column and pack a
/// zero-filled strip per k-block.  Each element keeps the engine's
/// determinism contract — one accumulator, k strictly ascending — and
/// Kernel::madd mirrors the micro-kernel's contraction behaviour (FMA on
/// the AVX2 kernel, separate multiply+add on the portable one), so the
/// result is bit-identical to what the padded path produces.
template <class Kernel>
void gemm_smalln(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b,
                 float* c, std::size_t ldc, const float* bias) {
    // 8 output rows advance together per column, giving 8 *independent*
    // accumulator chains in the inner loop — a single chain is bound by
    // the multiply-add latency, not throughput (measured ~5x slower than
    // even the 16x-padded engine at n = 1).  Each element still owns
    // exactly one k-ascending chain, so the blocking changes nothing
    // numerically.
    constexpr std::size_t RB = 8;
    const std::size_t blocks = (m + RB - 1) / RB;
    const std::size_t flops_per_block = std::max<std::size_t>(2 * RB * n * k, 1);
    const std::size_t grain = kGemmMinFlopsPerChunk / flops_per_block + 1;
    parallel_for(blocks, grain, [&](std::size_t blk0, std::size_t blk1) {
        for (std::size_t blk = blk0; blk < blk1; ++blk) {
            const std::size_t i0 = blk * RB;
            const std::size_t rb = std::min<std::size_t>(RB, m - i0);
            const float* ablock = a.data + i0 * a.rs;
            for (std::size_t j = 0; j < n; ++j) {
                const float* bcol = b.data + j * b.cs;
                float acc[RB] = {};
                if (rb == RB) {
                    for (std::size_t p = 0; p < k; ++p) {
                        const float bv = bcol[p * b.rs];
                        const float* ap = ablock + p * a.cs;
                        for (std::size_t r = 0; r < RB; ++r) {
                            acc[r] = Kernel::madd(acc[r], ap[r * a.rs], bv);
                        }
                    }
                } else {
                    for (std::size_t p = 0; p < k; ++p) {
                        const float bv = bcol[p * b.rs];
                        const float* ap = ablock + p * a.cs;
                        for (std::size_t r = 0; r < rb; ++r) {
                            acc[r] = Kernel::madd(acc[r], ap[r * a.rs], bv);
                        }
                    }
                }
                for (std::size_t r = 0; r < rb; ++r) {
                    c[(i0 + r) * ldc + j] = (bias != nullptr) ? acc[r] + bias[j] : acc[r];
                }
            }
        }
    });
}

/// Column-panel parallel drive (the jc loop): workers own disjoint NR-strip
/// ranges of the output width and pack their own A strips (per-thread
/// panels), so wide-but-short GEMMs scale past the row-strip partition,
/// which runs out of strips when m/MR < lanes.  The B strip for a (pc, js)
/// pair comes from `strip_of(pc, kc, js, scratch)` — packing on demand
/// into the per-thread scratch for the unpacked entry points, or pointing
/// into the persistent PackedGemmB layout — so the packing and pre-packed
/// paths share one drive and can never diverge.  Each C element is still
/// written by exactly one worker with the same k-ascending chain, so the
/// partition changes nothing numerically.
template <class Kernel, class StripFn>
void gemm_jc_drive(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, float* c,
                   std::size_t ldc, const float* bias, const StripFn& strip_of) {
    constexpr int MR = Kernel::MR;
    constexpr int NR = Kernel::NR;
    const std::size_t strips = (m + MR - 1) / static_cast<std::size_t>(MR);
    const std::size_t jstrips = (n + NR - 1) / static_cast<std::size_t>(NR);
    const std::size_t flops_per_jstrip = std::max<std::size_t>(2 * NR * m * k, 1);
    const std::size_t grain = kGemmMinFlopsPerChunk / flops_per_jstrip + 1;
    parallel_for(jstrips, grain, [&](std::size_t js0, std::size_t js1) {
        thread_local std::vector<float> apack;
        thread_local std::vector<float> bstrip;
        for (std::size_t pc = 0; pc < k; pc += kGemmKC) {
            const std::size_t kc = std::min(kGemmKC, k - pc);
            const bool first = pc == 0;
            const float* blk_bias = (pc + kc == k) ? bias : nullptr;
            // All A strips for this k-block, packed once per worker — m is
            // small in the regime that selects this path.
            apack.resize(strips * kc * MR);
            for (std::size_t s = 0; s < strips; ++s) {
                const std::size_t i0 = s * MR;
                pack_a_strip<MR>(a, i0, std::min<std::size_t>(MR, m - i0), pc, kc,
                                 apack.data() + s * kc * MR);
            }
            bstrip.resize(kc * NR);
            for (std::size_t js = js0; js < js1; ++js) {
                const std::size_t j0 = js * NR;
                const std::size_t cols = std::min<std::size_t>(NR, n - j0);
                const float* bp = strip_of(pc, kc, js, bstrip.data());
                const float* strip_bias = (blk_bias != nullptr) ? blk_bias + j0 : nullptr;
                for (std::size_t s = 0; s < strips; ++s) {
                    const std::size_t i0 = s * MR;
                    const std::size_t rows = std::min<std::size_t>(MR, m - i0);
                    float* ctile = c + i0 * ldc + j0;
                    if (rows == MR && cols == NR) {
                        Kernel::micro_full(kc, apack.data() + s * kc * MR, bp, ctile, ldc, first,
                                           strip_bias);
                    } else {
                        micro_edge_staged<Kernel>(kc, apack.data() + s * kc * MR, bp, ctile, ldc,
                                                  rows, cols, first, strip_bias);
                    }
                }
            }
        }
    });
}

template <class Kernel>
void gemm_engine_jc(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b,
                    float* c, std::size_t ldc, const float* bias) {
    constexpr int NR = Kernel::NR;
    gemm_jc_drive<Kernel>(
        m, n, k, a, c, ldc, bias,
        [&b, n](std::size_t pc, std::size_t kc, std::size_t js, float* scratch) {
            const std::size_t j0 = js * NR;
            pack_b_panel<NR>(b, pc, kc, j0, std::min<std::size_t>(NR, n - j0), scratch);
            return static_cast<const float*>(scratch);
        });
}

/// Drives Kernel::micro_full over packed panels.  Kernel provides:
///   static constexpr int MR, NR;
///   static void micro_full(std::size_t kc, const float* ap, const float* bp,
///                          float* c, std::size_t ldc, bool first,
///                          const float* bias);
///   static float madd(float acc, float a, float b);  // kernel's contraction
template <class Kernel>
void gemm_engine(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b,
                 float* c, std::size_t ldc, const float* bias) {
    constexpr int MR = Kernel::MR;
    constexpr int NR = Kernel::NR;
    static_assert(kGemmNC % NR == 0, "NC must be a whole number of NR strips");
    if (n < static_cast<std::size_t>(NR)) {
        gemm_smalln<Kernel>(m, n, k, a, b, c, ldc, bias);
        return;
    }
    const std::size_t strips = (m + MR - 1) / static_cast<std::size_t>(MR);
    if (strips * 2 < (n + NR - 1) / static_cast<std::size_t>(NR)) {
        // Short-and-wide: the row partition has too few strips to feed the
        // pool; parallelise over column panels instead.
        gemm_engine_jc<Kernel>(m, n, k, a, b, c, ldc, bias);
        return;
    }

    // Reused across calls on the packing (calling) thread; workers read it.
    thread_local std::vector<float> bpack;

    for (std::size_t jc = 0; jc < n; jc += kGemmNC) {
        const std::size_t nc = std::min(kGemmNC, n - jc);
        const std::size_t jstrips = (nc + NR - 1) / static_cast<std::size_t>(NR);
        for (std::size_t pc = 0; pc < k; pc += kGemmKC) {
            const std::size_t kc = std::min(kGemmKC, k - pc);
            const bool first = pc == 0;
            const float* tile_bias = (pc + kc == k && bias != nullptr) ? bias + jc : nullptr;

            bpack.resize(jstrips * kc * NR);
            pack_b_panel<NR>(b, pc, kc, jc, nc, bpack.data());
            const float* bp = bpack.data();

            const std::size_t flops_per_strip =
                std::max<std::size_t>(2 * static_cast<std::size_t>(MR) * nc * kc, 1);
            const std::size_t grain = kGemmMinFlopsPerChunk / flops_per_strip + 1;
            parallel_for(strips, grain, [&](std::size_t s0, std::size_t s1) {
                thread_local std::vector<float> apack;
                apack.resize(kc * MR);
                for (std::size_t s = s0; s < s1; ++s) {
                    const std::size_t i0 = s * MR;
                    const std::size_t rows = std::min<std::size_t>(MR, m - i0);
                    pack_a_strip<MR>(a, i0, rows, pc, kc, apack.data());
                    for (std::size_t js = 0; js < jstrips; ++js) {
                        const std::size_t j0 = jc + js * NR;
                        const std::size_t cols = std::min<std::size_t>(NR, jc + nc - j0);
                        float* ctile = c + i0 * ldc + j0;
                        const float* strip_bias =
                            (tile_bias != nullptr) ? tile_bias + js * NR : nullptr;
                        if (rows == MR && cols == NR) {
                            Kernel::micro_full(kc, apack.data(), bp + js * kc * NR, ctile, ldc,
                                               first, strip_bias);
                        } else {
                            micro_edge_staged<Kernel>(kc, apack.data(), bp + js * kc * NR, ctile, ldc,
                                               rows, cols, first, strip_bias);
                        }
                    }
                }
            });
        }
    }
}

/// Packs the whole of B (k x n) into the persistent PackedGemmB layout:
/// KC-deep blocks in pc-ascending order, each holding every NR strip of the
/// full width ([pc][js][p][NR], zero-padded columns).  The strip for
/// (pc, js) therefore lives at jstrips*NR*pc + js*kc*NR — the same strips
/// pack_b_panel produces per call, laid out once.
template <int NR>
void pack_b_full(std::size_t k, std::size_t n, GemmOperand b, std::vector<float>& out) {
    const std::size_t jstrips = (n + NR - 1) / static_cast<std::size_t>(NR);
    out.resize(jstrips * NR * k);
    for (std::size_t pc = 0; pc < k; pc += kGemmKC) {
        const std::size_t kc = std::min(kGemmKC, k - pc);
        pack_b_panel<NR>(b, pc, kc, 0, n, out.data() + jstrips * NR * pc);
    }
}

/// GEMM over a pre-packed B (pack_b_full layout).  Identical arithmetic to
/// the packing engine — same micro-kernels, same KC blocking, same
/// k-ascending accumulation — so results are bit-identical to the unpacked
/// entry points; only the per-call B packing work disappears.  Parallelises
/// over row strips, or over column panels (per-thread A panels) when the
/// row partition is too shallow.
template <class Kernel>
void gemm_packed_engine(std::size_t m, std::size_t n, std::size_t k, GemmOperand a,
                        const float* packed, float* c, std::size_t ldc, const float* bias) {
    constexpr int MR = Kernel::MR;
    constexpr int NR = Kernel::NR;
    if (n < static_cast<std::size_t>(NR)) {
        // A single zero-padded strip per k-block: element (p, j) of B sits
        // at packed[p*NR + j], i.e. an NR-row-strided operand view the
        // no-pad path can read directly.
        gemm_smalln<Kernel>(m, n, k, a, GemmOperand{packed, NR, 1}, c, ldc, bias);
        return;
    }
    const std::size_t strips = (m + MR - 1) / static_cast<std::size_t>(MR);
    const std::size_t jstrips = (n + NR - 1) / static_cast<std::size_t>(NR);

    if (strips * 2 < jstrips) {
        gemm_jc_drive<Kernel>(
            m, n, k, a, c, ldc, bias,
            [packed, jstrips](std::size_t pc, std::size_t kc, std::size_t js,
                              float* /*scratch*/) {
                return packed + jstrips * NR * pc + js * kc * NR;
            });
        return;
    }

    for (std::size_t pc = 0; pc < k; pc += kGemmKC) {
        const std::size_t kc = std::min(kGemmKC, k - pc);
        const bool first = pc == 0;
        const float* blk_bias = (pc + kc == k) ? bias : nullptr;
        const float* bblock = packed + jstrips * NR * pc;
        const std::size_t flops_per_strip = std::max<std::size_t>(2 * MR * n * kc, 1);
        const std::size_t grain = kGemmMinFlopsPerChunk / flops_per_strip + 1;
        parallel_for(strips, grain, [&](std::size_t s0, std::size_t s1) {
            thread_local std::vector<float> apack;
            apack.resize(kc * MR);
            for (std::size_t s = s0; s < s1; ++s) {
                const std::size_t i0 = s * MR;
                const std::size_t rows = std::min<std::size_t>(MR, m - i0);
                pack_a_strip<MR>(a, i0, rows, pc, kc, apack.data());
                for (std::size_t js = 0; js < jstrips; ++js) {
                    const std::size_t j0 = js * NR;
                    const std::size_t cols = std::min<std::size_t>(NR, n - j0);
                    float* ctile = c + i0 * ldc + j0;
                    const float* strip_bias = (blk_bias != nullptr) ? blk_bias + j0 : nullptr;
                    if (rows == MR && cols == NR) {
                        Kernel::micro_full(kc, apack.data(), bblock + js * kc * NR, ctile, ldc,
                                           first, strip_bias);
                    } else {
                        micro_edge_staged<Kernel>(kc, apack.data(), bblock + js * kc * NR, ctile, ldc,
                                           rows, cols, first, strip_bias);
                    }
                }
            }
        });
    }
}

}  // namespace kinet::tensor::detail

#endif  // KINETGAN_TENSOR_GEMM_ENGINE_H
