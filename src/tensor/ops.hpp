// Free-function linear-algebra kernels over Matrix.
//
// These are the only numeric kernels the neural stack uses; everything else
// is composed from them.  The matmul family runs on the packed,
// cache-blocked GEMM engine (src/tensor/gemm.hpp): MR x NR register-tiled
// micro-kernels over zero-padded panels, SIMD-dispatched at runtime, with
// row-strip parallelism across the global thread pool
// (src/common/parallel.hpp) and a serial inline path for small shapes.
// Each output element's accumulation order is fixed (strictly k-ascending
// through a single running accumulator), so results are bit-identical
// run-to-run at any thread count (verified in tests/test_gemm.cpp,
// micro-benched in bench_micro).
#ifndef KINETGAN_TENSOR_OPS_H
#define KINETGAN_TENSOR_OPS_H

#include <functional>

#include "src/tensor/gemm.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::tensor {

/// C = A · B  (A: m×k, B: k×n).
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// Packs a k×n matrix once into the engine's persistent strip layout for
/// reuse across matmul_packed calls (the inference fast path: pack a weight
/// matrix at first use, never again).
[[nodiscard]] PackedGemmB pack_gemm_b(const Matrix& b);

/// C = A · B over a pre-packed B — bit-identical to matmul(a, b).
[[nodiscard]] Matrix matmul_packed(const Matrix& a, const PackedGemmB& b);

/// C = A · B + bias over a pre-packed B — bit-identical to matmul_bias.
[[nodiscard]] Matrix matmul_packed_bias(const Matrix& a, const PackedGemmB& b,
                                        const Matrix& bias);

/// matmul_packed_bias into a caller-owned output (resize_for_overwrite —
/// allocation-free once warm).
void matmul_packed_bias_into(const Matrix& a, const PackedGemmB& b, const Matrix& bias,
                             Matrix& out);

/// C = A · B + bias (bias: 1×n, broadcast over rows) in one pass — the
/// Linear-layer hot path, bit-identical to matmul followed by
/// add_row_broadcast (the bias joins each element after its full k
/// accumulation).
[[nodiscard]] Matrix matmul_bias(const Matrix& a, const Matrix& b, const Matrix& bias);

/// C = Aᵀ · B (without materialising Aᵀ).
[[nodiscard]] Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A · Bᵀ (without materialising Bᵀ).
[[nodiscard]] Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Cache-blocked out-of-place transpose.
[[nodiscard]] Matrix transpose(const Matrix& a);

/// Elementwise binary ops.  Shapes are checked before any storage is
/// copied or written.
[[nodiscard]] Matrix add(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix sub(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix mul(const Matrix& a, const Matrix& b);
/// a ⊙= b without allocating.
void mul_inplace(Matrix& a, const Matrix& b);

/// Elementwise map.
[[nodiscard]] Matrix map(const Matrix& a, const std::function<float(float)>& f);
/// Elementwise map without allocating.
void map_inplace(Matrix& a, const std::function<float(float)>& f);

/// Adds a 1×cols row vector to every row of `a`.
[[nodiscard]] Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
void add_row_broadcast_inplace(Matrix& a, const Matrix& row);

/// Column-wise sum / mean as 1×cols matrices.
[[nodiscard]] Matrix col_sum(const Matrix& a);
[[nodiscard]] Matrix col_mean(const Matrix& a);
/// Column-wise (population) variance as 1×cols.
[[nodiscard]] Matrix col_var(const Matrix& a);
/// Fused column mean + population variance: one call, two sweeps instead
/// of the three the unfused pair costs, bit-identical results.  `mean` and
/// `var` are resized to 1×cols.
void col_mean_var(const Matrix& a, Matrix& mean, Matrix& var);

/// Sum of all entries.
[[nodiscard]] double total_sum(const Matrix& a);

/// Index of the maximum entry within columns [begin, end) for each row.
[[nodiscard]] std::vector<std::size_t> row_argmax(const Matrix& a, std::size_t begin,
                                                  std::size_t end);

/// Row-wise softmax over columns [begin, end) written in place.
void softmax_rows_inplace(Matrix& a, std::size_t begin, std::size_t end);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(const Matrix& a);

}  // namespace kinet::tensor

#endif  // KINETGAN_TENSOR_OPS_H
