// Free-function linear-algebra kernels over Matrix.
//
// These are the only numeric kernels the neural stack uses; everything else
// is composed from them.  The matmul family runs row-blocked across the
// global thread pool (src/common/parallel.hpp) with a serial inline path
// for small shapes; each output row's accumulation order is fixed, so
// results are bit-identical run-to-run at any thread count (micro-benched
// in bench_micro).
#ifndef KINETGAN_TENSOR_OPS_H
#define KINETGAN_TENSOR_OPS_H

#include <functional>

#include "src/tensor/matrix.hpp"

namespace kinet::tensor {

/// C = A · B  (A: m×k, B: k×n).
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C = Aᵀ · B (without materialising Aᵀ).
[[nodiscard]] Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A · Bᵀ (without materialising Bᵀ).
[[nodiscard]] Matrix matmul_nt(const Matrix& a, const Matrix& b);

[[nodiscard]] Matrix transpose(const Matrix& a);

/// Elementwise binary ops (shape-checked).
[[nodiscard]] Matrix add(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix sub(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix mul(const Matrix& a, const Matrix& b);

/// Elementwise map.
[[nodiscard]] Matrix map(const Matrix& a, const std::function<float(float)>& f);

/// Adds a 1×cols row vector to every row of `a`.
[[nodiscard]] Matrix add_row_broadcast(const Matrix& a, const Matrix& row);

/// Column-wise sum / mean as 1×cols matrices.
[[nodiscard]] Matrix col_sum(const Matrix& a);
[[nodiscard]] Matrix col_mean(const Matrix& a);
/// Column-wise (population) variance as 1×cols.
[[nodiscard]] Matrix col_var(const Matrix& a);

/// Sum of all entries.
[[nodiscard]] double total_sum(const Matrix& a);

/// Index of the maximum entry within columns [begin, end) for each row.
[[nodiscard]] std::vector<std::size_t> row_argmax(const Matrix& a, std::size_t begin,
                                                  std::size_t end);

/// Row-wise softmax over columns [begin, end) written in place.
void softmax_rows_inplace(Matrix& a, std::size_t begin, std::size_t end);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(const Matrix& a);

}  // namespace kinet::tensor

#endif  // KINETGAN_TENSOR_OPS_H
