// Dense row-major float32 matrix — the numeric workhorse under the neural
// stack.  Deliberately minimal: 2-D only, contiguous storage, bounds-checked
// element access in debug-friendly form, and value semantics throughout.
#ifndef KINETGAN_TENSOR_MATRIX_H
#define KINETGAN_TENSOR_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace kinet::tensor {

/// Dense rows x cols matrix of float with value semantics.
class Matrix {
public:
    Matrix() = default;
    /// Zero-initialised rows x cols matrix.
    Matrix(std::size_t rows, std::size_t cols);
    /// Fill-initialised matrix.
    Matrix(std::size_t rows, std::size_t cols, float fill);
    /// From nested initializer list (row major); rows must be equal length.
    Matrix(std::initializer_list<std::initializer_list<float>> init);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] float& at(std::size_t r, std::size_t c);
    [[nodiscard]] float at(std::size_t r, std::size_t c) const;

    /// Unchecked element access for hot loops.
    float& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
    float operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

    [[nodiscard]] std::span<float> row(std::size_t r);
    [[nodiscard]] std::span<const float> row(std::size_t r) const;

    [[nodiscard]] std::span<float> data() noexcept { return data_; }
    [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

    void fill(float value);
    /// Resets to rows x cols zeros (reuses storage when shapes match).
    void resize(std::size_t rows, std::size_t cols);
    /// Reshapes to rows x cols without zero-filling: contents are
    /// unspecified and the caller must overwrite every element.  Reuses
    /// storage whenever capacity allows — the hot-path alternative to
    /// resize() for buffers that are fully rewritten each step.
    void resize_for_overwrite(std::size_t rows, std::size_t cols);

    /// In-place elementwise operations (shape-checked).
    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(float scalar);

    /// Appends the rows of `other` (column counts must match; an empty
    /// matrix may absorb anything).
    void append_rows(const Matrix& other);

    /// Appends rows [row_begin, row_end) of `other` — the chunk-assembly
    /// primitive of the streaming sample path.
    void append_row_range(const Matrix& other, std::size_t row_begin, std::size_t row_end);

    /// Drops all rows but keeps the column count and the storage capacity
    /// (buffer reuse across streaming chunks).
    void clear_rows() noexcept {
        rows_ = 0;
        data_.clear();
    }

    /// Returns a matrix holding the selected rows, in the given order.
    [[nodiscard]] Matrix gather_rows(std::span<const std::size_t> indices) const;

    /// Returns columns [begin, end) as a new matrix.
    [[nodiscard]] Matrix slice_cols(std::size_t begin, std::size_t end) const;

    /// Horizontal concatenation (row counts must match).
    [[nodiscard]] static Matrix hcat(const Matrix& a, const Matrix& b);

    friend bool operator==(const Matrix& a, const Matrix& b) = default;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

}  // namespace kinet::tensor

#endif  // KINETGAN_TENSOR_MATRIX_H
