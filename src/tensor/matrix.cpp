#include "src/tensor/matrix.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace kinet::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> init) {
    rows_ = init.size();
    cols_ = (rows_ == 0) ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        KINET_CHECK(row.size() == cols_, "ragged initializer list for Matrix");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

float& Matrix::at(std::size_t r, std::size_t c) {
    KINET_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
    KINET_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
}

std::span<float> Matrix::row(std::size_t r) {
    KINET_CHECK(r < rows_, "Matrix::row out of range");
    return std::span<float>(data_).subspan(r * cols_, cols_);
}

std::span<const float> Matrix::row(std::size_t r) const {
    KINET_CHECK(r < rows_, "Matrix::row out of range");
    return std::span<const float>(data_).subspan(r * cols_, cols_);
}

void Matrix::fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0F);
}

void Matrix::resize_for_overwrite(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
}

Matrix& Matrix::operator+=(const Matrix& other) {
    KINET_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
    }
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
    KINET_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in -=");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= other.data_[i];
    }
    return *this;
}

Matrix& Matrix::operator*=(float scalar) {
    for (auto& v : data_) {
        v *= scalar;
    }
    return *this;
}

void Matrix::append_rows(const Matrix& other) {
    if (other.empty()) {
        return;
    }
    if (empty()) {
        *this = other;
        return;
    }
    KINET_CHECK(cols_ == other.cols_, "append_rows: column mismatch");
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    rows_ += other.rows_;
}

void Matrix::append_row_range(const Matrix& other, std::size_t row_begin, std::size_t row_end) {
    KINET_CHECK(row_begin <= row_end && row_end <= other.rows_,
                "append_row_range: row range invalid");
    if (row_begin == row_end) {
        return;
    }
    if (empty() && rows_ == 0 && cols_ == 0) {
        cols_ = other.cols_;
    }
    KINET_CHECK(cols_ == other.cols_, "append_row_range: column mismatch");
    const auto first = other.data_.begin() + static_cast<std::ptrdiff_t>(row_begin * cols_);
    const auto last = other.data_.begin() + static_cast<std::ptrdiff_t>(row_end * cols_);
    data_.insert(data_.end(), first, last);
    rows_ += row_end - row_begin;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
    Matrix out(indices.size(), cols_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        KINET_CHECK(indices[i] < rows_, "gather_rows index out of range");
        const auto src = row(indices[i]);
        std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
}

Matrix Matrix::slice_cols(std::size_t begin, std::size_t end) const {
    KINET_CHECK(begin <= end && end <= cols_, "slice_cols range invalid");
    Matrix out(rows_, end - begin);
    for (std::size_t r = 0; r < rows_; ++r) {
        const auto src = row(r);
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(begin),
                  src.begin() + static_cast<std::ptrdiff_t>(end), out.row(r).begin());
    }
    return out;
}

Matrix Matrix::hcat(const Matrix& a, const Matrix& b) {
    if (a.empty()) {
        return b;
    }
    if (b.empty()) {
        return a;
    }
    KINET_CHECK(a.rows() == b.rows(), "hcat: row mismatch");
    Matrix out(a.rows(), a.cols() + b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        auto dst = out.row(r);
        const auto ra = a.row(r);
        const auto rb = b.row(r);
        std::copy(ra.begin(), ra.end(), dst.begin());
        std::copy(rb.begin(), rb.end(), dst.begin() + static_cast<std::ptrdiff_t>(a.cols()));
    }
    return out;
}

}  // namespace kinet::tensor
