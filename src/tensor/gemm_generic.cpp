// Portable GEMM instantiation, compiled for the build's baseline ISA.
//
// The 4x8 micro-kernel keeps its accumulator block in 4 named 8-float
// vector variables; on plain x86-64 the compiler lowers each to a pair of
// SSE registers (8 of 16 XMM), and on other GNU-compatible targets to
// whatever the baseline vector unit offers.  Toolchains without vector
// extensions get a scalar fixed-width loop the optimizer can still unroll.
#include "src/tensor/gemm_engine.hpp"

namespace kinet::tensor::detail {

namespace {

struct KernelGeneric {
    static constexpr int MR = 4;
    static constexpr int NR = 8;

    /// The no-pad small-n path uses this to mirror the micro-kernel's
    /// per-operation rounding: this translation unit is compiled for the
    /// baseline ISA, where the vector accumulate lowers to separate
    /// multiply and add — so the scalar form is the same two roundings.
    static float madd(float acc, float a, float b) { return acc + a * b; }

#ifdef KINET_GEMM_VECTOR_EXT
    static void micro_full(std::size_t kc, const float* __restrict ap, const float* __restrict bp,
                           float* __restrict c, std::size_t ldc, bool first, const float* bias) {
        vf8 c0;
        vf8 c1;
        vf8 c2;
        vf8 c3;
        if (first) {
            c0 = c1 = c2 = c3 = vf8{};
        } else {
            c0 = vload8(c + 0 * ldc);
            c1 = vload8(c + 1 * ldc);
            c2 = vload8(c + 2 * ldc);
            c3 = vload8(c + 3 * ldc);
        }
        for (std::size_t p = 0; p < kc; ++p) {
            const float* a = ap + p * MR;
            const vf8 b0 = vload8(bp + p * NR);
            c0 += vsplat8(a[0]) * b0;
            c1 += vsplat8(a[1]) * b0;
            c2 += vsplat8(a[2]) * b0;
            c3 += vsplat8(a[3]) * b0;
        }
        if (bias != nullptr) {
            const vf8 b0 = vload8(bias);
            c0 += b0;
            c1 += b0;
            c2 += b0;
            c3 += b0;
        }
        vstore8(c + 0 * ldc, c0);
        vstore8(c + 1 * ldc, c1);
        vstore8(c + 2 * ldc, c2);
        vstore8(c + 3 * ldc, c3);
    }
#else   // !KINET_GEMM_VECTOR_EXT
    static void micro_full(std::size_t kc, const float* ap, const float* bp, float* c,
                           std::size_t ldc, bool first, const float* bias) {
        micro_edge<MR, NR>(kc, ap, bp, c, ldc, MR, NR, first, bias);
    }
#endif  // KINET_GEMM_VECTOR_EXT
};

}  // namespace

void gemm_generic(std::size_t m, std::size_t n, std::size_t k, GemmOperand a, GemmOperand b,
                  float* c, std::size_t ldc, const float* bias) {
    gemm_engine<KernelGeneric>(m, n, k, a, b, c, ldc, bias);
}

void pack_b_generic(std::size_t k, std::size_t n, GemmOperand b, std::vector<float>& out) {
    pack_b_full<KernelGeneric::NR>(k, n, b, out);
}

void gemm_packed_generic(std::size_t m, std::size_t n, std::size_t k, GemmOperand a,
                         const float* packed, float* c, std::size_t ldc, const float* bias) {
    gemm_packed_engine<KernelGeneric>(m, n, k, a, packed, c, ldc, bias);
}

}  // namespace kinet::tensor::detail
