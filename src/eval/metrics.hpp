// Statistical distance measures (paper Sec. V-A).
//
// * Earth Mover's Distance: 1-D Wasserstein-1 per column.  Continuous
//   columns integrate |CDF_a - CDF_b| over the merged sample support and are
//   normalised by the real column's range (scale-free, as the paper's
//   magnitudes imply); categorical columns use total variation, which equals
//   EMD under the unit ground metric.
// * Combined distance: the paper's pragmatic mixed-type metric — L1 norm on
//   category histograms for categorical columns, L2 norm on range-normalised
//   decile vectors for continuous columns, averaged over columns.
#ifndef KINETGAN_EVAL_METRICS_H
#define KINETGAN_EVAL_METRICS_H

#include "src/data/table.hpp"
#include "src/data/transformer.hpp"

namespace kinet::eval {

/// EMD between the two tables' distributions of one column.
[[nodiscard]] double column_emd(const data::Table& real, const data::Table& synthetic,
                                std::size_t col);

/// Mean per-column EMD — the "EMD" column of Table I.
[[nodiscard]] double mean_emd(const data::Table& real, const data::Table& synthetic);

/// L1 histogram distance of a categorical column.
[[nodiscard]] double categorical_l1(const data::Table& real, const data::Table& synthetic,
                                    std::size_t col);

/// L2 distance between range-normalised decile vectors of a continuous column.
[[nodiscard]] double continuous_l2(const data::Table& real, const data::Table& synthetic,
                                   std::size_t col);

/// The "Distance" column of Table I (mean of the per-column L1/L2 terms).
[[nodiscard]] double combined_distance(const data::Table& real, const data::Table& synthetic);

/// Mean absolute difference between the two tables' Pearson correlation
/// matrices over continuous columns — a cross-correlation fidelity check.
[[nodiscard]] double correlation_distance(const data::Table& real, const data::Table& synthetic);

/// Likelihood fitness: mean log-likelihood of the synthetic continuous values
/// under the per-column GMMs fitted on real data (higher is better).
[[nodiscard]] double likelihood_fitness(const data::TableTransformer& fitted_on_real,
                                        const data::Table& synthetic);

/// Mixed-type row distance used by the privacy attacks: categorical columns
/// contribute 0/1 mismatch, continuous columns |diff| / range(real column).
/// `ranges` must hold (lo, hi) per column (ignored for categorical).
struct ColumnRanges {
    std::vector<float> lo;
    std::vector<float> hi;
};
[[nodiscard]] ColumnRanges compute_ranges(const data::Table& table);
[[nodiscard]] double mixed_row_distance(const data::Table& a, std::size_t row_a,
                                        const data::Table& b, std::size_t row_b,
                                        const std::vector<std::size_t>& columns,
                                        const ColumnRanges& ranges);

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_METRICS_H
