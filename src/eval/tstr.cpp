#include "src/eval/tstr.hpp"

#include <memory>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/eval/classifiers/decision_tree.hpp"
#include "src/eval/classifiers/knn.hpp"
#include "src/eval/classifiers/logistic_regression.hpp"
#include "src/eval/classifiers/mlp_classifier.hpp"
#include "src/eval/classifiers/naive_bayes.hpp"
#include "src/eval/classifiers/random_forest.hpp"

namespace kinet::eval {

std::vector<TstrResult> evaluate_tstr(const data::Table& train, const data::Table& test,
                                      std::size_t label_column, TstrOptions options) {
    KINET_CHECK(train.rows() > 0 && test.rows() > 0, "evaluate_tstr: empty table");

    // Optional training subsample for runtime control.
    data::Table train_used = train;
    if (options.max_train_rows > 0 && train.rows() > options.max_train_rows) {
        Rng rng(options.seed);
        const auto idx = rng.sample_without_replacement(train.rows(), options.max_train_rows);
        train_used = train.select_rows(idx);
    }

    FeatureEncoder encoder;
    encoder.fit(train_used, label_column);
    const Matrix x_train = encoder.encode(train_used);
    const auto y_train = encoder.labels(train_used);
    const Matrix x_test = encoder.encode(test);
    const auto y_test = encoder.labels(test);
    const std::size_t classes = encoder.class_count();

    std::vector<std::unique_ptr<Classifier>> suite;
    {
        DecisionTreeOptions dt;
        dt.seed = options.seed + 1;
        suite.push_back(std::make_unique<DecisionTree>(dt));
        RandomForestOptions rf;
        rf.seed = options.seed + 2;
        suite.push_back(std::make_unique<RandomForest>(rf));
        LogisticRegressionOptions lr;
        lr.seed = options.seed + 3;
        suite.push_back(std::make_unique<LogisticRegression>(lr));
        suite.push_back(std::make_unique<Knn>());
        suite.push_back(std::make_unique<GaussianNaiveBayes>());
        MlpClassifierOptions mlp;
        mlp.seed = options.seed + 4;
        suite.push_back(std::make_unique<MlpClassifier>(mlp));
    }

    std::vector<TstrResult> results;
    results.reserve(suite.size());
    for (auto& clf : suite) {
        clf->fit(x_train, y_train, classes);
        const auto pred = clf->predict(x_test);
        TstrResult res;
        res.classifier = clf->name();
        res.accuracy = accuracy(pred, y_test);
        res.macro_f1 = macro_f1(pred, y_test, classes);
        results.push_back(std::move(res));
    }
    return results;
}

double average_accuracy(const std::vector<TstrResult>& results) {
    KINET_CHECK(!results.empty(), "average_accuracy: empty results");
    double acc = 0.0;
    for (const auto& r : results) {
        acc += r.accuracy;
    }
    return acc / static_cast<double>(results.size());
}

}  // namespace kinet::eval
