// Train-on-Synthetic-Test-on-Real (TSTR) utility harness — produces the
// per-classifier and average NIDS accuracies behind Figures 3 and 4.
#ifndef KINETGAN_EVAL_TSTR_H
#define KINETGAN_EVAL_TSTR_H

#include <string>
#include <vector>

#include "src/data/table.hpp"

namespace kinet::eval {

struct TstrResult {
    std::string classifier;
    double accuracy = 0.0;
    double macro_f1 = 0.0;
};

struct TstrOptions {
    std::uint64_t seed = 5;
    /// Optional cap on training rows per classifier (0 = no cap).
    std::size_t max_train_rows = 0;
};

/// Trains the full classifier suite on `train`, evaluates on `test`.
[[nodiscard]] std::vector<TstrResult> evaluate_tstr(const data::Table& train,
                                                    const data::Table& test,
                                                    std::size_t label_column,
                                                    TstrOptions options = {});

/// Mean accuracy over a TSTR result set.
[[nodiscard]] double average_accuracy(const std::vector<TstrResult>& results);

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_TSTR_H
