#include "src/eval/privacy/attribute_inference.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/eval/metrics.hpp"

namespace kinet::eval {

double attribute_inference_attack(const data::Table& original, const data::Table& synthetic,
                                  const AttributeInferenceOptions& options) {
    KINET_CHECK(!options.qi_columns.empty(), "attribute_inference: need QI columns");
    KINET_CHECK(original.meta(options.sensitive_column).is_categorical(),
                "attribute_inference: sensitive column must be categorical");
    KINET_CHECK(original.rows() > 0 && synthetic.rows() > 0, "attribute_inference: empty inputs");

    Rng rng(options.seed);
    const ColumnRanges ranges = compute_ranges(original);
    const std::size_t classes = original.meta(options.sensitive_column).categories.size();

    // Attacker's reference set (subsampled synthetic release).
    std::vector<std::size_t> reference;
    if (synthetic.rows() > options.max_reference) {
        reference = rng.sample_without_replacement(synthetic.rows(), options.max_reference);
    } else {
        reference.resize(synthetic.rows());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            reference[i] = i;
        }
    }

    const std::size_t n_targets = std::min<std::size_t>(options.max_targets, original.rows());
    const auto targets = rng.sample_without_replacement(original.rows(), n_targets);

    const std::size_t k = std::min<std::size_t>(options.k, reference.size());
    std::vector<std::pair<double, std::size_t>> heap;  // (dist, sensitive value)

    std::size_t hits = 0;
    for (const std::size_t target : targets) {
        heap.clear();
        for (const std::size_t s : reference) {
            const double d =
                mixed_row_distance(original, target, synthetic, s, options.qi_columns, ranges);
            const std::size_t value = synthetic.category_at(s, options.sensitive_column);
            if (heap.size() < k) {
                heap.emplace_back(d, value);
                std::push_heap(heap.begin(), heap.end());
            } else if (d < heap.front().first) {
                std::pop_heap(heap.begin(), heap.end());
                heap.back() = {d, value};
                std::push_heap(heap.begin(), heap.end());
            }
        }
        std::vector<std::size_t> votes(classes, 0);
        for (const auto& [dist, value] : heap) {
            ++votes[value];
        }
        std::size_t guess = 0;
        for (std::size_t c = 1; c < classes; ++c) {
            if (votes[c] > votes[guess]) {
                guess = c;
            }
        }
        hits += (guess == original.category_at(target, options.sensitive_column)) ? 1 : 0;
    }
    return static_cast<double>(hits) / static_cast<double>(n_targets);
}

}  // namespace kinet::eval
