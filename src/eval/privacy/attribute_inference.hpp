// Attribute-inference attack — Figure 6.
//
// The adversary trains a k-NN model on the synthetic release mapping
// quasi-identifiers to a sensitive attribute, then applies it to real
// records.  Attack accuracy is the fraction of real records whose sensitive
// value is recovered — high values mean the synthetic data leaks fine-grained
// attribute correlations.
#ifndef KINETGAN_EVAL_PRIVACY_ATTRIBUTE_INFERENCE_H
#define KINETGAN_EVAL_PRIVACY_ATTRIBUTE_INFERENCE_H

#include <vector>

#include "src/data/table.hpp"

namespace kinet::eval {

struct AttributeInferenceOptions {
    std::vector<std::size_t> qi_columns;  // what the adversary observes
    std::size_t sensitive_column = 0;     // categorical target to infer
    std::size_t k = 5;
    std::uint64_t seed = 19;
    std::size_t max_targets = 1500;  // evaluated real rows (subsampled)
    std::size_t max_reference = 3000;  // synthetic rows used by the attacker
};

[[nodiscard]] double attribute_inference_attack(const data::Table& original,
                                                const data::Table& synthetic,
                                                const AttributeInferenceOptions& options);

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_PRIVACY_ATTRIBUTE_INFERENCE_H
