// Re-identification (linkage) attack — Figure 5.
//
// Threat model: the adversary holds a fraction p of the original records
// (with identities) and the released synthetic table.  A target original
// record is re-identified when
//   (a) it belongs to the adversary's prior knowledge, or
//   (b) some synthetic record lies within `match_epsilon` of it in
//       quasi-identifier space AND that synthetic record is unambiguous —
//       the target is the only original record that close (unique linkage).
// Case (b) is where model behaviour matters: generators that copy or nearly
// copy training rows leak unique matches; generators that generalise do not.
// Attack accuracy therefore floors at ≈ p and grows with memorisation.
#ifndef KINETGAN_EVAL_PRIVACY_REIDENTIFICATION_H
#define KINETGAN_EVAL_PRIVACY_REIDENTIFICATION_H

#include <vector>

#include "src/data/table.hpp"

namespace kinet::eval {

struct ReidentificationOptions {
    /// Fraction of original records the adversary already knows (0.3/0.6/0.9).
    double known_fraction = 0.3;
    /// Quasi-identifier columns used for linkage.
    std::vector<std::size_t> qi_columns;
    /// Normalised mixed-distance threshold for a candidate match.  Tight by
    /// design: the attack targets (near-)copies — memorisation — not mere
    /// distributional closeness, which any *good* generator exhibits.
    double match_epsilon = 0.015;
    /// The link counts as unique only when every other original record is
    /// more than `uniqueness_margin` x the match distance away from the
    /// matched synthetic record.
    double uniqueness_margin = 1.5;
    std::uint64_t seed = 17;
    /// Cap on original rows evaluated (subsampled) to bound the O(n·m) scan.
    std::size_t max_targets = 1500;
};

/// Returns attack accuracy: fraction of evaluated original records uniquely
/// re-identified under the threat model above.
[[nodiscard]] double reidentification_attack(const data::Table& original,
                                             const data::Table& synthetic,
                                             const ReidentificationOptions& options);

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_PRIVACY_REIDENTIFICATION_H
