#include "src/eval/privacy/reidentification.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/eval/metrics.hpp"

namespace kinet::eval {

double reidentification_attack(const data::Table& original, const data::Table& synthetic,
                               const ReidentificationOptions& options) {
    KINET_CHECK(options.known_fraction >= 0.0 && options.known_fraction <= 1.0,
                "reidentification: known_fraction must be in [0, 1]");
    KINET_CHECK(!options.qi_columns.empty(), "reidentification: need quasi-identifier columns");
    KINET_CHECK(original.rows() > 1 && synthetic.rows() > 0,
                "reidentification: empty inputs");

    Rng rng(options.seed);
    const ColumnRanges ranges = compute_ranges(original);

    // Evaluation targets (subsampled for runtime) and the adversary's prior
    // knowledge set.
    const std::size_t n_targets = std::min<std::size_t>(options.max_targets, original.rows());
    const auto targets = rng.sample_without_replacement(original.rows(), n_targets);

    std::size_t identified = 0;
    for (const std::size_t target : targets) {
        // (a) Already in the adversary's knowledge.
        if (rng.bernoulli(options.known_fraction)) {
            ++identified;
            continue;
        }

        // (b) Unique linkage through the synthetic release: find the closest
        // synthetic record; the link counts only when it is close enough AND
        // the target is the nearest original record to that synthetic record
        // (unambiguous back-linkage).  A memorising generator yields
        // distance-~0 pairs whose back-link is almost always unique; a
        // generalising generator does not.
        std::size_t best_syn = synthetic.rows();
        double best_dist = options.match_epsilon;
        for (std::size_t s = 0; s < synthetic.rows(); ++s) {
            const double d = mixed_row_distance(original, target, synthetic, s,
                                                options.qi_columns, ranges);
            if (d <= best_dist) {
                best_dist = d;
                best_syn = s;
            }
        }
        if (best_syn == synthetic.rows()) {
            continue;  // nothing in the release is close enough
        }
        // Back-link with a relative margin: the link is unambiguous only when
        // every other original record is clearly farther from the matched
        // synthetic record than the target is.  (Subsampled scan for
        // runtime.)
        bool unique = true;
        const double margin = std::max(best_dist, 1e-6) * options.uniqueness_margin;
        const std::size_t check = std::min<std::size_t>(600, original.rows());
        for (std::size_t i = 0; i < check; ++i) {
            const auto other = static_cast<std::size_t>(
                rng.randint(0, static_cast<std::int64_t>(original.rows()) - 1));
            if (other == target) {
                continue;
            }
            const double d = mixed_row_distance(original, other, synthetic, best_syn,
                                                options.qi_columns, ranges);
            if (d <= margin) {
                unique = false;
                break;
            }
        }
        if (unique) {
            ++identified;
        }
    }
    return static_cast<double>(identified) / static_cast<double>(n_targets);
}

}  // namespace kinet::eval
