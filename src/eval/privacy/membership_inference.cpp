#include "src/eval/privacy/membership_inference.hpp"

#include <algorithm>
#include <limits>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/eval/metrics.hpp"

namespace kinet::eval {

double threshold_attack_accuracy(std::span<const double> member_stats,
                                 std::span<const double> nonmember_stats) {
    KINET_CHECK(!member_stats.empty() && !nonmember_stats.empty(),
                "threshold attack: empty inputs");
    // Candidate thresholds: all observed statistics.
    std::vector<double> candidates;
    candidates.reserve(member_stats.size() + nonmember_stats.size());
    candidates.insert(candidates.end(), member_stats.begin(), member_stats.end());
    candidates.insert(candidates.end(), nonmember_stats.begin(), nonmember_stats.end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

    double best = 0.5;
    for (const double thr : candidates) {
        std::size_t tp = 0;
        for (double s : member_stats) {
            tp += (s >= thr) ? 1 : 0;
        }
        std::size_t tn = 0;
        for (double s : nonmember_stats) {
            tn += (s < thr) ? 1 : 0;
        }
        const double balanced =
            0.5 * (static_cast<double>(tp) / static_cast<double>(member_stats.size()) +
                   static_cast<double>(tn) / static_cast<double>(nonmember_stats.size()));
        best = std::max(best, balanced);
    }
    return best;
}

double membership_inference_white_box(std::span<const double> member_scores,
                                      std::span<const double> nonmember_scores) {
    return threshold_attack_accuracy(member_scores, nonmember_scores);
}

namespace {

std::vector<double> nearest_synthetic_distance(const data::Table& candidates,
                                               const data::Table& synthetic,
                                               const std::vector<std::size_t>& columns,
                                               const ColumnRanges& ranges,
                                               const std::vector<std::size_t>& candidate_rows,
                                               const std::vector<std::size_t>& reference_rows) {
    std::vector<double> out;
    out.reserve(candidate_rows.size());
    for (const std::size_t r : candidate_rows) {
        double best = std::numeric_limits<double>::max();
        for (const std::size_t s : reference_rows) {
            best = std::min(best, mixed_row_distance(candidates, r, synthetic, s, columns, ranges));
        }
        out.push_back(best);
    }
    return out;
}

std::vector<std::size_t> pick_rows(std::size_t available, std::size_t wanted, Rng& rng) {
    if (available <= wanted) {
        std::vector<std::size_t> all(available);
        for (std::size_t i = 0; i < available; ++i) {
            all[i] = i;
        }
        return all;
    }
    return rng.sample_without_replacement(available, wanted);
}

}  // namespace

double membership_inference_full_black_box(const data::Table& members,
                                           const data::Table& nonmembers,
                                           const data::Table& synthetic,
                                           const FbbOptions& options) {
    KINET_CHECK(!options.feature_columns.empty(), "FBB attack: need feature columns");
    KINET_CHECK(members.rows() > 0 && nonmembers.rows() > 0 && synthetic.rows() > 0,
                "FBB attack: empty inputs");

    Rng rng(options.seed);
    const ColumnRanges ranges = compute_ranges(members);

    const auto member_rows = pick_rows(members.rows(), options.max_candidates, rng);
    const auto nonmember_rows = pick_rows(nonmembers.rows(), options.max_candidates, rng);
    const auto reference_rows = pick_rows(synthetic.rows(), options.max_reference, rng);

    const auto member_dist = nearest_synthetic_distance(members, synthetic,
                                                        options.feature_columns, ranges,
                                                        member_rows, reference_rows);
    const auto nonmember_dist = nearest_synthetic_distance(nonmembers, synthetic,
                                                           options.feature_columns, ranges,
                                                           nonmember_rows, reference_rows);

    // Members are *closer*; negate so "higher = member" for the shared
    // threshold machinery.
    std::vector<double> member_stat(member_dist.size());
    std::vector<double> nonmember_stat(nonmember_dist.size());
    for (std::size_t i = 0; i < member_dist.size(); ++i) {
        member_stat[i] = -member_dist[i];
    }
    for (std::size_t i = 0; i < nonmember_dist.size(); ++i) {
        nonmember_stat[i] = -nonmember_dist[i];
    }
    return threshold_attack_accuracy(member_stat, nonmember_stat);
}

}  // namespace kinet::eval
