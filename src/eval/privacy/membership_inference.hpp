// Membership-inference attacks — Figure 7.
//
// White-Box (WB): the adversary can query the trained discriminator; member
// records tend to receive higher "real" scores.  The attack picks the score
// threshold with the best balanced accuracy over members vs. non-members.
//
// Fully-Black-Box (FBB): the adversary only sees the synthetic release; the
// attack statistic is the distance to the nearest synthetic record (members
// tend to sit closer when the generator memorises), again thresholded at the
// best balanced accuracy.  0.5 = chance, higher = leakier model.
#ifndef KINETGAN_EVAL_PRIVACY_MEMBERSHIP_INFERENCE_H
#define KINETGAN_EVAL_PRIVACY_MEMBERSHIP_INFERENCE_H

#include <span>
#include <vector>

#include "src/data/table.hpp"

namespace kinet::eval {

/// Best balanced accuracy of a threshold attack where *higher* statistic
/// means "member".
[[nodiscard]] double threshold_attack_accuracy(std::span<const double> member_stats,
                                               std::span<const double> nonmember_stats);

/// WB attack from discriminator scores (higher = more "real").
[[nodiscard]] double membership_inference_white_box(std::span<const double> member_scores,
                                                    std::span<const double> nonmember_scores);

struct FbbOptions {
    std::vector<std::size_t> feature_columns;  // columns used for distance
    std::uint64_t seed = 23;
    std::size_t max_candidates = 800;   // members/non-members evaluated each
    std::size_t max_reference = 3000;   // synthetic rows scanned
};

/// FBB attack: distance-to-nearest-synthetic threshold attack.
[[nodiscard]] double membership_inference_full_black_box(const data::Table& members,
                                                         const data::Table& nonmembers,
                                                         const data::Table& synthetic,
                                                         const FbbOptions& options);

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_PRIVACY_MEMBERSHIP_INFERENCE_H
