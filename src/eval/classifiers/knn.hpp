// k-nearest-neighbours classifier (brute force, Euclidean).
#ifndef KINETGAN_EVAL_CLASSIFIERS_KNN_H
#define KINETGAN_EVAL_CLASSIFIERS_KNN_H

#include "src/eval/classifiers/classifier.hpp"

namespace kinet::eval {

struct KnnOptions {
    std::size_t k = 5;
    /// Cap on stored training rows (subsampled deterministically when
    /// exceeded) to keep prediction O(cap · test).
    std::size_t max_train_rows = 4000;
};

class Knn : public Classifier {
public:
    explicit Knn(KnnOptions options = {});

    void fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) override;
    [[nodiscard]] std::vector<std::size_t> predict(const Matrix& x) const override;
    [[nodiscard]] std::string name() const override { return "KNN"; }

private:
    KnnOptions options_;
    Matrix train_x_;
    std::vector<std::size_t> train_y_;
    std::size_t classes_ = 0;
};

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_CLASSIFIERS_KNN_H
