#include "src/eval/classifiers/logistic_regression.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace kinet::eval {

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options), rng_(options.seed) {}

void LogisticRegression::fit(const Matrix& x, std::span<const std::size_t> y,
                             std::size_t classes) {
    KINET_CHECK(x.rows() == y.size() && x.rows() > 0, "LogisticRegression: bad training data");
    classes_ = classes;
    weights_.resize(x.cols() + 1, classes);

    const std::size_t batch = std::min<std::size_t>(options_.batch_size, x.rows());
    const std::size_t steps = std::max<std::size_t>(1, x.rows() / batch);
    std::vector<double> logits(classes);

    for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
        for (std::size_t step = 0; step < steps; ++step) {
            Matrix grad(weights_.rows(), weights_.cols());
            for (std::size_t b = 0; b < batch; ++b) {
                const auto r = static_cast<std::size_t>(
                    rng_.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
                const auto xr = x.row(r);
                // logits = W^T x + b, with a stable softmax.
                double mx = -1e300;
                for (std::size_t k = 0; k < classes; ++k) {
                    double acc = weights_(x.cols(), k);
                    for (std::size_t f = 0; f < x.cols(); ++f) {
                        acc += weights_(f, k) * xr[f];
                    }
                    logits[k] = acc;
                    mx = std::max(mx, acc);
                }
                double denom = 0.0;
                for (std::size_t k = 0; k < classes; ++k) {
                    logits[k] = std::exp(logits[k] - mx);
                    denom += logits[k];
                }
                for (std::size_t k = 0; k < classes; ++k) {
                    const double p = logits[k] / denom;
                    const double err = p - ((k == y[r]) ? 1.0 : 0.0);
                    for (std::size_t f = 0; f < x.cols(); ++f) {
                        grad(f, k) += static_cast<float>(err * xr[f]);
                    }
                    grad(x.cols(), k) += static_cast<float>(err);
                }
            }
            const float scale = options_.lr / static_cast<float>(batch);
            for (std::size_t i = 0; i < weights_.data().size(); ++i) {
                weights_.data()[i] -=
                    scale * (grad.data()[i] + options_.l2 * weights_.data()[i]);
            }
        }
    }
}

std::vector<std::size_t> LogisticRegression::predict(const Matrix& x) const {
    KINET_CHECK(weights_.rows() == x.cols() + 1, "LogisticRegression: predict before fit");
    std::vector<std::size_t> out(x.rows());
    // Row-independent argmax over W^T x — partitioned like the kernels.
    parallel_for(x.rows(), 64, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const auto xr = x.row(r);
            double best = -1e300;
            std::size_t best_k = 0;
            for (std::size_t k = 0; k < classes_; ++k) {
                double acc = weights_(x.cols(), k);
                for (std::size_t f = 0; f < x.cols(); ++f) {
                    acc += weights_(f, k) * xr[f];
                }
                if (acc > best) {
                    best = acc;
                    best_k = k;
                }
            }
            out[r] = best_k;
        }
    });
    return out;
}

}  // namespace kinet::eval
