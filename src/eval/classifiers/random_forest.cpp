#include "src/eval/classifiers/random_forest.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace kinet::eval {

RandomForest::RandomForest(RandomForestOptions options)
    : options_(options), rng_(options.seed) {}

void RandomForest::fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) {
    KINET_CHECK(x.rows() == y.size() && x.rows() > 0, "RandomForest: bad training data");
    classes_ = classes;
    trees_.clear();
    trees_.resize(options_.trees);

    const auto features_per_split = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(x.cols())))));

    // Every random draw happens up front on the shared stream, in the same
    // per-tree order the serial loop used (bootstrap rows, then the tree
    // seed); only the index vectors are kept — the bootstrap matrices are
    // gathered inside the parallel region, so peak memory stays one
    // bootstrap per lane and the copies parallelise with the fits.
    std::vector<std::vector<std::size_t>> boot_rows(options_.trees);
    std::vector<DecisionTreeOptions> tree_opts(options_.trees);
    for (std::size_t t = 0; t < options_.trees; ++t) {
        boot_rows[t].resize(x.rows());
        for (auto& r : boot_rows[t]) {
            r = static_cast<std::size_t>(rng_.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
        }
        tree_opts[t].max_depth = options_.max_depth;
        tree_opts[t].min_samples_leaf = options_.min_samples_leaf;
        tree_opts[t].features_per_split = features_per_split;
        tree_opts[t].seed = rng_.engine()();
    }

    parallel_for(options_.trees, 1, [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
            const auto& rows = boot_rows[t];
            const Matrix xb = x.gather_rows(rows);
            std::vector<std::size_t> yb(rows.size());
            for (std::size_t i = 0; i < rows.size(); ++i) {
                yb[i] = y[rows[i]];
            }
            auto tree = std::make_unique<DecisionTree>(tree_opts[t]);
            tree->fit(xb, yb, classes);
            trees_[t] = std::move(tree);
        }
    });
}

std::vector<std::size_t> RandomForest::predict(const Matrix& x) const {
    KINET_CHECK(!trees_.empty(), "RandomForest: predict before fit");
    // Per-tree predictions in parallel, then a serial (exact, integer)
    // vote so the winner never depends on the partition.
    std::vector<std::vector<std::size_t>> preds(trees_.size());
    parallel_for(trees_.size(), 1, [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
            preds[t] = trees_[t]->predict(x);
        }
    });
    std::vector<std::vector<std::size_t>> votes(x.rows(), std::vector<std::size_t>(classes_, 0));
    for (const auto& tree_preds : preds) {
        for (std::size_t r = 0; r < tree_preds.size(); ++r) {
            ++votes[r][tree_preds[r]];
        }
    }
    std::vector<std::size_t> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes_; ++c) {
            if (votes[r][c] > votes[r][best]) {
                best = c;
            }
        }
        out[r] = best;
    }
    return out;
}

}  // namespace kinet::eval
