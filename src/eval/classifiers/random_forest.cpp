#include "src/eval/classifiers/random_forest.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::eval {

RandomForest::RandomForest(RandomForestOptions options)
    : options_(options), rng_(options.seed) {}

void RandomForest::fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) {
    KINET_CHECK(x.rows() == y.size() && x.rows() > 0, "RandomForest: bad training data");
    classes_ = classes;
    trees_.clear();

    const auto features_per_split = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(x.cols())))));

    for (std::size_t t = 0; t < options_.trees; ++t) {
        // Bootstrap sample.
        std::vector<std::size_t> rows(x.rows());
        for (auto& r : rows) {
            r = static_cast<std::size_t>(rng_.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
        }
        Matrix xb = x.gather_rows(rows);
        std::vector<std::size_t> yb(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
            yb[i] = y[rows[i]];
        }

        DecisionTreeOptions tree_opts;
        tree_opts.max_depth = options_.max_depth;
        tree_opts.min_samples_leaf = options_.min_samples_leaf;
        tree_opts.features_per_split = features_per_split;
        tree_opts.seed = rng_.engine()();
        auto tree = std::make_unique<DecisionTree>(tree_opts);
        tree->fit(xb, yb, classes);
        trees_.push_back(std::move(tree));
    }
}

std::vector<std::size_t> RandomForest::predict(const Matrix& x) const {
    KINET_CHECK(!trees_.empty(), "RandomForest: predict before fit");
    std::vector<std::vector<std::size_t>> votes(x.rows(), std::vector<std::size_t>(classes_, 0));
    for (const auto& tree : trees_) {
        const auto preds = tree->predict(x);
        for (std::size_t r = 0; r < preds.size(); ++r) {
            ++votes[r][preds[r]];
        }
    }
    std::vector<std::size_t> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes_; ++c) {
            if (votes[r][c] > votes[r][best]) {
                best = c;
            }
        }
        out[r] = best;
    }
    return out;
}

}  // namespace kinet::eval
