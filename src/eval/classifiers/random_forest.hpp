// Bagged decision-tree ensemble with per-split feature subsampling.
#ifndef KINETGAN_EVAL_CLASSIFIERS_RANDOM_FOREST_H
#define KINETGAN_EVAL_CLASSIFIERS_RANDOM_FOREST_H

#include <memory>

#include "src/eval/classifiers/decision_tree.hpp"

namespace kinet::eval {

struct RandomForestOptions {
    std::size_t trees = 20;
    std::size_t max_depth = 12;
    std::size_t min_samples_leaf = 2;
    std::uint64_t seed = 2;
};

class RandomForest : public Classifier {
public:
    explicit RandomForest(RandomForestOptions options = {});

    void fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) override;
    [[nodiscard]] std::vector<std::size_t> predict(const Matrix& x) const override;
    [[nodiscard]] std::string name() const override { return "RandomForest"; }

private:
    RandomForestOptions options_;
    Rng rng_;
    std::size_t classes_ = 0;
    std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_CLASSIFIERS_RANDOM_FOREST_H
