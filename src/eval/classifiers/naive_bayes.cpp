#include "src/eval/classifiers/naive_bayes.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::eval {

void GaussianNaiveBayes::fit(const Matrix& x, std::span<const std::size_t> y,
                             std::size_t classes) {
    KINET_CHECK(x.rows() == y.size() && x.rows() > 0, "GaussianNB: bad training data");
    classes_ = classes;
    mean_.resize(classes, x.cols());
    variance_.resize(classes, x.cols());
    log_prior_.assign(classes, 0.0);

    std::vector<std::size_t> counts(classes, 0);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        ++counts[y[r]];
        for (std::size_t f = 0; f < x.cols(); ++f) {
            mean_(y[r], f) += x(r, f);
        }
    }
    for (std::size_t k = 0; k < classes; ++k) {
        if (counts[k] == 0) {
            log_prior_[k] = -1e30;  // class absent in training data
            continue;
        }
        for (std::size_t f = 0; f < x.cols(); ++f) {
            mean_(k, f) /= static_cast<float>(counts[k]);
        }
        log_prior_[k] = std::log(static_cast<double>(counts[k]) / static_cast<double>(x.rows()));
    }
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t f = 0; f < x.cols(); ++f) {
            const float d = x(r, f) - mean_(y[r], f);
            variance_(y[r], f) += d * d;
        }
    }
    for (std::size_t k = 0; k < classes; ++k) {
        if (counts[k] == 0) {
            continue;
        }
        for (std::size_t f = 0; f < x.cols(); ++f) {
            variance_(k, f) = variance_(k, f) / static_cast<float>(counts[k]) + 1e-4F;
        }
    }
}

std::vector<std::size_t> GaussianNaiveBayes::predict(const Matrix& x) const {
    KINET_CHECK(classes_ > 0, "GaussianNB: predict before fit");
    std::vector<std::size_t> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        double best = -1e300;
        std::size_t best_k = 0;
        for (std::size_t k = 0; k < classes_; ++k) {
            double ll = log_prior_[k];
            if (ll <= -1e29) {
                continue;
            }
            for (std::size_t f = 0; f < x.cols(); ++f) {
                const double var = variance_(k, f);
                const double d = x(r, f) - mean_(k, f);
                ll += -0.5 * (std::log(2.0 * 3.14159265358979 * var) + d * d / var);
            }
            if (ll > best) {
                best = ll;
                best_k = k;
            }
        }
        out[r] = best_k;
    }
    return out;
}

}  // namespace kinet::eval
