// Small MLP classifier built on the nn stack.
#ifndef KINETGAN_EVAL_CLASSIFIERS_MLP_CLASSIFIER_H
#define KINETGAN_EVAL_CLASSIFIERS_MLP_CLASSIFIER_H

#include <memory>

#include "src/eval/classifiers/classifier.hpp"
#include "src/nn/nn.hpp"

namespace kinet::eval {

struct MlpClassifierOptions {
    std::size_t hidden_dim = 64;
    std::size_t epochs = 30;
    std::size_t batch_size = 64;
    float lr = 1e-3F;
    std::uint64_t seed = 4;
};

class MlpClassifier : public Classifier {
public:
    explicit MlpClassifier(MlpClassifierOptions options = {});

    void fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) override;
    [[nodiscard]] std::vector<std::size_t> predict(const Matrix& x) const override;
    [[nodiscard]] std::string name() const override { return "MLP"; }

private:
    MlpClassifierOptions options_;
    Rng rng_;
    std::unique_ptr<nn::Sequential> net_;
    std::size_t classes_ = 0;
};

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_CLASSIFIERS_MLP_CLASSIFIER_H
