// Classifier interface + feature encoding for the ML-based NIDS evaluation
// (paper Sec. V-B): six classifiers trained on (real or synthetic) tables and
// tested on held-out real data.
#ifndef KINETGAN_EVAL_CLASSIFIERS_CLASSIFIER_H
#define KINETGAN_EVAL_CLASSIFIERS_CLASSIFIER_H

#include <span>
#include <string>
#include <vector>

#include "src/data/table.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::eval {

using tensor::Matrix;

/// Encodes tables into classifier features: one-hot categoricals and
/// z-scored continuous columns (statistics learned from the training table so
/// train/test are encoded identically).
class FeatureEncoder {
public:
    void fit(const data::Table& train, std::size_t label_column);

    [[nodiscard]] Matrix encode(const data::Table& table) const;
    [[nodiscard]] std::vector<std::size_t> labels(const data::Table& table) const;

    [[nodiscard]] std::size_t feature_width() const noexcept { return width_; }
    [[nodiscard]] std::size_t class_count() const noexcept { return classes_; }
    [[nodiscard]] std::size_t label_column() const noexcept { return label_column_; }

private:
    std::vector<data::ColumnMeta> schema_;
    std::size_t label_column_ = 0;
    std::size_t classes_ = 0;
    std::size_t width_ = 0;
    std::vector<float> mean_;    // per column (continuous only)
    std::vector<float> stddev_;  // per column (continuous only)
};

class Classifier {
public:
    Classifier() = default;
    Classifier(const Classifier&) = delete;
    Classifier& operator=(const Classifier&) = delete;
    virtual ~Classifier() = default;

    virtual void fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) = 0;
    [[nodiscard]] virtual std::vector<std::size_t> predict(const Matrix& x) const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Fraction of matching predictions.
[[nodiscard]] double accuracy(std::span<const std::size_t> predicted,
                              std::span<const std::size_t> truth);

/// Macro-averaged F1 over classes present in `truth`.
[[nodiscard]] double macro_f1(std::span<const std::size_t> predicted,
                              std::span<const std::size_t> truth, std::size_t classes);

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_CLASSIFIERS_CLASSIFIER_H
