#include "src/eval/classifiers/decision_tree.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/check.hpp"

namespace kinet::eval {
namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
    if (total == 0) {
        return 0.0;
    }
    double acc = 1.0;
    for (std::size_t c : counts) {
        const double p = static_cast<double>(c) / static_cast<double>(total);
        acc -= p * p;
    }
    return acc;
}

std::size_t majority(const std::vector<std::size_t>& counts) {
    return static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeOptions options)
    : options_(options), rng_(options.seed) {}

void DecisionTree::fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) {
    KINET_CHECK(x.rows() == y.size() && x.rows() > 0, "DecisionTree: bad training data");
    classes_ = classes;
    nodes_.clear();
    std::vector<std::size_t> rows(x.rows());
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    build(x, y, rows, 0);
}

std::size_t DecisionTree::build(const Matrix& x, std::span<const std::size_t> y,
                                std::vector<std::size_t>& rows, std::size_t depth) {
    const std::size_t node_idx = nodes_.size();
    nodes_.emplace_back();

    std::vector<std::size_t> counts(classes_, 0);
    for (std::size_t r : rows) {
        ++counts[y[r]];
    }
    nodes_[node_idx].label = majority(counts);

    const double parent_gini = gini(counts, rows.size());
    if (depth >= options_.max_depth || rows.size() < 2 * options_.min_samples_leaf ||
        parent_gini <= 1e-12) {
        return node_idx;
    }

    // Candidate features (all, or a random subset in forest mode).
    std::vector<std::size_t> features;
    if (options_.features_per_split.has_value() && *options_.features_per_split < x.cols()) {
        features = rng_.sample_without_replacement(x.cols(), *options_.features_per_split);
    } else {
        features.resize(x.cols());
        std::iota(features.begin(), features.end(), std::size_t{0});
    }

    double best_gain = 1e-9;
    std::size_t best_feature = 0;
    float best_threshold = 0.0F;

    std::vector<std::pair<float, std::size_t>> sorted;
    sorted.reserve(rows.size());
    std::vector<std::size_t> left_counts(classes_);

    for (std::size_t f : features) {
        sorted.clear();
        for (std::size_t r : rows) {
            sorted.emplace_back(x(r, f), y[r]);
        }
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
        std::size_t n_left = 0;
        for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
            ++left_counts[sorted[i].second];
            ++n_left;
            if (sorted[i].first == sorted[i + 1].first) {
                continue;  // can't split between equal values
            }
            if (n_left < options_.min_samples_leaf ||
                rows.size() - n_left < options_.min_samples_leaf) {
                continue;
            }
            std::vector<std::size_t> right_counts(classes_);
            for (std::size_t c = 0; c < classes_; ++c) {
                right_counts[c] = counts[c] - left_counts[c];
            }
            const std::size_t n_right = rows.size() - n_left;
            const double w_left = static_cast<double>(n_left) / static_cast<double>(rows.size());
            const double w_right = 1.0 - w_left;
            const double gain = parent_gini - w_left * gini(left_counts, n_left) -
                                w_right * gini(right_counts, n_right);
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = f;
                best_threshold = 0.5F * (sorted[i].first + sorted[i + 1].first);
            }
        }
    }

    if (best_gain <= 1e-9) {
        return node_idx;
    }

    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    for (std::size_t r : rows) {
        (x(r, best_feature) <= best_threshold ? left_rows : right_rows).push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) {
        return node_idx;
    }

    const std::size_t left_idx = build(x, y, left_rows, depth + 1);
    const std::size_t right_idx = build(x, y, right_rows, depth + 1);
    nodes_[node_idx].leaf = false;
    nodes_[node_idx].feature = best_feature;
    nodes_[node_idx].threshold = best_threshold;
    nodes_[node_idx].left = left_idx;
    nodes_[node_idx].right = right_idx;
    return node_idx;
}

std::vector<std::size_t> DecisionTree::predict(const Matrix& x) const {
    KINET_CHECK(!nodes_.empty(), "DecisionTree: predict before fit");
    std::vector<std::size_t> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        std::size_t n = 0;
        while (!nodes_[n].leaf) {
            n = (x(r, nodes_[n].feature) <= nodes_[n].threshold) ? nodes_[n].left
                                                                 : nodes_[n].right;
        }
        out[r] = nodes_[n].label;
    }
    return out;
}

}  // namespace kinet::eval
