#include "src/eval/classifiers/knn.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace kinet::eval {

Knn::Knn(KnnOptions options) : options_(options) {
    KINET_CHECK(options_.k >= 1, "Knn: k must be at least 1");
}

void Knn::fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) {
    KINET_CHECK(x.rows() == y.size() && x.rows() > 0, "Knn: bad training data");
    classes_ = classes;
    if (x.rows() <= options_.max_train_rows) {
        train_x_ = x;
        train_y_.assign(y.begin(), y.end());
        return;
    }
    // Deterministic stride subsample.
    const double stride = static_cast<double>(x.rows()) / static_cast<double>(options_.max_train_rows);
    std::vector<std::size_t> rows;
    rows.reserve(options_.max_train_rows);
    for (std::size_t i = 0; i < options_.max_train_rows; ++i) {
        rows.push_back(static_cast<std::size_t>(static_cast<double>(i) * stride));
    }
    train_x_ = x.gather_rows(rows);
    train_y_.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        train_y_[i] = y[rows[i]];
    }
}

std::vector<std::size_t> Knn::predict(const Matrix& x) const {
    KINET_CHECK(train_x_.rows() > 0, "Knn: predict before fit");
    const std::size_t k = std::min<std::size_t>(options_.k, train_x_.rows());
    std::vector<std::size_t> out(x.rows());

    // Each query row scans the whole training set independently — the
    // classic embarrassingly parallel loop (grain 1: a row is already
    // rows*features work).
    parallel_for(x.rows(), 1, [&](std::size_t r0, std::size_t r1) {
        std::vector<std::pair<float, std::size_t>> heap;  // max-heap of (dist, label)
        std::vector<std::size_t> votes(classes_, 0);
        for (std::size_t r = r0; r < r1; ++r) {
            heap.clear();
            const auto q = x.row(r);
            for (std::size_t t = 0; t < train_x_.rows(); ++t) {
                const auto tr = train_x_.row(t);
                float d = 0.0F;
                for (std::size_t f = 0; f < q.size(); ++f) {
                    const float diff = q[f] - tr[f];
                    d += diff * diff;
                }
                if (heap.size() < k) {
                    heap.emplace_back(d, train_y_[t]);
                    std::push_heap(heap.begin(), heap.end());
                } else if (d < heap.front().first) {
                    std::pop_heap(heap.begin(), heap.end());
                    heap.back() = {d, train_y_[t]};
                    std::push_heap(heap.begin(), heap.end());
                }
            }
            std::fill(votes.begin(), votes.end(), 0);
            for (const auto& [dist, label] : heap) {
                ++votes[label];
            }
            std::size_t best = 0;
            for (std::size_t c = 1; c < classes_; ++c) {
                if (votes[c] > votes[best]) {
                    best = c;
                }
            }
            out[r] = best;
        }
    });
    return out;
}

}  // namespace kinet::eval
