#include "src/eval/classifiers/mlp_classifier.hpp"

#include "src/common/check.hpp"

namespace kinet::eval {

MlpClassifier::MlpClassifier(MlpClassifierOptions options)
    : options_(options), rng_(options.seed) {}

void MlpClassifier::fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) {
    KINET_CHECK(x.rows() == y.size() && x.rows() > 0, "MlpClassifier: bad training data");
    classes_ = classes;

    net_ = std::make_unique<nn::Sequential>();
    net_->emplace<nn::Linear>(x.cols(), options_.hidden_dim, rng_, "mlp.fc0");
    net_->emplace<nn::ReLU>();
    net_->emplace<nn::Linear>(options_.hidden_dim, options_.hidden_dim, rng_, "mlp.fc1");
    net_->emplace<nn::ReLU>();
    net_->emplace<nn::Linear>(options_.hidden_dim, classes, rng_, "mlp.out");

    nn::Adam opt(net_->parameters(), options_.lr, 0.9F, 0.999F);
    const std::size_t batch = std::min<std::size_t>(options_.batch_size, x.rows());
    const std::size_t steps = std::max<std::size_t>(1, x.rows() / batch);

    for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
        for (std::size_t step = 0; step < steps; ++step) {
            std::vector<std::size_t> rows(batch);
            std::vector<std::size_t> yb(batch);
            for (std::size_t b = 0; b < batch; ++b) {
                rows[b] = static_cast<std::size_t>(
                    rng_.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
                yb[b] = y[rows[b]];
            }
            const Matrix xb = x.gather_rows(rows);
            net_->zero_grad();
            Matrix logits = net_->forward(xb, true);
            auto loss = nn::softmax_cross_entropy(logits, yb);
            (void)net_->backward(loss.grad);
            nn::clip_grad_norm(net_->parameters(), 5.0);
            opt.step();
        }
    }
}

std::vector<std::size_t> MlpClassifier::predict(const Matrix& x) const {
    KINET_CHECK(net_ != nullptr, "MlpClassifier: predict before fit");
    const Matrix logits = net_->forward(x, false);
    std::vector<std::size_t> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes_; ++c) {
            if (logits(r, c) > logits(r, best)) {
                best = c;
            }
        }
        out[r] = best;
    }
    return out;
}

}  // namespace kinet::eval
