// Gaussian naive Bayes with per-class feature means/variances.
#ifndef KINETGAN_EVAL_CLASSIFIERS_NAIVE_BAYES_H
#define KINETGAN_EVAL_CLASSIFIERS_NAIVE_BAYES_H

#include "src/eval/classifiers/classifier.hpp"

namespace kinet::eval {

class GaussianNaiveBayes : public Classifier {
public:
    void fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) override;
    [[nodiscard]] std::vector<std::size_t> predict(const Matrix& x) const override;
    [[nodiscard]] std::string name() const override { return "GaussianNB"; }

private:
    std::size_t classes_ = 0;
    std::vector<double> log_prior_;
    Matrix mean_;      // classes x features
    Matrix variance_;  // classes x features
};

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_CLASSIFIERS_NAIVE_BAYES_H
