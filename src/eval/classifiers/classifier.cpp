#include "src/eval/classifiers/classifier.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::eval {

void FeatureEncoder::fit(const data::Table& train, std::size_t label_column) {
    KINET_CHECK(train.rows() > 0, "FeatureEncoder: empty training table");
    KINET_CHECK(label_column < train.cols(), "FeatureEncoder: label column out of range");
    KINET_CHECK(train.meta(label_column).is_categorical(),
                "FeatureEncoder: label column must be categorical");
    schema_ = train.schema();
    label_column_ = label_column;
    classes_ = schema_[label_column].categories.size();

    mean_.assign(schema_.size(), 0.0F);
    stddev_.assign(schema_.size(), 1.0F);
    width_ = 0;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (c == label_column_) {
            continue;
        }
        if (schema_[c].is_categorical()) {
            width_ += schema_[c].categories.size();
        } else {
            const auto v = train.column_values(c);
            double m = 0.0;
            for (float x : v) {
                m += x;
            }
            m /= static_cast<double>(v.size());
            double var = 0.0;
            for (float x : v) {
                var += (x - m) * (x - m);
            }
            var /= static_cast<double>(v.size());
            mean_[c] = static_cast<float>(m);
            stddev_[c] = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
            width_ += 1;
        }
    }
}

Matrix FeatureEncoder::encode(const data::Table& table) const {
    KINET_CHECK(!schema_.empty(), "FeatureEncoder: encode before fit");
    KINET_CHECK(table.cols() == schema_.size(), "FeatureEncoder: schema mismatch");
    Matrix out(table.rows(), width_);
    for (std::size_t r = 0; r < table.rows(); ++r) {
        std::size_t off = 0;
        for (std::size_t c = 0; c < schema_.size(); ++c) {
            if (c == label_column_) {
                continue;
            }
            if (schema_[c].is_categorical()) {
                out(r, off + table.category_at(r, c)) = 1.0F;
                off += schema_[c].categories.size();
            } else {
                out(r, off) = (table.value(r, c) - mean_[c]) / stddev_[c];
                off += 1;
            }
        }
    }
    return out;
}

std::vector<std::size_t> FeatureEncoder::labels(const data::Table& table) const {
    std::vector<std::size_t> out(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        out[r] = table.category_at(r, label_column_);
    }
    return out;
}

double accuracy(std::span<const std::size_t> predicted, std::span<const std::size_t> truth) {
    KINET_CHECK(predicted.size() == truth.size() && !truth.empty(), "accuracy: size mismatch");
    std::size_t hits = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        hits += (predicted[i] == truth[i]) ? 1 : 0;
    }
    return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double macro_f1(std::span<const std::size_t> predicted, std::span<const std::size_t> truth,
                std::size_t classes) {
    KINET_CHECK(predicted.size() == truth.size() && !truth.empty(), "macro_f1: size mismatch");
    std::vector<std::size_t> tp(classes, 0);
    std::vector<std::size_t> fp(classes, 0);
    std::vector<std::size_t> fn(classes, 0);
    std::vector<bool> present(classes, false);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        present[truth[i]] = true;
        if (predicted[i] == truth[i]) {
            ++tp[truth[i]];
        } else {
            ++fp[predicted[i]];
            ++fn[truth[i]];
        }
    }
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t k = 0; k < classes; ++k) {
        if (!present[k]) {
            continue;
        }
        const double denom = 2.0 * static_cast<double>(tp[k]) + static_cast<double>(fp[k]) +
                             static_cast<double>(fn[k]);
        acc += (denom > 0.0) ? 2.0 * static_cast<double>(tp[k]) / denom : 0.0;
        ++count;
    }
    return (count == 0) ? 0.0 : acc / static_cast<double>(count);
}

}  // namespace kinet::eval
