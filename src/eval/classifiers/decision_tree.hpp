// CART decision tree (Gini impurity, axis-aligned threshold splits).
#ifndef KINETGAN_EVAL_CLASSIFIERS_DECISION_TREE_H
#define KINETGAN_EVAL_CLASSIFIERS_DECISION_TREE_H

#include <optional>

#include "src/common/rng.hpp"
#include "src/eval/classifiers/classifier.hpp"

namespace kinet::eval {

struct DecisionTreeOptions {
    std::size_t max_depth = 12;
    std::size_t min_samples_leaf = 4;
    /// If set, each split considers only this many random features
    /// (random-forest mode).
    std::optional<std::size_t> features_per_split;
    std::uint64_t seed = 1;
};

class DecisionTree : public Classifier {
public:
    explicit DecisionTree(DecisionTreeOptions options = {});

    void fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) override;
    [[nodiscard]] std::vector<std::size_t> predict(const Matrix& x) const override;
    [[nodiscard]] std::string name() const override { return "DecisionTree"; }

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

private:
    struct Node {
        bool leaf = true;
        std::size_t feature = 0;
        float threshold = 0.0F;
        std::size_t left = 0;
        std::size_t right = 0;
        std::size_t label = 0;
    };

    std::size_t build(const Matrix& x, std::span<const std::size_t> y,
                      std::vector<std::size_t>& rows, std::size_t depth);

    DecisionTreeOptions options_;
    Rng rng_;
    std::size_t classes_ = 0;
    std::vector<Node> nodes_;
};

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_CLASSIFIERS_DECISION_TREE_H
