// Multinomial logistic regression trained with mini-batch SGD.
#ifndef KINETGAN_EVAL_CLASSIFIERS_LOGISTIC_REGRESSION_H
#define KINETGAN_EVAL_CLASSIFIERS_LOGISTIC_REGRESSION_H

#include "src/common/rng.hpp"
#include "src/eval/classifiers/classifier.hpp"

namespace kinet::eval {

struct LogisticRegressionOptions {
    std::size_t epochs = 40;
    std::size_t batch_size = 64;
    float lr = 0.1F;
    float l2 = 1e-4F;
    std::uint64_t seed = 3;
};

class LogisticRegression : public Classifier {
public:
    explicit LogisticRegression(LogisticRegressionOptions options = {});

    void fit(const Matrix& x, std::span<const std::size_t> y, std::size_t classes) override;
    [[nodiscard]] std::vector<std::size_t> predict(const Matrix& x) const override;
    [[nodiscard]] std::string name() const override { return "LogisticRegression"; }

private:
    LogisticRegressionOptions options_;
    Rng rng_;
    Matrix weights_;  // (features + 1) x classes, last row is the bias
    std::size_t classes_ = 0;
};

}  // namespace kinet::eval

#endif  // KINETGAN_EVAL_CLASSIFIERS_LOGISTIC_REGRESSION_H
