#include "src/eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace kinet::eval {
namespace {

void check_compatible(const data::Table& a, const data::Table& b) {
    KINET_CHECK(a.cols() == b.cols(), "metrics: column count mismatch");
    KINET_CHECK(a.rows() > 0 && b.rows() > 0, "metrics: empty table");
    for (std::size_t c = 0; c < a.cols(); ++c) {
        KINET_CHECK(a.meta(c).type == b.meta(c).type, "metrics: column type mismatch");
    }
}

std::vector<double> histogram(const data::Table& t, std::size_t col) {
    const auto counts = t.category_counts(col);
    std::vector<double> h(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        h[i] = static_cast<double>(counts[i]) / static_cast<double>(t.rows());
    }
    return h;
}

// Wasserstein-1 between two empirical 1-D distributions: integral of
// |CDF_a - CDF_b| over the merged support.
double wasserstein_1d(std::vector<float> a, std::vector<float> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::size_t ia = 0;
    std::size_t ib = 0;
    double prev = std::min(a.front(), b.front());
    double acc = 0.0;
    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    while (ia < a.size() || ib < b.size()) {
        double next = 0.0;
        if (ia < a.size() && (ib >= b.size() || a[ia] <= b[ib])) {
            next = a[ia];
        } else {
            next = b[ib];
        }
        const double cdf_a = static_cast<double>(ia) / na;
        const double cdf_b = static_cast<double>(ib) / nb;
        acc += std::abs(cdf_a - cdf_b) * (next - prev);
        prev = next;
        while (ia < a.size() && a[ia] <= next) {
            ++ia;
        }
        while (ib < b.size() && b[ib] <= next) {
            ++ib;
        }
    }
    return acc;
}

std::vector<double> deciles(std::vector<float> v) {
    std::sort(v.begin(), v.end());
    std::vector<double> q;
    q.reserve(9);
    for (int d = 1; d <= 9; ++d) {
        const double pos = static_cast<double>(d) / 10.0 * static_cast<double>(v.size() - 1);
        const auto lo = static_cast<std::size_t>(std::floor(pos));
        const auto hi = std::min(lo + 1, v.size() - 1);
        const double frac = pos - std::floor(pos);
        q.push_back((1.0 - frac) * v[lo] + frac * v[hi]);
    }
    return q;
}

}  // namespace

double column_emd(const data::Table& real, const data::Table& synthetic, std::size_t col) {
    check_compatible(real, synthetic);
    if (real.meta(col).is_categorical()) {
        // Total variation == EMD with the unit ground metric.
        const auto ha = histogram(real, col);
        const auto hb = histogram(synthetic, col);
        double acc = 0.0;
        for (std::size_t i = 0; i < ha.size(); ++i) {
            acc += std::abs(ha[i] - hb[i]);
        }
        return 0.5 * acc;
    }
    auto va = real.column_values(col);
    auto vb = synthetic.column_values(col);
    const auto [mn, mx] = std::minmax_element(va.begin(), va.end());
    const double range = std::max(1e-9, static_cast<double>(*mx) - static_cast<double>(*mn));
    return wasserstein_1d(std::move(va), std::move(vb)) / range;
}

double mean_emd(const data::Table& real, const data::Table& synthetic) {
    check_compatible(real, synthetic);
    double acc = 0.0;
    for (std::size_t c = 0; c < real.cols(); ++c) {
        acc += column_emd(real, synthetic, c);
    }
    return acc / static_cast<double>(real.cols());
}

double categorical_l1(const data::Table& real, const data::Table& synthetic, std::size_t col) {
    KINET_CHECK(real.meta(col).is_categorical(), "categorical_l1 on continuous column");
    const auto ha = histogram(real, col);
    const auto hb = histogram(synthetic, col);
    double acc = 0.0;
    for (std::size_t i = 0; i < ha.size(); ++i) {
        acc += std::abs(ha[i] - hb[i]);
    }
    return acc;
}

double continuous_l2(const data::Table& real, const data::Table& synthetic, std::size_t col) {
    KINET_CHECK(!real.meta(col).is_categorical(), "continuous_l2 on categorical column");
    auto va = real.column_values(col);
    auto vb = synthetic.column_values(col);
    const auto [mn, mx] = std::minmax_element(va.begin(), va.end());
    const double range = std::max(1e-9, static_cast<double>(*mx) - static_cast<double>(*mn));
    const auto qa = deciles(std::move(va));
    const auto qb = deciles(std::move(vb));
    double acc = 0.0;
    for (std::size_t i = 0; i < qa.size(); ++i) {
        const double d = (qa[i] - qb[i]) / range;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(qa.size()));
}

double combined_distance(const data::Table& real, const data::Table& synthetic) {
    check_compatible(real, synthetic);
    double acc = 0.0;
    for (std::size_t c = 0; c < real.cols(); ++c) {
        acc += real.meta(c).is_categorical() ? categorical_l1(real, synthetic, c)
                                             : continuous_l2(real, synthetic, c);
    }
    return acc / static_cast<double>(real.cols());
}

double correlation_distance(const data::Table& real, const data::Table& synthetic) {
    check_compatible(real, synthetic);
    std::vector<std::size_t> cont;
    for (std::size_t c = 0; c < real.cols(); ++c) {
        if (!real.meta(c).is_categorical()) {
            cont.push_back(c);
        }
    }
    if (cont.size() < 2) {
        return 0.0;
    }
    auto pearson = [](const data::Table& t, std::size_t ci, std::size_t cj) {
        const auto vi = t.column_values(ci);
        const auto vj = t.column_values(cj);
        const double n = static_cast<double>(vi.size());
        double mi = 0.0;
        double mj = 0.0;
        for (std::size_t k = 0; k < vi.size(); ++k) {
            mi += vi[k];
            mj += vj[k];
        }
        mi /= n;
        mj /= n;
        double num = 0.0;
        double di = 0.0;
        double dj = 0.0;
        for (std::size_t k = 0; k < vi.size(); ++k) {
            num += (vi[k] - mi) * (vj[k] - mj);
            di += (vi[k] - mi) * (vi[k] - mi);
            dj += (vj[k] - mj) * (vj[k] - mj);
        }
        const double denom = std::sqrt(di * dj);
        return (denom < 1e-12) ? 0.0 : num / denom;
    };
    double acc = 0.0;
    std::size_t terms = 0;
    for (std::size_t i = 0; i < cont.size(); ++i) {
        for (std::size_t j = i + 1; j < cont.size(); ++j) {
            acc += std::abs(pearson(real, cont[i], cont[j]) -
                            pearson(synthetic, cont[i], cont[j]));
            ++terms;
        }
    }
    return acc / static_cast<double>(terms);
}

double likelihood_fitness(const data::TableTransformer& fitted_on_real,
                          const data::Table& synthetic) {
    KINET_CHECK(fitted_on_real.is_fitted(), "likelihood_fitness: transformer not fitted");
    double acc = 0.0;
    std::size_t terms = 0;
    for (std::size_t c = 0; c < synthetic.cols(); ++c) {
        if (synthetic.meta(c).is_categorical()) {
            continue;
        }
        const auto& gmm = fitted_on_real.column_gmm(c);
        for (std::size_t r = 0; r < synthetic.rows(); ++r) {
            acc += gmm.log_likelihood(synthetic.value(r, c));
            ++terms;
        }
    }
    return (terms == 0) ? 0.0 : acc / static_cast<double>(terms);
}

ColumnRanges compute_ranges(const data::Table& table) {
    ColumnRanges out;
    out.lo.resize(table.cols());
    out.hi.resize(table.cols());
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (table.meta(c).is_categorical()) {
            out.lo[c] = 0.0F;
            out.hi[c] = 1.0F;
            continue;
        }
        const auto v = table.column_values(c);
        const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
        out.lo[c] = *mn;
        out.hi[c] = (*mx - *mn < 1e-9F) ? *mn + 1.0F : *mx;
    }
    return out;
}

double mixed_row_distance(const data::Table& a, std::size_t row_a, const data::Table& b,
                          std::size_t row_b, const std::vector<std::size_t>& columns,
                          const ColumnRanges& ranges) {
    double acc = 0.0;
    for (std::size_t c : columns) {
        if (a.meta(c).is_categorical()) {
            acc += (a.category_at(row_a, c) == b.category_at(row_b, c)) ? 0.0 : 1.0;
        } else {
            const double range = ranges.hi[c] - ranges.lo[c];
            acc += std::abs(a.value(row_a, c) - b.value(row_b, c)) / range;
        }
    }
    return acc / static_cast<double>(columns.size());
}

}  // namespace kinet::eval
