// Durable file IO primitives for the crash-safe persistence layer.
//
// The snapshot store and the job journal both need writes that survive a
// kill -9 at any instant: either the old bytes or the new bytes are on disk
// after restart, never a torn mixture.  The recipe is the classic one —
// write to a temporary, fsync the file, rename over the target, fsync the
// parent directory so the rename itself is durable.  These helpers live in
// src/common (not src/service) deliberately: they are transport-free and the
// raw-IO lint rule confines raw ::open/::write/::fsync to common code and
// socket.cpp.
#ifndef KINETGAN_COMMON_FSIO_H
#define KINETGAN_COMMON_FSIO_H

#include <string>

namespace kinet::fsio {

/// Writes `bytes` to `path` (create or truncate) and fsyncs the file before
/// closing.  Throws kinet::Error on any failure.  The write is durable but
/// NOT atomic — pair with rename_durable() for atomic replacement.
void write_file_durable(const std::string& path, const std::string& bytes);

/// Renames `from` over `to` and fsyncs the parent directory of `to`, making
/// the replacement itself durable.  POSIX rename is atomic: a reader (or a
/// crash) sees the old file or the new file, never a mixture.
void rename_durable(const std::string& from, const std::string& to);

/// write_file_durable to `path + ".tmp"` then rename_durable over `path` —
/// the all-in-one atomic file replacement.
void replace_file_durable(const std::string& path, const std::string& bytes);

/// Appends `bytes` to `path` (creating it if missing) and fsyncs before
/// closing — one durable journal record per call.  Throws on failure.
void append_durable(const std::string& path, const std::string& bytes);

/// Reads the whole file; throws kinet::Error if it cannot be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace kinet::fsio

#endif  // KINETGAN_COMMON_FSIO_H
