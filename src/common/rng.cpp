#include "src/common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/common/check.hpp"

namespace kinet {

double Rng::uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double Rng::laplace(double mu, double b) {
    KINET_CHECK(b > 0.0, "laplace scale must be positive");
    const double u = uniform(-0.5, 0.5);
    return mu - b * ((u < 0.0) ? -1.0 : 1.0) * std::log(1.0 - 2.0 * std::abs(u));
}

double Rng::exponential(double lambda) {
    KINET_CHECK(lambda > 0.0, "exponential rate must be positive");
    std::exponential_distribution<double> dist(lambda);
    return dist(engine_);
}

double Rng::lognormal(double mu, double sigma) {
    std::lognormal_distribution<double> dist(mu, sigma);
    return dist(engine_);
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
    KINET_CHECK(lo <= hi, "randint requires lo <= hi");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

bool Rng::bernoulli(double p) {
    std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
    return dist(engine_);
}

double Rng::gumbel() {
    // -log(-log(U)) with U in (0, 1); clamp away from 0/1 for stability.
    const double u = std::clamp(uniform(), 1e-12, 1.0 - 1e-12);
    return -std::log(-std::log(u));
}

std::size_t Rng::categorical(std::span<const double> weights) {
    KINET_CHECK(!weights.empty(), "categorical needs at least one weight");
    double total = 0.0;
    for (double w : weights) {
        KINET_CHECK(w >= 0.0, "categorical weights must be non-negative");
        total += w;
    }
    KINET_CHECK(total > 0.0, "categorical weights must not all be zero");
    double r = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0) {
            return i;
        }
    }
    return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
    KINET_CHECK(k <= n, "cannot sample more items than the population");
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    // Partial Fisher–Yates: only the first k positions need to be randomised.
    for (std::size_t i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(
            randint(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::shuffle(idx.begin(), idx.end(), engine_);
    return idx;
}

Rng Rng::fork() {
    return Rng(engine_());
}

std::string Rng::serialize_state() const {
    std::ostringstream oss;
    oss << engine_;
    return oss.str();
}

void Rng::deserialize_state(const std::string& state) {
    std::istringstream iss(state);
    iss >> engine_;
    KINET_CHECK(!iss.fail(), "Rng::deserialize_state: malformed engine state");
}

}  // namespace kinet
