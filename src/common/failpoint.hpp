// Deterministic fault-injection points ("failpoints") for chaos testing.
//
// A failpoint is a named, compiled-in site — `KINET_FAILPOINT("socket.send")`
// — that normally costs one relaxed atomic load and a predicted branch.  When
// armed (via the KINET_FAILPOINTS environment variable or the admin-only
// FAULT protocol op) the site can inject an error (kinet::Error), a delay, or
// a process abort, optionally gated on a hit count (`after=`, `times=`) or a
// seeded-deterministic probability (`p=`, `seed=`).  Probability draws come
// from a per-failpoint kinet::Rng, so a given spec triggers on exactly the
// same hit sequence in every run — chaos tests are reproducible, never flaky.
//
// Spec grammar (one failpoint):
//   off                                  disarm
//   <mode>[,key=value]...                arm
// with mode one of:
//   error        throw kinet::Error("failpoint: <name> injected error")
//   delay        sleep ms= milliseconds (ms=0 counts hits with no effect)
//   crash        std::abort() — the in-process stand-in for kill -9
// and keys:
//   p=<0..1>     trigger probability per eligible hit (default 1)
//   seed=<u64>   seed for the probability stream (default 0)
//   after=<n>    skip the first n hits (default 0)
//   times=<n>    trigger at most n times, then go inert (default unlimited)
//   ms=<n>       delay duration for mode=delay (default 10)
//
// Process-wide configuration: KINET_FAILPOINTS="name=spec;name2=spec".
//
// Every name used at a KINET_FAILPOINT site must appear in the central
// registry (kRegisteredFailpoints in failpoint.cpp); configure() rejects
// unknown names and `tools/kinet_lint.py --rules failpoint-name` rejects
// unregistered sites — a typo'd name can neither be armed nor compiled in
// silently.
#ifndef KINETGAN_COMMON_FAILPOINT_H
#define KINETGAN_COMMON_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace kinet::failpoint {

/// Count of currently armed failpoints — the macro's fast-path guard.
[[nodiscard]] std::atomic<std::uint64_t>& armed_count() noexcept;

/// True iff any failpoint is armed.  One relaxed load; the macro checks this
/// before paying for the table lookup in hit().
[[nodiscard]] inline bool armed() noexcept {
    return armed_count().load(std::memory_order_relaxed) != 0;
}

/// Evaluates the named failpoint: counts the hit and, when the configured
/// spec elects this hit, injects the configured fault (throws kinet::Error,
/// sleeps, or aborts).  No-op for unarmed names.  Called via the macro.
void hit(const char* name);

/// Arms (spec = "error,p=0.5,...") or disarms (spec = "off") one failpoint.
/// Throws kinet::Error for unregistered names or malformed specs.
void configure(const std::string& name, const std::string& spec);

/// Applies KINET_FAILPOINTS="name=spec;name2=spec" if set.  Throws on
/// malformed content — a typo'd env var must not silently disable chaos.
void configure_from_env();

/// Disarms every failpoint and zeroes all hit counters.
void reset_all();

/// Hits recorded for `name` since it was last configured (0 if never armed).
[[nodiscard]] std::uint64_t hits(const std::string& name);

/// One `name mode=<m> hits=<h> triggered=<t>` line per configured failpoint
/// (armed or exhausted), sorted by name — the FAULT op's status payload.
[[nodiscard]] std::string render_status();

/// The central registry of every valid failpoint name, sorted.
[[nodiscard]] const std::vector<std::string>& registered_names();

/// True iff `name` is in the central registry.
[[nodiscard]] bool is_registered(const std::string& name);

}  // namespace kinet::failpoint

/// A named injection site.  Disabled cost: one relaxed atomic load.
#define KINET_FAILPOINT(name)                    \
    do {                                         \
        if (::kinet::failpoint::armed()) {       \
            ::kinet::failpoint::hit(name);       \
        }                                        \
    } while (false)

#endif  // KINETGAN_COMMON_FAILPOINT_H
