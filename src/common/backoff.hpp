// Jittered exponential backoff shared by every retry loop in the tree.
//
// One policy object, three consumers: the client's transport-reconnect and
// retryable-error retries, and the cluster's per-peer RPC retry budget.
// Delays are attempt-indexed (base · multiplier^attempt, capped at max) with
// a multiplicative jitter drawn from a *seeded* kinet::Rng — decorrelated
// retries across peers, yet bit-reproducible in tests (the tree-wide
// determinism contract bans wall-clock and random_device entropy).
#ifndef KINETGAN_COMMON_BACKOFF_H
#define KINETGAN_COMMON_BACKOFF_H

#include <cstdint>

#include "src/common/rng.hpp"

namespace kinet {

struct BackoffOptions {
    /// First delay, before jitter.
    std::uint64_t base_ms = 50;
    /// Ceiling the exponential growth saturates at (pre-jitter).
    std::uint64_t max_ms = 2000;
    /// Growth factor per attempt.
    double multiplier = 2.0;
    /// Jitter fraction: each delay is scaled by uniform(1-j, 1+j).  0
    /// disables jitter entirely.
    double jitter = 0.25;
};

/// Attempt-indexed delay generator.  Not thread-safe: each retry loop owns
/// its instance.
class Backoff {
public:
    explicit Backoff(BackoffOptions options = {}, std::uint64_t seed = 0)
        : options_(options), rng_(seed) {}

    /// Delay before the next retry; advances the attempt index.
    [[nodiscard]] std::uint64_t next_delay_ms();

    /// Restarts from the first attempt (call after a success).
    void reset() noexcept { attempt_ = 0; }

    [[nodiscard]] std::size_t attempts() const noexcept { return attempt_; }

private:
    BackoffOptions options_;
    Rng rng_;
    std::size_t attempt_ = 0;
};

}  // namespace kinet

#endif  // KINETGAN_COMMON_BACKOFF_H
