#include "src/common/stopwatch.hpp"

namespace kinet {

double Stopwatch::seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
}

double Stopwatch::millis() const {
    return seconds() * 1000.0;
}

void Stopwatch::reset() {
    start_ = clock::now();
}

}  // namespace kinet
