// Byte-buffer serialization primitives used by the model-snapshot format.
//
// Writer appends fixed-width scalars, length-prefixed strings and float
// arrays to an in-memory buffer; Reader consumes the same layout with
// bounds checking — a truncated or overlong buffer surfaces as a
// kinet::Error with the offending field, never as silent garbage.
//
// Scalars are stored in HOST byte order (memcpy) — little-endian on every
// platform this project targets.  Snapshots are not portable across byte
// orders; a cross-endian load fails cleanly at the container's version
// check rather than producing garbage.  The matrix helpers are templates
// so this layer stays below src/tensor in the dependency order.
#ifndef KINETGAN_COMMON_BYTES_H
#define KINETGAN_COMMON_BYTES_H

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace kinet::bytes {

/// Appends primitives to a growing byte buffer.
class Writer {
public:
    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f32(float v);
    void f64(double v);
    void boolean(bool v);
    /// Length-prefixed (u64) string.
    void str(std::string_view s);
    /// Length-prefixed (u64) dense float array.
    void f32_array(std::span<const float> values);
    /// Length-prefixed (u64) dense double array.
    void f64_array(std::span<const double> values);
    /// Length-prefixed (u64) size_t array (stored as u64).
    void index_array(std::span<const std::size_t> values);
    /// Raw bytes, no length prefix (caller frames them).
    void raw(std::string_view data);

    [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }
    [[nodiscard]] std::string take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

private:
    std::string buf_;
};

/// Consumes the Writer layout; every read is bounds-checked and throws
/// kinet::Error("bytes: truncated ...") past the end of the buffer.
class Reader {
public:
    explicit Reader(std::string_view buffer) : buf_(buffer) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint16_t u16();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] std::int64_t i64();
    [[nodiscard]] float f32();
    [[nodiscard]] double f64();
    [[nodiscard]] bool boolean();
    [[nodiscard]] std::string str();
    [[nodiscard]] std::vector<float> f32_array();
    [[nodiscard]] std::vector<double> f64_array();
    [[nodiscard]] std::vector<std::size_t> index_array();
    /// Reads exactly n raw bytes.
    [[nodiscard]] std::string_view raw(std::size_t n);

    /// Reads a u64 element count and validates it against the bytes left in
    /// the buffer (each element must consume at least `min_elem_bytes`), so
    /// callers can size containers from it without handing a corrupt stream
    /// an arbitrary allocation.  Throws kinet::Error when the count could
    /// not possibly be satisfied.
    [[nodiscard]] std::size_t element_count(std::size_t min_elem_bytes, const char* what);

    [[nodiscard]] std::size_t remaining() const noexcept { return buf_.size() - pos_; }
    [[nodiscard]] bool exhausted() const noexcept { return pos_ == buf_.size(); }

private:
    void require(std::size_t n, const char* what) const;

    std::string_view buf_;
    std::size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — the snapshot payload checksum.
[[nodiscard]] std::uint64_t fnv1a(std::string_view data);

/// Shared error path for read_matrix (out of line to keep the template lean).
[[noreturn]] void throw_matrix_size_mismatch(std::size_t rows, std::size_t cols,
                                             std::size_t actual);

/// Serializes any row-major matrix exposing rows()/cols()/data().
template <typename MatrixT>
void write_matrix(Writer& w, const MatrixT& m) {
    w.u64(m.rows());
    w.u64(m.cols());
    w.f32_array(std::span<const float>(m.data().data(), m.data().size()));
}

/// Reads a matrix written by write_matrix.  The declared shape is checked
/// against the (buffer-bounded) value count *before* any storage is
/// allocated, with the product computed overflow-safely — corrupt
/// dimensions surface as a kinet::Error, never as a huge allocation.
template <typename MatrixT>
[[nodiscard]] MatrixT read_matrix(Reader& r) {
    const auto rows = static_cast<std::size_t>(r.u64());
    const auto cols = static_cast<std::size_t>(r.u64());
    const auto values = r.f32_array();
    const bool shape_matches = (rows == 0 || cols == 0)
                                   ? values.empty()
                                   : (values.size() % cols == 0 && values.size() / cols == rows);
    if (!shape_matches) {
        throw_matrix_size_mismatch(rows, cols, values.size());
    }
    MatrixT m(rows, cols);
    if (!values.empty()) {
        std::memcpy(m.data().data(), values.data(), values.size() * sizeof(float));
    }
    return m;
}

}  // namespace kinet::bytes

#endif  // KINETGAN_COMMON_BYTES_H
