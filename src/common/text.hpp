// Small string helpers used by the CSV layer, KG symbol parsing and report
// printers.  Kept dependency-free and allocation-conscious.
#ifndef KINETGAN_COMMON_TEXT_H
#define KINETGAN_COMMON_TEXT_H

#include <string>
#include <string_view>
#include <vector>

namespace kinet::text {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True if s starts with the given prefix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-precision double formatting for report tables (no trailing noise).
[[nodiscard]] std::string format_double(double v, int precision);

/// Left-pads/truncates to a column width for aligned console tables.
[[nodiscard]] std::string pad(std::string_view s, std::size_t width);

/// Lowercase hex encoding of arbitrary bytes — used wherever untrusted
/// strings (model names, request lines) must become safe single tokens
/// (journal records, snapshot-store filenames).
[[nodiscard]] std::string hex_encode(std::string_view bytes);

/// Inverse of hex_encode; throws kinet::Error on odd length or non-hex
/// characters.
[[nodiscard]] std::string hex_decode(std::string_view hex);

}  // namespace kinet::text

#endif  // KINETGAN_COMMON_TEXT_H
