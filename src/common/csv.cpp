#include "src/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "src/common/check.hpp"

namespace kinet::csv {
namespace {

// Parses one logical CSV record starting at `pos`; advances `pos` past the
// record's terminating newline (or to content.size()).
std::vector<std::string> parse_record(const std::string& content, std::size_t& pos) {
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    while (pos < content.size()) {
        const char c = content[pos];
        if (in_quotes) {
            if (c == '"') {
                if (pos + 1 < content.size() && content[pos + 1] == '"') {
                    field.push_back('"');
                    pos += 2;
                } else {
                    in_quotes = false;
                    ++pos;
                }
            } else {
                field.push_back(c);
                ++pos;
            }
        } else if (c == '"') {
            KINET_CHECK(field.empty(), "quote in the middle of an unquoted CSV field");
            in_quotes = true;
            ++pos;
        } else if (c == ',') {
            fields.push_back(std::move(field));
            field.clear();
            ++pos;
        } else if (c == '\n' || c == '\r') {
            if (c == '\r' && pos + 1 < content.size() && content[pos + 1] == '\n') {
                ++pos;
            }
            ++pos;
            break;
        } else {
            field.push_back(c);
            ++pos;
        }
    }
    KINET_CHECK(!in_quotes, "unterminated quoted CSV field");
    fields.push_back(std::move(field));
    return fields;
}

bool needs_quoting(const std::string& cell) {
    return cell.find_first_of(",\"\n\r") != std::string::npos;
}

void write_cell(std::string& out, const std::string& cell) {
    if (!needs_quoting(cell)) {
        out += cell;
        return;
    }
    out.push_back('"');
    for (char c : cell) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
}

}  // namespace

Document parse(const std::string& content) {
    Document doc;
    std::size_t pos = 0;
    KINET_CHECK(!content.empty(), "empty CSV document");
    doc.header = parse_record(content, pos);
    while (pos < content.size()) {
        // Skip blank trailing lines.
        if (content[pos] == '\n' || content[pos] == '\r') {
            ++pos;
            continue;
        }
        auto row = parse_record(content, pos);
        KINET_CHECK(row.size() == doc.header.size(),
                    "CSV row has " + std::to_string(row.size()) + " fields, header has " +
                        std::to_string(doc.header.size()));
        doc.rows.push_back(std::move(row));
    }
    return doc;
}

Document read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    KINET_CHECK(in.good(), "cannot open CSV file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

void serialize_append(const Document& doc, bool include_header, std::string& out) {
    auto write_row = [&out](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0) {
                out.push_back(',');
            }
            write_cell(out, row[i]);
        }
        out.push_back('\n');
    };
    if (include_header) {
        write_row(doc.header);
    }
    for (const auto& row : doc.rows) {
        KINET_CHECK(row.size() == doc.header.size(), "ragged CSV row on serialize");
        write_row(row);
    }
}

std::string serialize(const Document& doc) {
    std::string out;
    serialize_append(doc, /*include_header=*/true, out);
    return out;
}

void write_file(const std::string& path, const Document& doc) {
    std::ofstream out(path, std::ios::binary);
    KINET_CHECK(out.good(), "cannot open CSV file for writing: " + path);
    out << serialize(doc);
    KINET_CHECK(out.good(), "I/O error while writing CSV file: " + path);
}

}  // namespace kinet::csv
