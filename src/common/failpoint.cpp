#include "src/common/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_annotations.hpp"

namespace kinet::failpoint {
namespace {

/// The central list of every failpoint name that may appear at a
/// KINET_FAILPOINT site.  kinet_lint.py's `failpoint-name` rule parses this
/// array and rejects any site whose name is missing from it (and any entry
/// here with no site left in the tree).
constexpr const char* kRegisteredFailpoints[] = {
    "cluster.digest",
    "cluster.epoch_adopt",
    "cluster.fetch",
    "cluster.forward",
    "cluster.handoff",
    "cluster.join",
    "cluster.replicate",
    "cluster.rpc",
    "journal.append",
    "registry.evict",
    "snapshot.commit",
    "snapshot.read",
    "snapshot.write",
    "socket.recv",
    "socket.send",
};

enum class Mode { off, error, delay, crash };

const char* mode_name(Mode mode) {
    switch (mode) {
    case Mode::off:
        return "off";
    case Mode::error:
        return "error";
    case Mode::delay:
        return "delay";
    case Mode::crash:
        return "crash";
    }
    return "off";
}

struct Point {
    Mode mode = Mode::off;
    double p = 1.0;              // trigger probability per eligible hit
    std::uint64_t after = 0;     // skip the first N hits
    std::uint64_t times = 0;     // 0 = unlimited triggers
    std::uint64_t delay_ms = 10; // mode=delay duration
    Rng rng{0};                  // seeded probability stream
    std::uint64_t hits = 0;
    std::uint64_t triggered = 0;
};

/// What hit() must do after releasing the table lock (delays must not
/// serialize unrelated failpoints behind the global mutex).
struct Action {
    Mode mode = Mode::off;
    std::uint64_t delay_ms = 0;
};

struct State {
    Mutex mu;
    std::map<std::string, Point> points KINET_GUARDED_BY(mu);
    std::atomic<std::uint64_t> armed{0};
};

State& state() {
    static State s;
    return s;
}

std::uint64_t parse_u64_key(const std::string& spec, const std::string& key,
                            const std::string& value) {
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(value, &used);
        KINET_CHECK(used == value.size(), "");
        return v;
    } catch (const std::exception&) {
        throw Error("failpoint: bad " + key + "= in spec '" + spec + "'");
    }
}

/// Parses "mode[,key=value]..." into a fresh Point.  `spec` must not be
/// "off" (the caller special-cases disarming).
Point parse_spec(const std::string& spec) {
    Point point;
    std::uint64_t seed = 0;
    std::stringstream ss(spec);
    std::string token;
    bool first = true;
    while (std::getline(ss, token, ',')) {
        if (first) {
            first = false;
            if (token == "error") {
                point.mode = Mode::error;
            } else if (token == "delay") {
                point.mode = Mode::delay;
            } else if (token == "crash") {
                point.mode = Mode::crash;
            } else {
                throw Error("failpoint: unknown mode '" + token + "' in spec '" + spec +
                            "' (expected off, error, delay or crash)");
            }
            continue;
        }
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw Error("failpoint: malformed key '" + token + "' in spec '" + spec + "'");
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "p") {
            try {
                point.p = std::stod(value);
            } catch (const std::exception&) {
                point.p = -1.0;
            }
            if (point.p < 0.0 || point.p > 1.0) {
                throw Error("failpoint: p= must be in [0, 1] in spec '" + spec + "'");
            }
        } else if (key == "seed") {
            seed = parse_u64_key(spec, key, value);
        } else if (key == "after") {
            point.after = parse_u64_key(spec, key, value);
        } else if (key == "times") {
            point.times = parse_u64_key(spec, key, value);
        } else if (key == "ms") {
            point.delay_ms = parse_u64_key(spec, key, value);
        } else {
            throw Error("failpoint: unknown key '" + key + "' in spec '" + spec + "'");
        }
    }
    if (first) {
        throw Error("failpoint: empty spec");
    }
    point.rng = Rng(seed);
    return point;
}

}  // namespace

std::atomic<std::uint64_t>& armed_count() noexcept { return state().armed; }

void hit(const char* name) {
    Action action;
    {
        State& s = state();
        const MutexLock lock(s.mu);
        const auto it = s.points.find(name);
        if (it == s.points.end()) {
            return;
        }
        Point& point = it->second;
        ++point.hits;
        if (point.mode == Mode::off) {
            return;
        }
        if (point.hits <= point.after) {
            return;
        }
        if (point.times != 0 && point.triggered >= point.times) {
            return;
        }
        if (point.p < 1.0 && !point.rng.bernoulli(point.p)) {
            return;
        }
        ++point.triggered;
        action.mode = point.mode;
        action.delay_ms = point.delay_ms;
    }
    switch (action.mode) {
    case Mode::off:
        return;
    case Mode::error:
        throw Error("failpoint: " + std::string(name) + " injected error");
    case Mode::delay:
        if (action.delay_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
        }
        return;
    case Mode::crash:
        std::abort();  // the in-process stand-in for kill -9
    }
}

void configure(const std::string& name, const std::string& spec) {
    if (!is_registered(name)) {
        throw Error("failpoint: unknown failpoint '" + name + "'");
    }
    State& s = state();
    if (spec == "off") {
        const MutexLock lock(s.mu);
        if (s.points.erase(name) != 0) {
            s.armed.fetch_sub(1, std::memory_order_relaxed);
        }
        return;
    }
    Point point = parse_spec(spec);  // throws before any state change
    const MutexLock lock(s.mu);
    const auto [it, inserted] = s.points.insert_or_assign(name, point);
    (void)it;
    if (inserted) {
        s.armed.fetch_add(1, std::memory_order_relaxed);
    }
}

void configure_from_env() {
    const char* env = std::getenv("KINET_FAILPOINTS");
    if (env == nullptr || *env == '\0') {
        return;
    }
    std::stringstream ss{std::string(env)};
    std::string entry;
    while (std::getline(ss, entry, ';')) {
        if (entry.empty()) {
            continue;
        }
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw Error("failpoint: malformed KINET_FAILPOINTS entry '" + entry +
                        "' (expected name=spec)");
        }
        configure(entry.substr(0, eq), entry.substr(eq + 1));
    }
}

void reset_all() {
    State& s = state();
    const MutexLock lock(s.mu);
    s.points.clear();
    s.armed.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& name) {
    State& s = state();
    const MutexLock lock(s.mu);
    const auto it = s.points.find(name);
    return it == s.points.end() ? 0 : it->second.hits;
}

std::string render_status() {
    State& s = state();
    const MutexLock lock(s.mu);
    std::string out;
    out += "failpoints=" + std::to_string(s.points.size()) + "\n";
    for (const auto& [name, point] : s.points) {
        out += name + " mode=" + mode_name(point.mode) +
               " hits=" + std::to_string(point.hits) +
               " triggered=" + std::to_string(point.triggered) + "\n";
    }
    return out;
}

const std::vector<std::string>& registered_names() {
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v(std::begin(kRegisteredFailpoints),
                                   std::end(kRegisteredFailpoints));
        std::sort(v.begin(), v.end());
        return v;
    }();
    return names;
}

bool is_registered(const std::string& name) {
    const auto& names = registered_names();
    return std::binary_search(names.begin(), names.end(), name);
}

}  // namespace kinet::failpoint
