// Clang Thread Safety Analysis capabilities for the concurrent stack.
//
// Every lock-guarded class in the tree (ThreadPool, ModelRegistry,
// JobManager, EventLoop, ClusterService, Linear's packed-weight cache)
// declares which fields each mutex protects via these macros, and clang
// checks the lock discipline at compile time (`-Wthread-safety`, enforced
// -Werror by the static-analysis CI job).  Under GCC/MSVC the macros expand
// to nothing and the wrapper types below degrade to thin shims over the
// std primitives, so the annotations cost nothing off-clang.
//
// Conventions (see docs/static-analysis.md for the full catalog):
//   - a field written under a lock is `KINET_GUARDED_BY(mu_)`;
//   - a private helper that assumes the lock is held is named `*_locked`
//     and declared `KINET_REQUIRES(mu_)`;
//   - lock objects are the annotated wrappers (kinet::Mutex,
//     kinet::SharedMutex, kinet::CondVar), never raw std types;
//   - scopes hold locks via MutexLock / ReaderLock / WriterLock /
//     UniqueLock, never bare lock()/unlock() pairs;
//   - KINET_NO_THREAD_SAFETY_ANALYSIS appears only on documented sites
//     implementing a deliberate lock-free publication protocol (each one
//     must cite its memory-ordering argument in a comment).
#ifndef KINETGAN_COMMON_THREAD_ANNOTATIONS_H
#define KINETGAN_COMMON_THREAD_ANNOTATIONS_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define KINET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KINET_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define KINET_CAPABILITY(x) KINET_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define KINET_SCOPED_CAPABILITY KINET_THREAD_ANNOTATION(scoped_lockable)

/// Field is only read/written while holding `x`.
#define KINET_GUARDED_BY(x) KINET_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose *pointee* is only accessed while holding `x`.
#define KINET_PT_GUARDED_BY(x) KINET_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold `...` exclusively before invoking.
#define KINET_REQUIRES(...) \
    KINET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must hold `...` at least shared.
#define KINET_REQUIRES_SHARED(...) \
    KINET_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires `...` exclusively and does not release it.
#define KINET_ACQUIRE(...) \
    KINET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KINET_ACQUIRE_SHARED(...) \
    KINET_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases `...` (exclusive, shared, or either — _GENERIC).
#define KINET_RELEASE(...) \
    KINET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KINET_RELEASE_SHARED(...) \
    KINET_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define KINET_RELEASE_GENERIC(...) \
    KINET_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function acquires `...` iff it returns `ret`.
#define KINET_TRY_ACQUIRE(ret, ...) \
    KINET_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold `...` (deadlock prevention on re-entrant paths).
#define KINET_EXCLUDES(...) KINET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define KINET_ASSERT_CAPABILITY(x) \
    KINET_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define KINET_RETURN_CAPABILITY(x) KINET_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — documented, justified sites ONLY (lock-free publication
/// protocols the analysis cannot model).  Every use must carry a comment
/// explaining the memory-ordering argument; kinet-lint counts them.
#define KINET_NO_THREAD_SAFETY_ANALYSIS \
    KINET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace kinet {

/// std::mutex with the capability attribute clang's analysis tracks.
class KINET_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() KINET_ACQUIRE() { mu_.lock(); }
    void unlock() KINET_RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() KINET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    friend class CondVar;
    friend class UniqueLock;
    std::mutex mu_;
};

/// std::shared_mutex with exclusive + shared capability tracking.
class KINET_CAPABILITY("shared_mutex") SharedMutex {
public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() KINET_ACQUIRE() { mu_.lock(); }
    void unlock() KINET_RELEASE() { mu_.unlock(); }
    void lock_shared() KINET_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() KINET_RELEASE_SHARED() { mu_.unlock_shared(); }

private:
    std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (std::lock_guard shape: no unlock
/// before destruction, no condition-variable use — see UniqueLock).
class KINET_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) KINET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() KINET_RELEASE() { mu_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mu_;
};

/// RAII exclusive lock that a CondVar can wait on (std::unique_lock shape).
class KINET_SCOPED_CAPABILITY UniqueLock {
public:
    explicit UniqueLock(Mutex& mu) KINET_ACQUIRE(mu) : lock_(mu.mu_) {}
    ~UniqueLock() KINET_RELEASE() = default;
    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class KINET_SCOPED_CAPABILITY WriterLock {
public:
    explicit WriterLock(SharedMutex& mu) KINET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~WriterLock() KINET_RELEASE() { mu_.unlock(); }
    WriterLock(const WriterLock&) = delete;
    WriterLock& operator=(const WriterLock&) = delete;

private:
    SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class KINET_SCOPED_CAPABILITY ReaderLock {
public:
    explicit ReaderLock(SharedMutex& mu) KINET_ACQUIRE_SHARED(mu) : mu_(mu) {
        mu_.lock_shared();
    }
    // Destructor releases the shared hold.  Clang models a scoped
    // capability's destructor as releasing whatever mode it acquired, and
    // rejects release_shared here ("cannot release shared capability"), so
    // the generic release is the correct annotation.
    ~ReaderLock() KINET_RELEASE_GENERIC() { mu_.unlock_shared(); }
    ReaderLock(const ReaderLock&) = delete;
    ReaderLock& operator=(const ReaderLock&) = delete;

private:
    SharedMutex& mu_;
};

/// Condition variable bound to kinet::Mutex via UniqueLock.  wait()
/// releases and reacquires the mutex internally; from the analysis'
/// viewpoint the capability is held across the call, which matches how
/// callers reason about their predicates.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

    // Predicate-less timed waits only: a predicate lambda would read its
    // guarded fields inside a function the analysis sees without the lock
    // held — callers loop over the condition inline instead, where the
    // capability is visible (see docs/static-analysis.md).
    template <typename Rep, typename Period>
    std::cv_status wait_for(UniqueLock& lock,
                            const std::chrono::duration<Rep, Period>& dur) {
        return cv_.wait_for(lock.lock_, dur);
    }

    template <typename Clock, typename Duration>
    std::cv_status wait_until(UniqueLock& lock,
                              const std::chrono::time_point<Clock, Duration>& deadline) {
        return cv_.wait_until(lock.lock_, deadline);
    }

private:
    std::condition_variable cv_;
};

}  // namespace kinet

#endif  // KINETGAN_COMMON_THREAD_ANNOTATIONS_H
