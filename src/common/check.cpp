#include "src/common/check.hpp"

#include <sstream>

namespace kinet::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
    std::ostringstream os;
    os << "check failed: (" << expr << ") at " << file << ":" << line;
    if (!message.empty()) {
        os << " — " << message;
    }
    throw Error(os.str());
}

}  // namespace kinet::detail
