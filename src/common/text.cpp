#include "src/common/text.hpp"

#include <cctype>
#include <sstream>

#include "src/common/check.hpp"

namespace kinet::text {

std::vector<std::string> split(std::string_view s, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
        --e;
    }
    return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) {
            out += sep;
        }
        out += items[i];
    }
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.substr(0, prefix.size()) == prefix;
}

std::string format_double(double v, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string pad(std::string_view s, std::size_t width) {
    std::string out(s.substr(0, width));
    while (out.size() < width) {
        out.push_back(' ');
    }
    return out;
}

std::string hex_encode(std::string_view bytes) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const auto b = static_cast<unsigned char>(c);
        out.push_back(kDigits[b >> 4]);
        out.push_back(kDigits[b & 0x0f]);
    }
    return out;
}

namespace {

int hex_nibble(char c) {
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
    }
    return -1;
}

}  // namespace

std::string hex_decode(std::string_view hex) {
    KINET_CHECK(hex.size() % 2 == 0, "hex_decode: odd-length input");
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_nibble(hex[i]);
        const int lo = hex_nibble(hex[i + 1]);
        KINET_CHECK(hi >= 0 && lo >= 0, "hex_decode: non-hex character");
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return out;
}

}  // namespace kinet::text
