// Error-handling primitives shared by every module.
//
// The library reports recoverable misuse (bad arguments, malformed inputs,
// inconsistent shapes) by throwing kinet::Error.  Internal invariant
// violations use the same mechanism so that tests can assert on them.
#ifndef KINETGAN_COMMON_CHECK_H
#define KINETGAN_COMMON_CHECK_H

#include <stdexcept>
#include <string>

namespace kinet {

/// Exception type thrown for all recoverable library errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& message);
}  // namespace detail

}  // namespace kinet

/// Checks a precondition / invariant; throws kinet::Error with location info
/// on failure.  Usage: KINET_CHECK(rows > 0, "matrix must be non-empty").
#define KINET_CHECK(expr, message)                                                   \
    do {                                                                             \
        if (!(expr)) {                                                               \
            ::kinet::detail::throw_check_failure(#expr, __FILE__, __LINE__, (message)); \
        }                                                                            \
    } while (false)

#endif  // KINETGAN_COMMON_CHECK_H
