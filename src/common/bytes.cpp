#include "src/common/bytes.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace kinet::bytes {
namespace {

template <typename T>
void append_le(std::string& buf, T v) {
    char raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    buf.append(raw, sizeof(T));
}

}  // namespace

void Writer::u8(std::uint8_t v) { append_le(buf_, v); }
void Writer::u16(std::uint16_t v) { append_le(buf_, v); }
void Writer::u32(std::uint32_t v) { append_le(buf_, v); }
void Writer::u64(std::uint64_t v) { append_le(buf_, v); }
void Writer::i64(std::int64_t v) { append_le(buf_, v); }
void Writer::f32(float v) { append_le(buf_, v); }
void Writer::f64(double v) { append_le(buf_, v); }
void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
}

void Writer::f32_array(std::span<const float> values) {
    u64(values.size());
    if (!values.empty()) {
        buf_.append(reinterpret_cast<const char*>(values.data()), values.size() * sizeof(float));
    }
}

void Writer::f64_array(std::span<const double> values) {
    u64(values.size());
    if (!values.empty()) {
        buf_.append(reinterpret_cast<const char*>(values.data()), values.size() * sizeof(double));
    }
}

void Writer::index_array(std::span<const std::size_t> values) {
    u64(values.size());
    for (const std::size_t v : values) {
        u64(v);
    }
}

void Writer::raw(std::string_view data) { buf_.append(data.data(), data.size()); }

void Reader::require(std::size_t n, const char* what) const {
    if (buf_.size() - pos_ < n) {
        throw Error("bytes: truncated buffer reading " + std::string(what) + " (need " +
                    std::to_string(n) + " bytes at offset " + std::to_string(pos_) + ", have " +
                    std::to_string(buf_.size() - pos_) + ")");
    }
}

namespace {

// Element counts come from the (possibly corrupt) buffer itself, so the
// byte-size computation must not be allowed to overflow past the bounds check.
void require_count(std::size_t count, std::size_t elem_size, std::size_t remaining,
                   const char* what) {
    if (count > remaining / elem_size) {
        throw Error("bytes: truncated buffer reading " + std::string(what) + " (" +
                    std::to_string(count) + " elements declared, " + std::to_string(remaining) +
                    " bytes remain)");
    }
}

}  // namespace

namespace {

template <typename T>
T consume_le(std::string_view buf, std::size_t& pos) {
    T v;
    std::memcpy(&v, buf.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
}

}  // namespace

std::uint8_t Reader::u8() {
    require(1, "u8");
    return consume_le<std::uint8_t>(buf_, pos_);
}

std::uint16_t Reader::u16() {
    require(2, "u16");
    return consume_le<std::uint16_t>(buf_, pos_);
}

std::uint32_t Reader::u32() {
    require(4, "u32");
    return consume_le<std::uint32_t>(buf_, pos_);
}

std::uint64_t Reader::u64() {
    require(8, "u64");
    return consume_le<std::uint64_t>(buf_, pos_);
}

std::int64_t Reader::i64() {
    require(8, "i64");
    return consume_le<std::int64_t>(buf_, pos_);
}

float Reader::f32() {
    require(4, "f32");
    return consume_le<float>(buf_, pos_);
}

double Reader::f64() {
    require(8, "f64");
    return consume_le<double>(buf_, pos_);
}

bool Reader::boolean() { return u8() != 0; }

std::string Reader::str() {
    const auto n = static_cast<std::size_t>(u64());
    require(n, "string payload");
    std::string out(buf_.substr(pos_, n));
    pos_ += n;
    return out;
}

std::vector<float> Reader::f32_array() {
    const auto n = static_cast<std::size_t>(u64());
    require_count(n, sizeof(float), remaining(), "f32 array payload");
    std::vector<float> out(n);
    if (n > 0) {
        std::memcpy(out.data(), buf_.data() + pos_, n * sizeof(float));
        pos_ += n * sizeof(float);
    }
    return out;
}

std::vector<double> Reader::f64_array() {
    const auto n = static_cast<std::size_t>(u64());
    require_count(n, sizeof(double), remaining(), "f64 array payload");
    std::vector<double> out(n);
    if (n > 0) {
        std::memcpy(out.data(), buf_.data() + pos_, n * sizeof(double));
        pos_ += n * sizeof(double);
    }
    return out;
}

std::vector<std::size_t> Reader::index_array() {
    const auto n = static_cast<std::size_t>(u64());
    require_count(n, 8, remaining(), "index array payload");
    std::vector<std::size_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::size_t>(consume_le<std::uint64_t>(buf_, pos_));
    }
    return out;
}

std::size_t Reader::element_count(std::size_t min_elem_bytes, const char* what) {
    const auto n = static_cast<std::size_t>(u64());
    require_count(n, std::max<std::size_t>(min_elem_bytes, 1), remaining(), what);
    return n;
}

std::string_view Reader::raw(std::size_t n) {
    require(n, "raw bytes");
    const std::string_view out = buf_.substr(pos_, n);
    pos_ += n;
    return out;
}

std::uint64_t fnv1a(std::string_view data) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : data) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void throw_matrix_size_mismatch(std::size_t rows, std::size_t cols, std::size_t actual) {
    throw Error("bytes: matrix payload size mismatch (" + std::to_string(rows) + "x" +
                std::to_string(cols) + " declared, " + std::to_string(actual) + " values)");
}

}  // namespace kinet::bytes
