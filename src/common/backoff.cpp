#include "src/common/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace kinet {

std::uint64_t Backoff::next_delay_ms() {
    const double base = static_cast<double>(std::max<std::uint64_t>(options_.base_ms, 1));
    const double grown =
        base * std::pow(std::max(options_.multiplier, 1.0), static_cast<double>(attempt_));
    ++attempt_;
    double delay = std::min(grown, static_cast<double>(std::max<std::uint64_t>(
                                       options_.max_ms, options_.base_ms)));
    if (options_.jitter > 0.0) {
        const double j = std::min(options_.jitter, 1.0);
        delay *= rng_.uniform(1.0 - j, 1.0 + j);
    }
    return static_cast<std::uint64_t>(std::llround(std::max(delay, 0.0)));
}

}  // namespace kinet
