// Wall-clock stopwatch used by the benchmark harnesses and training loops.
#ifndef KINETGAN_COMMON_STOPWATCH_H
#define KINETGAN_COMMON_STOPWATCH_H

#include <chrono>

namespace kinet {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    /// Elapsed seconds since construction or last reset().
    [[nodiscard]] double seconds() const;
    /// Elapsed milliseconds.
    [[nodiscard]] double millis() const;
    void reset();

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace kinet

#endif  // KINETGAN_COMMON_STOPWATCH_H
