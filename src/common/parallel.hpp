// Shared-memory parallelism primitives: a lazily started thread pool and a
// deterministic `parallel_for` over index ranges.
//
// Determinism contract: `parallel_for(count, grain, fn)` always splits
// [0, count) into the same contiguous chunks for a given (count, grain,
// thread count), and each chunk writes only its own slice of the output.
// Kernels built on it therefore produce bit-identical results run-to-run,
// and — because per-index arithmetic never depends on the chunking — across
// thread counts as well.
//
// The pool size is `hardware_threads()`: std::thread::hardware_concurrency
// unless overridden by the KINET_NUM_THREADS environment variable (read
// once, at first use).  A pool of size <= 1 executes everything inline on
// the calling thread, so single-core machines pay no synchronisation cost.
#ifndef KINETGAN_COMMON_PARALLEL_H
#define KINETGAN_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>
#include <memory>

namespace kinet {

/// Worker count for the global pool: KINET_NUM_THREADS if set (clamped to
/// [1, 256]), otherwise std::thread::hardware_concurrency(), at least 1.
[[nodiscard]] std::size_t hardware_threads();

/// Fixed-size pool of worker threads executing queued tasks.  The calling
/// thread of `parallel_for` participates in the work, so a pool is never
/// idle-blocked on its own submission.
class ThreadPool {
public:
    /// Starts `threads - 1` workers (the submitting thread is the last
    /// lane); `threads <= 1` starts none and runs everything inline.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total parallel lanes (workers + the submitting thread).
    [[nodiscard]] std::size_t size() const noexcept;

    /// Splits [0, count) into at most `max_chunks` contiguous, equal-as-
    /// possible chunks (never more than size(), never fewer than 1) and
    /// runs fn(begin, end) on each; blocks until all chunks finish.
    /// Exceptions thrown by `fn` are rethrown on the calling thread (the
    /// first one observed).  Must not be called recursively from inside
    /// `fn` on the same pool.
    void parallel_for(std::size_t count, std::size_t max_chunks,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    /// Enqueues an independent task for asynchronous execution and returns
    /// immediately; on a single-lane pool (no workers) the task runs inline
    /// before returning.  Submitted tasks run on a separate queue from
    /// parallel_for chunks (so they may take locks and call parallel_for
    /// themselves), but must not wait for *other submitted tasks* to
    /// complete — every worker could be occupied by such a waiter.
    /// Exceptions escaping the task terminate the process — catch inside.
    void submit(std::function<void()> task);

    /// True when the calling thread is one of this pool's worker threads.
    /// Code that wants to submit() work and wait for it must check this
    /// first and fall back to running inline — a pool worker waiting on a
    /// submitted task is the deadlock the submit() contract forbids.
    [[nodiscard]] bool on_worker_thread() const noexcept;

    /// Process-wide pool of hardware_threads() lanes, started on first use.
    static ThreadPool& global();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Runs fn(begin, end) over [0, count) on the global pool.  `grain` is the
/// minimum number of indices per chunk: ranges smaller than 2*grain (or a
/// single-lane pool) run inline as one serial call fn(0, count).
void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace kinet

#endif  // KINETGAN_COMMON_PARALLEL_H
