#include "src/common/fsio.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "src/common/check.hpp"

namespace kinet::fsio {
namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
    throw Error("fsio: " + what + " " + path + ": " + std::strerror(errno));
}

/// RAII fd so error paths (throws) never leak a descriptor.
class Fd {
public:
    Fd(const char* what, const std::string& path, int flags, mode_t mode = 0644)
        : path_(path) {
        do {
            fd_ = ::open(path.c_str(), flags, mode);
        } while (fd_ < 0 && errno == EINTR);
        if (fd_ < 0) {
            throw_errno(what, path);
        }
    }
    ~Fd() {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    void write_all(const std::string& bytes) const {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ::ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                throw_errno("write", path_);
            }
            off += static_cast<std::size_t>(n);
        }
    }

    void sync() const {
        if (::fsync(fd_) != 0) {
            throw_errno("fsync", path_);
        }
    }

private:
    std::string path_;
    int fd_ = -1;
};

void fsync_parent_dir(const std::string& path) {
    namespace fs = std::filesystem;
    fs::path parent = fs::path(path).parent_path();
    if (parent.empty()) {
        parent = ".";
    }
    // Directory fsync is advisory on some filesystems; failure to open the
    // directory read-only is not fatal (the data file itself is synced).
    int fd = -1;
    do {
        fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        return;
    }
    (void)::fsync(fd);
    ::close(fd);
}

}  // namespace

void write_file_durable(const std::string& path, const std::string& bytes) {
    const Fd fd("open for write", path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
    fd.write_all(bytes);
    fd.sync();
}

void rename_durable(const std::string& from, const std::string& to) {
    if (::rename(from.c_str(), to.c_str()) != 0) {
        throw Error("fsio: rename " + from + " -> " + to + ": " + std::strerror(errno));
    }
    fsync_parent_dir(to);
}

void replace_file_durable(const std::string& path, const std::string& bytes) {
    const std::string tmp = path + ".tmp";
    write_file_durable(tmp, bytes);
    rename_durable(tmp, path);
}

void append_durable(const std::string& path, const std::string& bytes) {
    const Fd fd("open for append", path, O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC);
    fd.write_all(bytes);
    fd.sync();
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error("fsio: cannot open " + path);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
        throw Error("fsio: read failed for " + path);
    }
    return ss.str();
}

}  // namespace kinet::fsio
