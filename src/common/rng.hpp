// Deterministic random-number utilities.
//
// Every stochastic component in the library (simulators, GAN training,
// samplers, attacks) takes a kinet::Rng so that experiments are reproducible
// from a single seed.  The class wraps std::mt19937_64 and adds the sampling
// helpers the codebase actually needs.
#ifndef KINETGAN_COMMON_RNG_H
#define KINETGAN_COMMON_RNG_H

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace kinet {

/// Seedable random generator with convenience draws used across the library.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed'0f'c0ffeeULL) : engine_(seed) {}

    /// Uniform real in [lo, hi).
    double uniform(double lo = 0.0, double hi = 1.0);
    /// Standard normal (mean 0, stddev 1) scaled to (mean, stddev).
    double normal(double mean = 0.0, double stddev = 1.0);
    /// Laplace(mu, b) draw — used by PATE aggregation.
    double laplace(double mu, double b);
    /// Exponential with rate lambda — inter-arrival times in the simulators.
    double exponential(double lambda);
    /// Log-normal draw (parameters of the underlying normal).
    double lognormal(double mu, double sigma);
    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t randint(std::int64_t lo, std::int64_t hi);
    /// Bernoulli trial.
    bool bernoulli(double p);
    /// Gumbel(0, 1) draw — for Gumbel-softmax sampling.
    double gumbel();

    /// Index drawn from unnormalised non-negative weights.
    std::size_t categorical(std::span<const double> weights);

    /// k distinct indices from [0, n) (k <= n), in random order.
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    /// Random permutation of [0, n).
    std::vector<std::size_t> permutation(std::size_t n);

    template <typename T>
    void shuffle(std::vector<T>& v) {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /// Uniformly chosen element of a non-empty span.
    template <typename T>
    const T& choice(std::span<const T> items) {
        return items[static_cast<std::size_t>(randint(0, static_cast<std::int64_t>(items.size()) - 1))];
    }

    std::mt19937_64& engine() { return engine_; }

    /// Derives an independent child generator (for per-component seeding).
    Rng fork();

    /// Engine state as a portable decimal string (std::mt19937_64 stream
    /// format) — lets model snapshots resume the exact random stream.
    [[nodiscard]] std::string serialize_state() const;
    /// Restores a serialize_state() string; throws kinet::Error on malformed
    /// input.
    void deserialize_state(const std::string& state);

private:
    std::mt19937_64 engine_;
};

}  // namespace kinet

#endif  // KINETGAN_COMMON_RNG_H
