#include "src/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/thread_annotations.hpp"

namespace kinet {

std::size_t hardware_threads() {
    static const std::size_t cached = [] {
        if (const char* env = std::getenv("KINET_NUM_THREADS")) {
            const long parsed = std::strtol(env, nullptr, 10);
            if (parsed > 0) {
                return static_cast<std::size_t>(std::min(parsed, 256L));
            }
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 0 ? hw : 1);
    }();
    return cached;
}

namespace {
/// The Impl whose worker_loop the current thread is running, if any.
thread_local const void* t_worker_pool = nullptr;
}  // namespace

struct ThreadPool::Impl {
    std::vector<std::thread> workers;
    // Two queues, one invariant: `chunks` holds parallel_for chunk bodies,
    // which are pure compute and never block; `tasks` holds submit()ted
    // tasks, which MAY block on locks.  parallel_for's helper-drain loop
    // (below) only ever pops `chunks` — if it executed a blocking task while
    // the caller holds a lock, a second task waiting on that same lock would
    // deadlock the lane.  Workers serve both, chunks first.
    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> chunks KINET_GUARDED_BY(mu);
    std::deque<std::function<void()>> tasks KINET_GUARDED_BY(mu);
    bool stop KINET_GUARDED_BY(mu) = false;

    void worker_loop() {
        t_worker_pool = this;
        for (;;) {
            std::function<void()> task;
            {
                UniqueLock lock(mu);
                while (!stop && chunks.empty() && tasks.empty()) {
                    cv.wait(lock);
                }
                if (stop && chunks.empty() && tasks.empty()) {
                    return;
                }
                if (!chunks.empty()) {
                    task = std::move(chunks.front());
                    chunks.pop_front();
                } else {
                    task = std::move(tasks.front());
                    tasks.pop_front();
                }
            }
            task();
        }
    }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
    const std::size_t workers = threads > 1 ? threads - 1 : 0;
    impl_->workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        impl_->workers.emplace_back([this] { impl_->worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const MutexLock lock(impl_->mu);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    for (auto& w : impl_->workers) {
        w.join();
    }
}

std::size_t ThreadPool::size() const noexcept { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(std::size_t count, std::size_t max_chunks,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    KINET_CHECK(static_cast<bool>(fn), "parallel_for: empty function");
    if (count == 0) {
        return;
    }
    const std::size_t chunks = std::clamp<std::size_t>(max_chunks, 1, std::min(size(), count));
    if (chunks == 1) {
        fn(0, count);
        return;
    }

    // Per-call completion state lives on the stack; workers only touch it
    // through the shared_ptr captured in each task.
    struct Batch {
        std::atomic<std::size_t> remaining;
        Mutex mu;
        CondVar done;
        std::exception_ptr error KINET_GUARDED_BY(mu);
    };
    auto batch = std::make_shared<Batch>();
    batch->remaining.store(chunks, std::memory_order_relaxed);

    auto run_chunk = [batch, &fn](std::size_t begin, std::size_t end) {
        try {
            fn(begin, end);
        } catch (...) {
            const MutexLock lock(batch->mu);
            if (!batch->error) {
                batch->error = std::current_exception();
            }
        }
        if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            const MutexLock lock(batch->mu);
            batch->done.notify_all();
        }
    };

    // Deterministic partition: chunk c covers [c*count/chunks, (c+1)*count/chunks).
    auto chunk_begin = [count, chunks](std::size_t c) { return c * count / chunks; };
    {
        const MutexLock lock(impl_->mu);
        for (std::size_t c = 1; c < chunks; ++c) {
            impl_->chunks.emplace_back(
                [run_chunk, b = chunk_begin(c), e = chunk_begin(c + 1)] { run_chunk(b, e); });
        }
    }
    impl_->cv.notify_all();

    // The submitting thread takes chunk 0, then drains chunks still queued
    // (workers may be busy with other batches).  Only the chunk queue: a
    // submit()ted task may block on a lock this thread holds.
    run_chunk(chunk_begin(0), chunk_begin(1));
    for (;;) {
        std::function<void()> task;
        {
            const MutexLock lock(impl_->mu);
            if (!impl_->chunks.empty()) {
                task = std::move(impl_->chunks.front());
                impl_->chunks.pop_front();
            }
        }
        if (!task) {
            break;
        }
        task();
    }

    UniqueLock lock(batch->mu);
    while (batch->remaining.load(std::memory_order_acquire) != 0) {
        batch->done.wait(lock);
    }
    if (batch->error) {
        std::rethrow_exception(batch->error);
    }
}

void ThreadPool::submit(std::function<void()> task) {
    KINET_CHECK(static_cast<bool>(task), "submit: empty task");
    if (impl_->workers.empty()) {
        task();
        return;
    }
    {
        const MutexLock lock(impl_->mu);
        impl_->tasks.push_back(std::move(task));
    }
    impl_->cv.notify_one();
}

bool ThreadPool::on_worker_thread() const noexcept { return t_worker_pool == impl_.get(); }

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(hardware_threads());
    return pool;
}

void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
    const std::size_t g = std::max<std::size_t>(grain, 1);
    if (count < 2 * g || hardware_threads() <= 1) {
        if (count > 0) {
            fn(0, count);
        }
        return;
    }
    ThreadPool::global().parallel_for(count, count / g, fn);
}

}  // namespace kinet
