// Minimal CSV reader/writer.
//
// Handles the subset of RFC 4180 the project needs: comma separation,
// double-quote quoting with embedded commas/quotes, and a mandatory header
// row.  Used to export simulated datasets and benchmark reports.
#ifndef KINETGAN_COMMON_CSV_H
#define KINETGAN_COMMON_CSV_H

#include <string>
#include <vector>

namespace kinet::csv {

/// A parsed CSV document: header plus data rows (all cells as strings).
struct Document {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text; throws kinet::Error on ragged rows or bad quoting.
[[nodiscard]] Document parse(const std::string& content);

/// Reads and parses a CSV file; throws kinet::Error if unreadable.
[[nodiscard]] Document read_file(const std::string& path);

/// Serialises a document (quoting cells only when needed).
[[nodiscard]] std::string serialize(const Document& doc);

/// Appends the serialized form of `doc` to `out`; with include_header
/// false only the data rows are written — the streamed-chunk continuation
/// form, byte-identical to one big serialize() when chunks concatenate.
void serialize_append(const Document& doc, bool include_header, std::string& out);

/// Writes a document to disk; throws kinet::Error on I/O failure.
void write_file(const std::string& path, const Document& doc);

}  // namespace kinet::csv

#endif  // KINETGAN_COMMON_CSV_H
