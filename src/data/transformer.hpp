// Table <-> model-space encodings.
//
// TableTransformer implements the CTGAN representation: each continuous
// column becomes [alpha, mode one-hot] via mode-specific normalization
// (Gmm1D), each categorical column becomes a one-hot block.  MinMaxTransformer
// implements the simpler TableGAN representation (everything scaled to
// [-1, 1], categoricals as ordinal codes).
#ifndef KINETGAN_DATA_TRANSFORMER_H
#define KINETGAN_DATA_TRANSFORMER_H

#include <vector>

#include "src/data/gmm.hpp"
#include "src/data/table.hpp"

namespace kinet::data {

enum class SpanKind {
    continuous_alpha,  // 1 column: normalised scalar in [-1, 1]
    mode_onehot,       // one-hot over GMM modes of a continuous column
    category_onehot,   // one-hot over categories of a categorical column
};

/// Describes one contiguous block of the encoded representation.
struct OutputSpan {
    std::size_t column = 0;  // source column in the table
    SpanKind kind = SpanKind::continuous_alpha;
    std::size_t offset = 0;  // first encoded dimension
    std::size_t width = 0;   // number of encoded dimensions
};

struct TransformerOptions {
    std::size_t max_modes = 5;       // GMM components per continuous column
    std::size_t gmm_iterations = 40;
    bool sample_mode_assignment = true;  // sample vs argmax posterior mode
};

/// CTGAN-style encoder/decoder with mode-specific normalization.
class TableTransformer {
public:
    TableTransformer() = default;

    /// Learns the encoding (GMMs per continuous column) from data.
    void fit(const Table& table, const TransformerOptions& options, Rng& rng);

    /// Encodes rows to model space.  Mode assignment may be stochastic
    /// (options.sample_mode_assignment), hence the Rng.
    [[nodiscard]] tensor::Matrix transform(const Table& table, Rng& rng) const;

    /// Decodes model-space rows back to a Table (argmax over one-hot spans,
    /// alpha clamped to [-1, 1]).
    [[nodiscard]] Table inverse(const tensor::Matrix& encoded) const;

    /// inverse() into caller-owned buffers: `raw_scratch` holds the decoded
    /// numeric rows, `out` (which must carry this transformer's schema) is
    /// overwritten with them.  Both are reused across calls, so a warm
    /// streaming decode loop allocates nothing.  Decoded values are
    /// bitwise-identical to inverse().
    void inverse_into(const tensor::Matrix& encoded, tensor::Matrix& raw_scratch,
                      Table& out) const;

    [[nodiscard]] std::size_t output_width() const noexcept { return output_width_; }
    [[nodiscard]] const std::vector<OutputSpan>& spans() const noexcept { return spans_; }
    [[nodiscard]] const std::vector<ColumnMeta>& schema() const noexcept { return schema_; }
    [[nodiscard]] bool is_fitted() const noexcept { return !schema_.empty(); }

    /// The one-hot span of a categorical column; throws if not categorical.
    [[nodiscard]] const OutputSpan& category_span(std::size_t column) const;

    /// The fitted mixture of a continuous column (for likelihood fitness).
    [[nodiscard]] const Gmm1D& column_gmm(std::size_t column) const;

    /// Fitted-state serialization for model snapshots.
    void save(bytes::Writer& out) const;
    [[nodiscard]] static TableTransformer load(bytes::Reader& in);

private:
    std::vector<ColumnMeta> schema_;
    std::vector<OutputSpan> spans_;
    std::vector<Gmm1D> gmms_;  // indexed by column; empty Gmm1D for categorical
    std::size_t output_width_ = 0;
    TransformerOptions options_;
};

/// TableGAN-style min-max encoder: every column mapped linearly to [-1, 1];
/// categorical columns use their ordinal index.  Decoding rounds ordinals.
class MinMaxTransformer {
public:
    void fit(const Table& table);
    [[nodiscard]] tensor::Matrix transform(const Table& table) const;
    [[nodiscard]] Table inverse(const tensor::Matrix& encoded) const;
    [[nodiscard]] std::size_t output_width() const noexcept { return schema_.size(); }
    [[nodiscard]] bool is_fitted() const noexcept { return !schema_.empty(); }

private:
    std::vector<ColumnMeta> schema_;
    std::vector<float> lo_;
    std::vector<float> hi_;
};

}  // namespace kinet::data

#endif  // KINETGAN_DATA_TRANSFORMER_H
