// One-dimensional Gaussian mixture fitted by EM — the "variational Gaussian
// mixture" used for mode-specific normalization of continuous columns
// (Xu et al., NeurIPS 2019).  Components whose weight collapses are pruned,
// which approximates the Dirichlet sparsity prior of the original VGM.
#ifndef KINETGAN_DATA_GMM_H
#define KINETGAN_DATA_GMM_H

#include <span>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/rng.hpp"

namespace kinet::data {

struct GmmComponent {
    double weight = 0.0;
    double mean = 0.0;
    double stddev = 1.0;
};

/// 1-D Gaussian mixture model.
class Gmm1D {
public:
    /// Fits up to `max_components` by EM with k-means++-style seeding.
    /// Components with weight below `prune_threshold` are removed and the
    /// model is renormalised.  Degenerate inputs (constant column) yield a
    /// single tight component.
    [[nodiscard]] static Gmm1D fit(std::span<const float> values, std::size_t max_components,
                                   Rng& rng, std::size_t iterations = 50,
                                   double prune_threshold = 5e-3);

    [[nodiscard]] std::size_t component_count() const noexcept { return components_.size(); }
    [[nodiscard]] const GmmComponent& component(std::size_t k) const;
    [[nodiscard]] const std::vector<GmmComponent>& components() const noexcept {
        return components_;
    }

    /// Posterior responsibilities p(k | x), normalised.
    [[nodiscard]] std::vector<double> responsibilities(double x) const;

    /// Most responsible component for x.
    [[nodiscard]] std::size_t argmax_component(double x) const;

    /// Component sampled from the posterior p(k | x).
    [[nodiscard]] std::size_t sample_component(double x, Rng& rng) const;

    /// Mixture log-likelihood of a point.
    [[nodiscard]] double log_likelihood(double x) const;

    /// Fitted-parameter serialization for model snapshots.
    void save(bytes::Writer& out) const;
    [[nodiscard]] static Gmm1D load(bytes::Reader& in);

private:
    std::vector<GmmComponent> components_;
};

}  // namespace kinet::data

#endif  // KINETGAN_DATA_GMM_H
