#include "src/data/sampler.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::data {

ConditionalSampler::ConditionalSampler(const Table& table, std::vector<std::size_t> cond_columns,
                                       SamplerOptions options)
    : cond_columns_(std::move(cond_columns)), options_(options) {
    KINET_CHECK(!cond_columns_.empty(), "ConditionalSampler: need at least one column");
    KINET_CHECK(table.rows() > 0, "ConditionalSampler: empty table");

    rows_by_value_.resize(cond_columns_.size());
    log_freq_.resize(cond_columns_.size());
    freq_.resize(cond_columns_.size());

    for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
        const std::size_t col = cond_columns_[p];
        KINET_CHECK(table.meta(col).is_categorical(),
                    "ConditionalSampler: column " + table.meta(col).name + " is not categorical");
        const std::size_t k = table.meta(col).categories.size();
        rows_by_value_[p].assign(k, {});
        log_freq_[p].assign(k, 0.0);
        freq_[p].assign(k, 0.0);
    }

    row_values_.resize(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        row_values_[r].resize(cond_columns_.size());
        for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
            const std::size_t v = table.category_at(r, cond_columns_[p]);
            row_values_[r][p] = v;
            rows_by_value_[p][v].push_back(r);
        }
    }

    for (std::size_t p = 0; p < cond_columns_.size(); ++p) {
        for (std::size_t v = 0; v < rows_by_value_[p].size(); ++v) {
            const auto count = static_cast<double>(rows_by_value_[p][v].size());
            freq_[p][v] = count / static_cast<double>(table.rows());
            log_freq_[p][v] = (count > 0.0) ? std::log1p(count) : 0.0;
        }
    }
}

void ConditionalSampler::save(bytes::Writer& out) const {
    out.index_array(cond_columns_);
    out.f64(options_.uniform_minority_prob);
    out.u64(rows_by_value_.size());
    for (const auto& by_value : rows_by_value_) {
        out.u64(by_value.size());
        for (const auto& rows : by_value) {
            out.index_array(rows);
        }
    }
    for (const auto& weights : log_freq_) {
        out.f64_array(weights);
    }
    for (const auto& weights : freq_) {
        out.f64_array(weights);
    }
    out.u64(row_values_.size());
    for (const auto& values : row_values_) {
        out.index_array(values);
    }
}

ConditionalSampler ConditionalSampler::load(bytes::Reader& in) {
    ConditionalSampler s;
    s.cond_columns_ = in.index_array();
    KINET_CHECK(!s.cond_columns_.empty(), "ConditionalSampler::load: no conditional columns");
    s.options_.uniform_minority_prob = in.f64();
    const auto cols = static_cast<std::size_t>(in.u64());
    KINET_CHECK(cols == s.cond_columns_.size(),
                "ConditionalSampler::load: per-column state count mismatch");
    s.rows_by_value_.resize(cols);
    for (auto& by_value : s.rows_by_value_) {
        // Buffer-bounded: each value's row list costs at least its own
        // 8-byte length prefix.
        const std::size_t k = in.element_count(8, "sampler rows-by-value");
        by_value.resize(k);
        for (auto& rows : by_value) {
            rows = in.index_array();
        }
    }
    s.log_freq_.resize(cols);
    for (auto& weights : s.log_freq_) {
        weights = in.f64_array();
    }
    s.freq_.resize(cols);
    for (auto& weights : s.freq_) {
        weights = in.f64_array();
    }
    const std::size_t rows = in.element_count(8, "sampler row values");
    s.row_values_.resize(rows);
    for (auto& values : s.row_values_) {
        values = in.index_array();
        KINET_CHECK(values.size() == cols,
                    "ConditionalSampler::load: row value width mismatch");
    }
    // Cross-structure invariants the draw paths index by without checking
    // (the stream passed its checksum but is still untrusted): frequency
    // tables must line up with the value tables, and every stored index
    // must land inside the structure it points into.
    for (std::size_t c = 0; c < cols; ++c) {
        KINET_CHECK(s.log_freq_[c].size() == s.rows_by_value_[c].size() &&
                        s.freq_[c].size() == s.rows_by_value_[c].size(),
                    "ConditionalSampler::load: frequency table width mismatch");
        for (const auto& row_list : s.rows_by_value_[c]) {
            for (const std::size_t r : row_list) {
                KINET_CHECK(r < rows, "ConditionalSampler::load: row index out of range");
            }
        }
    }
    for (const auto& values : s.row_values_) {
        for (std::size_t c = 0; c < cols; ++c) {
            KINET_CHECK(values[c] < s.rows_by_value_[c].size(),
                        "ConditionalSampler::load: value id out of range");
        }
    }
    return s;
}

CondDraw ConditionalSampler::make_draw(std::size_t col_pos, std::size_t value_id, Rng& rng) const {
    const auto& rows = rows_by_value_[col_pos][value_id];
    KINET_CHECK(!rows.empty(), "ConditionalSampler: no rows carry the requested value");
    const std::size_t row =
        rows[static_cast<std::size_t>(rng.randint(0, static_cast<std::int64_t>(rows.size()) - 1))];
    CondDraw draw;
    draw.row = row;
    draw.values = row_values_[row];
    draw.anchor_column = col_pos;
    draw.anchor_value = value_id;
    return draw;
}

CondDraw ConditionalSampler::draw(Rng& rng) const {
    const auto col_pos = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(cond_columns_.size()) - 1));
    std::size_t value_id = 0;
    if (rng.bernoulli(options_.uniform_minority_prob)) {
        // Uniform over values that occur at least once — the minority boost.
        std::vector<double> present(rows_by_value_[col_pos].size(), 0.0);
        for (std::size_t v = 0; v < present.size(); ++v) {
            present[v] = rows_by_value_[col_pos][v].empty() ? 0.0 : 1.0;
        }
        value_id = rng.categorical(present);
    } else {
        value_id = rng.categorical(log_freq_[col_pos]);
    }
    return make_draw(col_pos, value_id, rng);
}

CondDraw ConditionalSampler::draw_empirical(Rng& rng) const {
    const auto col_pos = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(cond_columns_.size()) - 1));
    const std::size_t value_id = rng.categorical(freq_[col_pos]);
    return make_draw(col_pos, value_id, rng);
}

}  // namespace kinet::data
