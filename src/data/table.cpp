#include "src/data/table.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/common/text.hpp"

namespace kinet::data {

std::size_t ColumnMeta::category_id(const std::string& label) const {
    const auto found = find_category(label);
    KINET_CHECK(found.has_value(), "unknown category '" + label + "' in column " + name);
    return *found;
}

std::optional<std::size_t> ColumnMeta::find_category(const std::string& label) const {
    const auto it = std::find(categories.begin(), categories.end(), label);
    if (it == categories.end()) {
        return std::nullopt;
    }
    return static_cast<std::size_t>(it - categories.begin());
}

ColumnMeta ColumnMeta::categorical_column(std::string name, std::vector<std::string> categories) {
    KINET_CHECK(!categories.empty(), "categorical column needs at least one category");
    ColumnMeta meta;
    meta.name = std::move(name);
    meta.type = ColumnType::categorical;
    meta.categories = std::move(categories);
    return meta;
}

ColumnMeta ColumnMeta::continuous_column(std::string name) {
    ColumnMeta meta;
    meta.name = std::move(name);
    meta.type = ColumnType::continuous;
    return meta;
}

Table::Table(std::vector<ColumnMeta> columns) : columns_(std::move(columns)) {
    KINET_CHECK(!columns_.empty(), "Table needs at least one column");
    values_.resize(0, columns_.size());
}

const ColumnMeta& Table::meta(std::size_t col) const {
    KINET_CHECK(col < columns_.size(), "column index out of range");
    return columns_[col];
}

std::size_t Table::column_index(const std::string& name) const {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (columns_[c].name == name) {
            return c;
        }
    }
    throw Error("no column named '" + name + "'");
}

float Table::value(std::size_t row, std::size_t col) const {
    KINET_CHECK(row < rows() && col < cols(), "Table::value out of range");
    return values_(row, col);
}

void Table::set_value(std::size_t row, std::size_t col, float v) {
    KINET_CHECK(row < rows() && col < cols(), "Table::set_value out of range");
    if (columns_[col].is_categorical()) {
        const auto id = static_cast<std::size_t>(std::lround(v));
        KINET_CHECK(id < columns_[col].categories.size(),
                    "category index out of range for column " + columns_[col].name);
    }
    values_(row, col) = v;
}

std::size_t Table::category_at(std::size_t row, std::size_t col) const {
    KINET_CHECK(meta(col).is_categorical(), "category_at on continuous column");
    const auto id = static_cast<std::size_t>(std::lround(value(row, col)));
    KINET_CHECK(id < columns_[col].categories.size(), "stored category index out of range");
    return id;
}

const std::string& Table::label_at(std::size_t row, std::size_t col) const {
    return columns_[col].categories[category_at(row, col)];
}

void Table::append_row(const std::vector<float>& raw) {
    KINET_CHECK(raw.size() == columns_.size(), "append_row: width mismatch");
    for (std::size_t c = 0; c < raw.size(); ++c) {
        if (columns_[c].is_categorical()) {
            const auto id = static_cast<std::size_t>(std::lround(raw[c]));
            KINET_CHECK(id < columns_[c].categories.size(),
                        "append_row: category index out of range in column " + columns_[c].name);
        } else {
            KINET_CHECK(std::isfinite(raw[c]),
                        "append_row: non-finite value in column " + columns_[c].name);
        }
    }
    tensor::Matrix row(1, raw.size());
    std::copy(raw.begin(), raw.end(), row.row(0).begin());
    values_.append_rows(row);
}

void Table::append_rows(const Table& other) {
    KINET_CHECK(cols() == other.cols(), "append_rows: schema width mismatch");
    for (std::size_t c = 0; c < cols(); ++c) {
        KINET_CHECK(columns_[c].type == other.columns_[c].type,
                    "append_rows: column type mismatch at " + columns_[c].name);
    }
    values_.append_rows(other.values_);
}

void Table::append_row_range(const Table& other, std::size_t row_begin, std::size_t row_end) {
    KINET_CHECK(cols() == other.cols(), "append_row_range: schema width mismatch");
    for (std::size_t c = 0; c < cols(); ++c) {
        KINET_CHECK(columns_[c].type == other.columns_[c].type,
                    "append_row_range: column type mismatch at " + columns_[c].name);
    }
    values_.append_row_range(other.values_, row_begin, row_end);
}

void Table::overwrite_rows(const tensor::Matrix& values) {
    KINET_CHECK(values.cols() == cols(), "overwrite_rows: width mismatch");
    for (std::size_t r = 0; r < values.rows(); ++r) {
        for (std::size_t c = 0; c < cols(); ++c) {
            if (columns_[c].is_categorical()) {
                const auto id = static_cast<std::size_t>(std::lround(values(r, c)));
                KINET_CHECK(id < columns_[c].categories.size(),
                            "overwrite_rows: category index out of range in column " +
                                columns_[c].name);
            } else {
                KINET_CHECK(std::isfinite(values(r, c)),
                            "overwrite_rows: non-finite value in column " + columns_[c].name);
            }
        }
    }
    values_.resize_for_overwrite(values.rows(), cols());
    const auto src = values.data();
    std::copy(src.begin(), src.end(), values_.data().begin());
}

Table Table::select_rows(const std::vector<std::size_t>& indices) const {
    Table out(columns_);
    out.values_ = values_.gather_rows(indices);
    return out;
}

std::vector<std::size_t> Table::category_counts(std::size_t col) const {
    KINET_CHECK(meta(col).is_categorical(), "category_counts on continuous column");
    std::vector<std::size_t> counts(columns_[col].categories.size(), 0);
    for (std::size_t r = 0; r < rows(); ++r) {
        ++counts[category_at(r, col)];
    }
    return counts;
}

std::vector<float> Table::column_values(std::size_t col) const {
    KINET_CHECK(col < cols(), "column index out of range");
    std::vector<float> out(rows());
    for (std::size_t r = 0; r < rows(); ++r) {
        out[r] = values_(r, col);
    }
    return out;
}

csv::Document Table::to_csv() const {
    csv::Document doc;
    doc.header.reserve(cols());
    for (const auto& meta : columns_) {
        doc.header.push_back(meta.name);
    }
    doc.rows.reserve(rows());
    for (std::size_t r = 0; r < rows(); ++r) {
        std::vector<std::string> row;
        row.reserve(cols());
        for (std::size_t c = 0; c < cols(); ++c) {
            if (columns_[c].is_categorical()) {
                row.push_back(label_at(r, c));
            } else {
                row.push_back(text::format_double(value(r, c), 6));
            }
        }
        doc.rows.push_back(std::move(row));
    }
    return doc;
}

Table Table::from_csv(const csv::Document& doc, const std::vector<ColumnMeta>& schema) {
    KINET_CHECK(doc.header.size() == schema.size(), "from_csv: header/schema width mismatch");
    Table out(schema);
    for (const auto& row : doc.rows) {
        std::vector<float> raw(schema.size());
        for (std::size_t c = 0; c < schema.size(); ++c) {
            if (schema[c].is_categorical()) {
                raw[c] = static_cast<float>(schema[c].category_id(row[c]));
            } else {
                raw[c] = std::stof(row[c]);
            }
        }
        out.append_row(raw);
    }
    return out;
}

void save_schema(bytes::Writer& out, const std::vector<ColumnMeta>& schema) {
    out.u64(schema.size());
    for (const auto& meta : schema) {
        out.str(meta.name);
        out.u8(meta.is_categorical() ? 1 : 0);
        out.u64(meta.categories.size());
        for (const auto& label : meta.categories) {
            out.str(label);
        }
    }
}

std::vector<ColumnMeta> load_schema(bytes::Reader& in) {
    // Counts are buffer-bounded before sizing containers: a column costs
    // at least name prefix + type byte + category count (17 bytes); a
    // category at least its 8-byte length prefix.
    const std::size_t cols = in.element_count(17, "schema columns");
    std::vector<ColumnMeta> schema;
    schema.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        ColumnMeta meta;
        meta.name = in.str();
        meta.type = in.u8() != 0 ? ColumnType::categorical : ColumnType::continuous;
        const std::size_t k = in.element_count(8, "schema categories");
        meta.categories.reserve(k);
        for (std::size_t i = 0; i < k; ++i) {
            meta.categories.push_back(in.str());
        }
        KINET_CHECK(!meta.is_categorical() || !meta.categories.empty(),
                    "load_schema: categorical column " + meta.name + " without categories");
        schema.push_back(std::move(meta));
    }
    return schema;
}

}  // namespace kinet::data
