#include "src/data/split.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace kinet::data {

TrainTestSplit train_test_split(const Table& table, double test_fraction, Rng& rng,
                                std::optional<std::size_t> stratify_column) {
    KINET_CHECK(test_fraction > 0.0 && test_fraction < 1.0,
                "train_test_split: test_fraction must be in (0, 1)");
    KINET_CHECK(table.rows() >= 2, "train_test_split: need at least two rows");

    std::vector<std::size_t> train_idx;
    std::vector<std::size_t> test_idx;

    if (stratify_column.has_value()) {
        const std::size_t col = *stratify_column;
        KINET_CHECK(table.meta(col).is_categorical(), "stratify column must be categorical");
        std::vector<std::vector<std::size_t>> buckets(table.meta(col).categories.size());
        for (std::size_t r = 0; r < table.rows(); ++r) {
            buckets[table.category_at(r, col)].push_back(r);
        }
        for (auto& bucket : buckets) {
            if (bucket.empty()) {
                continue;
            }
            rng.shuffle(bucket);
            auto n_test = static_cast<std::size_t>(
                std::floor(static_cast<double>(bucket.size()) * test_fraction));
            if (n_test >= bucket.size()) {
                n_test = bucket.size() - 1;  // keep at least one training row
            }
            for (std::size_t i = 0; i < bucket.size(); ++i) {
                (i < n_test ? test_idx : train_idx).push_back(bucket[i]);
            }
        }
    } else {
        auto perm = rng.permutation(table.rows());
        auto n_test = static_cast<std::size_t>(
            std::floor(static_cast<double>(table.rows()) * test_fraction));
        n_test = std::max<std::size_t>(1, std::min(n_test, table.rows() - 1));
        test_idx.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(n_test));
        train_idx.assign(perm.begin() + static_cast<std::ptrdiff_t>(n_test), perm.end());
    }

    KINET_CHECK(!train_idx.empty() && !test_idx.empty(),
                "train_test_split produced an empty side");
    return TrainTestSplit{table.select_rows(train_idx), table.select_rows(test_idx)};
}

}  // namespace kinet::data
