#include "src/data/transformer.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace kinet::data {

void TableTransformer::fit(const Table& table, const TransformerOptions& options, Rng& rng) {
    KINET_CHECK(table.rows() > 0, "TableTransformer::fit: empty table");
    schema_ = table.schema();
    options_ = options;
    spans_.clear();
    gmms_.assign(schema_.size(), Gmm1D{});
    output_width_ = 0;

    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (schema_[c].is_categorical()) {
            OutputSpan span;
            span.column = c;
            span.kind = SpanKind::category_onehot;
            span.offset = output_width_;
            span.width = schema_[c].categories.size();
            spans_.push_back(span);
            output_width_ += span.width;
        } else {
            const auto values = table.column_values(c);
            gmms_[c] = Gmm1D::fit(values, options.max_modes, rng, options.gmm_iterations);

            OutputSpan alpha;
            alpha.column = c;
            alpha.kind = SpanKind::continuous_alpha;
            alpha.offset = output_width_;
            alpha.width = 1;
            spans_.push_back(alpha);
            output_width_ += 1;

            OutputSpan mode;
            mode.column = c;
            mode.kind = SpanKind::mode_onehot;
            mode.offset = output_width_;
            mode.width = gmms_[c].component_count();
            spans_.push_back(mode);
            output_width_ += mode.width;
        }
    }
}

tensor::Matrix TableTransformer::transform(const Table& table, Rng& rng) const {
    KINET_CHECK(is_fitted(), "TableTransformer::transform before fit");
    KINET_CHECK(table.cols() == schema_.size(), "TableTransformer::transform: schema mismatch");
    const std::size_t rows = table.rows();
    tensor::Matrix out(rows, output_width_);
    std::vector<double> resp;  // per-row posteriors of the current column
    // Spans were built in order: for continuous columns the alpha span is
    // immediately followed by its mode span, so iterate with an index.
    for (std::size_t si = 0; si < spans_.size(); ++si) {
        const OutputSpan& span = spans_[si];
        if (span.kind == SpanKind::category_onehot) {
            parallel_for(rows, 2048, [&](std::size_t begin, std::size_t end) {
                for (std::size_t r = begin; r < end; ++r) {
                    const auto id =
                        static_cast<std::size_t>(std::lround(table.value(r, span.column)));
                    KINET_CHECK(id < span.width, "transform: category out of range");
                    out(r, span.offset + id) = 1.0F;
                }
            });
        } else if (span.kind == SpanKind::continuous_alpha) {
            KINET_CHECK(si + 1 < spans_.size() && spans_[si + 1].kind == SpanKind::mode_onehot &&
                            spans_[si + 1].column == span.column,
                        "transform: alpha span without paired mode span");
            const OutputSpan& mode_span = spans_[si + 1];
            const Gmm1D& gmm = gmms_[span.column];
            const std::size_t k_count = gmm.component_count();

            // The per-row posterior computation (log/exp per component) is the
            // hot part and is embarrassingly parallel; the mode draws below
            // then consume the RNG strictly in row order, so the encoding is
            // bit-identical to a serial pass at any thread count.
            resp.assign(rows * k_count, 0.0);
            parallel_for(rows, 512, [&](std::size_t begin, std::size_t end) {
                for (std::size_t r = begin; r < end; ++r) {
                    const auto row_resp = gmm.responsibilities(table.value(r, span.column));
                    std::copy(row_resp.begin(), row_resp.end(), resp.begin() +
                              static_cast<std::ptrdiff_t>(r * k_count));
                }
            });

            for (std::size_t r = 0; r < rows; ++r) {
                const std::span<const double> row_resp(resp.data() + r * k_count, k_count);
                std::size_t k = 0;
                if (options_.sample_mode_assignment) {
                    k = rng.categorical(row_resp);
                } else {
                    for (std::size_t j = 1; j < k_count; ++j) {
                        if (row_resp[j] > row_resp[k]) {
                            k = j;
                        }
                    }
                }
                const float v = table.value(r, span.column);
                const auto& comp = gmm.component(k);
                const double alpha = std::clamp(
                    (static_cast<double>(v) - comp.mean) / (4.0 * comp.stddev), -1.0, 1.0);
                out(r, span.offset) = static_cast<float>(alpha);
                out(r, mode_span.offset + k) = 1.0F;
            }
        }
    }
    return out;
}

Table TableTransformer::inverse(const tensor::Matrix& encoded) const {
    Table out{schema_};
    tensor::Matrix raw;
    inverse_into(encoded, raw, out);
    return out;
}

void TableTransformer::inverse_into(const tensor::Matrix& encoded, tensor::Matrix& raw_scratch,
                                    Table& out) const {
    KINET_CHECK(is_fitted(), "TableTransformer::inverse before fit");
    KINET_CHECK(encoded.cols() == output_width_, "TableTransformer::inverse: width mismatch");
    KINET_CHECK(out.cols() == schema_.size(), "TableTransformer::inverse: table schema mismatch");
    // Pair each mode span with its column's alpha span once, not per row.
    std::vector<std::size_t> alpha_offset(spans_.size(), static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        if (spans_[i].kind != SpanKind::mode_onehot) {
            continue;
        }
        for (const auto& s : spans_) {
            if (s.column == spans_[i].column && s.kind == SpanKind::continuous_alpha) {
                alpha_offset[i] = s.offset;
                break;
            }
        }
        KINET_CHECK(alpha_offset[i] != static_cast<std::size_t>(-1),
                    "inverse: missing alpha span");
    }

    raw_scratch.resize_for_overwrite(encoded.rows(), schema_.size());
    for (std::size_t r = 0; r < encoded.rows(); ++r) {
        const auto row = encoded.row(r);
        auto raw = raw_scratch.row(r);
        for (std::size_t i = 0; i < spans_.size(); ++i) {
            const auto& span = spans_[i];
            switch (span.kind) {
            case SpanKind::category_onehot: {
                std::size_t best = 0;
                for (std::size_t j = 1; j < span.width; ++j) {
                    if (row[span.offset + j] > row[span.offset + best]) {
                        best = j;
                    }
                }
                raw[span.column] = static_cast<float>(best);
                break;
            }
            case SpanKind::continuous_alpha: {
                // Value reconstructed when we hit the paired mode span.
                break;
            }
            case SpanKind::mode_onehot: {
                std::size_t best = 0;
                for (std::size_t j = 1; j < span.width; ++j) {
                    if (row[span.offset + j] > row[span.offset + best]) {
                        best = j;
                    }
                }
                const double alpha =
                    std::clamp(static_cast<double>(row[alpha_offset[i]]), -1.0, 1.0);
                const auto& comp = gmms_[span.column].component(best);
                raw[span.column] = static_cast<float>(alpha * 4.0 * comp.stddev + comp.mean);
                break;
            }
            }
        }
    }
    out.overwrite_rows(raw_scratch);
}

const OutputSpan& TableTransformer::category_span(std::size_t column) const {
    for (const auto& s : spans_) {
        if (s.column == column && s.kind == SpanKind::category_onehot) {
            return s;
        }
    }
    throw Error("category_span: column " + std::to_string(column) + " is not categorical");
}

void TableTransformer::save(bytes::Writer& out) const {
    KINET_CHECK(is_fitted(), "TableTransformer::save before fit");
    save_schema(out, schema_);
    out.u64(spans_.size());
    for (const auto& span : spans_) {
        out.u64(span.column);
        out.u8(static_cast<std::uint8_t>(span.kind));
        out.u64(span.offset);
        out.u64(span.width);
    }
    out.u64(gmms_.size());
    for (const auto& gmm : gmms_) {
        gmm.save(out);
    }
    out.u64(output_width_);
    out.u64(options_.max_modes);
    out.u64(options_.gmm_iterations);
    out.boolean(options_.sample_mode_assignment);
}

TableTransformer TableTransformer::load(bytes::Reader& in) {
    TableTransformer tf;
    tf.schema_ = load_schema(in);
    // Each span record is 8 + 1 + 8 + 8 bytes; each GMM at least a count.
    const std::size_t span_count = in.element_count(25, "transformer spans");
    tf.spans_.reserve(span_count);
    for (std::size_t s = 0; s < span_count; ++s) {
        OutputSpan span;
        span.column = static_cast<std::size_t>(in.u64());
        const auto kind = in.u8();
        KINET_CHECK(kind <= static_cast<std::uint8_t>(SpanKind::category_onehot),
                    "TableTransformer::load: unknown span kind");
        span.kind = static_cast<SpanKind>(kind);
        span.offset = static_cast<std::size_t>(in.u64());
        span.width = static_cast<std::size_t>(in.u64());
        KINET_CHECK(span.column < tf.schema_.size(),
                    "TableTransformer::load: span column out of range");
        tf.spans_.push_back(span);
    }
    const std::size_t gmm_count = in.element_count(8, "transformer gmms");
    KINET_CHECK(gmm_count == tf.schema_.size(),
                "TableTransformer::load: GMM count does not match schema");
    tf.gmms_.reserve(gmm_count);
    for (std::size_t g = 0; g < gmm_count; ++g) {
        tf.gmms_.push_back(Gmm1D::load(in));
    }
    tf.output_width_ = static_cast<std::size_t>(in.u64());
    tf.options_.max_modes = static_cast<std::size_t>(in.u64());
    tf.options_.gmm_iterations = static_cast<std::size_t>(in.u64());
    tf.options_.sample_mode_assignment = in.boolean();
    for (const auto& span : tf.spans_) {
        KINET_CHECK(span.offset + span.width <= tf.output_width_,
                    "TableTransformer::load: span exceeds output width");
    }
    return tf;
}

const Gmm1D& TableTransformer::column_gmm(std::size_t column) const {
    KINET_CHECK(column < schema_.size() && !schema_[column].is_categorical(),
                "column_gmm: not a fitted continuous column");
    return gmms_[column];
}

void MinMaxTransformer::fit(const Table& table) {
    KINET_CHECK(table.rows() > 0, "MinMaxTransformer::fit: empty table");
    schema_ = table.schema();
    lo_.assign(schema_.size(), 0.0F);
    hi_.assign(schema_.size(), 1.0F);
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (schema_[c].is_categorical()) {
            lo_[c] = 0.0F;
            hi_[c] = static_cast<float>(schema_[c].categories.size() - 1);
        } else {
            const auto values = table.column_values(c);
            const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
            lo_[c] = *mn;
            hi_[c] = *mx;
        }
        if (hi_[c] - lo_[c] < 1e-9F) {
            hi_[c] = lo_[c] + 1.0F;  // constant column: avoid divide-by-zero
        }
    }
}

tensor::Matrix MinMaxTransformer::transform(const Table& table) const {
    KINET_CHECK(is_fitted(), "MinMaxTransformer::transform before fit");
    KINET_CHECK(table.cols() == schema_.size(), "MinMaxTransformer: schema mismatch");
    tensor::Matrix out(table.rows(), schema_.size());
    for (std::size_t r = 0; r < table.rows(); ++r) {
        for (std::size_t c = 0; c < schema_.size(); ++c) {
            const float v = table.value(r, c);
            out(r, c) = 2.0F * (v - lo_[c]) / (hi_[c] - lo_[c]) - 1.0F;
        }
    }
    return out;
}

Table MinMaxTransformer::inverse(const tensor::Matrix& encoded) const {
    KINET_CHECK(is_fitted(), "MinMaxTransformer::inverse before fit");
    KINET_CHECK(encoded.cols() == schema_.size(), "MinMaxTransformer::inverse: width mismatch");
    Table out{schema_};
    std::vector<float> raw(schema_.size());
    for (std::size_t r = 0; r < encoded.rows(); ++r) {
        for (std::size_t c = 0; c < schema_.size(); ++c) {
            const float clamped = std::clamp(encoded(r, c), -1.0F, 1.0F);
            float v = (clamped + 1.0F) * 0.5F * (hi_[c] - lo_[c]) + lo_[c];
            if (schema_[c].is_categorical()) {
                v = std::clamp(std::round(v), 0.0F,
                               static_cast<float>(schema_[c].categories.size() - 1));
            }
            raw[c] = v;
        }
        out.append_row(raw);
    }
    return out;
}

}  // namespace kinet::data
