// Training-by-sampling (Sec. III-A of the paper, after Xu et al. 2019).
//
// A condition is drawn by (1) picking a conditional column, (2) picking one
// of its values — either by log-frequency (fidelity-preserving) or uniformly
// (the paper's minority-value boost, Sec. III-A-3), then (3) picking a real
// row that carries that value.  The returned row's full conditional-attribute
// assignment becomes the condition vector C, so real sample and condition are
// always consistent.
#ifndef KINETGAN_DATA_SAMPLER_H
#define KINETGAN_DATA_SAMPLER_H

#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/rng.hpp"
#include "src/data/table.hpp"

namespace kinet::data {

/// One draw from the conditional sampler.
struct CondDraw {
    std::size_t row = 0;                  // index of a consistent real row
    std::vector<std::size_t> values;      // value id per conditional column
    std::size_t anchor_column = 0;        // position within cond_columns()
    std::size_t anchor_value = 0;         // chosen value id of the anchor
};

struct SamplerOptions {
    /// Probability of drawing the anchor value uniformly over the category
    /// range instead of by log-frequency — forces minority representation.
    double uniform_minority_prob = 0.25;
};

class ConditionalSampler {
public:
    /// cond_columns must be categorical columns of `table`.
    ConditionalSampler(const Table& table, std::vector<std::size_t> cond_columns,
                       SamplerOptions options = {});

    [[nodiscard]] CondDraw draw(Rng& rng) const;

    /// Draws a condition purely from the empirical distribution (no minority
    /// boost) — used when sampling from a trained generator so the output
    /// matches the original data distribution (Sec. III-A).
    [[nodiscard]] CondDraw draw_empirical(Rng& rng) const;

    [[nodiscard]] const std::vector<std::size_t>& cond_columns() const noexcept {
        return cond_columns_;
    }
    [[nodiscard]] std::size_t table_rows() const noexcept { return row_values_.size(); }

    /// Serializes the derived sampling state (frequencies and row/value
    /// indexes — not the source table) for model snapshots.
    void save(bytes::Writer& out) const;
    [[nodiscard]] static ConditionalSampler load(bytes::Reader& in);

private:
    ConditionalSampler() = default;

    [[nodiscard]] CondDraw make_draw(std::size_t col_pos, std::size_t value_id, Rng& rng) const;

    std::vector<std::size_t> cond_columns_;
    SamplerOptions options_;
    // rows_by_value_[col_pos][value] -> indices of rows carrying that value.
    std::vector<std::vector<std::vector<std::size_t>>> rows_by_value_;
    // log-frequency weights per column (CTGAN's log-frequency sampling).
    std::vector<std::vector<double>> log_freq_;
    // empirical frequencies per column.
    std::vector<std::vector<double>> freq_;
    // conditional-attribute values per row (row-major).
    std::vector<std::vector<std::size_t>> row_values_;
};

}  // namespace kinet::data

#endif  // KINETGAN_DATA_SAMPLER_H
