// Typed tabular dataset: the interchange format between the simulators, the
// generative models and the evaluation harness.
//
// Storage is a dense float matrix; categorical cells hold the category index
// defined by their column's ColumnMeta.  This mirrors how tabular-GAN
// pipelines (CTGAN/SDV) treat mixed-type data.
#ifndef KINETGAN_DATA_TABLE_H
#define KINETGAN_DATA_TABLE_H

#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/csv.hpp"
#include "src/tensor/matrix.hpp"

namespace kinet::data {

enum class ColumnType {
    categorical,
    continuous,
};

/// Schema entry for one column.
struct ColumnMeta {
    std::string name;
    ColumnType type = ColumnType::continuous;
    /// Category labels; defines the index encoding (categorical only).
    std::vector<std::string> categories;

    [[nodiscard]] bool is_categorical() const noexcept { return type == ColumnType::categorical; }
    /// Index of a label; throws kinet::Error if unknown.
    [[nodiscard]] std::size_t category_id(const std::string& label) const;
    /// Index of a label if present.
    [[nodiscard]] std::optional<std::size_t> find_category(const std::string& label) const;

    static ColumnMeta categorical_column(std::string name, std::vector<std::string> categories);
    static ColumnMeta continuous_column(std::string name);
};

/// Row-oriented mixed-type table with a fixed schema.
class Table {
public:
    Table() = default;
    explicit Table(std::vector<ColumnMeta> columns);

    [[nodiscard]] std::size_t rows() const noexcept { return values_.rows(); }
    [[nodiscard]] std::size_t cols() const noexcept { return columns_.size(); }

    [[nodiscard]] const std::vector<ColumnMeta>& schema() const noexcept { return columns_; }
    [[nodiscard]] const ColumnMeta& meta(std::size_t col) const;
    /// Column index by name; throws kinet::Error if absent.
    [[nodiscard]] std::size_t column_index(const std::string& name) const;

    /// Raw numeric value (category index for categorical columns).
    [[nodiscard]] float value(std::size_t row, std::size_t col) const;
    void set_value(std::size_t row, std::size_t col, float v);

    /// Category index of a categorical cell (validated).
    [[nodiscard]] std::size_t category_at(std::size_t row, std::size_t col) const;
    /// Category label of a categorical cell.
    [[nodiscard]] const std::string& label_at(std::size_t row, std::size_t col) const;

    /// Appends a row given raw numeric values (width-checked; categorical
    /// entries validated against the schema).
    void append_row(const std::vector<float>& raw);

    /// Appends all rows of a schema-compatible table.
    void append_rows(const Table& other);

    /// Appends rows [row_begin, row_end) of a schema-compatible table —
    /// the streaming sample path's chunk assembly.
    void append_row_range(const Table& other, std::size_t row_begin, std::size_t row_end);

    /// Drops all rows, keeping schema and storage capacity (reused chunk
    /// buffers in the streaming sample path).
    void clear_rows() noexcept { values_.clear_rows(); }

    /// Replaces the contents with `values` (rows x schema-width raw
    /// storage, categorical cells validated against the schema), reusing
    /// the existing capacity — the bulk twin of repeated append_row.
    void overwrite_rows(const tensor::Matrix& values);

    /// New table containing the given rows in order.
    [[nodiscard]] Table select_rows(const std::vector<std::size_t>& indices) const;

    /// Histogram of category indices for a categorical column.
    [[nodiscard]] std::vector<std::size_t> category_counts(std::size_t col) const;

    /// All values of one column as a dense vector.
    [[nodiscard]] std::vector<float> column_values(std::size_t col) const;

    /// Underlying matrix (rows x cols), e.g. for distance computations.
    [[nodiscard]] const tensor::Matrix& matrix() const noexcept { return values_; }

    /// CSV round-trip (labels written for categorical cells).
    [[nodiscard]] csv::Document to_csv() const;
    [[nodiscard]] static Table from_csv(const csv::Document& doc,
                                        const std::vector<ColumnMeta>& schema);

private:
    std::vector<ColumnMeta> columns_;
    tensor::Matrix values_;
};

/// Schema serialization for model snapshots.
void save_schema(bytes::Writer& out, const std::vector<ColumnMeta>& schema);
[[nodiscard]] std::vector<ColumnMeta> load_schema(bytes::Reader& in);

}  // namespace kinet::data

#endif  // KINETGAN_DATA_TABLE_H
