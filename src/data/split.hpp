// Train/test splitting utilities.
#ifndef KINETGAN_DATA_SPLIT_H
#define KINETGAN_DATA_SPLIT_H

#include <optional>

#include "src/common/rng.hpp"
#include "src/data/table.hpp"

namespace kinet::data {

struct TrainTestSplit {
    Table train;
    Table test;
};

/// Random split; if `stratify_column` names a categorical column, each
/// category is split proportionally (every non-empty category keeps at least
/// one training row).
[[nodiscard]] TrainTestSplit train_test_split(const Table& table, double test_fraction, Rng& rng,
                                              std::optional<std::size_t> stratify_column = {});

}  // namespace kinet::data

#endif  // KINETGAN_DATA_SPLIT_H
