#include "src/data/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace kinet::data {
namespace {

constexpr double kMinStddev = 1e-4;
constexpr double kLogSqrt2Pi = 0.9189385332046727;  // log(sqrt(2*pi))

double log_gaussian(double x, double mean, double stddev) {
    const double z = (x - mean) / stddev;
    return -0.5 * z * z - std::log(stddev) - kLogSqrt2Pi;
}

// k-means++-style seeding: spread the initial means across the data.
std::vector<double> seed_means(std::span<const float> values, std::size_t k, Rng& rng) {
    std::vector<double> means;
    means.reserve(k);
    means.push_back(values[static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(values.size()) - 1))]);
    std::vector<double> dist2(values.size());
    while (means.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < values.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            for (double m : means) {
                const double d = values[i] - m;
                best = std::min(best, d * d);
            }
            dist2[i] = best;
            total += best;
        }
        if (total <= 0.0) {
            break;  // all points coincide with existing means
        }
        means.push_back(values[rng.categorical(dist2)]);
    }
    return means;
}

}  // namespace

Gmm1D Gmm1D::fit(std::span<const float> values, std::size_t max_components, Rng& rng,
                 std::size_t iterations, double prune_threshold) {
    KINET_CHECK(!values.empty(), "Gmm1D::fit: empty input");
    KINET_CHECK(max_components > 0, "Gmm1D::fit: need at least one component");

    Gmm1D model;

    const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
    const double lo = *mn_it;
    const double hi = *mx_it;
    if (hi - lo < kMinStddev) {
        // Constant column: one tight component.
        model.components_.push_back(GmmComponent{1.0, lo, kMinStddev});
        return model;
    }

    const std::size_t k0 = std::min<std::size_t>(max_components, values.size());
    const auto means0 = seed_means(values, k0, rng);
    const double spread = (hi - lo) / static_cast<double>(means0.size());
    for (double m : means0) {
        model.components_.push_back(
            GmmComponent{1.0 / static_cast<double>(means0.size()), m, std::max(spread, kMinStddev)});
    }

    std::vector<double> resp_all;  // n x k normalised posteriors per iteration
    std::vector<double> weight_acc;
    std::vector<double> mean_acc;
    std::vector<double> var_acc;

    for (std::size_t iter = 0; iter < iterations; ++iter) {
        const std::size_t k = model.components_.size();
        weight_acc.assign(k, 0.0);
        mean_acc.assign(k, 0.0);
        var_acc.assign(k, 0.0);

        // E-step: the per-value posterior computation (log/exp per component)
        // runs on the pool; the sufficient statistics are then accumulated
        // serially in index order, so the fit is bit-identical to a serial
        // E-step at any thread count.
        resp_all.assign(values.size() * k, 0.0);
        parallel_for(values.size(), 1024, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const double x = values[i];
                double* resp = resp_all.data() + i * k;
                double mx = -std::numeric_limits<double>::max();
                for (std::size_t j = 0; j < k; ++j) {
                    resp[j] =
                        std::log(model.components_[j].weight) +
                        log_gaussian(x, model.components_[j].mean, model.components_[j].stddev);
                    mx = std::max(mx, resp[j]);
                }
                double denom = 0.0;
                for (std::size_t j = 0; j < k; ++j) {
                    resp[j] = std::exp(resp[j] - mx);
                    denom += resp[j];
                }
                for (std::size_t j = 0; j < k; ++j) {
                    resp[j] /= denom;
                }
            }
        });
        for (std::size_t i = 0; i < values.size(); ++i) {
            const double x = values[i];
            const double* resp = resp_all.data() + i * k;
            for (std::size_t j = 0; j < k; ++j) {
                weight_acc[j] += resp[j];
                mean_acc[j] += resp[j] * x;
                var_acc[j] += resp[j] * x * x;
            }
        }

        // M-step.
        const auto n = static_cast<double>(values.size());
        for (std::size_t j = 0; j < k; ++j) {
            if (weight_acc[j] < 1e-10) {
                model.components_[j].weight = 0.0;
                continue;
            }
            const double mean = mean_acc[j] / weight_acc[j];
            const double var = std::max(var_acc[j] / weight_acc[j] - mean * mean,
                                        kMinStddev * kMinStddev);
            model.components_[j].weight = weight_acc[j] / n;
            model.components_[j].mean = mean;
            model.components_[j].stddev = std::sqrt(var);
        }

        // Prune collapsed components (sparsity prior surrogate).
        std::erase_if(model.components_,
                      [prune_threshold](const GmmComponent& c) { return c.weight < prune_threshold; });
        if (model.components_.empty()) {
            // Everything pruned (pathological threshold): fall back to one
            // component over the full range.
            double mean = 0.0;
            for (float v : values) {
                mean += v;
            }
            mean /= n;
            double var = 0.0;
            for (float v : values) {
                var += (v - mean) * (v - mean);
            }
            var = std::max(var / n, kMinStddev * kMinStddev);
            model.components_.push_back(GmmComponent{1.0, mean, std::sqrt(var)});
            break;
        }
        double total_w = 0.0;
        for (const auto& c : model.components_) {
            total_w += c.weight;
        }
        for (auto& c : model.components_) {
            c.weight /= total_w;
        }
    }
    return model;
}

const GmmComponent& Gmm1D::component(std::size_t k) const {
    KINET_CHECK(k < components_.size(), "Gmm1D: component index out of range");
    return components_[k];
}

std::vector<double> Gmm1D::responsibilities(double x) const {
    std::vector<double> out(components_.size());
    double mx = -std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < components_.size(); ++j) {
        out[j] = std::log(std::max(components_[j].weight, 1e-300)) +
                 log_gaussian(x, components_[j].mean, components_[j].stddev);
        mx = std::max(mx, out[j]);
    }
    double denom = 0.0;
    for (auto& v : out) {
        v = std::exp(v - mx);
        denom += v;
    }
    for (auto& v : out) {
        v /= denom;
    }
    return out;
}

std::size_t Gmm1D::argmax_component(double x) const {
    const auto r = responsibilities(x);
    return static_cast<std::size_t>(std::max_element(r.begin(), r.end()) - r.begin());
}

std::size_t Gmm1D::sample_component(double x, Rng& rng) const {
    const auto r = responsibilities(x);
    return rng.categorical(r);
}

void Gmm1D::save(bytes::Writer& out) const {
    out.u64(components_.size());
    for (const auto& c : components_) {
        out.f64(c.weight);
        out.f64(c.mean);
        out.f64(c.stddev);
    }
}

Gmm1D Gmm1D::load(bytes::Reader& in) {
    Gmm1D model;
    const std::size_t k = in.element_count(24, "gmm components");  // 3 f64 each
    model.components_.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
        GmmComponent c;
        c.weight = in.f64();
        c.mean = in.f64();
        c.stddev = in.f64();
        KINET_CHECK(c.stddev > 0.0, "Gmm1D::load: non-positive component stddev");
        model.components_.push_back(c);
    }
    return model;
}

double Gmm1D::log_likelihood(double x) const {
    double mx = -std::numeric_limits<double>::max();
    std::vector<double> terms(components_.size());
    for (std::size_t j = 0; j < components_.size(); ++j) {
        terms[j] = std::log(std::max(components_[j].weight, 1e-300)) +
                   log_gaussian(x, components_[j].mean, components_[j].stddev);
        mx = std::max(mx, terms[j]);
    }
    double acc = 0.0;
    for (double t : terms) {
        acc += std::exp(t - mx);
    }
    return mx + std::log(acc);
}

}  // namespace kinet::data
