// kinetd — the synthetic-data-as-a-service daemon.
//
// Runs a SynthServer on 127.0.0.1 and serves the KNP/1 wire protocol
// (docs/protocol.md): TRAIN models on local site traffic, LOAD/SAVE
// snapshots, and hand out deterministic SAMPLE streams to NIDS clients.
//
//   kinetd [--port P] [--load NAME=PATH]... [--epochs N] [--train-workers N]
//          [--request-workers N] [--max-connections N] [--queue-depth N]
//          [--model-cache-mb N] [--snapshot-dir DIR] [--data-dir DIR]
//          [--peers H:P,H:P,...] [--advertise H:P] [--cluster-config FILE]
//          [--join H:P] [--replicas N] [--probe-interval-ms N]
//          [--persist] [--recover] [--enable-failpoints]
//   kinetd --stats [--port P]
//
//   --port P            listen port (default 9190; 0 picks an ephemeral port)
//   --load N=PATH       register snapshot PATH under model name N at startup
//                       (an operator path — not confined to --snapshot-dir)
//   --epochs N          default TRAIN epochs (default 30)
//   --train-workers N   async TRAIN executor threads (default 2)
//   --request-workers N event-loop worker threads for TRAIN/SAMPLE/... (default 4)
//   --max-connections N open-connection cap; excess accepts are refused with
//                       `ERR queue_full` (default 4096)
//   --queue-depth N     bound on requests queued for the workers; past it,
//                       requests answer `ERR queue_full` (default 256)
//   --model-cache-mb N  registry memory budget in MiB over serialized model
//                       bytes; LRU models are evicted past it (default 0 =
//                       unlimited)
//   --snapshot-dir DIR  directory confining client LOAD/SAVE paths
//                       (default "."; "" disables LOAD/SAVE)
//   --data-dir DIR      directory confining TRAIN source=csv: paths
//                       (default "."; "" disables CSV ingestion)
//   --peers LIST        comma-separated host:port fleet peers; joins this
//                       daemon into a cluster (docs/cluster.md)
//   --advertise H:P     this node's address as peers reach it (default
//                       127.0.0.1:<port>); must match the other members'
//                       --peers entries, since ring placement hashes it
//   --cluster-config F  read fleet membership from file F instead of flags
//   --join H:P          join a *running* fleet dynamically through the seed
//                       member at H:P: announces this node (JOIN), adopts
//                       the fleet's view and ring parameters, pulls the
//                       snapshots the rebalanced ring places here, then goes
//                       active (docs/cluster.md).  Excludes --peers and
//                       --cluster-config; --advertise/--replicas/
//                       --probe-interval-ms still apply
//   --replicas N        snapshot placement width on the ring (default 2)
//   --probe-interval-ms N  peer health probe period (default 1000)
//   --persist           write every registered model through to a durable
//                       store (manifest + snapshots + job journal) under
//                       --snapshot-dir (docs/robustness.md)
//   --recover           reload the durable store on startup — registered
//                       models come back warm and interrupted async jobs are
//                       resubmitted; implies --persist
//   --enable-failpoints allow the admin FAULT op to arm fault-injection
//                       sites at runtime (KINET_FAILPOINTS env works
//                       regardless; see docs/robustness.md)
//   --stats             one-shot mode: connect to a running daemon at --port,
//                       print its global STATS payload, and exit
//
// The daemon exits cleanly on SIGINT (immediate stop) and SIGTERM (graceful
// drain: stop accepting work, let in-flight requests finish for up to 5 s,
// then stop).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"
#include "src/service/client.hpp"
#include "src/service/cluster/config.hpp"
#include "src/service/server.hpp"
#include "src/service/snapshot.hpp"

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int sig) { g_signal.store(sig); }

[[noreturn]] void usage_and_exit() {
    std::cerr << "usage: kinetd [--port P] [--load NAME=PATH]... [--epochs N]"
                 " [--train-workers N] [--request-workers N] [--max-connections N]"
                 " [--queue-depth N] [--model-cache-mb N]"
                 " [--snapshot-dir DIR] [--data-dir DIR]"
                 " [--peers H:P,...] [--advertise H:P] [--cluster-config FILE]"
                 " [--join H:P] [--replicas N] [--probe-interval-ms N]"
                 " [--persist] [--recover] [--enable-failpoints]\n"
                 "       kinetd --stats [--port P]\n";
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace kinet;  // NOLINT

    service::ServerOptions options;
    options.port = 9190;
    std::vector<std::pair<std::string, std::string>> preload;
    bool stats_mode = false;
    std::string peers_csv;
    std::string advertise;
    std::string cluster_config_path;
    std::string join_seed;
    std::size_t replicas = 0;           // 0 = config default
    std::size_t probe_interval_ms = 0;  // 0 = config default

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next_value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage_and_exit();
            }
            return argv[++i];
        };
        const auto next_number = [&](unsigned long max) -> unsigned long {
            try {
                std::size_t consumed = 0;
                const std::string value = next_value();
                const unsigned long parsed = std::stoul(value, &consumed);
                if (consumed != value.size() || parsed > max) {
                    usage_and_exit();
                }
                return parsed;
            } catch (const std::exception&) {
                usage_and_exit();
            }
        };
        if (arg == "--port") {
            options.port = static_cast<std::uint16_t>(next_number(65535));
        } else if (arg == "--epochs") {
            options.default_epochs = static_cast<std::size_t>(next_number(1000000));
        } else if (arg == "--train-workers") {
            options.train_workers = static_cast<std::size_t>(next_number(64));
            if (options.train_workers == 0) {
                usage_and_exit();
            }
        } else if (arg == "--request-workers") {
            options.request_workers = static_cast<std::size_t>(next_number(256));
            if (options.request_workers == 0) {
                usage_and_exit();
            }
        } else if (arg == "--max-connections") {
            options.max_connections = static_cast<std::size_t>(next_number(1000000));
            if (options.max_connections == 0) {
                usage_and_exit();
            }
        } else if (arg == "--queue-depth") {
            options.queue_depth = static_cast<std::size_t>(next_number(1000000));
            if (options.queue_depth == 0) {
                usage_and_exit();
            }
        } else if (arg == "--model-cache-mb") {
            options.model_cache_bytes =
                static_cast<std::uint64_t>(next_number(1u << 20)) * 1024 * 1024;
        } else if (arg == "--stats") {
            stats_mode = true;
        } else if (arg == "--persist") {
            options.persist = true;
        } else if (arg == "--recover") {
            options.recover = true;
        } else if (arg == "--enable-failpoints") {
            options.enable_failpoints = true;
        } else if (arg == "--snapshot-dir") {
            options.snapshot_dir = next_value();
        } else if (arg == "--data-dir") {
            options.data_dir = next_value();
        } else if (arg == "--peers") {
            peers_csv = next_value();
        } else if (arg == "--advertise") {
            advertise = next_value();
        } else if (arg == "--cluster-config") {
            cluster_config_path = next_value();
        } else if (arg == "--join") {
            join_seed = next_value();
        } else if (arg == "--replicas") {
            replicas = static_cast<std::size_t>(next_number(64));
            if (replicas == 0) {
                usage_and_exit();
            }
        } else if (arg == "--probe-interval-ms") {
            probe_interval_ms = static_cast<std::size_t>(next_number(3600000));
            if (probe_interval_ms == 0) {
                usage_and_exit();
            }
        } else if (arg == "--load") {
            const std::string spec = next_value();
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
                usage_and_exit();
            }
            preload.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
        } else {
            usage_and_exit();
        }
    }

    if (stats_mode) {
        // One-shot monitoring: ask the running daemon for its global STATS
        // block and print the raw payload (kv lines; see docs/protocol.md).
        try {
            service::ClientOptions copts;
            copts.connect_timeout_ms = 2000;
            copts.recv_timeout_ms = 5000;
            auto client = service::SynthClient::connect("127.0.0.1", options.port, copts);
            service::Request request;
            request.op = service::Op::stats;
            std::cout << client.rpc(request).payload << std::flush;
            client.quit();
        } catch (const Error& e) {
            std::cerr << "kinetd --stats: " << e.what() << "\n";
            return 1;
        }
        return 0;
    }

    service::SynthServer server(options);
    try {
        failpoint::configure_from_env();
        server.start();
        for (const auto& [name, path] : preload) {
            server.registry().put(name, service::load_snapshot_file(path));
            std::cout << "kinetd: loaded model '" << name << "' from " << path << "\n";
        }
        if (!join_seed.empty() && (!cluster_config_path.empty() || !peers_csv.empty())) {
            std::cerr << "kinetd: --join excludes --peers/--cluster-config\n";
            return 2;
        }
        if (!join_seed.empty()) {
            service::ClusterConfig tuning;
            tuning.self = advertise.empty()
                              ? service::PeerAddress{"127.0.0.1", server.port()}
                              : service::parse_peer_address(advertise);
            if (replicas != 0) {
                tuning.replicas = replicas;  // overridden by the fleet's value
            }
            if (probe_interval_ms != 0) {
                tuning.probe_interval_ms = probe_interval_ms;
            }
            server.join_fleet(tuning, service::parse_peer_address(join_seed));
            const auto c = server.cluster();
            std::cout << "kinetd: joined fleet as " << c->self_name() << " via " << join_seed
                      << " (epoch " << c->epoch() << ", " << c->peer_names().size()
                      << " peer(s))\n";
        } else if (!cluster_config_path.empty() || !peers_csv.empty()) {
            service::ClusterConfig cluster;
            if (!cluster_config_path.empty()) {
                if (!peers_csv.empty() || !advertise.empty()) {
                    std::cerr << "kinetd: --cluster-config excludes --peers/--advertise\n";
                    return 2;
                }
                cluster = service::load_cluster_config(cluster_config_path);
            } else {
                const service::PeerAddress self =
                    advertise.empty()
                        ? service::PeerAddress{"127.0.0.1", server.port()}
                        : service::parse_peer_address(advertise);
                cluster = service::parse_peer_list(self, peers_csv);
            }
            if (replicas != 0) {
                cluster.replicas = replicas;
            }
            if (probe_interval_ms != 0) {
                cluster.probe_interval_ms = probe_interval_ms;
            }
            server.enable_cluster(cluster);
            std::cout << "kinetd: fleet member " << server.cluster()->self_name() << " with "
                      << cluster.peers.size() << " peer(s), replicas=" << cluster.replicas
                      << "\n";
        }
    } catch (const Error& e) {
        std::cerr << "kinetd: " << e.what() << "\n";
        return 1;
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::cout << "kinetd: listening on 127.0.0.1:" << server.port() << " (pid " << ::getpid()
              << ")\n"
              << std::flush;

    while (g_signal.load() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_signal.load() == SIGTERM) {
        std::cout << "kinetd: draining (SIGTERM)\n";
        server.drain(5000);
    } else {
        std::cout << "kinetd: shutting down\n";
        server.stop();
    }
    return 0;
}
