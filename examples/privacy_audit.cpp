// Privacy audit: runs the paper's three attack families (Sec. V-C) against a
// trained KiNETGAN release and prints an auditor-style report.
//
// Build & run:  ./build/examples/example_privacy_audit
#include <iostream>

#include "src/common/text.hpp"
#include "src/core/kinetgan.hpp"
#include "src/data/split.hpp"
#include "src/eval/privacy/attribute_inference.hpp"
#include "src/eval/privacy/membership_inference.hpp"
#include "src/eval/privacy/reidentification.hpp"
#include "src/netsim/lab_simulator.hpp"

int main() {
    using namespace kinet;  // NOLINT

    std::cout << "=== Privacy audit of a KiNETGAN synthetic release ===\n\n";

    netsim::LabSimOptions sim;
    sim.records = 4000;
    const auto capture = netsim::LabTrafficSimulator(sim).generate();
    Rng rng(5);
    const auto split = data::train_test_split(capture, 0.4, rng, netsim::lab_label_column());

    const auto kg = kg::NetworkKg::build_lab();
    core::KiNetGanOptions opts;
    opts.gan.epochs = 30;
    core::KiNetGan model(kg.make_oracle(), netsim::lab_conditional_columns(), opts);
    model.fit(split.train);
    const auto synth = model.sample(split.train.rows());
    std::cout << "release: " << synth.rows() << " synthetic rows\n\n";

    std::vector<std::size_t> qi_columns;
    for (std::size_t c = 0; c < capture.cols(); ++c) {
        if (!capture.meta(c).is_categorical()) {
            qi_columns.push_back(c);
        }
    }

    // 1. Re-identification at increasing adversary knowledge.
    std::cout << "[1] Re-identification (linkage) attack\n";
    for (const double overlap : {0.3, 0.6, 0.9}) {
        eval::ReidentificationOptions ropts;
        ropts.known_fraction = overlap;
        ropts.qi_columns = qi_columns;
        ropts.max_targets = 600;
        const double acc = eval::reidentification_attack(split.train, synth, ropts);
        std::cout << "    " << static_cast<int>(overlap * 100) << "% prior knowledge -> attack "
                  << text::format_double(acc, 3) << " (floor = prior itself: "
                  << text::format_double(overlap, 2) << ")\n";
    }

    // 2. Attribute inference on the source device.
    std::cout << "\n[2] Attribute inference (src_device from flow statistics)\n";
    eval::AttributeInferenceOptions aopts;
    aopts.qi_columns = qi_columns;
    aopts.sensitive_column = capture.column_index("src_device");
    aopts.max_targets = 600;
    const double ai = eval::attribute_inference_attack(split.train, synth, aopts);
    const double chance =
        1.0 / static_cast<double>(capture.meta(aopts.sensitive_column).categories.size());
    std::cout << "    attack accuracy " << text::format_double(ai, 3) << " (chance "
              << text::format_double(chance, 3) << ")\n";

    // 3. Membership inference, WB and FBB.
    std::cout << "\n[3] Membership inference\n";
    const auto member_scores = model.discriminator_scores(split.train);
    const auto nonmember_scores = model.discriminator_scores(split.test);
    const double wb = eval::membership_inference_white_box(member_scores, nonmember_scores);
    eval::FbbOptions fopts;
    fopts.feature_columns = qi_columns;
    fopts.max_candidates = 500;
    const double fbb =
        eval::membership_inference_full_black_box(split.train, split.test, synth, fopts);
    std::cout << "    white-box (discriminator scores): " << text::format_double(wb, 3)
              << "  (0.5 = chance)\n";
    std::cout << "    fully-black-box (distance attack): " << text::format_double(fbb, 3)
              << "  (0.5 = chance)\n";

    std::cout << "\nVerdict: attacks near their floors indicate the release generalises\n"
                 "rather than memorises; compare with bench_fig5/6/7 for the baselines.\n";
    return 0;
}
