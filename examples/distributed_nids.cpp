// Distributed NIDS scenario — the paper's motivating deployment (Sec. I).
//
// Three sites each hold a private traffic capture that must not leave the
// premises (deep-packet-inspection data).  Each site trains a local KiNETGAN
// and shares only synthetic traffic.  A central NIDS is trained on the pooled
// synthetic release and compared against (a) the privacy-violating
// raw-pooling upper bound and (b) each site training alone on its own data.
//
// Build & run:  ./build/examples/example_distributed_nids
#include <iostream>

#include "src/common/text.hpp"
#include "src/core/kinetgan.hpp"
#include "src/data/split.hpp"
#include "src/eval/tstr.hpp"
#include "src/netsim/lab_simulator.hpp"

int main() {
    using namespace kinet;  // NOLINT

    constexpr std::size_t kSites = 3;
    std::cout << "=== Distributed NIDS with synthetic data sharing (" << kSites
              << " sites) ===\n\n";

    // Each site observes a different mix of the same network (different
    // seeds and attack intensities: site 2 sees few attacks and benefits the
    // most from collaboration).
    std::vector<data::Table> site_train;
    data::Table pooled_real;
    data::Table test;

    for (std::size_t s = 0; s < kSites; ++s) {
        netsim::LabSimOptions sim;
        sim.records = 2500;
        sim.seed = 100 + s;
        sim.attack_intensity = (s == 2) ? 0.25 : 1.0;
        const auto capture = netsim::LabTrafficSimulator(sim).generate();
        Rng rng(200 + s);
        auto split = data::train_test_split(capture, 0.3, rng, netsim::lab_label_column());
        if (s == 0) {
            pooled_real = split.train;
            test = split.test;
        } else {
            pooled_real.append_rows(split.train);
            test.append_rows(split.test);
        }
        site_train.push_back(std::move(split.train));
    }

    const std::size_t label = netsim::lab_label_column();

    // (a) Privacy-violating upper bound: pool raw data.
    const double upper =
        eval::average_accuracy(eval::evaluate_tstr(pooled_real, test, label));
    std::cout << "pooled RAW data (privacy-violating upper bound): "
              << text::format_double(upper, 3) << "\n\n";

    // (b) Per-site local models, and the pooled synthetic release.
    data::Table pooled_synth;
    const auto kg = kg::NetworkKg::build_lab();
    for (std::size_t s = 0; s < kSites; ++s) {
        const double local =
            eval::average_accuracy(eval::evaluate_tstr(site_train[s], test, label));

        core::KiNetGanOptions opts;
        opts.gan.epochs = 30;
        opts.gan.seed = 300 + s;
        core::KiNetGan model(kg.make_oracle(), netsim::lab_conditional_columns(), opts);
        model.fit(site_train[s]);
        const auto synth = model.sample(site_train[s].rows());
        if (s == 0) {
            pooled_synth = synth;
        } else {
            pooled_synth.append_rows(synth);
        }
        std::cout << "site " << s << ": local-only NIDS accuracy "
                  << text::format_double(local, 3) << ", shared "
                  << synth.rows() << " synthetic rows (KG validity "
                  << text::format_double(model.kg_validity_rate(synth), 3) << ")\n";
    }

    // (c) Central NIDS trained on pooled synthetic data only.
    const double collaborative =
        eval::average_accuracy(eval::evaluate_tstr(pooled_synth, test, label));
    std::cout << "\npooled SYNTHETIC data (privacy-preserving):      "
              << text::format_double(collaborative, 3) << "\n";
    std::cout << "\nThe collaborative model approaches the raw-pooling bound without any\n"
                 "site revealing a single real packet record.\n";
    return 0;
}
