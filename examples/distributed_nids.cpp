// Distributed NIDS scenario — the paper's motivating deployment (Sec. I),
// now running against live kinetd servers instead of in-process models.
//
// Three sites each hold a private traffic capture that must not leave the
// premises (deep-packet-inspection data).  Each site runs its own
// synthetic-data service (a SynthServer on its own TCP port — exactly what
// the standalone `kinetd` daemon hosts); the central NIDS operator is a
// *client* that asks every site to train locally and then pulls only
// synthetic traffic over the wire.  The central NIDS is trained on the
// pooled synthetic release and compared against (a) the privacy-violating
// raw-pooling upper bound and (b) each site training alone on its own data.
// Along the way site 0's model round-trips through a snapshot file to show
// that a reloaded model serves the identical stream.
//
// Build & run:  ./build/examples/example_distributed_nids
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/common/text.hpp"
#include "src/data/split.hpp"
#include "src/eval/tstr.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"

int main() {
    using namespace kinet;  // NOLINT

    constexpr std::size_t kSites = 3;
    constexpr std::size_t kEpochs = 30;
    std::cout << "=== Distributed NIDS with synthetic-data-as-a-service (" << kSites
              << " sites) ===\n\n";

    // One service per site, as the deployment story demands.  Ephemeral
    // loopback ports here; in production each site runs `kinetd` on its own
    // host and only these TCP endpoints are reachable from outside.
    std::vector<std::unique_ptr<service::SynthServer>> sites;
    for (std::size_t s = 0; s < kSites; ++s) {
        service::ServerOptions options;
        options.snapshot_dir = "/tmp";  // client SAVE/LOAD paths resolve here
        auto server = std::make_unique<service::SynthServer>(options);
        server->start();
        std::cout << "site " << s << ": kinetd on 127.0.0.1:" << server->port() << "\n";
        sites.push_back(std::move(server));
    }

    // The evaluation harness regenerates each site's capture locally — this
    // stands in for the ground truth only the evaluator of the experiment
    // has; the wire never carries a real record.
    std::vector<service::TrainSpec> specs(kSites);
    std::vector<data::Table> site_train;
    data::Table pooled_real;
    data::Table test;
    for (std::size_t s = 0; s < kSites; ++s) {
        specs[s].records = 2500;
        specs[s].sim_seed = 100 + s;
        specs[s].attack_intensity = (s == 2) ? 0.25 : 1.0;
        specs[s].split_frac = 0.3;
        specs[s].split_seed = 200 + s;
        specs[s].epochs = kEpochs;
        specs[s].gan_seed = 300 + s;

        netsim::LabSimOptions sim;
        sim.records = specs[s].records;
        sim.seed = specs[s].sim_seed;
        sim.attack_intensity = specs[s].attack_intensity;
        const auto capture = netsim::LabTrafficSimulator(sim).generate();
        Rng rng(specs[s].split_seed);
        auto split = data::train_test_split(capture, specs[s].split_frac, rng,
                                            netsim::lab_label_column());
        if (s == 0) {
            pooled_real = split.train;
            test = split.test;
        } else {
            pooled_real.append_rows(split.train);
            test.append_rows(split.test);
        }
        site_train.push_back(std::move(split.train));
    }

    const std::size_t label = netsim::lab_label_column();
    const auto schema = netsim::lab_schema();

    // (a) Privacy-violating upper bound: pool raw data.
    const double upper =
        eval::average_accuracy(eval::evaluate_tstr(pooled_real, test, label));
    std::cout << "\npooled RAW data (privacy-violating upper bound): "
              << text::format_double(upper, 3) << "\n\n";

    // (b) Ask every site's service to train locally — as *async jobs*, all
    // in flight at once (TRAIN ... async=1 returns a job id immediately and
    // the fit runs on the daemon's training executor, so the connections
    // stay responsive).  The operator polls the jobs, then pulls only
    // synthetic traffic over TCP.
    std::vector<service::SynthClient> clients;
    std::vector<std::uint64_t> jobs;
    for (std::size_t s = 0; s < kSites; ++s) {
        clients.push_back(service::SynthClient::connect("127.0.0.1", sites[s]->port()));
        jobs.push_back(clients[s].train_async("site-" + std::to_string(s), specs[s]));
        std::cout << "site " << s << ": queued training job " << jobs[s] << "\n";
    }
    for (std::size_t s = 0; s < kSites; ++s) {
        const auto info = clients[s].wait_for_job(jobs[s]);
        std::cout << "site " << s << ": job " << jobs[s] << " " << info.at("state") << " ("
                  << info.at("epochs_done") << "/" << info.at("epochs_total")
                  << " epochs)\n";
        if (info.at("state") != "done") {
            std::cerr << "site " << s << ": training failed\n";
            return 1;
        }
    }

    data::Table pooled_synth;
    for (std::size_t s = 0; s < kSites; ++s) {
        auto& client = clients[s];
        const double local =
            eval::average_accuracy(eval::evaluate_tstr(site_train[s], test, label));
        const std::size_t rows = site_train[s].rows();
        // Pull each site's table over *streaming* SAMPLE (stream=1): the
        // daemon frames the CSV as row chunks and neither side ever holds
        // the whole table — the transport a >10^6-flow pull would use.
        const auto synth = client.sample_streamed("site-" + std::to_string(s), rows,
                                                  /*seed=*/1000 + s, schema,
                                                  /*chunk_rows=*/512);
        const double validity =
            client.validate("site-" + std::to_string(s), 1000, /*seed=*/7);
        if (s == 0) {
            pooled_synth = synth;
        } else {
            pooled_synth.append_rows(synth);
        }
        std::cout << "site " << s << ": local-only NIDS accuracy "
                  << text::format_double(local, 3) << ", shared " << synth.rows()
                  << " synthetic rows (KG validity " << text::format_double(validity, 3)
                  << ")\n";
        client.quit();
    }
    clients.clear();

    // (c) Central NIDS trained on pooled synthetic data only.
    const double collaborative =
        eval::average_accuracy(eval::evaluate_tstr(pooled_synth, test, label));
    std::cout << "\npooled SYNTHETIC data (privacy-preserving):      "
              << text::format_double(collaborative, 3) << "\n";

    // (d) Snapshot round-trip: site 0 saves its model, a fresh service loads
    // it, and the reloaded model serves the bit-identical stream.  The wire
    // path is relative — the daemon confines it to its --snapshot-dir.
    const std::string snap_name = "kinetd_site0.snap";
    {
        auto client = service::SynthClient::connect("127.0.0.1", sites[0]->port());
        client.save("site-0", snap_name);
        client.load("site-0-restored", snap_name);
        // Framed from the original, streamed from the restore: the two
        // transports must serve byte-identical CSV for one seed.
        const std::string a = client.sample_csv("site-0", 200, /*seed=*/4242);
        std::string b;
        (void)client.sample_stream("site-0-restored", 200, /*seed=*/4242,
                                   [&b](const std::string& chunk) { b += chunk; },
                                   /*chunk_rows=*/64);
        std::cout << "\nsnapshot round-trip through /tmp/" << snap_name
                  << ": restored model "
                  << (a == b ? "serves an identical stream" : "DIVERGED (bug!)") << "\n";
        client.quit();
        std::remove(("/tmp/" + snap_name).c_str());
    }

    std::cout << "\nThe collaborative model approaches the raw-pooling bound without any\n"
                 "site revealing a single real packet record — and every byte that\n"
                 "crossed the wire was synthetic.\n";

    for (auto& server : sites) {
        server->stop();
    }
    return 0;
}
