// Distributed NIDS scenario — the paper's motivating deployment (Sec. I),
// now running as a true federated fleet of kinetd services.
//
// Three sites each hold a private traffic capture that must not leave the
// premises (deep-packet-inspection data).  Each site runs its own
// synthetic-data service, and the three daemons are clustered into one
// logical fleet (docs/cluster.md): a consistent-hash ring decides which
// member owns which model, FEDTRAIN trains on the local site's data and
// publishes the snapshot to every peer, and any member transparently
// forwards requests for models it does not hold.  The central NIDS
// operator is a *client of one endpoint* — it talks to whichever member is
// reachable and the fleet does the rest.  The central NIDS is trained on
// the pooled synthetic release and compared against (a) the
// privacy-violating raw-pooling upper bound and (b) each site training
// alone on its own data.  At the end one member is killed outright to show
// the survivors keep serving every model.
//
// Build & run:  ./build/examples/example_distributed_nids
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/text.hpp"
#include "src/data/split.hpp"
#include "src/eval/tstr.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/service/client.hpp"
#include "src/service/cluster/config.hpp"
#include "src/service/server.hpp"

int main() {
    using namespace kinet;  // NOLINT

    constexpr std::size_t kSites = 3;
    constexpr std::size_t kEpochs = 30;
    std::cout << "=== Distributed NIDS: a federated kinetd fleet (" << kSites
              << " sites) ===\n\n";

    // One service per site, then cluster them: ephemeral loopback ports
    // here; in production each site runs `kinetd --peers ...` on its own
    // host and only these TCP endpoints are reachable from outside.
    std::vector<std::unique_ptr<service::SynthServer>> sites;
    std::vector<service::PeerAddress> addrs;
    for (std::size_t s = 0; s < kSites; ++s) {
        auto server = std::make_unique<service::SynthServer>();
        server->start();
        addrs.push_back(service::PeerAddress{"127.0.0.1", server->port()});
        std::cout << "site " << s << ": kinetd on " << addrs.back().name() << "\n";
        sites.push_back(std::move(server));
    }
    for (std::size_t s = 0; s < kSites; ++s) {
        service::ClusterConfig cfg;
        cfg.self = addrs[s];
        for (std::size_t p = 0; p < kSites; ++p) {
            if (p != s) {
                cfg.peers.push_back(addrs[p]);
            }
        }
        cfg.replicas = 2;
        sites[s]->enable_cluster(cfg);
    }
    {
        auto probe = service::SynthClient::connect("127.0.0.1", sites[0]->port());
        const auto view = probe.cluster();
        std::cout << "fleet: " << view.at("members") << " members, " << view.at("members_up")
                  << " up, replicas=" << view.at("replicas") << "\n";
        probe.quit();
    }

    // The evaluation harness regenerates each site's capture locally — this
    // stands in for the ground truth only the evaluator of the experiment
    // has; the wire never carries a real record.
    std::vector<service::TrainSpec> specs(kSites);
    std::vector<data::Table> site_train;
    data::Table pooled_real;
    data::Table test;
    for (std::size_t s = 0; s < kSites; ++s) {
        specs[s].records = 2500;
        specs[s].sim_seed = 100 + s;
        specs[s].attack_intensity = (s == 2) ? 0.25 : 1.0;
        specs[s].split_frac = 0.3;
        specs[s].split_seed = 200 + s;
        specs[s].epochs = kEpochs;
        specs[s].gan_seed = 300 + s;

        netsim::LabSimOptions sim;
        sim.records = specs[s].records;
        sim.seed = specs[s].sim_seed;
        sim.attack_intensity = specs[s].attack_intensity;
        const auto capture = netsim::LabTrafficSimulator(sim).generate();
        Rng rng(specs[s].split_seed);
        auto split = data::train_test_split(capture, specs[s].split_frac, rng,
                                            netsim::lab_label_column());
        if (s == 0) {
            pooled_real = split.train;
            test = split.test;
        } else {
            pooled_real.append_rows(split.train);
            test.append_rows(split.test);
        }
        site_train.push_back(std::move(split.train));
    }

    const std::size_t label = netsim::lab_label_column();
    const auto schema = netsim::lab_schema();

    // (a) Privacy-violating upper bound: pool raw data.
    const double upper =
        eval::average_accuracy(eval::evaluate_tstr(pooled_real, test, label));
    std::cout << "\npooled RAW data (privacy-violating upper bound): "
              << text::format_double(upper, 3) << "\n\n";

    // (b) Federated training: every site runs FEDTRAIN on its *own*
    // capture — the fit happens where the data lives, and the daemon then
    // publishes the finished snapshot to every peer (REPLICATE), so the
    // whole fleet can serve every site's model locally.  All three jobs
    // run concurrently; progress is watched with server-side long-polls
    // (POLL wait=1), one bounded request per second instead of a busy loop.
    std::vector<service::SynthClient> clients;
    std::vector<std::uint64_t> jobs;
    for (std::size_t s = 0; s < kSites; ++s) {
        clients.push_back(service::SynthClient::connect("127.0.0.1", sites[s]->port()));
        jobs.push_back(clients[s].fedtrain_async("site-" + std::to_string(s), specs[s]));
        std::cout << "site " << s << ": queued federated training job " << jobs[s] << "\n";
    }
    for (std::size_t s = 0; s < kSites; ++s) {
        std::map<std::string, std::string> info;
        for (;;) {
            info = clients[s].poll_job_wait(jobs[s], /*timeout_ms=*/1000);
            const std::string& state = info.at("state");
            if (state == "done" || state == "failed" || state == "cancelled") {
                break;
            }
        }
        std::cout << "site " << s << ": job " << jobs[s] << " " << info.at("state") << " ("
                  << info.at("epochs_done") << "/" << info.at("epochs_total")
                  << " units; the extra units are the publish fan-out)\n";
        if (info.at("state") != "done") {
            std::cerr << "site " << s << ": federated training failed\n";
            return 1;
        }
    }

    // The operator needs only ONE endpoint from here on: site 0's daemon
    // serves all three models (its own fit plus the published replicas).
    auto& operator_client = clients[0];
    data::Table pooled_synth;
    for (std::size_t s = 0; s < kSites; ++s) {
        const std::string model = "site-" + std::to_string(s);
        const double local =
            eval::average_accuracy(eval::evaluate_tstr(site_train[s], test, label));
        const std::size_t rows = site_train[s].rows();
        // Pull each site's table over *streaming* SAMPLE (stream=1): the
        // daemon frames the CSV as row chunks and neither side ever holds
        // the whole table — the transport a >10^6-flow pull would use.
        const auto synth = operator_client.sample_streamed(model, rows,
                                                           /*seed=*/1000 + s, schema,
                                                           /*chunk_rows=*/512);
        const double validity = operator_client.validate(model, 1000, /*seed=*/7);
        if (s == 0) {
            pooled_synth = synth;
        } else {
            pooled_synth.append_rows(synth);
        }
        std::cout << "site " << s << ": local-only NIDS accuracy "
                  << text::format_double(local, 3) << ", pulled " << synth.rows()
                  << " synthetic rows via site 0 (KG validity "
                  << text::format_double(validity, 3) << ")\n";
    }

    // (c) Central NIDS trained on pooled synthetic data only.
    const double collaborative =
        eval::average_accuracy(eval::evaluate_tstr(pooled_synth, test, label));
    std::cout << "\npooled SYNTHETIC data (privacy-preserving):      "
              << text::format_double(collaborative, 3) << "\n";

    // (d) Location transparency: every member serves byte-identical rows
    // for the same model and seed — replicas are bit-exact, and a member
    // without a local copy forwards to one that has it.
    {
        const std::string reference = clients[0].sample_csv("site-1", 120, /*seed=*/4242);
        bool identical = true;
        for (std::size_t s = 1; s < kSites; ++s) {
            identical = identical &&
                        clients[s].sample_csv("site-1", 120, /*seed=*/4242) == reference;
        }
        std::cout << "\nSAMPLE site-1 via all " << kSites << " endpoints: "
                  << (identical ? "byte-identical everywhere" : "DIVERGED (bug!)") << "\n";
    }

    // (e) Failure: kill site 2's daemon outright.  The survivors mark it
    // down and keep serving all three models from their replicas.
    clients[2].quit();
    sites[2]->stop();
    sites[0]->cluster()->probe_now();
    std::cout << "site 2 killed; fleet view from site 0: members_up="
              << operator_client.cluster().at("members_up") << "\n";
    bool all_reachable = true;
    for (std::size_t s = 0; s < kSites; ++s) {
        const std::string model = "site-" + std::to_string(s);
        all_reachable = all_reachable &&
                        !operator_client.sample_csv(model, 50, /*seed=*/5).empty() &&
                        !clients[1].sample_csv(model, 50, /*seed=*/5).empty();
    }
    std::cout << "all three site models still reachable on the survivors: "
              << (all_reachable ? "yes" : "NO (bug!)") << "\n";
    clients[0].quit();
    clients[1].quit();
    clients.clear();

    std::cout << "\nThe collaborative model approaches the raw-pooling bound without any\n"
                 "site revealing a single real packet record — every byte that crossed\n"
                 "the wire was synthetic, and the fleet survives a site going dark.\n";

    for (auto& server : sites) {
        server->stop();
    }
    return 0;
}
