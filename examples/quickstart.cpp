// Quickstart: the shortest end-to-end use of the library.
//
//   1. simulate a lab IoT traffic capture,
//   2. build the Network Knowledge Graph and its validity oracle,
//   3. train KiNETGAN,
//   4. sample a synthetic release and sanity-check it.
//
// Build & run:  ./build/examples/example_quickstart
#include <iostream>

#include "src/common/text.hpp"
#include "src/core/kinetgan.hpp"
#include "src/data/split.hpp"
#include "src/eval/metrics.hpp"
#include "src/netsim/lab_simulator.hpp"

int main() {
    using namespace kinet;  // NOLINT

    // 1. Simulate network activity (substitute for a Wireshark capture).
    netsim::LabSimOptions sim;
    sim.records = 4000;
    const data::Table capture = netsim::LabTrafficSimulator(sim).generate();
    std::cout << "simulated " << capture.rows() << " flow records, " << capture.cols()
              << " columns\n";

    Rng rng(1);
    const auto split = data::train_test_split(capture, 0.3, rng, netsim::lab_label_column());

    // 2. Domain knowledge: the UCO-extended network KG.
    const auto kg = kg::NetworkKg::build_lab();
    std::cout << "knowledge graph: " << kg.store().size() << " triples, oracle enumerates "
              << kg.make_oracle().valid_tuples().size() << " valid attribute combinations\n";

    // 3. Train KiNETGAN.
    core::KiNetGanOptions opts;
    opts.gan.epochs = 30;
    core::KiNetGan model(kg.make_oracle(), netsim::lab_conditional_columns(), opts);
    model.fit(split.train);
    std::cout << "trained in " << text::format_double(model.report().seconds, 1)
              << "s; conditional adherence "
              << text::format_double(model.last_cond_adherence(), 3) << "\n";

    // 4. Sample and check the release.
    const data::Table synthetic = model.sample(split.train.rows());
    std::cout << "synthetic release: " << synthetic.rows() << " rows\n";
    std::cout << "  KG validity rate : "
              << text::format_double(model.kg_validity_rate(synthetic), 3) << "\n";
    std::cout << "  mean EMD vs real : "
              << text::format_double(eval::mean_emd(split.test, synthetic), 3) << "\n";
    std::cout << "  combined distance: "
              << text::format_double(eval::combined_distance(split.test, synthetic), 3) << "\n";

    // Export for downstream tools.
    csv::write_file("synthetic_release.csv", synthetic.to_csv());
    std::cout << "wrote synthetic_release.csv\n";
    return 0;
}
