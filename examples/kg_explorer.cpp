// KG explorer: interrogates the Network Traffic Knowledge Graph the way the
// Knowledge-Guided Discriminator does — class hierarchy, validity queries,
// conjunctive pattern queries, and CVE port-range reasoning.
//
// Build & run:  ./build/examples/example_kg_explorer
#include <iostream>

#include "src/kg/network_kg.hpp"
#include "src/kg/ontology.hpp"
#include "src/kg/query.hpp"
#include "src/kg/reasoner.hpp"

int main() {
    using namespace kinet::kg;  // NOLINT

    const auto kg = NetworkKg::build_lab();
    std::cout << "NetworkKG (lab domain): " << kg.store().size() << " triples\n\n";

    // --- ontology ---
    std::cout << "Is event:dns_query a uco:Event (via EventType ⊑ NetworkEvent ⊑ Event)?  "
              << (Reasoner::is_instance_of(kg.store(), "event:dns_query",
                                           std::string(vocab::uco_event))
                      ? "yes"
                      : "no")
              << "\n\n";

    // --- per-device event knowledge ---
    for (const auto& device : {"camera", "smart_plug", "attacker"}) {
        std::cout << "events " << device << " may emit:";
        for (const auto& e : kg.events_for_device(device)) {
            std::cout << ' ' << e;
        }
        std::cout << '\n';
    }
    std::cout << '\n';

    // --- the paper's canonical example: CVE-1999-0003 ---
    const auto [lo, hi] = kg.attack_port_range("CVE-1999-0003");
    std::cout << "CVE-1999-0003 valid port interval: [" << lo << ", " << hi << "]\n";
    for (const double port : {33000.0, 80.0}) {
        std::cout << "  port " << port << " in range? "
                  << (kg.port_in_attack_range(port, "CVE-1999-0003") ? "yes" : "no") << '\n';
    }
    std::cout << '\n';

    // --- conjunctive query: which TCP events talk to port 443? ---
    Query q;
    q.where("?e", std::string(vocab::has_protocol), "proto:TCP")
        .where("?e", std::string(vocab::has_dst_port), "port:443");
    std::cout << "TCP events on port 443:\n";
    for (const auto& binding : q.solve(kg.store())) {
        std::cout << "  " << kg.store().symbols().name(binding.at("?e")) << '\n';
    }
    std::cout << '\n';

    // --- validity oracle, as used by D_KG ---
    const auto oracle = kg.make_oracle();
    std::cout << "oracle attributes:";
    for (const auto& a : oracle.attribute_names()) {
        std::cout << ' ' << a;
    }
    std::cout << "\noracle size: " << oracle.valid_tuples().size() << " valid combinations\n";
    const std::vector<std::string> good = {"camera", "UDP", "DNS", "53", "dns_query"};
    const std::vector<std::string> bad = {"camera", "UDP", "DNS", "443", "dns_query"};
    std::cout << "  (camera, UDP, DNS, 53, dns_query)  -> "
              << (oracle.is_valid(good) ? "valid" : "invalid") << '\n';
    std::cout << "  (camera, UDP, DNS, 443, dns_query) -> "
              << (oracle.is_valid(bad) ? "valid" : "invalid") << '\n';
    return 0;
}
