#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON reports.

Compares the current `bench_micro --json` output against a baseline from a
previous CI run and fails (exit 1) when any benchmark present in both
reports regressed by more than the threshold.  Benchmarks that exist in
only one report are listed but never fail the gate (renames/additions must
not block CI), and improvements are reported for free.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
    bench_compare.py BASELINE.json CURRENT.json --update-baseline

CI keeps the baseline as a restore-latest cache (see .github/workflows/
ci.yml); locally, run bench_micro twice across a change and diff the runs.
--update-baseline promotes CURRENT to BASELINE after the comparison (also
when BASELINE does not exist yet) — use it to record a fresh baseline after
an intentional kernel change, e.g.:

    build/bench/bench_micro --json /tmp/now.json
    tools/bench_compare.py bench/baselines/latest.json /tmp/now.json --update-baseline
"""

import argparse
import json
import sys

# google-benchmark emits every time in the benchmark's own time_unit.
_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> (cpu_time in ns, items_per_second or None).

    When the report was produced with --benchmark_repetitions, the `median`
    aggregate is used (much less noisy than any single repetition);
    otherwise the plain per-benchmark rows are.  Mean/stddev/cv aggregates
    are always skipped.  items_per_second (e.g. BM_SampleThroughput's
    rows/s) is carried so throughput benchmarks are gated on the number
    they exist to report, not only on cpu time.
    """
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    singles = {}
    medians = {}
    for entry in report.get("benchmarks", []):
        cpu = entry.get("cpu_time")
        if cpu is None:
            continue
        ns = cpu * _TIME_UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
        value = (ns, entry.get("items_per_second"))
        if entry.get("run_type") == "aggregate" or "aggregate_name" in entry:
            if entry.get("aggregate_name") == "median" and entry.get("run_name"):
                medians[entry["run_name"]] = value
            continue
        if entry.get("name"):
            singles[entry["name"]] = value
    return medians if medians else singles


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum tolerated slowdown as a fraction (default 0.15 = +15%%)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="after comparing, copy CURRENT over BASELINE (promotes a fresh "
        "baseline; comparison failures are reported but do not block the "
        "promotion — it is the intentional-change workflow)",
    )
    args = parser.parse_args()

    def promote():
        import shutil

        shutil.copyfile(args.current, args.baseline)
        print(f"bench_compare: promoted {args.current} -> {args.baseline}")

    try:
        baseline = load_times(args.baseline)
    except FileNotFoundError:
        if args.update_baseline:
            promote()
            return 0
        raise
    current = load_times(args.current)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("bench_compare: no overlapping benchmarks; nothing to gate")
        if args.update_baseline:
            promote()
        return 0

    regressions = []
    width = max(len(name) for name in shared)
    print(f"bench_compare: gate at +{args.threshold:.0%} over {args.baseline}")
    for name in shared:
        base_ns, base_ips = baseline[name]
        cur_ns, cur_ips = current[name]
        rate_gated = "Throughput" in name or "ServerConnections" in name
        if rate_gated and base_ips and cur_ips:
            # Rate benchmarks (BM_SampleThroughput*, BM_ServerConnections)
            # are gated on the items/s drop — the number they exist to
            # report (a slowdown is base/current - 1, same sign convention
            # as the time ratio; BM_ServerConnections' client-side cpu_time
            # is additionally meaningless — the work runs in the server's
            # threads).  Everything else stays on median cpu_time: the
            # FLOPS benchmarks also emit items_per_second, but theirs
            # derives from real time, which inflates under runner load.
            delta = base_ips / cur_ips - 1.0 if cur_ips > 0 else float("inf")
            shown = f"{base_ips:>12.3g} -> {cur_ips:>12.3g} it/s"
        else:
            delta = cur_ns / base_ns - 1.0 if base_ns > 0 else float("inf")
            shown = f"{base_ns:>12.1f} -> {cur_ns:>12.1f} ns  "
        flag = "OK"
        if delta > args.threshold:
            flag = "REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            flag = "improved"
        print(f"  {name:<{width}}  {shown}  {delta:+7.1%}  {flag}")

    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:<{width}}  removed (not gated)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  new (not gated)")

    if regressions:
        print(f"bench_compare: FAIL — {len(regressions)} benchmark(s) regressed "
              f"beyond +{args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        if args.update_baseline:
            promote()
        return 1
    print(f"bench_compare: OK — {len(shared)} benchmark(s) within +{args.threshold:.0%}")
    if args.update_baseline:
        promote()
    return 0


if __name__ == "__main__":
    sys.exit(main())
