// Fixture: failpoint-name — every site names a registered failpoint.
#include "src/common/failpoint.hpp"

void good_sites() {
    KINET_FAILPOINT("socket.recv");
    KINET_FAILPOINT("snapshot.commit");
    KINET_FAILPOINT("cluster.rpc");
    KINET_FAILPOINT("cluster.join");
    KINET_FAILPOINT("cluster.handoff");
    KINET_FAILPOINT("cluster.epoch_adopt");
}
