// Fixture: a warm serving path using only the approved buffer-reuse APIs.
#include <cstddef>
#include <vector>

struct Matrix {
    std::vector<double> data;
    void resize_for_overwrite(std::size_t n);  // reuse API: not banned
};
struct InferenceContext {};

struct Layer {
    void forward_inference(const Matrix& in, Matrix& out, InferenceContext& ctx) const;
};

void apply_into(const Matrix& in, Matrix& out);

void Layer::forward_inference(const Matrix& in, Matrix& out, InferenceContext&) const {
    out.resize_for_overwrite(in.data.size());
    apply_into(in, out);
}

// Allocation outside the hot-path bodies (setup, training) is unrestricted.
void warm_up(Matrix& m) {
    m.data.resize(512);
    m.data.reserve(1024);
}
