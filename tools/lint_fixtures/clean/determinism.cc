// Fixture: the approved determinism APIs — seeded engine, monotonic clock.
#include <chrono>
#include <cstdint>
#include <random>

double seeded_draw(std::uint64_t seed) {
    std::mt19937_64 engine(seed);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine);
}

long monotonic_elapsed_ms(std::chrono::steady_clock::time_point start) {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - start).count();
}

// Prose mentioning rand() or std::random_device in comments never trips the
// rule, and neither do string literals: "calling rand() is banned".
const char* kBannedApiDocs = "rand(), srand(), std::random_device, time(nullptr)";
