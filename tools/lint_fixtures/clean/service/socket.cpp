// Fixture: socket.cpp is the one service file allowed raw syscalls — it IS
// the EINTR-safe wrapper layer.
#include <cstddef>

extern "C" long send(int, const void*, unsigned long, int);

long send_all(int fd, const void* buf, std::size_t len) {
    return ::send(fd, buf, len, 0);
}
