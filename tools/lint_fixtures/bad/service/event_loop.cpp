// Fixture: blocking calls on the epoll loop thread and raw socket syscalls.
// The path mimics src/service/event_loop.cpp so both rules engage; only a
// subset of the real loop-thread functions appears (the staleness check is
// tree-only).
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

struct Connection {
    int fd = -1;
};

struct EventLoop {
    void flush_writes(Connection& conn);
    void dispatch_request(Connection& conn);
    void drain_completions();
    void worker_main();  // worker-pool thread: blocking is fine there
    std::mutex mu_;
    std::condition_variable cv_;
    std::thread worker_;
};

void EventLoop::flush_writes(Connection& conn) {
    const char byte = 0;
    ::send(conn.fd, &byte, 1, 0);  // LINT-EXPECT: raw-io
}

void EventLoop::dispatch_request(Connection& conn) {
    (void)conn;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // LINT-EXPECT: loop-blocking
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock);  // LINT-EXPECT: loop-blocking
}

void EventLoop::drain_completions() {
    worker_.join();  // LINT-EXPECT: loop-blocking
}

// Not in the loop-thread list: blocking here is by design.
void EventLoop::worker_main() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock);
}
