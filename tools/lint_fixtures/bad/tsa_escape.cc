// Fixture: the TSA escape hatch demands an adjacent rationale comment.
#define KINET_NO_THREAD_SAFETY_ANALYSIS  // LINT-EXPECT: tsa-escape

struct Padding1 {};
struct Padding2 {};
struct Padding3 {};

struct Cache {
    void fast_read() KINET_NO_THREAD_SAFETY_ANALYSIS;  // LINT-EXPECT: tsa-escape

    // Justified lock-free read: the value is published with a release store
    // and read with an acquire load, so the lock is not required here.
    void checked_read() KINET_NO_THREAD_SAFETY_ANALYSIS;
};
