// Fixture: wire-side counts sizing containers without a bound.
#include <cstdint>
#include <vector>

struct Reader {
    std::uint64_t read_u64();
    std::uint32_t read_u32();
    std::uint64_t element_count(std::uint64_t elem_size);
};

void bad_load(Reader& in, std::vector<double>& out) {
    std::uint64_t n = in.read_u64();
    out.resize(n);  // LINT-EXPECT: unbounded-count
}

void bad_reserve(Reader& in, std::vector<int>& out) {
    auto count = in.read_u32();
    out.reserve(count);  // LINT-EXPECT: unbounded-count
}

// element_count() bounds the value against the remaining payload: safe.
void good_load(Reader& in, std::vector<double>& out) {
    std::uint64_t n = in.element_count(sizeof(double));
    out.resize(n);
}

// An explicit comparison between read and use clears the taint.
void good_checked(Reader& in, std::vector<int>& out) {
    auto count = in.read_u32();
    if (count > 4096) {
        return;
    }
    out.resize(count);
}
