// Fixture: every ambient-entropy / wall-clock API the nondet-api rule bans.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_entropy() {
    std::random_device rd;  // LINT-EXPECT: nondet-api
    return rd();
}

int bad_libc_rand() {
    srand(42);              // LINT-EXPECT: nondet-api
    return rand();          // LINT-EXPECT: nondet-api
}

long bad_wall_clock() {
    auto now = std::chrono::system_clock::now();  // LINT-EXPECT: nondet-api
    (void)now;
    return time(nullptr);   // LINT-EXPECT: nondet-api
}

// An allow() with a reason waives the finding.
unsigned allowed_entropy() {
    // kinet-lint: allow(nondet-api): fixture demonstrating a justified waiver
    std::random_device rd;
    return rd();
}

// An allow() without a reason is itself a finding (and does not waive).
unsigned bare_allow() {
    // kinet-lint: allow(nondet-api)  // LINT-EXPECT: bad-allow
    std::random_device rd;  // LINT-EXPECT: nondet-api
    return rd();
}
