// Fixture: failpoint-name — sites the central registry cannot vouch for.
#include "src/common/failpoint.hpp"

void bad_sites(const char* dynamic_name) {
    KINET_FAILPOINT("socket.send");  // registered: no finding
    KINET_FAILPOINT("tpyo.sokcet.send");  // LINT-EXPECT: failpoint-name
    KINET_FAILPOINT(dynamic_name);  // LINT-EXPECT: failpoint-name
}
