// Fixture: allocation and locking inside serving fast-path bodies.
#include <memory>
#include <mutex>
#include <vector>

struct Matrix {
    std::vector<double> data;
};
struct InferenceContext {};

struct Layer {
    void forward_inference(const Matrix& in, Matrix& out, InferenceContext& ctx) const;
    mutable std::mutex mu_;
};

void Layer::forward_inference(const Matrix& in, Matrix& out, InferenceContext&) const {
    out.data.resize(in.data.size());          // LINT-EXPECT: hot-path-alloc
    out.data.push_back(0.0);                  // LINT-EXPECT: hot-path-alloc
    auto scratch = std::make_unique<int>(3);  // LINT-EXPECT: hot-path-alloc
    (void)scratch;
    const std::lock_guard<std::mutex> lock(mu_);  // LINT-EXPECT: hot-path-alloc
}

struct StreamCursor {
    const Matrix* next();
    Matrix buf_;
};

const Matrix* StreamCursor::next() {
    buf_.data.reserve(64);   // LINT-EXPECT: hot-path-alloc
    double* p = new double;  // LINT-EXPECT: hot-path-alloc
    delete p;
    return &buf_;
}

// The same tokens outside a hot-path body are fine.
void warm_up(Matrix& m) {
    m.data.resize(128);
    m.data.reserve(256);
}
